"""Ablation: 2-Choices exact-step strategies (per-group vs pair sampling).

2-Choices' population step has two exact samplers with different cost
profiles — per-group multinomials at O(a^2) for ``a`` alive opinions,
and direct pair sampling at O(n) — dispatched on ``a^2 <= c n``
(see ``repro/core/two_choices.py``).  This ablation times both at a
small-support and a large-support operating point and asserts each wins
on its home turf, validating the dispatch rule.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.configs import balanced
from repro.core import TwoChoices

N = 100_000


def _stepper(strategy: str, k: int):
    dynamics = TwoChoices()
    counts = balanced(N, k)
    alive = np.flatnonzero(counts)
    rng = np.random.default_rng(0)
    method = {
        "groups": dynamics._population_step_groups,
        "pairs": dynamics._population_step_pairs,
    }[strategy]

    def step():
        method(counts, alive, N, rng)

    return step


@pytest.mark.parametrize("strategy", ["groups", "pairs"])
@pytest.mark.parametrize(
    "k", [8, 4096], ids=["small-support", "large-support"]
)
def test_two_choices_step(benchmark, strategy, k):
    benchmark(_stepper(strategy, k))


def _best_of(step, reps=5):
    times = []
    for _ in range(reps):
        start = time.perf_counter()
        step()
        times.append(time.perf_counter() - start)
    return min(times)


def test_dispatch_rule_small_support():
    """a = 8: per-group multinomials should beat O(n) pair sampling."""
    groups = _best_of(_stepper("groups", 8))
    pairs = _best_of(_stepper("pairs", 8))
    assert groups < pairs, f"groups {groups:.2e}s vs pairs {pairs:.2e}s"
    print(
        f"\na=8: groups {groups * 1e6:.0f} us < pairs "
        f"{pairs * 1e6:.0f} us — dispatch picks groups"
    )


def test_dispatch_rule_large_support():
    """a = 4096 (a^2 >> n): pair sampling should win comfortably."""
    groups = _best_of(_stepper("groups", 4096), reps=2)
    pairs = _best_of(_stepper("pairs", 4096), reps=2)
    assert pairs < groups, f"pairs {pairs:.2e}s vs groups {groups:.2e}s"
    print(
        f"\na=4096: pairs {pairs * 1e3:.1f} ms < groups "
        f"{groups * 1e3:.1f} ms — dispatch picks pairs"
    )


def test_strategies_agree_on_marginals():
    """Sanity alongside the timing: both samplers target one chain."""
    dynamics = TwoChoices()
    counts = balanced(N, 16)
    alive = np.flatnonzero(counts)
    rng = np.random.default_rng(1)
    reps = 200
    sums = {"groups": np.zeros(16), "pairs": np.zeros(16)}
    for _ in range(reps):
        sums["groups"] += dynamics._population_step_groups(
            counts, alive, N, rng
        )
        sums["pairs"] += dynamics._population_step_pairs(
            counts, alive, N, rng
        )
    gap = np.abs(sums["groups"] - sums["pairs"]) / reps
    assert np.all(gap < 6 * np.sqrt(N / 16))
