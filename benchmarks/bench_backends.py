"""Benchmark ``backends`` — JIT-kernel speedups over the NumPy paths.

The compute-backend layer (see :mod:`repro.backends`) exists for the
two measured hot-path laggards the NumPy vectorisation could not close:
the O(n h^2) shared-sample counting pass of sampled h-Majority, and the
per-chunk neighbor sample+gather of the batched graph engine.  This
benchmark pins the layer's reason to exist:

* ``test_backend_kernel_speedups`` — one study, three comparisons at
  the headline configurations:

  - h-Majority population stepping (R = 64, n = 10^5, h = 5, k = 16):
    the fused ``hmajority_population_batch`` kernel against both the
    sequential row loop and the vectorised NumPy batch path.  Floors
    (asserted only when the ``numba`` backend is importable and
    healthy): **>=10x** over the row loop, >=2x over the NumPy batch.
  - Agent-batch Voter and 3-Majority (R = 64, n = 10^4, k = 8, fixed
    random-regular graph, fixed pre-consensus round budgets): the
    whole-engine wall clock under ``use_backend("numba")`` against
    ``use_backend("numpy")`` — the fused ``csr_sample_gather`` kernel
    is the moving part.  Floors: **>=2x** for Voter, **>=1.5x** for
    3-Majority (3-Majority does more non-gather work per round, so its
    ceiling is lower).

  On NumPy-only hosts the study still runs the NumPy comparisons,
  still emits ``BENCH_backends.json`` (with ``"backend": "numpy"`` and
  null numba columns, keeping the cross-PR artefact trail unbroken),
  and then **skips** — never fails — so a missing optional dependency
  can't redden CI.

The capability-flag drift guard that used to live here is now
enforced statically by ``repro lint``'s **registry-completeness**
rule, which cross-checks the kernel catalogue against the dispatch
sites that request each kernel by name.

Run with:  pytest benchmarks/bench_backends.py --benchmark-only
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from conftest import write_bench_json
from repro.analysis.tables import format_table
from repro.backends import backend_available, use_backend
from repro.configs import balanced
from repro.core import Dynamics, HMajority, ThreeMajority, Voter
from repro.engine import BatchAgentEngine
from repro.graphs import random_regular
from repro.state import counts_to_agents

# h-Majority population configuration (the O(n h^2) laggard).
HM_N = 100_000
HM_K = 16
HM_H = 5
HM_REPLICAS = 64
HM_ROUNDS = 2
HM_LOOP_ROUNDS = 1  # the row loop is ~R times slower; keep it honest but short

# Agent-batch configuration (the sample+gather laggard).
AG_N = 10_000
AG_K = 8
AG_REPLICAS = 64
AG_DEGREE = 15
AG_CASES = (  # (label, dynamics factory, round budget, numba-vs-numpy floor)
    ("voter", Voter, 200, 2.0),
    ("3-majority", ThreeMajority, 60, 1.5),
)

NUMBA_AVAILABLE = backend_available("numba")

# Asserted only when the numba backend is importable and self-checks.
HM_FLOOR_VS_LOOP = 10.0
HM_FLOOR_VS_NUMPY = 2.0


def _hmajority_seconds(backend, rounds, row_loop=False) -> float:
    dynamics = HMajority(HM_H)
    matrix = np.tile(balanced(HM_N, HM_K), (HM_REPLICAS, 1))
    rng = np.random.default_rng(0)
    if row_loop:
        # The base-class fallback: R sequential population_step calls.
        def step(counts, generator):
            return Dynamics.population_step_batch(
                dynamics, counts, generator
            )
    else:
        step = dynamics.population_step_batch
    with use_backend(backend):
        step(matrix, rng)  # warm-up (allocator, JIT compilation)
        started = time.perf_counter()
        for _ in range(rounds):
            step(matrix, rng)
        return (time.perf_counter() - started) / rounds


def _agent_seconds(backend, factory, budget) -> float:
    graph = random_regular(AG_N, AG_DEGREE, seed=1)
    rng = np.random.default_rng(0)
    opinions = rng.permuted(
        np.tile(counts_to_agents(balanced(AG_N, AG_K)), (AG_REPLICAS, 1)),
        axis=1,
    )
    engine = BatchAgentEngine(
        factory(),
        graph,
        opinions,
        num_opinions=AG_K,
        seed=rng,
        backend=backend,
    )
    engine.step()  # warm-up (allocator, JIT compilation)
    started = time.perf_counter()
    for _ in range(budget):
        engine.step()
    return (time.perf_counter() - started) / budget


def _study() -> dict:
    hm = {
        "row_loop_s": _hmajority_seconds(
            "numpy", HM_LOOP_ROUNDS, row_loop=True
        ),
        "numpy_s": _hmajority_seconds("numpy", HM_ROUNDS),
        "numba_s": (
            _hmajority_seconds("numba", HM_ROUNDS)
            if NUMBA_AVAILABLE
            else None
        ),
    }
    agents = {}
    for label, factory, budget, _floor in AG_CASES:
        agents[label] = {
            "numpy_s": _agent_seconds("numpy", factory, budget),
            "numba_s": (
                _agent_seconds("numba", factory, budget)
                if NUMBA_AVAILABLE
                else None
            ),
        }
    return {"hmajority": hm, "agents": agents}


def _ratio(baseline, optimised):
    if baseline is None or optimised is None:
        return None
    return baseline / optimised


def test_backend_kernel_speedups(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    hm = study["hmajority"]
    hm_vs_loop = _ratio(hm["row_loop_s"], hm["numba_s"])
    hm_vs_numpy = _ratio(hm["numpy_s"], hm["numba_s"])

    def _ms(seconds):
        return "-" if seconds is None else round(seconds * 1000, 2)

    def _x(ratio):
        return "-" if ratio is None else round(ratio, 1)

    rows = [
        [
            f"{HM_H}-majority population",
            _ms(hm["row_loop_s"]),
            _ms(hm["numpy_s"]),
            _ms(hm["numba_s"]),
            _x(hm_vs_numpy),
        ]
    ]
    agent_speedups = {}
    for label, _factory, _budget, _floor in AG_CASES:
        entry = study["agents"][label]
        agent_speedups[label] = _ratio(entry["numpy_s"], entry["numba_s"])
        rows.append(
            [
                f"agent-batch {label}",
                "-",
                _ms(entry["numpy_s"]),
                _ms(entry["numba_s"]),
                _x(agent_speedups[label]),
            ]
        )
    print()
    print(
        format_table(
            [
                "hot path",
                "row loop ms/round",
                "numpy ms/round",
                "numba ms/round",
                "numba/numpy",
            ],
            rows,
            title=(
                f"Compute-backend kernels "
                f"(h-majority R={HM_REPLICAS}, n={HM_N:,}, k={HM_K}; "
                f"agent R={AG_REPLICAS}, n={AG_N:,}, k={AG_K}, "
                f"d={AG_DEGREE}+loops)"
            ),
        )
    )

    def _r(value):
        return None if value is None else round(value, 2)

    write_bench_json(
        "backends",
        speedup=_r(hm_vs_loop),
        baseline_seconds=hm["row_loop_s"],
        optimised_seconds=hm["numba_s"],
        config={
            "hmajority": {
                "R": HM_REPLICAS, "n": HM_N, "k": HM_K, "h": HM_H,
            },
            "agent": {
                "R": AG_REPLICAS, "n": AG_N, "k": AG_K,
                "degree": AG_DEGREE,
            },
        },
        extra={
            "numba_available": NUMBA_AVAILABLE,
            "hmajority": {
                "row_loop_seconds": _r(hm["row_loop_s"]),
                "numpy_seconds": _r(hm["numpy_s"]),
                "numba_seconds": _r(hm["numba_s"]),
                "numba_vs_row_loop": _r(hm_vs_loop),
                "numba_vs_numpy": _r(hm_vs_numpy),
            },
            "agent_numba_vs_numpy": {
                label: _r(value)
                for label, value in agent_speedups.items()
            },
        },
    )
    if not NUMBA_AVAILABLE:
        pytest.skip(
            "numba unavailable: NumPy timings recorded, speedup floors "
            "not asserted"
        )
    assert hm_vs_loop >= HM_FLOOR_VS_LOOP, (
        f"h-majority numba kernel vs row loop: "
        f"{hm_vs_loop:.1f}x < {HM_FLOOR_VS_LOOP}x"
    )
    assert hm_vs_numpy >= HM_FLOOR_VS_NUMPY, (
        f"h-majority numba kernel vs numpy batch: "
        f"{hm_vs_numpy:.1f}x < {HM_FLOOR_VS_NUMPY}x"
    )
    for label, _factory, _budget, floor in AG_CASES:
        assert agent_speedups[label] >= floor, (
            f"agent-batch {label} numba vs numpy: "
            f"{agent_speedups[label]:.1f}x < {floor}x"
        )
