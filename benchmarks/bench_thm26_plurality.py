"""Benchmark ``thm26`` — Theorem 2.6.

Plurality-consensus probability across a margin sweep around the
theorem's threshold margin.

See ``repro/experiments/thm26.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_thm26(regenerate):
    result = regenerate("thm26")
    assert result.rows
