"""Benchmark ``table1`` — Table 1.

The six conditional drift inequalities for alpha, delta and gamma
evaluated over thousands of configurations; the paper's inventory of
drift terms is regenerated as tested/violated counts.

See ``repro/experiments/table1.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_table1(regenerate):
    result = regenerate("table1")
    assert result.rows
