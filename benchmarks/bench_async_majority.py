"""Benchmark ``async`` — Async 3-Majority.

[CMRSS25] asynchronous chain: ticks ~ min(kn, n^1.5), and ticks/n tracks
the synchronous consensus time.

See ``repro/experiments/async_majority.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_async(regenerate):
    result = regenerate("async")
    assert result.rows
