"""Benchmark ``asyncbatch`` — vectorised asynchronous replication.

The ``AsyncBatchPopulationEngine`` advances R asynchronous chains
tick-by-tick in lockstep, sampling each tick's single-vertex update
across every active row in one ``async_population_step_batch`` call.
This benchmark guards the headline acceptance of that engine:

* ``test_async_batch_replication_speedup`` — fixed-tick stepping
  throughput of the batch engine against ``replicate`` over sequential
  ``AsyncPopulationEngine`` runs at R = 64 (3-Majority, with the Voter
  baseline for trend-watching).  Fixed ticks rather than
  run-to-consensus keep the sequential baseline affordable in CI while
  measuring the same per-tick hot path; the batch engine must win by
  at least 10x at R = 64.
The override-presence guard that used to live here is now enforced
statically by ``repro lint``'s **no-row-loop** rule
(``src/repro/lint/rules/vectorization.py``).

Run with:  pytest benchmarks/bench_async_batch.py --benchmark-only
"""

from __future__ import annotations

import time

import numpy as np

from conftest import write_bench_json
from repro.analysis.tables import format_table
from repro.configs import balanced
from repro.core import ThreeMajority, Voter
from repro.engine import AsyncBatchPopulationEngine, AsyncPopulationEngine
from repro.engine.runner import RunResult, replicate

N = 256
K = 8
REPLICAS = 64
TICKS = 600
SPEEDUP_FLOOR = 10.0  # 3-Majority at R = 64


def _sequential_seconds(dynamics, counts, replicas: int) -> float:
    def one(rng: np.random.Generator) -> RunResult:
        engine = AsyncPopulationEngine(dynamics, counts, seed=rng)
        engine.run_ticks(TICKS)
        return RunResult(
            converged=False,
            rounds=0,
            winner=None,
            final_counts=engine.counts,
        )

    started = time.perf_counter()
    replicate(one, replicas, seed=0)
    return time.perf_counter() - started


def _batch_seconds(dynamics, counts, replicas: int) -> float:
    engine = AsyncBatchPopulationEngine(
        dynamics, counts, num_replicas=replicas, seed=0
    )
    started = time.perf_counter()
    engine.run_ticks(TICKS)
    return time.perf_counter() - started


def _study() -> dict:
    rows = []
    measurements: dict[str, tuple[float, float, float]] = {}
    for dynamics in (ThreeMajority(), Voter()):
        counts = balanced(N, K)
        seq_s = _sequential_seconds(dynamics, counts, REPLICAS)
        batch_s = _batch_seconds(dynamics, counts, REPLICAS)
        speedup = seq_s / batch_s
        measurements[dynamics.name] = (seq_s, batch_s, speedup)
        rows.append(
            [
                dynamics.name,
                REPLICAS,
                round(seq_s * 1000, 1),
                round(batch_s * 1000, 1),
                round(speedup, 1),
            ]
        )
    return {"rows": rows, "measurements": measurements}


def test_async_batch_replication_speedup(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dynamics", "R", "sequential ms", "batch ms", "speedup"],
            study["rows"],
            title=(
                f"Batched vs sequential asynchronous replication "
                f"(n={N}, k={K}, {TICKS} ticks each)"
            ),
        )
    )
    seq_s, batch_s, speedup = study["measurements"]["3-majority"]
    write_bench_json(
        "async_batch",
        speedup=speedup,
        baseline_seconds=seq_s,
        optimised_seconds=batch_s,
        config={"R": REPLICAS, "n": N, "k": K, "ticks": TICKS},
        extra={
            "speedups": {
                name: round(values[2], 2)
                for name, values in study["measurements"].items()
            }
        },
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"3-majority async batch speedup {speedup:.1f}x fell below "
        f"the {SPEEDUP_FLOOR:g}x floor at R={REPLICAS}"
    )
