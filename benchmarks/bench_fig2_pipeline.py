"""Benchmark ``fig2`` — Figure 2.

The lemma pipeline behind Theorem 2.1 (weak vanishes, bias -> weak, bias
amplification, gamma bounded decrease), each checked within its C log n
/ gamma_0 window.

See ``repro/experiments/fig2_pipeline.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_fig2(regenerate):
    result = regenerate("fig2")
    assert result.rows
