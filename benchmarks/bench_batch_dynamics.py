"""Benchmark ``batchdyn`` — per-dynamics batch-stepping speedups.

Tracks the vectorised ``population_step_batch`` overrides of the
dynamics that used to fall back to the Python row loop (Median rule,
Undecided-State, sampled h-Majority), next to the closed-form paper
dynamics, and guards the catalogue against regressions:

* ``test_batch_dynamics_speedup`` — per-round wall-clock of each
  dynamics' vectorised batch step against the base-class row-loop
  fallback at R = 64, n = 10^5, on a fixed pre-consensus configuration
  (the engine freezes finished rows, so pre-consensus stepping is the
  honest unit of work).  The row-loop baseline is pinned to the
  ``numpy`` compute backend (an ambient JIT backend would accelerate
  the baseline's primitives too and flatten every ratio) while the
  vectorised path runs under the session default.  Asserts the
  headline ≥5x for Median and Undecided-State; on NumPy-only hosts
  h-Majority's O(n h^2) counting work dominates both paths at this
  size so its speedup is reported unasserted, but when the ``numba``
  backend is the default its fused counting kernel carries the batch
  path and the ≥5x floor is asserted there too.
* ``test_no_row_loop_fallback`` — fails if any catalogued dynamics
  loses its ``population_step_batch`` override and silently degrades to
  the row loop.

Run with:  pytest benchmarks/bench_batch_dynamics.py --benchmark-only
"""

from __future__ import annotations

import time

import numpy as np

from conftest import write_bench_json
from repro.analysis.tables import format_table
from repro.backends import default_backend, use_backend
from repro.configs import balanced
from repro.core import (
    Dynamics,
    HMajority,
    MedianRule,
    ThreeMajority,
    UndecidedStateDynamics,
    available_dynamics,
    make_dynamics,
    with_undecided_slot,
)

N = 100_000
K = 16
REPLICAS = 64

#: h-Majority's floor only bites once the fused numba counting kernel
#: is carrying the batch path; on NumPy-only hosts both paths pay the
#: same O(n h^2) counting work and the ratio hovers near 1.
HMAJORITY_FLOOR = 5.0 if default_backend().name == "numba" else None

#: (label, dynamics, start vector, timed rounds, asserted floor).
#: Round counts are tuned so each case runs long enough to time stably
#: but stays pre-consensus at n = 10^5.
CASES = (
    ("median", MedianRule(), balanced(N, K), 3, 5.0),
    (
        "undecided",
        UndecidedStateDynamics(),
        with_undecided_slot(balanced(N, K)),
        100,
        5.0,
    ),
    ("5-majority", HMajority(5), balanced(N, K), 2, HMAJORITY_FLOOR),
    ("3-majority", ThreeMajority(), balanced(N, K), 100, None),
)


def _per_round_seconds(dynamics, matrix, rounds, vectorised) -> float:
    rng = np.random.default_rng(0)
    if vectorised:
        step = dynamics.population_step_batch
        backend = None  # session default (numba when installed)
    else:
        backend = "numpy"  # keep the baseline an honest reference

        # The inherited row loop, even when the subclass overrides it.
        def step(counts, generator):
            return Dynamics.population_step_batch(
                dynamics, counts, generator
            )

    with use_backend(backend):
        step(matrix, rng)  # warm-up (allocator, lazy imports, JIT)
        started = time.perf_counter()
        for _ in range(rounds):
            step(matrix, rng)
        return (time.perf_counter() - started) / rounds


def _study() -> dict:
    rows = []
    speedups: dict[str, float] = {}
    for label, dynamics, start, rounds, _floor in CASES:
        matrix = np.tile(start, (REPLICAS, 1))
        batch_s = _per_round_seconds(dynamics, matrix, rounds, True)
        loop_s = _per_round_seconds(dynamics, matrix, rounds, False)
        speedup = loop_s / batch_s
        speedups[label] = speedup
        rows.append(
            [
                label,
                round(loop_s * 1000, 2),
                round(batch_s * 1000, 2),
                round(speedup, 1),
            ]
        )
    return {"rows": rows, "speedups": speedups}


def test_batch_dynamics_speedup(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dynamics", "row loop ms/round", "batch ms/round", "speedup"],
            study["rows"],
            title=(
                f"Vectorised population_step_batch vs row-loop fallback "
                f"(R={REPLICAS}, n={N:,}, k={K}, pre-consensus rounds)"
            ),
        )
    )
    write_bench_json(
        "batch_dynamics",
        config={"R": REPLICAS, "n": N, "k": K},
        extra={
            "speedups": {
                label: round(value, 2)
                for label, value in study["speedups"].items()
            }
        },
    )
    for label, _dynamics, _start, _rounds, floor in CASES:
        if floor is not None:
            assert study["speedups"][label] >= floor, (
                f"{label}: {study['speedups'][label]:.1f}x < {floor}x"
            )


def test_no_row_loop_fallback(benchmark):
    """Every catalogued dynamics must keep its vectorised override."""

    def check() -> list[str]:
        missing = []
        for spec in list(available_dynamics()) + ["5-majority"]:
            dynamics = make_dynamics(spec)
            if (
                type(dynamics).population_step_batch
                is Dynamics.population_step_batch
            ):
                missing.append(spec)
        return missing

    missing = benchmark.pedantic(check, rounds=1, iterations=1)
    assert not missing, (
        "these catalogued dynamics lost their vectorised "
        f"population_step_batch override: {missing}"
    )
