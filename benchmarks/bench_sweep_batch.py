"""Benchmark ``sweepbatch`` — batch-first sweep measurement end-to-end.

``run_sweep`` measures a grid point's ``num_runs`` replicas in one
vectorised engine by default (``measure="batch"``) instead of one
sequential engine per replica stream.  This benchmark runs the same
small multi-point grid through both measurement modes — the full
driver, including spec construction, seeding and aggregation, not just
the engine hot loop — and asserts the end-to-end headline: batched
measurement at least 3x faster wall-clock.

The two modes sample the same chains (equal in distribution; the sweep
regression tests KS-check it), so the benchmark also sanity-checks that
the per-point medians stay within a loose band of each other.

Run with:  pytest benchmarks/bench_sweep_batch.py --benchmark-only
"""

from __future__ import annotations

import time

from conftest import write_bench_json
from repro.analysis.tables import format_table
from repro.sweep import SweepSpec, run_sweep

GRID = {"n": [16_384, 65_536], "k": [16, 64]}
NUM_RUNS = 32
SPEEDUP_FLOOR = 3.0


def _sweep_seconds(measure: str) -> tuple[float, list]:
    spec = SweepSpec(
        grid=dict(GRID), fixed={"dynamics": "3-majority"},
        num_runs=NUM_RUNS, seed=0,
    )
    started = time.perf_counter()
    points = run_sweep(spec, measure=measure)
    return time.perf_counter() - started, points


def _study() -> dict:
    sequential_s, sequential_points = _sweep_seconds("sequential")
    batch_s, batch_points = _sweep_seconds("batch")
    rows = [
        [
            point.params["n"],
            point.params["k"],
            point.median,
            batch.median,
        ]
        for point, batch in zip(sequential_points, batch_points)
    ]
    return {
        "sequential_s": sequential_s,
        "batch_s": batch_s,
        "speedup": sequential_s / batch_s,
        "rows": rows,
    }


def test_sweep_batch_measurement_speedup(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["n", "k", "sequential median T", "batch median T"],
            study["rows"],
            title=(
                f"Sweep grid {GRID} x {NUM_RUNS} runs: "
                f"sequential {study['sequential_s'] * 1000:.0f} ms vs "
                f"batch {study['batch_s'] * 1000:.0f} ms "
                f"({study['speedup']:.1f}x)"
            ),
        )
    )
    write_bench_json(
        "sweep_batch",
        speedup=study["speedup"],
        baseline_seconds=study["sequential_s"],
        optimised_seconds=study["batch_s"],
        config={"grid": GRID, "num_runs": NUM_RUNS},
    )
    assert study["speedup"] >= SPEEDUP_FLOOR, (
        f"batched sweep measurement {study['speedup']:.1f}x fell below "
        f"the {SPEEDUP_FLOOR:g}x end-to-end floor"
    )
    # Same chains, different streams: medians must stay in one loose
    # band (the sweep test suite carries the strict KS regression).
    for n, k, seq_median, batch_median in study["rows"]:
        assert abs(seq_median - batch_median) <= 0.5 * max(
            seq_median, batch_median
        ), (n, k, seq_median, batch_median)
