"""Benchmark the vectorised batch-replica engine against sequential runs.

The ``BatchPopulationEngine`` exists for one reason: a
``replicate``-style workload (R independent runs of the same spec)
should cost one vectorised hot loop, not R sequential Python loops.
This benchmark tracks that claim across R ∈ {16, 64, 256} for both
paper dynamics and asserts the headline requirement — at R = 64 the
batch engine beats sequential replication by at least 3x wall-clock.

Run with:  pytest benchmarks/bench_batch_engine.py --benchmark-only
"""

from __future__ import annotations

import time

import numpy as np

from conftest import write_bench_json
from repro.analysis.tables import format_table
from repro.configs import balanced
from repro.core import ThreeMajority, TwoChoices
from repro.engine import (
    BatchPopulationEngine,
    PopulationEngine,
    replicate,
    run_until_consensus,
)

N = 65_536
K = 16
REPLICA_COUNTS = (16, 64, 256)
MAX_ROUNDS = 1_000_000


def _sequential_seconds(dynamics, counts, replicas: int) -> tuple[float, float]:
    def one(rng):
        engine = PopulationEngine(dynamics, counts, seed=rng)
        return run_until_consensus(engine, max_rounds=MAX_ROUNDS)

    started = time.perf_counter()
    results = replicate(one, replicas, seed=0)
    elapsed = time.perf_counter() - started
    return elapsed, float(np.median([r.rounds for r in results]))


def _batch_seconds(dynamics, counts, replicas: int) -> tuple[float, float]:
    started = time.perf_counter()
    engine = BatchPopulationEngine(
        dynamics, counts, num_replicas=replicas, seed=0
    )
    results = engine.run_until_consensus(MAX_ROUNDS)
    elapsed = time.perf_counter() - started
    return elapsed, float(np.median([r.rounds for r in results]))


def _study() -> dict:
    counts = balanced(N, K)
    rows = []
    speedups: dict[tuple[str, int], float] = {}
    for dynamics in (ThreeMajority(), TwoChoices()):
        for replicas in REPLICA_COUNTS:
            seq_s, seq_median = _sequential_seconds(
                dynamics, counts, replicas
            )
            batch_s, batch_median = _batch_seconds(
                dynamics, counts, replicas
            )
            speedup = seq_s / batch_s
            speedups[(dynamics.name, replicas)] = speedup
            rows.append(
                [
                    dynamics.name,
                    replicas,
                    round(seq_s * 1000, 1),
                    round(batch_s * 1000, 1),
                    round(speedup, 1),
                    seq_median,
                    batch_median,
                ]
            )
    return {"rows": rows, "speedups": speedups}


def test_batch_replication_speedup(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "dynamics",
                "R",
                "sequential ms",
                "batch ms",
                "speedup",
                "seq median T",
                "batch median T",
            ],
            study["rows"],
            title=(
                f"Batched vs sequential replication "
                f"(n={N:,}, k={K}, balanced start)"
            ),
        )
    )
    speedups = study["speedups"]
    headline = next(
        row
        for row in study["rows"]
        if row[0] == "3-majority" and row[1] == 64
    )
    write_bench_json(
        "batch_engine",
        speedup=speedups[("3-majority", 64)],
        baseline_seconds=headline[2] / 1000.0,
        optimised_seconds=headline[3] / 1000.0,
        config={"R": 64, "n": N, "k": K},
        extra={
            "speedups": {
                f"{name}/R={replicas}": round(value, 2)
                for (name, replicas), value in speedups.items()
            }
        },
    )
    # Headline acceptance: >= 3x at R = 64 for the closed-form dynamics.
    assert speedups[("3-majority", 64)] >= 3.0, speedups
    # The advantage must grow with R, not flatten into constant overhead.
    assert (
        speedups[("3-majority", 256)] > speedups[("3-majority", 16)]
    ), speedups
    # Both dynamics should see a real win at the largest batch.
    assert speedups[("2-choices", 256)] >= 2.0, speedups
    # Sanity: the two samplers measure the same chain (medians close).
    for row in study["rows"]:
        assert abs(row[5] - row[6]) <= 0.35 * max(row[5], row[6]), row
