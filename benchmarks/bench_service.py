"""Benchmark ``service`` — submit-to-result throughput under load.

32 concurrent clients hammer one threaded service (4-worker fleet,
persistent SQLite store, shared result cache): each submits a small
batch-measured sweep job over HTTP and polls it to completion.  Two
rounds run back to back:

* **cold** — empty cache, every grid point actually measured;
* **warm** — identical resubmissions, served entirely from the shared
  cache (the multi-tenant story: repeat and overlapping workloads cost
  queue time, not compute).

The headline is cold-round throughput (jobs/s submit-to-result); the
JSON artefact additionally records the warm round and per-job latency
quantiles.  The assertions are correctness-first (every job done, warm
values identical to cold) with a deliberately loose throughput floor —
this is a service-stack benchmark on shared CI hardware, not a kernel
microbenchmark.

Run with:  pytest benchmarks/bench_service.py --benchmark-only
"""

from __future__ import annotations

import statistics
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

from conftest import write_bench_json

from repro.service import QuotaPolicy, ServiceClient, SimulationService

NUM_CLIENTS = 32
NUM_WORKERS = 4
NUM_RUNS = 8
THROUGHPUT_FLOOR = 2.0  # jobs/s, deliberately conservative


def _client_spec(index: int) -> dict:
    # Every client gets its own two grid points, so the cold round
    # measures 64 distinct points through the batch engine.
    return {
        "grid": {"n": [512 + 64 * index, 2048 + 64 * index], "k": [8]},
        "fixed": {"dynamics": "3-majority"},
        "num_runs": NUM_RUNS,
        "seed": 17,
    }


def _round(url: str) -> dict:
    """One full wave: 32 clients submit and poll to completion."""

    def one_client(index: int) -> tuple[float, list]:
        client = ServiceClient(url, client_id=f"bench-{index}")
        started = time.perf_counter()
        result = client.wait(
            client.submit(_client_spec(index)),
            timeout=300.0,
            poll_interval=0.02,
        )
        return time.perf_counter() - started, result["points"]

    started = time.perf_counter()
    with ThreadPoolExecutor(max_workers=NUM_CLIENTS) as pool:
        outcomes = list(pool.map(one_client, range(NUM_CLIENTS)))
    wall = time.perf_counter() - started
    latencies = sorted(latency for latency, _ in outcomes)
    return {
        "wall_s": wall,
        "jobs_per_s": NUM_CLIENTS / wall,
        "latency_p50_s": statistics.median(latencies),
        "latency_max_s": latencies[-1],
        "points": [points for _, points in outcomes],
    }


def _study() -> dict:
    workdir = Path(tempfile.mkdtemp(prefix="bench-service-"))
    with SimulationService(
        workdir / "jobs.db",
        cache_dir=workdir / "cache",
        num_workers=NUM_WORKERS,
        quota=QuotaPolicy(
            max_jobs=NUM_CLIENTS, max_points=4096, max_points_per_job=64
        ),
    ) as service:
        cold = _round(service.url)
        warm = _round(service.url)
    return {"cold": cold, "warm": warm}


def test_service_throughput_32_clients(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    cold, warm = study["cold"], study["warm"]
    print()
    print(
        f"{NUM_CLIENTS} clients x 2 points x {NUM_RUNS} runs, "
        f"{NUM_WORKERS} workers: "
        f"cold {cold['jobs_per_s']:.1f} jobs/s "
        f"(p50 {cold['latency_p50_s'] * 1000:.0f} ms), "
        f"warm {warm['jobs_per_s']:.1f} jobs/s "
        f"(p50 {warm['latency_p50_s'] * 1000:.0f} ms)"
    )
    # Correctness under concurrency: every job served its full grid,
    # and warm resubmissions reproduced the cold values exactly (the
    # cache, not a re-measurement, answered).
    assert len(cold["points"]) == NUM_CLIENTS
    for cold_points, warm_points in zip(
        cold["points"], warm["points"]
    ):
        assert len(cold_points) == 2
        assert [p["values"] for p in warm_points] == [
            p["values"] for p in cold_points
        ]
    assert cold["jobs_per_s"] >= THROUGHPUT_FLOOR, (
        f"submit-to-result throughput "
        f"{cold['jobs_per_s']:.2f} jobs/s under the "
        f"{THROUGHPUT_FLOOR} floor"
    )
    write_bench_json(
        "service",
        speedup=warm["jobs_per_s"] / cold["jobs_per_s"],
        baseline_seconds=cold["wall_s"],
        optimised_seconds=warm["wall_s"],
        config={
            "clients": NUM_CLIENTS,
            "workers": NUM_WORKERS,
            "points_per_job": 2,
            "num_runs": NUM_RUNS,
        },
        extra={
            "cold_jobs_per_s": round(cold["jobs_per_s"], 2),
            "warm_jobs_per_s": round(warm["jobs_per_s"], 2),
            "cold_latency_p50_s": round(cold["latency_p50_s"], 4),
            "warm_latency_p50_s": round(warm["latency_p50_s"], 4),
            "cold_latency_max_s": round(cold["latency_max_s"], 4),
            "warm_latency_max_s": round(warm["latency_max_s"], 4),
        },
    )
