"""Benchmark ``rem25`` — Remark 2.5.

Surviving-opinion decay (n log n / T for 3-Majority) and its failure for
2-Choices.

See ``repro/experiments/rem25.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_rem25(regenerate):
    result = regenerate("rem25")
    assert result.rows
