"""Benchmark ``thm22`` — Theorem 2.2.

Hitting time of the gamma_t growth threshold from the balanced k = n
start, against the sqrt(n) log^2 n / n log^3 n horizons.

See ``repro/experiments/thm22.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_thm22(regenerate):
    result = regenerate("thm22")
    assert result.rows
