"""Benchmark ``protocols`` — the population-protocol related work.

The paper's open question on undecided dynamics (Section 2.5) lives in
the population-protocol model ([AAE07; AABBHKL23]); this benchmark
regenerates the model's signature facts on our substrate:

* [AAE07] approximate majority decides for the initial majority in
  O(log n) *parallel time* (interactions / n) — measured across n;
* the k-opinion undecided-pairwise protocol reaches consensus and its
  parallel time grows with k;
* the pairwise voter baseline is polynomially slower, motivating the
  richer rules.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.protocols import (
    ApproximateMajority,
    PairwiseEngine,
    UndecidedPairwise,
    VoterPairwise,
)
from repro.seeding import spawn_generators


def _parallel_times(make_engine, runs, seed, budget_factor=500):
    times = []
    for rng in spawn_generators(seed, runs):
        engine = make_engine(rng)
        budget = budget_factor * engine.num_agents
        result = engine.run_until_consensus(budget)
        if result is not None:
            times.append(result / engine.num_agents)
    return times


def _study() -> dict:
    rows = []
    am_by_n = {}
    for n in (256, 512, 1024):
        times = _parallel_times(
            lambda rng: PairwiseEngine(
                ApproximateMajority(),
                ApproximateMajority.initial_counts(2 * n // 3, n // 3),
                seed=rng,
            ),
            runs=5,
            seed=(0, n),
        )
        am_by_n[n] = float(np.median(times))
        rows.append(
            ["approximate-majority", f"n={n}", am_by_n[n], len(times)]
        )
    undecided_by_k = {}
    n = 512
    for k in (2, 4, 8):
        counts = np.zeros(k + 1, dtype=np.int64)
        counts[:k] = n // k
        counts[0] += n - counts.sum()
        times = _parallel_times(
            lambda rng: PairwiseEngine(
                UndecidedPairwise(k), counts, seed=rng
            ),
            runs=5,
            seed=(1, k),
            budget_factor=2000,
        )
        undecided_by_k[k] = (
            float(np.median(times)) if times else float("nan")
        )
        rows.append(
            ["undecided-pairwise", f"k={k}", undecided_by_k[k], len(times)]
        )
    voter_times = _parallel_times(
        lambda rng: PairwiseEngine(
            VoterPairwise(2),
            np.asarray([n // 2, n // 2]),
            seed=rng,
        ),
        runs=3,
        seed=(2,),
        budget_factor=5000,
    )
    voter_median = float(np.median(voter_times))
    rows.append(["voter-pairwise", f"n={n}", voter_median, len(voter_times)])
    return {
        "rows": rows,
        "am_by_n": am_by_n,
        "undecided_by_k": undecided_by_k,
        "voter": voter_median,
    }


def test_regenerate_protocols(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["protocol", "point", "median parallel time", "runs"],
            study["rows"],
            title="Population-protocol related work ([AAE07; AABBHKL23])",
        )
    )
    am = study["am_by_n"]
    # O(log n) parallel time: quadrupling n adds a constant, never 4x.
    assert am[1024] <= 3.0 * am[256] + 2.0
    # Voter is polynomially slower than approximate majority.
    assert study["voter"] >= 5.0 * am[512]
    # Undecided parallel time grows with k.
    ks = sorted(study["undecided_by_k"])
    assert study["undecided_by_k"][ks[-1]] >= study["undecided_by_k"][ks[0]]
