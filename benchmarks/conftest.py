"""Shared machinery for the benchmark harness.

Each ``bench_*.py`` file regenerates one paper artefact (see DESIGN.md's
experiment index): it runs the experiment's ``quick`` preset under
pytest-benchmark (timing one full regeneration), prints the same
rows/series the paper reports, saves them as CSV under
``benchmarks/out/``, and asserts the experiment's shape verdicts — the
"who wins / by what factor / where's the crossover" checks — so that a
benchmark run doubles as a reproduction audit.

Every benchmark also emits a machine-readable
``benchmarks/out/BENCH_<name>.json`` via :func:`write_bench_json` —
speedup, baseline/optimised seconds, the size config and the git SHA —
so the perf trajectory across PRs lives in uploadable CI artefacts
instead of only in the job logs.  The experiment-regeneration benches
get theirs from the :func:`regenerate` fixture (elapsed seconds +
verdicts); the speedup benches call the helper with their measured
baseline/optimised split.

Run with:  ``pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.comparison import render_comparisons_markdown
from repro.backends import default_backend
from repro.experiments.registry import run_experiment
from repro.provenance import git_revision, record_artifact

OUT_DIR = Path(__file__).parent / "out"


def _git_sha() -> str | None:
    """Current commit SHA, or None outside a git checkout."""
    return git_revision(Path(__file__).parent)


def write_bench_json(
    name: str,
    *,
    speedup: float | None = None,
    baseline_seconds: float | None = None,
    optimised_seconds: float | None = None,
    config: dict | None = None,
    extra: dict | None = None,
) -> Path:
    """Write ``benchmarks/out/BENCH_<name>.json`` and return its path.

    One JSON document per benchmark: the headline ``speedup`` with
    its ``baseline_seconds``/``optimised_seconds`` split (None-valued
    fields are simply absent), the size ``config`` (R/n/k and friends),
    any benchmark-specific payload nested under ``extra`` (nested, not
    merged, so an extra key can never clobber a headline field), and
    the ``git_sha`` the numbers were measured at — everything a
    cross-PR perf tracker needs to plot a trajectory without parsing
    CI logs.  Every document also records the ``backend`` the run
    defaulted to (see :mod:`repro.backends`), so numpy-job and
    numba-job artefacts from the same commit stay distinguishable.
    """
    payload: dict = {
        "name": name,
        "git_sha": _git_sha(),
        "backend": default_backend().name,
    }
    if speedup is not None:
        payload["speedup"] = round(float(speedup), 3)
    if baseline_seconds is not None:
        payload["baseline_seconds"] = round(float(baseline_seconds), 6)
    if optimised_seconds is not None:
        payload["optimised_seconds"] = round(
            float(optimised_seconds), 6
        )
    if config:
        payload["config"] = dict(config)
    if extra:
        payload["extra"] = dict(extra)
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    path = OUT_DIR / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    # Single choke point for benchmark provenance: every BENCH_*.json
    # is attested in benchmarks/out's hash chain (re-measuring a bench
    # appends a fresh manifest), so `repro verify benchmarks/out`
    # certifies the uploaded artefacts byte-for-byte.
    record_artifact(
        path,
        kind="bench",
        context={
            "name": name,
            "git_sha": payload["git_sha"],
            "backend": payload["backend"],
        },
    )
    return path


@pytest.fixture
def regenerate(benchmark):
    """Run one experiment under the benchmark timer and audit its shape.

    Returns the :class:`~repro.experiments.base.ExperimentResult`.  The
    shape audit fails the benchmark only on hard ``mismatch`` verdicts;
    ``partial`` verdicts (expected at quick-preset sizes where polylog
    factors are fat) are reported but tolerated.  Every regeneration
    also lands a ``BENCH_<experiment_id>.json`` (elapsed seconds,
    preset, verdict summary) next to the CSV.
    """

    def _run(experiment_id: str, preset: str = "quick", seed: int = 0):
        started = time.perf_counter()
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"preset": preset, "seed": seed},
            rounds=1,
            iterations=1,
        )
        elapsed = time.perf_counter() - started
        print()
        print(result.table())
        if result.comparisons:
            print(render_comparisons_markdown(result.comparisons))
        result.save_csv(OUT_DIR)
        write_bench_json(
            experiment_id,
            optimised_seconds=elapsed,
            config={"preset": preset, "seed": seed},
            extra={
                "verdicts": [
                    c.verdict for c in result.comparisons
                ],
            },
        )
        mismatches = [
            c for c in result.comparisons if c.verdict == "mismatch"
        ]
        assert not mismatches, (
            "shape checks failed:\n"
            + "\n".join(f"- {c.claim}: {c.measured}" for c in mismatches)
        )
        return result

    return _run
