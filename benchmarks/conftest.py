"""Shared machinery for the benchmark harness.

Each ``bench_*.py`` file regenerates one paper artefact (see DESIGN.md's
experiment index): it runs the experiment's ``quick`` preset under
pytest-benchmark (timing one full regeneration), prints the same
rows/series the paper reports, saves them as CSV under
``benchmarks/out/``, and asserts the experiment's shape verdicts — the
"who wins / by what factor / where's the crossover" checks — so that a
benchmark run doubles as a reproduction audit.

Run with:  ``pytest benchmarks/ --benchmark-only``
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.comparison import render_comparisons_markdown
from repro.experiments.registry import run_experiment

OUT_DIR = Path(__file__).parent / "out"


@pytest.fixture
def regenerate(benchmark):
    """Run one experiment under the benchmark timer and audit its shape.

    Returns the :class:`~repro.experiments.base.ExperimentResult`.  The
    shape audit fails the benchmark only on hard ``mismatch`` verdicts;
    ``partial`` verdicts (expected at quick-preset sizes where polylog
    factors are fat) are reported but tolerated.
    """

    def _run(experiment_id: str, preset: str = "quick", seed: int = 0):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"preset": preset, "seed": seed},
            rounds=1,
            iterations=1,
        )
        print()
        print(result.table())
        if result.comparisons:
            print(render_comparisons_markdown(result.comparisons))
        result.save_csv(OUT_DIR)
        mismatches = [
            c for c in result.comparisons if c.verdict == "mismatch"
        ]
        assert not mismatches, (
            "shape checks failed:\n"
            + "\n".join(f"- {c.claim}: {c.measured}" for c in mismatches)
        )
        return result

    return _run
