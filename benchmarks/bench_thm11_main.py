"""Benchmark ``thm11`` — Theorem 1.1.

k-sweep of consensus times at fixed n with saturating-power-law fits:
the headline ~Theta(min{k, sqrt n}) vs ~Theta(k) shapes.

See ``repro/experiments/thm11.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_thm11(regenerate):
    result = regenerate("thm11")
    assert result.rows
