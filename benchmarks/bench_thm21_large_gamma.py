"""Benchmark ``thm21`` — Theorem 2.1.

Consensus time vs 1/gamma_0 for configurations above the gamma_0
threshold; the hidden constant T gamma_0 / log n stays O(1).

See ``repro/experiments/thm21.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_thm21(regenerate):
    result = regenerate("thm21")
    assert result.rows
