"""Ablation: exact population engine vs agent-level engine.

DESIGN.md's central performance claim is that the count-vector engine
makes complete-graph experiments n-independent (3-Majority) or O(n)
with tiny constants (2-Choices), while the agent engine pays O(n) with
per-vertex sampling overhead.  This ablation times one synchronous
round of each on the same configuration and asserts the population
engine's advantage — the factor that makes the `paper`-preset sweeps
feasible.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.configs import balanced
from repro.core import ThreeMajority, TwoChoices
from repro.engine import AgentEngine, PopulationEngine
from repro.graphs import CompleteGraph
from repro.state import counts_to_agents

N = 200_000
K = 200


def _population_round(dynamics):
    engine = PopulationEngine(dynamics, balanced(N, K), seed=0)

    def step():
        engine.step()

    return step


def _agent_round(dynamics):
    engine = AgentEngine(
        dynamics,
        CompleteGraph(N),
        counts_to_agents(balanced(N, K)),
        num_opinions=K,
        seed=0,
    )

    def step():
        engine.step()

    return step


@pytest.mark.parametrize(
    "dynamics", [ThreeMajority(), TwoChoices()], ids=lambda d: d.name
)
def test_population_round(benchmark, dynamics):
    benchmark(_population_round(dynamics))


@pytest.mark.parametrize(
    "dynamics", [ThreeMajority(), TwoChoices()], ids=lambda d: d.name
)
def test_agent_round(benchmark, dynamics):
    benchmark(_agent_round(dynamics))


def test_population_speedup_three_majority():
    """The closed-form multinomial round beats agent sampling >= 10x."""

    def best_of(step, reps=5):
        times = []
        for _ in range(reps):
            start = time.perf_counter()
            step()
            times.append(time.perf_counter() - start)
        return min(times)

    pop = best_of(_population_round(ThreeMajority()))
    agent = best_of(_agent_round(ThreeMajority()))
    assert agent / max(pop, 1e-9) > 10.0, (
        f"population {pop * 1e3:.2f}ms vs agent {agent * 1e3:.2f}ms"
    )
    print(
        f"\n3-Majority one round at n={N:,}, k={K}: population "
        f"{pop * 1e3:.2f} ms vs agent {agent * 1e3:.2f} ms "
        f"({agent / pop:.0f}x)"
    )


def test_population_round_cost_independent_of_n():
    """3-Majority population rounds cost O(#alive), not O(n)."""

    def round_time(n):
        engine = PopulationEngine(ThreeMajority(), balanced(n, K), seed=0)
        start = time.perf_counter()
        for _ in range(50):
            engine.step()
        return (time.perf_counter() - start) / 50

    small = round_time(10_000)
    huge = round_time(1_000_000)
    assert huge < 20 * small + 1e-3, (
        f"{small * 1e6:.0f}us vs {huge * 1e6:.0f}us"
    )
    print(
        f"\nround cost: n=1e4 -> {small * 1e6:.0f} us; "
        f"n=1e6 -> {huge * 1e6:.0f} us (both O(k))"
    )
