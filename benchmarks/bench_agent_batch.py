"""Benchmark ``agent-batch`` — batched graph replication speedups.

The batched graph engine exists for one reason: R independent replicas
of a sparse-substrate workload should cost one vectorised hot loop, not
R sequential per-vertex loops.  This benchmark pins that claim at the
headline configuration — R = 64 replicas, n = 10^4 vertices, a fixed
random-regular graph — for the three dynamics with vectorised
``agent_step_batch`` overrides, and guards the overrides themselves:

* ``test_agent_batch_speedup`` — wall-clock of
  :class:`~repro.engine.agent_batch.BatchAgentEngine` against
  sequential :class:`~repro.engine.agent.AgentEngine` replication
  (the ``replicate`` workload the ``agent`` registry adapter runs).
  Voter and 2-Choices are measured over a fixed pre-consensus round
  budget (Voter needs ~Theta(n) rounds to coalesce at this size, far
  past any sane benchmark budget; fixed-budget stepping mirrors
  ``bench_batch_dynamics``'s pre-consensus rationale and keeps both
  sides doing identical work).  3-Majority converges quickly, so it is
  measured to consensus.  Asserts the headline >=5x for Voter — the
  per-round fixed costs of the sequential engine amortise over the
  fewest sampled elements there, making it the sharpest probe of the
  batched pipeline — and a >=2.5x regression floor for the two
  multi-sample dynamics (all three measure ~4.5-7x on the reference
  box; the floors leave headroom for noisy CI hosts).
The override-presence and no-row-loop guards that used to live here
are now enforced statically by ``repro lint``'s **no-row-loop** rule
(``src/repro/lint/rules/vectorization.py``), which checks every
concrete dynamics at once instead of a hand-kept list.

Run with:  pytest benchmarks/bench_agent_batch.py --benchmark-only
"""

from __future__ import annotations

import time

import numpy as np

from conftest import write_bench_json
from repro.analysis.tables import format_table
from repro.configs import balanced
from repro.core import ThreeMajority, TwoChoices, Voter
from repro.engine import (
    AgentEngine,
    BatchAgentEngine,
    replicate,
    run_until_consensus,
)
from repro.graphs import random_regular
from repro.state import counts_to_agents

N = 10_000
K = 8
REPLICAS = 64
DEGREE = 15  # +1 self-loop per vertex -> 16-regular sampling
TO_CONSENSUS = 1_000_000

#: (label, dynamics factory, round budget, asserted speedup floor).
#: ``None`` budget means run to consensus.
CASES = (
    ("voter", Voter, 200, 5.0),
    ("2-choices", TwoChoices, 100, 2.5),
    ("3-majority", ThreeMajority, None, 2.5),
)


def _graph():
    return random_regular(N, DEGREE, seed=1)


def _sequential_seconds(dynamics, graph, counts, budget) -> float:
    max_rounds = TO_CONSENSUS if budget is None else budget

    def one(rng):
        opinions = counts_to_agents(counts, rng=rng, shuffle=True)
        engine = AgentEngine(
            dynamics, graph, opinions, num_opinions=K, seed=rng
        )
        return run_until_consensus(engine, max_rounds=max_rounds)

    started = time.perf_counter()
    replicate(one, REPLICAS, seed=0)
    return time.perf_counter() - started


def _batch_seconds(dynamics, graph, counts, budget) -> float:
    max_rounds = TO_CONSENSUS if budget is None else budget
    rng = np.random.default_rng(0)
    opinions = rng.permuted(
        np.tile(counts_to_agents(counts), (REPLICAS, 1)), axis=1
    )
    started = time.perf_counter()
    engine = BatchAgentEngine(
        dynamics, graph, opinions, num_opinions=K, seed=rng
    )
    engine.run_until_consensus(max_rounds)
    return time.perf_counter() - started


def _study() -> dict:
    graph = _graph()
    counts = balanced(N, K)
    rows = []
    speedups: dict[str, float] = {}
    for label, factory, budget, _floor in CASES:
        seq_s = _sequential_seconds(factory(), graph, counts, budget)
        batch_s = _batch_seconds(factory(), graph, counts, budget)
        speedup = seq_s / batch_s
        speedups[label] = speedup
        rows.append(
            [
                label,
                "to consensus" if budget is None else f"{budget} rounds",
                round(seq_s * 1000, 1),
                round(batch_s * 1000, 1),
                round(speedup, 1),
            ]
        )
    return {"rows": rows, "speedups": speedups}


def test_agent_batch_speedup(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    print()
    print(
        format_table(
            ["dynamics", "workload", "sequential ms", "batch ms", "speedup"],
            study["rows"],
            title=(
                f"BatchAgentEngine vs sequential AgentEngine replication "
                f"(R={REPLICAS}, n={N:,}, k={K}, "
                f"random-regular d={DEGREE}+loops)"
            ),
        )
    )
    write_bench_json(
        "agent_batch",
        config={"R": REPLICAS, "n": N, "k": K, "degree": DEGREE},
        extra={
            "speedups": {
                label: round(value, 2)
                for label, value in study["speedups"].items()
            }
        },
    )
    for label, _factory, _budget, floor in CASES:
        assert study["speedups"][label] >= floor, (
            f"{label}: {study['speedups'][label]:.1f}x < {floor}x"
        )
