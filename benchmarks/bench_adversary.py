"""Benchmark ``adv`` — Adversarial 3-Majority.

Tolerance threshold of the F-bounded adversary around the [GL18] scale F
= sqrt(n)/k^1.5.

See ``repro/experiments/adversary.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_adv(regenerate):
    result = regenerate("adv")
    assert result.rows
