"""Benchmark ``adv`` — Adversarial 3-Majority, batched vs sequential.

Two benchmarks in one module:

* ``test_adversarial_batch_speedup`` — the engine-layer claim: R
  adversarial replicas advanced as one ``(R, k)`` count matrix (batch
  engine + vectorised ``corrupt_batch``) must beat R sequential
  ``AdversarialPopulationEngine`` chains by at least 3x wall-clock at
  R = 64, tracked across R ∈ {16, 64, 256}.
* ``test_regenerate_adv`` — the tolerance-threshold experiment around
  the [GL18] scale F = sqrt(n)/k^1.5 (now itself running batched; see
  ``repro/experiments/adversary.py`` and DESIGN.md for the
  artefact-to-module mapping).

Run with:  pytest benchmarks/bench_adversary.py --benchmark-only
"""

from __future__ import annotations

import math
import time

import numpy as np

from conftest import write_bench_json
from repro.adversary import (
    AdversarialPopulationEngine,
    SupportRunnerUp,
    near_consensus_target,
    near_consensus_threshold,
)
from repro.analysis.tables import format_table
from repro.configs import balanced
from repro.core import ThreeMajority
from repro.engine import (
    BatchPopulationEngine,
    replicate,
    run_until_consensus,
)

N = 65_536
K = 16
#: [GL18] tolerance scale — the adversary slows but cannot stall.
BUDGET = int(round(math.sqrt(N) / K**1.5))
#: An F >= 1 adversary can pin a stray vertex alive forever, so runs
#: stop at the near-consensus threshold (the adv convention).
THRESHOLD = near_consensus_threshold(N, BUDGET)
REPLICA_COUNTS = (16, 64, 256)
MAX_ROUNDS = 1_000_000

_target = near_consensus_target(N, BUDGET)


def _sequential_seconds(replicas: int) -> tuple[float, float]:
    counts = balanced(N, K)

    def one(rng):
        engine = AdversarialPopulationEngine(
            ThreeMajority(), counts, SupportRunnerUp(BUDGET), seed=rng
        )
        return run_until_consensus(
            engine, max_rounds=MAX_ROUNDS, target=_target
        )

    started = time.perf_counter()
    results = replicate(one, replicas, seed=0)
    elapsed = time.perf_counter() - started
    return elapsed, float(np.median([r.rounds for r in results]))


def _batch_seconds(replicas: int) -> tuple[float, float]:
    counts = balanced(N, K)
    started = time.perf_counter()
    engine = BatchPopulationEngine(
        ThreeMajority(),
        counts,
        num_replicas=replicas,
        seed=0,
        adversary=SupportRunnerUp(BUDGET),
        target=_target,
    )
    results = engine.run_until_consensus(MAX_ROUNDS)
    elapsed = time.perf_counter() - started
    return elapsed, float(np.median([r.rounds for r in results]))


def _study() -> dict:
    rows = []
    speedups: dict[int, float] = {}
    for replicas in REPLICA_COUNTS:
        seq_s, seq_median = _sequential_seconds(replicas)
        batch_s, batch_median = _batch_seconds(replicas)
        speedup = seq_s / batch_s
        speedups[replicas] = speedup
        rows.append(
            [
                replicas,
                round(seq_s * 1000, 1),
                round(batch_s * 1000, 1),
                round(speedup, 1),
                seq_median,
                batch_median,
            ]
        )
    return {"rows": rows, "speedups": speedups}


def test_adversarial_batch_speedup(benchmark):
    study = benchmark.pedantic(_study, rounds=1, iterations=1)
    print()
    print(
        format_table(
            [
                "R",
                "sequential ms",
                "batch ms",
                "speedup",
                "seq median T",
                "batch median T",
            ],
            study["rows"],
            title=(
                f"Batched vs sequential adversarial replication "
                f"(n={N:,}, k={K}, SupportRunnerUp F={BUDGET}, "
                f"stop at leader >= {THRESHOLD})"
            ),
        )
    )
    speedups = study["speedups"]
    headline = next(row for row in study["rows"] if row[0] == 64)
    write_bench_json(
        "adversarial_batch",
        speedup=speedups[64],
        baseline_seconds=headline[1] / 1000.0,
        optimised_seconds=headline[2] / 1000.0,
        config={"R": 64, "n": N, "k": K, "F": BUDGET},
        extra={"speedups": {str(r): round(s, 2) for r, s in speedups.items()}},
    )
    # Headline acceptance: >= 3x at R = 64 over sequential
    # AdversarialPopulationEngine replication.  The R = 16 / R = 256
    # rows are reported for trend-watching but not asserted on — this
    # job gates CI, and single-shot wall-clock ratios on shared runners
    # are too noisy to fail the build over.
    assert speedups[64] >= 3.0, speedups
    # Sanity: both samplers measure the same chain (medians close; the
    # band is wide because the smallest batch has only 16 samples).
    for row in study["rows"]:
        assert abs(row[4] - row[5]) <= 0.5 * max(row[4], row[5]), row


def test_regenerate_adv(regenerate):
    result = regenerate("adv")
    assert result.rows
