"""Benchmark ``lem41`` — Lemma 4.1.

Monte-Carlo one-step means and variances vs the closed forms of eqs.
(5)/(6) and the variance bounds.

See ``repro/experiments/lem41.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_lem41(regenerate):
    result = regenerate("lem41")
    assert result.rows
