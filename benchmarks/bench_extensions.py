"""Benchmark ``ext`` — Section 2.5 extensions.

h-Majority vs h, undecided dynamics vs k, expander vs complete graph,
and the voter/median baselines.

See ``repro/experiments/extensions.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_ext(regenerate):
    result = regenerate("ext")
    assert result.rows
