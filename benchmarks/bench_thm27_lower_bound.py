"""Benchmark ``thm27`` — Theorem 2.7.

Omega(k) lower bound: minimum observed consensus time from the balanced
configuration never undercuts a linear-in-k floor.

See ``repro/experiments/thm27.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_thm27(regenerate):
    result = regenerate("thm27")
    assert result.rows
