"""Benchmark ``fig1`` — Figure 1.

Consensus-time exponent curves vs kappa = log_n k for both dynamics:
3-Majority flattens at kappa = 1/2 (T = ~Theta(min{k, sqrt n})) while
2-Choices keeps rising (T = ~Theta(k)); prior-work curves printed
alongside for the panel (a) comparison.

See ``repro/experiments/fig1.py`` for the experiment definition and
DESIGN.md for the artefact-to-module mapping.
"""

from __future__ import annotations


def test_regenerate_fig1(regenerate):
    result = regenerate("fig1")
    assert result.rows
