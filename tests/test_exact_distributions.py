"""Exact-distribution tests on tiny systems.

For very small n the full next-configuration distribution of each chain
can be enumerated in closed form; these tests compare the engines'
sampled frequencies against those exact distributions with chi-square
-style tolerances.  This is the strongest correctness statement in the
suite: not just matching moments, but matching *laws*.
"""

from __future__ import annotations

import itertools
import math

import numpy as np
import pytest

from repro.core import ThreeMajority, TwoChoices, Voter
from repro.core.three_majority import three_majority_law
from repro.core.two_choices import two_choices_law
from repro.graphs import CompleteGraph
from repro.state import agents_to_counts, counts_to_agents


def _multinomial_pmf(counts, probabilities):
    n = int(sum(counts))
    log_p = math.lgamma(n + 1)
    for c, p in zip(counts, probabilities):
        if c and p == 0.0:
            return 0.0
        log_p -= math.lgamma(c + 1)
        if c:
            log_p += c * math.log(p)
    return math.exp(log_p)


def _next_count_distribution_3maj(counts):
    """Exact law of the next count vector for 3-Majority."""
    n = int(sum(counts))
    law = three_majority_law(np.asarray(counts) / n)
    dist = {}
    k = len(counts)
    for combo in itertools.product(range(n + 1), repeat=k):
        if sum(combo) != n:
            continue
        p = _multinomial_pmf(combo, law)
        if p > 0:
            dist[combo] = p
    return dist


def _next_count_distribution_2cho(counts):
    """Exact law for 2-Choices: convolution of per-group multinomials."""
    n = int(sum(counts))
    alpha = np.asarray(counts) / n
    k = len(counts)
    dist = {tuple([0] * k): 1.0}
    for group, size in enumerate(counts):
        if size == 0:
            continue
        law = two_choices_law(alpha, group)
        new_dist = {}
        for combo in itertools.product(range(size + 1), repeat=k):
            if sum(combo) != size:
                continue
            p_group = _multinomial_pmf(combo, law)
            if p_group == 0:
                continue
            for partial, p_prev in dist.items():
                key = tuple(a + b for a, b in zip(partial, combo))
                new_dist[key] = new_dist.get(key, 0.0) + p_prev * p_group
        dist = new_dist
    return dist


def _sampled_frequencies(step, reps):
    freq = {}
    for _ in range(reps):
        key = tuple(int(x) for x in step())
        freq[key] = freq.get(key, 0) + 1
    return {key: count / reps for key, count in freq.items()}


def _compare(exact, sampled, reps, label):
    for key, p in exact.items():
        q = sampled.get(key, 0.0)
        sigma = math.sqrt(max(p * (1 - p), 1e-12) / reps)
        assert abs(q - p) < 6 * sigma + 1e-4, (
            f"{label}: outcome {key} exact {p:.4f} vs sampled {q:.4f}"
        )
    # No phantom outcomes.
    for key in sampled:
        assert key in exact, f"{label}: impossible outcome {key} sampled"


REPS = 40_000


class TestExactLaws:
    def test_three_majority_population(self, rng):
        counts = [3, 2]
        exact = _next_count_distribution_3maj(counts)
        dynamics = ThreeMajority()
        base = np.asarray(counts, dtype=np.int64)
        sampled = _sampled_frequencies(
            lambda: dynamics.population_step(base, rng), REPS
        )
        _compare(exact, sampled, REPS, "3maj population")

    def test_three_majority_agent_matches_population_law(self, rng):
        counts = [3, 2]
        exact = _next_count_distribution_3maj(counts)
        dynamics = ThreeMajority()
        graph = CompleteGraph(5)
        opinions = counts_to_agents(np.asarray(counts))
        sampled = _sampled_frequencies(
            lambda: agents_to_counts(
                dynamics.agent_step(opinions, graph, rng), 2
            ),
            REPS,
        )
        _compare(exact, sampled, REPS, "3maj agent")

    def test_two_choices_population(self, rng):
        counts = [3, 2]
        exact = _next_count_distribution_2cho(counts)
        dynamics = TwoChoices()
        base = np.asarray(counts, dtype=np.int64)
        sampled = _sampled_frequencies(
            lambda: dynamics.population_step(base, rng), REPS
        )
        _compare(exact, sampled, REPS, "2cho population")

    def test_two_choices_pair_strategy(self, rng):
        counts = np.asarray([3, 2], dtype=np.int64)
        exact = _next_count_distribution_2cho([3, 2])
        dynamics = TwoChoices()
        alive = np.flatnonzero(counts)
        sampled = _sampled_frequencies(
            lambda: dynamics._population_step_pairs(counts, alive, 5, rng),
            REPS,
        )
        _compare(exact, sampled, REPS, "2cho pairs")

    def test_two_choices_agent(self, rng):
        counts = [3, 2]
        exact = _next_count_distribution_2cho(counts)
        dynamics = TwoChoices()
        graph = CompleteGraph(5)
        opinions = counts_to_agents(np.asarray(counts))
        sampled = _sampled_frequencies(
            lambda: agents_to_counts(
                dynamics.agent_step(opinions, graph, rng), 2
            ),
            REPS,
        )
        _compare(exact, sampled, REPS, "2cho agent")

    def test_three_opinions_three_majority(self, rng):
        counts = [2, 1, 1]
        exact = _next_count_distribution_3maj(counts)
        dynamics = ThreeMajority()
        base = np.asarray(counts, dtype=np.int64)
        sampled = _sampled_frequencies(
            lambda: dynamics.population_step(base, rng), REPS
        )
        _compare(exact, sampled, REPS, "3maj k=3")

    def test_voter_exact(self, rng):
        counts = np.asarray([2, 2], dtype=np.int64)
        alpha = counts / 4
        exact = {}
        for combo in itertools.product(range(5), repeat=2):
            if sum(combo) == 4:
                p = _multinomial_pmf(combo, alpha)
                if p > 0:
                    exact[combo] = p
        dynamics = Voter()
        sampled = _sampled_frequencies(
            lambda: dynamics.population_step(counts, rng), REPS
        )
        _compare(exact, sampled, REPS, "voter")
