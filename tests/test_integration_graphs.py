"""Integration: every dynamics on every graph family (Section 2.5).

The paper's analysis is specific to the complete graph with self-loops;
its open questions ask about other families.  These tests pin down the
*implemented* behaviour off the complete graph: the dynamics run, keep
their invariants, and converge on well-connected families within
generous budgets.  They also smoke the metastability phenomenon of the
k = 2 literature (two-community SBM slows 2-Choices down, [CNS19]).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    HMajority,
    MedianRule,
    ThreeMajority,
    TwoChoices,
    Voter,
)
from repro.engine import AgentEngine, run_until_consensus
from repro.graphs import (
    CompleteGraph,
    core_periphery,
    cycle_graph,
    erdos_renyi,
    random_regular,
    stochastic_block_model,
    torus_grid,
)
from repro.state import counts_to_agents

N = 400
DYNAMICS = [
    ThreeMajority(),
    TwoChoices(),
    Voter(),
    MedianRule(),
    HMajority(5),
]


def _graphs(rng):
    return [
        CompleteGraph(N),
        random_regular(N, 10, seed=rng, self_loops=True),
        erdos_renyi(N, 0.05, seed=rng, self_loops=True),
        torus_grid(20, self_loops=True),
        core_periphery(40, N - 40, attachment=2, seed=rng),
    ]


@pytest.mark.parametrize("dynamics", DYNAMICS, ids=lambda d: d.name)
def test_converges_on_well_connected_graphs(dynamics, rng):
    budget = 60_000 if dynamics.name in ("voter", "2-choices") else 20_000
    for graph in _graphs(rng):
        opinions = counts_to_agents(
            np.asarray([N // 2, N - N // 2]), rng=rng, shuffle=True
        )
        engine = AgentEngine(
            dynamics, graph, opinions, num_opinions=2, seed=rng
        )
        result = run_until_consensus(engine, max_rounds=budget)
        assert result.converged, f"{dynamics.name} stuck on {graph!r}"
        assert result.final_counts.sum() == N


@pytest.mark.parametrize("dynamics", DYNAMICS, ids=lambda d: d.name)
def test_mass_conserved_on_cycle(dynamics, rng):
    graph = cycle_graph(60, self_loops=True)
    opinions = counts_to_agents(
        np.asarray([20, 20, 20]), rng=rng, shuffle=True
    )
    engine = AgentEngine(
        dynamics, graph, opinions, num_opinions=3, seed=rng
    )
    for _ in range(50):
        engine.step()
        assert engine.counts.sum() == 60
        assert np.all(engine.counts >= 0)


def test_sbm_metastability_slows_two_choices(rng_factory):
    """[CNS19] shape: strong communities each reach internal agreement
    and then disagree across the cut far longer than a complete graph
    takes to finish outright."""
    half = 150
    complete_times = []
    sbm_times = []
    budget = 4000
    for seed in range(3):
        rng = rng_factory(seed)
        opinions = np.concatenate(
            [np.zeros(half, np.int64), np.ones(half, np.int64)]
        )
        sbm = stochastic_block_model(
            [half, half], p_in=0.2, p_out=0.002, seed=rng
        )
        engine = AgentEngine(
            TwoChoices(), sbm, opinions, num_opinions=2, seed=rng
        )
        result = run_until_consensus(engine, max_rounds=budget)
        sbm_times.append(result.rounds if result.converged else budget)
        complete = AgentEngine(
            TwoChoices(),
            CompleteGraph(2 * half),
            opinions.copy(),
            num_opinions=2,
            seed=rng_factory(100 + seed),
        )
        result = run_until_consensus(complete, max_rounds=budget)
        complete_times.append(
            result.rounds if result.converged else budget
        )
    assert np.median(sbm_times) > 3 * np.median(complete_times)


def test_three_majority_expander_matches_complete_scaling(rng_factory):
    """Open question smoke: expander consensus times sit within a small
    factor of the complete graph at the same (n, k)."""
    k = 8
    times = {"expander": [], "complete": []}
    for seed in range(3):
        rng = rng_factory(seed)
        opinions = counts_to_agents(
            np.full(k, N // k, dtype=np.int64), rng=rng, shuffle=True
        )
        expander = random_regular(N, 12, seed=rng, self_loops=True)
        engine = AgentEngine(
            ThreeMajority(), expander, opinions, num_opinions=k, seed=rng
        )
        result = run_until_consensus(engine, max_rounds=20_000)
        assert result.converged
        times["expander"].append(result.rounds)
        engine = AgentEngine(
            ThreeMajority(),
            CompleteGraph(N),
            opinions.copy(),
            num_opinions=k,
            seed=rng_factory(50 + seed),
        )
        result = run_until_consensus(engine, max_rounds=20_000)
        assert result.converged
        times["complete"].append(result.rounds)
    ratio = np.median(times["expander"]) / np.median(times["complete"])
    assert ratio < 5.0


class TestDegenerateSystems:
    def test_single_opinion_immediate_consensus(self):
        from repro.engine import PopulationEngine

        engine = PopulationEngine(ThreeMajority(), [7], seed=0)
        assert engine.is_consensus()
        result = run_until_consensus(engine, max_rounds=10)
        assert result.rounds == 0

    def test_two_vertices(self):
        from repro.engine import PopulationEngine

        engine = PopulationEngine(ThreeMajority(), [1, 1], seed=0)
        result = run_until_consensus(engine, max_rounds=10_000)
        assert result.converged

    def test_validated_population_step_catches_bad_dynamics(self, rng):
        from repro.core.base import Dynamics
        from repro.errors import StateError

        class Leaky(Dynamics):
            name = "leaky"

            def population_step(self, counts, rng):
                bad = counts.copy()
                bad[0] += 1  # creates mass from nothing
                return bad

            def agent_step(self, opinions, graph, rng):
                return opinions

        with pytest.raises(StateError):
            Leaky().validated_population_step(
                np.asarray([5, 5], dtype=np.int64), rng
            )
