"""Tests for the engines: population, agent, asynchronous."""

from __future__ import annotations

import numpy as np
import pytest

from repro.configs import balanced, two_block
from repro.core import ThreeMajority, TwoChoices, Voter
from repro.engine import (
    AgentEngine,
    AsyncPopulationEngine,
    PopulationEngine,
)
from repro.errors import ConfigurationError, StateError
from repro.graphs import CompleteGraph, cycle_graph
from repro.state import counts_to_agents


class TestPopulationEngine:
    def test_initial_state(self):
        engine = PopulationEngine(ThreeMajority(), [10, 20, 30], seed=0)
        assert engine.num_vertices == 60
        assert engine.num_opinions == 3
        assert engine.round_index == 0
        assert engine.alive == 3
        assert not engine.is_consensus()
        assert engine.winner() is None

    def test_input_not_aliased(self):
        counts = np.asarray([30, 30], dtype=np.int64)
        engine = PopulationEngine(ThreeMajority(), counts, seed=0)
        engine.step()
        assert counts.tolist() == [30, 30]

    def test_step_advances_round(self):
        engine = PopulationEngine(ThreeMajority(), [50, 50], seed=0)
        engine.step()
        assert engine.round_index == 1
        assert engine.counts.sum() == 100

    def test_run_fixed_rounds(self):
        engine = PopulationEngine(Voter(), [500, 500], seed=0)
        engine.run(10)
        assert engine.round_index == 10

    def test_alpha_and_gamma(self):
        engine = PopulationEngine(ThreeMajority(), [25, 75], seed=0)
        assert engine.alpha.tolist() == [0.25, 0.75]
        assert engine.gamma == pytest.approx(0.0625 + 0.5625)

    def test_consensus_and_winner(self):
        engine = PopulationEngine(ThreeMajority(), [0, 7], seed=0)
        assert engine.is_consensus()
        assert engine.winner() == 1

    def test_rejects_bad_counts(self):
        with pytest.raises(StateError):
            PopulationEngine(ThreeMajority(), [-1, 2], seed=0)

    def test_deterministic_given_seed(self):
        runs = []
        for _ in range(2):
            engine = PopulationEngine(
                ThreeMajority(), balanced(1000, 10), seed=77
            )
            engine.run(20)
            runs.append(engine.counts.copy())
        assert np.array_equal(runs[0], runs[1])

    def test_reaches_consensus_eventually(self):
        engine = PopulationEngine(
            ThreeMajority(), balanced(2000, 8), seed=5
        )
        for _ in range(5000):
            if engine.is_consensus():
                break
            engine.step()
        assert engine.is_consensus()


class TestAgentEngine:
    def test_requires_matching_sizes(self):
        with pytest.raises(ConfigurationError, match="vertices"):
            AgentEngine(
                ThreeMajority(),
                CompleteGraph(5),
                np.zeros(4, dtype=np.int64),
            )

    def test_counts_view(self):
        opinions = np.asarray([0, 1, 1, 2], dtype=np.int64)
        engine = AgentEngine(
            ThreeMajority(), CompleteGraph(4), opinions, num_opinions=4
        )
        assert engine.counts.tolist() == [1, 2, 1, 0]
        assert engine.num_opinions == 4

    def test_num_opinions_inferred(self):
        opinions = np.asarray([0, 3], dtype=np.int64)
        engine = AgentEngine(ThreeMajority(), CompleteGraph(2), opinions)
        assert engine.num_opinions == 4

    def test_step_and_round(self):
        engine = AgentEngine(
            ThreeMajority(),
            CompleteGraph(50),
            counts_to_agents(balanced(50, 5)),
            seed=0,
        )
        engine.step()
        assert engine.round_index == 1
        assert engine.counts.sum() == 50

    def test_consensus_on_cycle(self):
        """Dynamics work on sparse graphs too (slower, but correct)."""
        graph = cycle_graph(30, self_loops=True)
        engine = AgentEngine(
            TwoChoices(),
            graph,
            counts_to_agents(np.asarray([15, 15])),
            seed=3,
        )
        for _ in range(20_000):
            if engine.is_consensus():
                break
            engine.step()
        assert engine.is_consensus()

    def test_gamma_alpha_alive(self):
        engine = AgentEngine(
            ThreeMajority(),
            CompleteGraph(4),
            np.asarray([0, 0, 1, 1], dtype=np.int64),
            num_opinions=2,
        )
        assert engine.alive == 2
        assert engine.gamma == pytest.approx(0.5)
        assert engine.alpha.tolist() == [0.5, 0.5]


class TestAsyncPopulationEngine:
    def test_one_tick_moves_at_most_one(self):
        engine = AsyncPopulationEngine(
            ThreeMajority(), [50, 50], seed=0
        )
        before = engine.counts.copy()
        engine.step()
        moved = np.abs(engine.counts - before).sum()
        assert moved in (0, 2)
        assert engine.tick_index == 1

    def test_round_index_fractional(self):
        engine = AsyncPopulationEngine(ThreeMajority(), [5, 5], seed=0)
        engine.run_ticks(5)
        assert engine.round_index == pytest.approx(0.5)

    def test_run_until_consensus(self):
        engine = AsyncPopulationEngine(
            ThreeMajority(), balanced(200, 4), seed=1
        )
        ticks = engine.run_until_consensus(max_ticks=2_000_000)
        assert ticks is not None
        assert engine.is_consensus()
        assert engine.winner() is not None

    def test_budget_exhaustion_returns_none(self):
        engine = AsyncPopulationEngine(
            ThreeMajority(), balanced(1000, 500), seed=1
        )
        assert engine.run_until_consensus(max_ticks=3) is None

    def test_already_consensus(self):
        engine = AsyncPopulationEngine(ThreeMajority(), [0, 10], seed=0)
        assert engine.run_until_consensus(100) == 0

    def test_two_choices_async_uses_generic_path(self):
        engine = AsyncPopulationEngine(
            TwoChoices(), balanced(100, 2), seed=2
        )
        ticks = engine.run_until_consensus(max_ticks=1_000_000)
        assert ticks is not None

    def test_mass_conserved_across_ticks(self):
        engine = AsyncPopulationEngine(
            ThreeMajority(), balanced(300, 7), seed=4
        )
        engine.run_ticks(500)
        assert engine.counts.sum() == 300
        assert np.all(engine.counts >= 0)

    def test_async_matches_sync_scaling(self):
        """ticks/n should be within a constant factor of sync rounds."""
        sync_rounds = []
        async_rounds = []
        for seed in range(3):
            pop = PopulationEngine(
                ThreeMajority(), two_block(400, 4, 0.5), seed=seed
            )
            rounds = 0
            while not pop.is_consensus():
                pop.step()
                rounds += 1
            sync_rounds.append(rounds)
            asy = AsyncPopulationEngine(
                ThreeMajority(), two_block(400, 4, 0.5), seed=seed
            )
            ticks = asy.run_until_consensus(10_000_000)
            async_rounds.append(ticks / 400)
        ratio = np.median(async_rounds) / max(np.median(sync_rounds), 1)
        assert 0.1 < ratio < 10.0
