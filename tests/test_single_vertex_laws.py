"""Property tests: every closed-form single-vertex law is a distribution.

The asynchronous engine and the theory cross-checks rely on
``Dynamics.single_vertex_law``; these tests sweep random configurations
with hypothesis and assert the basic probabilistic contracts, plus the
consistency between each law and its ``expected_alpha_next``.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HMajority,
    MedianRule,
    ThreeMajority,
    TwoChoices,
    UndecidedStateDynamics,
    Voter,
)

alphas = st.lists(
    st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=6
).map(lambda raw: np.asarray(raw) / sum(raw))

LAW_DYNAMICS = [
    ThreeMajority(),
    TwoChoices(),
    Voter(),
    MedianRule(),
    HMajority(3),
    HMajority(4),
]


@pytest.mark.parametrize(
    "dynamics", LAW_DYNAMICS, ids=lambda d: d.name
)
class TestLawContracts:
    @given(alpha=alphas)
    @settings(max_examples=30, deadline=None)
    def test_law_is_distribution(self, dynamics, alpha):
        for current in range(alpha.size):
            law = dynamics.single_vertex_law(alpha, current)
            assert law.shape == alpha.shape
            assert np.all(law >= -1e-12)
            assert law.sum() == pytest.approx(1.0, abs=1e-9)

    @given(alpha=alphas)
    @settings(max_examples=30, deadline=None)
    def test_dead_opinions_stay_dead(self, dynamics, alpha):
        padded = np.concatenate([alpha, [0.0]])
        law = dynamics.single_vertex_law(padded, 0)
        assert law[-1] == pytest.approx(0.0, abs=1e-12)

    @given(alpha=alphas)
    @settings(max_examples=20, deadline=None)
    def test_mixture_matches_expected_alpha(self, dynamics, alpha):
        """sum_m alpha_m * law(., m) == E[alpha'] (law of total prob.)."""
        mixed = np.zeros_like(alpha)
        for m in range(alpha.size):
            mixed += alpha[m] * dynamics.single_vertex_law(alpha, int(m))
        expected = dynamics.expected_alpha_next(alpha)
        assert mixed == pytest.approx(expected, abs=1e-9)


class TestUndecidedLawContract:
    @given(alpha=alphas)
    @settings(max_examples=30, deadline=None)
    def test_law_is_distribution(self, alpha):
        dynamics = UndecidedStateDynamics()
        # Interpret the last entry as the undecided share.
        for current in range(alpha.size):
            law = dynamics.single_vertex_law(alpha, current)
            assert law.sum() == pytest.approx(1.0, abs=1e-9)
            assert np.all(law >= -1e-12)

    @given(alpha=alphas)
    @settings(max_examples=20, deadline=None)
    def test_mixture_matches_expected(self, alpha):
        dynamics = UndecidedStateDynamics()
        mixed = np.zeros_like(alpha)
        for m in range(alpha.size):
            mixed += alpha[m] * dynamics.single_vertex_law(alpha, int(m))
        assert mixed == pytest.approx(
            dynamics.expected_alpha_next(alpha), abs=1e-9
        )


class TestAsyncConsistency:
    """The generic async step must agree with the law it samples from."""

    @pytest.mark.parametrize(
        "dynamics",
        [TwoChoices(), Voter(), MedianRule()],
        ids=lambda d: d.name,
    )
    def test_async_single_tick_marginal(self, dynamics, rng):
        counts = np.asarray([60, 40], dtype=np.int64)
        n = 100
        alpha = counts / n
        # Expected change of count 0 over one tick:
        # E[d c0] = sum_m alpha_m (law_m[0] - 1[m == 0]).
        expected = 0.0
        for m in range(2):
            law = dynamics.single_vertex_law(alpha, m)
            expected += alpha[m] * (law[0] - (1.0 if m == 0 else 0.0))
        reps = 30_000
        total = 0
        for _ in range(reps):
            work = counts.copy()
            dynamics.async_population_step(work, rng)
            total += work[0] - counts[0]
        measured = total / reps
        assert measured == pytest.approx(expected, abs=0.01)
