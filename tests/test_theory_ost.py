"""Tests for the optional-stopping bounds (Lemmas 5.7/5.13/5.11)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import ThreeMajority, TwoChoices
from repro.engine import PopulationEngine
from repro.errors import ConfigurationError
from repro.theory.ost import (
    bias_drift_floor,
    bias_hitting_time_bound,
    drift_doubling_rounds,
    empirical_bias_drift,
    gamma_drift_floor,
    gamma_hitting_time_bound,
)


class TestBiasDriftFloor:
    def test_positive_for_non_weak_pair(self):
        alpha = np.asarray([0.4, 0.35, 0.25])
        for dynamics in ("3-majority", "2-choices"):
            assert bias_drift_floor(alpha, 0, 1, 1000, dynamics) > 0

    def test_three_majority_scales_linearly(self):
        alpha = np.asarray([0.4, 0.35, 0.25])
        floor_a = bias_drift_floor(alpha, 0, 1, 1000, "3-majority")
        floor_b = bias_drift_floor(alpha, 0, 1, 2000, "3-majority")
        assert floor_a == pytest.approx(2 * floor_b)

    def test_unknown_dynamics(self):
        with pytest.raises(ConfigurationError):
            bias_drift_floor(np.asarray([0.5, 0.5]), 0, 1, 10, "voter")

    def test_floor_below_variance_bound(self):
        """s_{5.7} must not exceed the Lemma 4.6(ii) variance floor."""
        alpha = np.asarray([0.45, 0.45, 0.1])
        n = 5000
        for dynamics in ("3-majority", "2-choices"):
            floor = bias_drift_floor(alpha, 0, 1, n, dynamics)
            variance = empirical_bias_drift(alpha, 0, 1, n, dynamics)
            assert floor <= variance * 1.01

    def test_squared_bias_additive_drift_monte_carlo(self, rng):
        """One-step E[delta_t^2] - delta^2 >= s_{5.7} (Lemma 5.7)."""
        n = 20_000
        counts = np.asarray([9000, 8000, 3000], dtype=np.int64)
        alpha = counts / n
        delta0 = float(alpha[0] - alpha[1])
        reps = 4000
        total = 0.0
        for _ in range(reps):
            new = ThreeMajority().population_step(counts, rng) / n
            total += float(new[0] - new[1]) ** 2
        gain = total / reps - delta0**2
        floor = bias_drift_floor(alpha, 0, 1, n, "3-majority")
        assert gain >= floor * 0.9


class TestBiasHittingBound:
    def test_bound_positive_and_finite(self):
        alpha = np.asarray([0.45, 0.45, 0.1])
        bound = bias_hitting_time_bound(
            alpha, 0, 1, 4096, "3-majority", x_delta=0.01
        )
        assert 0 < bound < math.inf

    def test_rejects_bad_x_delta(self):
        with pytest.raises(ConfigurationError):
            bias_hitting_time_bound(
                np.asarray([0.5, 0.5]), 0, 1, 100, "3-majority", 0.0
            )

    def test_simulated_hitting_below_bound(self):
        """Measured E[tau^+_delta] respects the Lemma 5.7/5.8 bound."""
        n = 4096
        counts = np.asarray([n // 2 - n // 8, n // 2 - n // 8, n // 4])
        alpha = counts / n
        x_delta = 2.0 * math.sqrt(math.log(n) / n)
        bound = bias_hitting_time_bound(
            alpha, 0, 1, n, "3-majority", x_delta=x_delta
        )
        times = []
        for seed in range(10):
            engine = PopulationEngine(
                ThreeMajority(), counts, seed=(21, seed)
            )
            for rounds in range(1, int(bound * 20) + 1):
                engine.step()
                a = engine.alpha
                if abs(float(a[0] - a[1])) >= x_delta:
                    times.append(rounds)
                    break
        assert times, "bias never reached x_delta"
        assert np.mean(times) <= bound


class TestGammaBounds:
    def test_floor_values(self):
        assert gamma_drift_floor(100, "3-majority") == pytest.approx(
            0.5 / 100
        )
        assert gamma_drift_floor(100, "2-choices") == pytest.approx(
            0.25 / 3e4
        )

    def test_floor_epsilon_domain(self):
        with pytest.raises(ConfigurationError):
            gamma_drift_floor(100, "3-majority", epsilon=1.5)

    def test_hitting_bound_scales(self):
        b1 = gamma_hitting_time_bound(1000, "3-majority", 0.1)
        b2 = gamma_hitting_time_bound(2000, "3-majority", 0.1)
        assert b2 == pytest.approx(2 * b1)

    def test_hitting_bound_domain(self):
        with pytest.raises(ConfigurationError):
            gamma_hitting_time_bound(1000, "3-majority", 0.9)

    def test_simulated_gamma_hitting_below_bound(self):
        """Theorem 2.2 shape via Lemma 5.13: measured time <= bound."""
        n = 2048
        x_gamma = 0.25
        bound = gamma_hitting_time_bound(n, "3-majority", x_gamma)
        times = []
        for seed in range(5):
            engine = PopulationEngine(
                ThreeMajority(),
                np.ones(n, dtype=np.int64),
                seed=(33, seed),
            )
            for rounds in range(1, int(bound) + 1):
                engine.step()
                if engine.gamma >= x_gamma:
                    times.append(rounds)
                    break
        assert len(times) == 5
        assert np.mean(times) <= bound

    def test_two_choices_quadratic_in_n(self):
        b1 = gamma_hitting_time_bound(1000, "2-choices", 0.1)
        b2 = gamma_hitting_time_bound(2000, "2-choices", 0.1)
        assert b2 == pytest.approx(4 * b1)


class TestDriftDoubling:
    def test_monotone_in_target(self):
        a = drift_doubling_rounds(10, 1.0, 4.0, 0.01)
        b = drift_doubling_rounds(10, 1.0, 16.0, 0.01)
        assert b > a

    def test_monotone_in_confidence(self):
        a = drift_doubling_rounds(10, 1.0, 4.0, 0.1)
        b = drift_doubling_rounds(10, 1.0, 4.0, 0.001)
        assert b > a

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            drift_doubling_rounds(0, 1.0, 2.0, 0.1)
        with pytest.raises(ConfigurationError):
            drift_doubling_rounds(1, 2.0, 1.0, 0.1)
        with pytest.raises(ConfigurationError):
            drift_doubling_rounds(1, 1.0, 2.0, 1.5)
        with pytest.raises(ConfigurationError):
            drift_doubling_rounds(1, 1.0, 2.0, 0.1, growth_factor=1.0)

    def test_lemma510_window_shape(self):
        """Bias amplification horizon ~ window * log(x*/x0)."""
        window = 50.0
        rounds = drift_doubling_rounds(
            window, 0.001, 0.1, 0.01, growth_factor=1.05
        )
        # log(100)/log(1.05) ~ 94 doublings + log(100) retries.
        assert rounds == pytest.approx(
            4.0 * window * (math.log(100) + math.log(100) / math.log(1.05)),
            rel=1e-6,
        )
