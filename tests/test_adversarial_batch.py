"""Tests for vectorised adversaries on the batch-replica engine.

Three families of guarantees:

* **corrupt_batch contract (property-style)** — over a seeded sweep of
  random count matrices and budgets, every strategy's vectorised
  ``corrupt_batch`` conserves each row's mass, never exceeds the F
  budget, matches the per-row sequential ``corrupt`` law (exact multiset
  equality for the deterministic strategies), and the stalling
  strategies leave consensus rows untouched;
* **engine integration** — frozen rows are never corrupted, mass is
  conserved every round, per-row ``target`` masking stops rows
  independently, and a contract-violating adversary raises an explicit
  error (no ``assert``, so the check survives ``python -O``);
* **distributional equivalence** — for each strategy, batched
  adversarial runs must simulate the same chain as sequential
  adversarial replication (KS tests on stopping times).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.adversary import (
    Adversary,
    RandomCorruption,
    ReviveWeakest,
    SupportRunnerUp,
    enforce_corruption_contract_batch,
)
from repro.configs import balanced
from repro.core import ThreeMajority
from repro.engine import (
    BatchPopulationEngine,
    PopulationEngine,
    replicate,
    run_until_consensus,
)
from repro.errors import ConfigurationError, StateError

STRATEGIES = {
    "random": RandomCorruption,
    "runner-up": SupportRunnerUp,
    "revive-weakest": ReviveWeakest,
}


def _random_count_matrices(seed: int = 0, cases: int = 40):
    """Seeded stream of (R, k) count matrices with equal row mass."""
    rng = np.random.default_rng(seed)
    for _ in range(cases):
        num_rows = int(rng.integers(1, 9))
        k = int(rng.integers(2, 7))
        n = int(rng.integers(k, 500))
        alpha = rng.dirichlet(np.full(k, 0.5), size=num_rows)
        matrix = rng.multinomial(n, alpha)
        # Sprinkle in consensus and near-consensus rows.
        if rng.random() < 0.3:
            matrix[0] = 0
            matrix[0, int(rng.integers(k))] = n
        yield matrix.astype(np.int64)


class TestCorruptBatchProperties:
    """Property-style contract sweep for every strategy and budget."""

    @pytest.mark.parametrize("name", sorted(STRATEGIES), ids=str)
    @pytest.mark.parametrize("budget", [0, 1, 7, 10_000])
    def test_mass_conserved_and_budget_respected(self, name, budget):
        adversary = STRATEGIES[name](budget)
        rng = np.random.default_rng(99)
        for matrix in _random_count_matrices(seed=budget + 1):
            corrupted = adversary.corrupt_batch(matrix.copy(), rng)
            assert corrupted.shape == matrix.shape
            assert (corrupted >= 0).all()
            # Row mass conserved...
            assert (
                corrupted.sum(axis=1) == matrix.sum(axis=1)
            ).all(), (name, budget)
            # ...and every row moved at most F vertices.
            moved = np.abs(corrupted - matrix).sum(axis=1) // 2
            assert (moved <= budget).all(), (name, budget)

    @pytest.mark.parametrize(
        "name", ["runner-up", "revive-weakest"], ids=str
    )
    def test_stalling_strategies_leave_consensus_rows_untouched(
        self, name
    ):
        adversary = STRATEGIES[name](25)
        rng = np.random.default_rng(3)
        consensus = np.zeros((4, 5), dtype=np.int64)
        consensus[np.arange(4), [0, 2, 4, 1]] = 300
        corrupted = adversary.corrupt_batch(consensus.copy(), rng)
        assert (corrupted == consensus).all()

    @pytest.mark.parametrize(
        "name", ["runner-up", "revive-weakest"], ids=str
    )
    def test_deterministic_strategies_match_sequential_rows(self, name):
        """Vectorised rows equal per-row corrupt up to tie relabelling."""
        for budget in (1, 5, 123):
            adversary = STRATEGIES[name](budget)
            rng = np.random.default_rng(7)
            for matrix in _random_count_matrices(seed=17 + budget):
                batched = adversary.corrupt_batch(matrix.copy(), rng)
                for row, brow in zip(matrix, batched):
                    srow = adversary.corrupt(row.copy(), rng)
                    # Ties may route the move to a different (equal)
                    # index; the resulting count multiset is identical.
                    assert sorted(brow) == sorted(srow), (
                        name,
                        budget,
                        row,
                    )

    def test_random_corruption_batch_matches_sequential_law(self):
        """Same first moment as the sequential sampler (10-sigma band)."""
        budget, reps = 60, 4000
        base = np.asarray([500, 300, 200], dtype=np.int64)
        adversary = RandomCorruption(budget)
        rng = np.random.default_rng(11)
        batched = adversary.corrupt_batch(
            np.tile(base, (reps, 1)), rng
        ).mean(axis=0)
        sequential = np.mean(
            [adversary.corrupt(base.copy(), rng) for _ in range(reps)],
            axis=0,
        )
        # Per-coordinate changes are bounded by the budget, so the
        # standard error of each mean is at most budget / sqrt(reps).
        tolerance = 10 * budget / np.sqrt(reps)
        assert np.abs(batched - sequential).max() < tolerance

    def test_base_class_row_loop_fallback(self):
        """Strategies without an override still run batched, per row."""

        class MoveOne(Adversary):
            def corrupt(self, counts, rng):
                new = counts.copy()
                if counts[0] > 0 and counts.size > 1:
                    new[0] -= 1
                    new[1] += 1
                return new

        matrix = np.asarray([[5, 5], [10, 0], [0, 10]], dtype=np.int64)
        corrupted = MoveOne(1).corrupt_batch(
            matrix, np.random.default_rng(0)
        )
        assert corrupted.tolist() == [[4, 6], [9, 1], [0, 10]]
        # The input matrix is never mutated by the fallback.
        assert matrix.tolist() == [[5, 5], [10, 0], [0, 10]]


class TestBatchContractEnforcement:
    def test_mass_violation_raises_explicitly(self):
        before = np.asarray([[50, 50], [60, 40]], dtype=np.int64)
        after = before.copy()
        after[1, 0] -= 1  # leak one vertex
        with pytest.raises(StateError, match="row 1"):
            enforce_corruption_contract_batch(before, after, 10)

    def test_budget_violation_raises_explicitly(self):
        before = np.asarray([[50, 50], [60, 40]], dtype=np.int64)
        after = before.copy()
        after[0] = [45, 55]
        with pytest.raises(ConfigurationError, match="exceeding"):
            enforce_corruption_contract_batch(before, after, 3)

    def test_negative_counts_raise(self):
        before = np.asarray([[2, 98]], dtype=np.int64)
        after = np.asarray([[-1, 101]], dtype=np.int64)
        with pytest.raises(StateError, match="negative"):
            enforce_corruption_contract_batch(before, after, 10)

    def test_in_place_mutating_corrupt_batch_still_detected(self):
        """A corrupt_batch mutating its input cannot dodge the check."""

        class InPlaceDrainer(Adversary):
            def corrupt(self, counts, rng):  # pragma: no cover
                return counts

            def corrupt_batch(self, counts, rng):
                counts[:, 0] += 5  # creates mass, in place
                return counts

        engine = BatchPopulationEngine(
            ThreeMajority(),
            balanced(1000, 4),
            num_replicas=3,
            seed=0,
            adversary=InPlaceDrainer(1),
        )
        with pytest.raises(StateError, match="mass"):
            engine.step()

    def test_cheating_adversary_detected_inside_engine(self):
        class Cheater(Adversary):
            def corrupt(self, counts, rng):
                new = counts.copy()
                move = min(self.budget + 5, int(new.max()))
                leader = int(new.argmax())
                new[leader] -= move
                new[(leader + 1) % new.size] += move
                return new

        engine = BatchPopulationEngine(
            ThreeMajority(),
            balanced(1000, 4),
            num_replicas=3,
            seed=0,
            adversary=Cheater(2),
        )
        with pytest.raises(ConfigurationError, match="exceeding"):
            engine.step()


class TestAdversarialEngineIntegration:
    @pytest.mark.parametrize("name", sorted(STRATEGIES), ids=str)
    def test_frozen_rows_never_corrupted(self, name):
        """Ledger invariant: a frozen row's counts never change again."""
        engine = BatchPopulationEngine(
            ThreeMajority(),
            balanced(400, 4),
            num_replicas=8,
            seed=21,
            adversary=STRATEGIES[name](2),
            target=lambda counts: counts.max() >= 392,
        )
        snapshots: dict[int, np.ndarray] = {}
        for _ in range(5000):
            engine.step()
            assert (engine.counts.sum(axis=1) == 400).all()
            for row, snap in snapshots.items():
                assert (engine.counts[row] == snap).all()
            for row in np.flatnonzero(engine.frozen):
                if int(row) not in snapshots:
                    snapshots[int(row)] = engine.counts[row].copy()
            if engine.all_consensus():
                break
        assert engine.all_consensus(), name

    def test_target_rows_stop_independently(self):
        target = lambda counts: counts.max() >= 380  # noqa: E731
        engine = BatchPopulationEngine(
            ThreeMajority(),
            balanced(400, 4),
            num_replicas=12,
            seed=5,
            target=target,
        )
        results = engine.run_until_consensus(100_000)
        rounds = {r.rounds for r in results}
        assert all(r.converged for r in results)
        assert all(target(r.final_counts) for r in results)
        # Independent chains almost surely stop at different rounds.
        assert len(rounds) > 1

    def test_vectorised_threshold_target_matches_plain_predicate(self):
        """A .batch-capable target stops exactly like its scalar form."""
        from repro.adversary import near_consensus_target

        vector_target = near_consensus_target(400, 5)  # threshold 380
        plain_target = lambda counts: int(counts.max()) >= 380  # noqa: E731
        fast = BatchPopulationEngine(
            ThreeMajority(),
            balanced(400, 4),
            num_replicas=10,
            seed=77,
            target=vector_target,
        )
        slow = BatchPopulationEngine(
            ThreeMajority(),
            balanced(400, 4),
            num_replicas=10,
            seed=77,
            target=plain_target,
        )
        fast_results = fast.run_until_consensus(100_000)
        slow_results = slow.run_until_consensus(100_000)
        assert [r.rounds for r in fast_results] == [
            r.rounds for r in slow_results
        ]

    def test_target_frozen_at_start(self):
        engine = BatchPopulationEngine(
            ThreeMajority(),
            balanced(400, 4),
            num_replicas=3,
            seed=0,
            target=lambda counts: True,
        )
        assert engine.frozen.all()
        results = engine.run_until_consensus(10)
        assert all(r.converged and r.rounds == 0 for r in results)


class TestDistributionalEquivalence:
    """Batched adversarial R replicas ~ R sequential adversarial runs.

    Seeds are fixed, so these are deterministic checks that the two
    samplers draw from indistinguishable distributions, not flaky
    significance tests.  Strict consensus is trivially blockable by any
    F >= 1 adversary, so runs stop at the adv-experiment threshold
    (leader >= n - 4F).
    """

    RUNS = 100
    N = 1024
    K = 8

    @pytest.mark.parametrize(
        "name,budget",
        [("random", 8), ("runner-up", 2), ("revive-weakest", 2)],
        ids=str,
    )
    def test_stopping_time_distribution_matches(self, name, budget):
        counts = balanced(self.N, self.K)
        threshold = self.N - 4 * budget

        def target(row):
            return int(row.max()) >= threshold

        def one(rng):
            engine = PopulationEngine(
                ThreeMajority(),
                counts,
                seed=rng,
                adversary=STRATEGIES[name](budget),
            )
            return run_until_consensus(
                engine, max_rounds=50_000, target=target
            )

        sequential = [
            r.rounds for r in replicate(one, self.RUNS, seed=303)
        ]
        engine = BatchPopulationEngine(
            ThreeMajority(),
            counts,
            num_replicas=self.RUNS,
            seed=404,
            adversary=STRATEGIES[name](budget),
            target=target,
        )
        batch = [r.rounds for r in engine.run_until_consensus(50_000)]
        statistic, p_value = ks_2samp(sequential, batch)
        assert p_value > 1e-3, (
            f"{name}(F={budget}): KS statistic {statistic:.3f}, "
            f"p={p_value:.2e} — batched and sequential adversarial "
            "stopping times differ in distribution"
        )
