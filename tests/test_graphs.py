"""Tests for the graph substrate (complete, CSR, generators)."""

from __future__ import annotations

import numpy as np
import pytest

import networkx as nx

from repro.errors import GraphError
from repro.graphs import (
    AdjacencyGraph,
    CompleteGraph,
    core_periphery,
    cycle_graph,
    erdos_renyi,
    from_networkx,
    random_regular,
    stochastic_block_model,
    torus_grid,
)


class TestCompleteGraph:
    def test_sample_shape(self, rng):
        graph = CompleteGraph(10)
        samples = graph.sample_neighbors(rng, 3)
        assert samples.shape == (10, 3)
        assert samples.min() >= 0 and samples.max() < 10

    def test_self_loops_flag(self):
        assert CompleteGraph(5).is_complete_with_self_loops
        assert not CompleteGraph(5, self_loops=False).\
            is_complete_with_self_loops

    def test_no_self_loops_never_samples_self(self, rng):
        graph = CompleteGraph(6, self_loops=False)
        samples = graph.sample_neighbors(rng, 200)
        own = np.arange(6)[:, None]
        assert not np.any(samples == own)

    def test_no_self_loop_sampling_uniform(self, rng):
        graph = CompleteGraph(4, self_loops=False)
        samples = graph.sample_neighbors(rng, 30_000)
        # Row 0 should hit {1,2,3} each about 10k times.
        histogram = np.bincount(samples[0], minlength=4)
        assert histogram[0] == 0
        assert np.all(np.abs(histogram[1:] - 10_000) < 600)

    def test_sample_neighbors_of(self, rng):
        graph = CompleteGraph(10)
        out = graph.sample_neighbors_of(np.asarray([2, 5]), rng, 4)
        assert out.shape == (2, 4)

    def test_sample_neighbors_of_without_loops(self, rng):
        graph = CompleteGraph(5, self_loops=False)
        vertices = np.asarray([1, 3])
        out = graph.sample_neighbors_of(vertices, rng, 500)
        assert not np.any(out == vertices[:, None])

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            CompleteGraph(0)

    def test_rejects_lonely_vertex_without_loop(self):
        with pytest.raises(GraphError, match="no neighbours"):
            CompleteGraph(1, self_loops=False)


class TestAdjacencyGraph:
    def test_from_edges_symmetrises(self, rng):
        graph = AdjacencyGraph.from_edges(3, [[0, 1], [1, 2]])
        samples = graph.sample_neighbors(rng, 1000)
        # Vertex 0 only neighbours 1.
        assert set(np.unique(samples[0])) == {1}
        assert set(np.unique(samples[1])) == {0, 2}

    def test_self_loops_appended(self, rng):
        graph = AdjacencyGraph.from_edges(2, [[0, 1]], self_loops=True)
        samples = graph.sample_neighbors(rng, 2000)
        assert set(np.unique(samples[0])) == {0, 1}

    def test_isolated_vertex_rejected(self):
        with pytest.raises(GraphError, match="no neighbours"):
            AdjacencyGraph.from_edges(3, [[0, 1]])

    def test_bad_indptr_rejected(self):
        with pytest.raises(GraphError):
            AdjacencyGraph(np.asarray([0, 2]), np.asarray([0]))

    def test_out_of_range_indices_rejected(self):
        with pytest.raises(GraphError, match="outside"):
            AdjacencyGraph(np.asarray([0, 1]), np.asarray([5]))

    def test_sample_neighbors_of_matches_degrees(self, rng):
        graph = cycle_graph(8, self_loops=False)
        out = graph.sample_neighbors_of(np.asarray([0]), rng, 400)
        assert set(np.unique(out)) == {1, 7}

    def test_multi_edges_weight_sampling(self, rng):
        # Vertex 0 has edges to 1 (twice) and 2 (once): 2/3 vs 1/3.
        graph = AdjacencyGraph.from_edges(
            3, [[0, 1], [0, 1], [0, 2], [1, 2]]
        )
        samples = graph.sample_neighbors(rng, 30_000)[0]
        share = np.mean(samples == 1)
        assert abs(share - 2 / 3) < 0.02


class TestGenerators:
    def test_cycle_degrees(self):
        graph = cycle_graph(10, self_loops=False)
        assert np.all(graph.degrees == 2)

    def test_cycle_with_loops_degrees(self):
        graph = cycle_graph(10, self_loops=True)
        assert np.all(graph.degrees == 3)

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_torus_degrees(self):
        graph = torus_grid(4, self_loops=False)
        assert graph.num_vertices == 16
        assert np.all(graph.degrees == 4)

    def test_torus_too_small(self):
        with pytest.raises(GraphError):
            torus_grid(1)

    def test_erdos_renyi_density(self):
        graph = erdos_renyi(200, 0.2, seed=0, self_loops=False)
        expected = 0.2 * 199
        mean_degree = graph.degrees.mean()
        assert abs(mean_degree - expected) < 5.0

    def test_erdos_renyi_rejects_bad_p(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)

    def test_erdos_renyi_no_duplicate_pairs(self):
        graph = erdos_renyi(50, 0.3, seed=1, self_loops=False)
        pairs = set()
        for v in range(graph.num_vertices):
            row = graph.indices[graph.indptr[v]:graph.indptr[v + 1]]
            for u in row:
                pairs.add((min(v, u), max(v, u)))
        # Each undirected edge appears exactly twice in CSR.
        assert graph.indices.size == 2 * len(pairs)

    def test_random_regular_degrees(self):
        graph = random_regular(100, 6, seed=0, self_loops=False)
        assert np.all(graph.degrees == 6)

    def test_random_regular_with_loops(self):
        graph = random_regular(50, 4, seed=0, self_loops=True)
        assert np.all(graph.degrees == 5)

    def test_random_regular_parity(self):
        with pytest.raises(GraphError, match="even"):
            random_regular(5, 3)

    def test_random_regular_degree_range(self):
        with pytest.raises(GraphError):
            random_regular(5, 5)

    def test_random_regular_is_simple(self):
        graph = random_regular(60, 4, seed=3, self_loops=False)
        for v in range(graph.num_vertices):
            row = graph.indices[graph.indptr[v]:graph.indptr[v + 1]]
            assert v not in row
            assert np.unique(row).size == row.size

    def test_sbm_blocks(self):
        graph = stochastic_block_model(
            [50, 50], p_in=0.3, p_out=0.01, seed=0, self_loops=False
        )
        assert graph.num_vertices == 100
        # Within-block density should dominate cross-block.
        within = cross = 0
        for v in range(50):
            row = graph.indices[graph.indptr[v]:graph.indptr[v + 1]]
            within += int(np.sum(row < 50))
            cross += int(np.sum(row >= 50))
        assert within > 5 * max(cross, 1)

    def test_sbm_bad_sizes(self):
        with pytest.raises(GraphError):
            stochastic_block_model([0, 10], 0.5, 0.1)

    def test_core_periphery_structure(self):
        graph = core_periphery(10, 20, attachment=2, seed=0)
        assert graph.num_vertices == 30
        # Periphery vertices: 2 anchors + 1 self-loop = 3.
        assert np.all(graph.degrees[10:] == 3)

    def test_core_periphery_bad_attachment(self):
        with pytest.raises(GraphError):
            core_periphery(5, 10, attachment=6)

    def test_from_networkx(self, rng):
        graph = from_networkx(nx.path_graph(4), self_loops=False)
        assert graph.num_vertices == 4
        samples = graph.sample_neighbors(rng, 300)
        assert set(np.unique(samples[0])) == {1}
        assert set(np.unique(samples[1])) == {0, 2}

    def test_from_networkx_with_loops(self, rng):
        graph = from_networkx(nx.path_graph(3), self_loops=True)
        samples = graph.sample_neighbors(rng, 500)
        assert 0 in np.unique(samples[0])

    def test_from_networkx_empty(self):
        with pytest.raises(GraphError):
            from_networkx(nx.Graph())


def _edge_set_fingerprint(params):
    """Build one random graph family member; return its CSR arrays.

    Module-level so the cross-process seeding test can ship it to a
    spawned interpreter (the same constraint ``run_sweep(workers=...)``
    puts on point functions).
    """
    from repro.graphs import make_graph

    graph = make_graph(**params)
    indptr, indices = graph.csr_arrays()
    return indptr.tolist(), indices.tolist()


class TestGeneratorSeeding:
    """Same seed => same edge set, in-process and across processes.

    The sweep layer keys cached points by (family, degree/probability,
    graph_seed), and ``run_sweep(workers=...)`` rebuilds substrates in
    worker processes — both are only sound when generator seeding is
    process-independent (networkx-backed samplers included, via the
    integer seed derived from our stream).
    """

    CASES = (
        {"name": "random-regular", "num_vertices": 48, "degree": 3,
         "seed": 7},
        {"name": "erdos-renyi", "num_vertices": 48,
         "edge_probability": 0.2, "seed": 7},
    )

    @pytest.mark.parametrize(
        "params", CASES, ids=lambda p: p["name"]
    )
    def test_same_seed_same_edges_in_process(self, params):
        first = _edge_set_fingerprint(params)
        second = _edge_set_fingerprint(params)
        assert first == second

    @pytest.mark.parametrize(
        "params", CASES, ids=lambda p: p["name"]
    )
    def test_different_seed_different_edges(self, params):
        first = _edge_set_fingerprint(params)
        other = _edge_set_fingerprint({**params, "seed": 8})
        assert first != other

    @pytest.mark.parametrize(
        "params", CASES, ids=lambda p: p["name"]
    )
    def test_seed_sequence_spawn_streams_reproducible(self, params):
        # spawn_generators-style derivation: a spawned child stream
        # yields the same graph wherever it is replayed.
        child = np.random.SeedSequence(11).spawn(3)[1]
        first = _edge_set_fingerprint({**params, "seed": child})
        child_again = np.random.SeedSequence(11).spawn(3)[1]
        second = _edge_set_fingerprint({**params, "seed": child_again})
        assert first == second

    def test_same_seed_same_edges_across_processes(self):
        import concurrent.futures
        import multiprocessing

        params = dict(self.CASES[0])
        local = _edge_set_fingerprint(params)
        ctx = multiprocessing.get_context("spawn")
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=1, mp_context=ctx
        ) as pool:
            remote = pool.submit(_edge_set_fingerprint, params).result()
        assert local == remote
