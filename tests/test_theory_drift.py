"""Tests for repro.theory.drift — Lemma 4.1 closed forms vs simulation."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ThreeMajority, TwoChoices
from repro.errors import ConfigurationError
from repro.theory.drift import (
    TABLE1_ROWS,
    exact_gamma_next_three_majority,
    exact_var_alpha,
    expected_alpha_next,
    expected_delta_next,
    expected_gamma_increase_lower_bound,
    var_alpha_upper_bound,
    var_delta_lower_bound,
    var_delta_upper_bound,
)
from repro.theory.quantities import gamma_of_alpha

alphas = st.lists(
    st.floats(min_value=0.01, max_value=1.0), min_size=2, max_size=10
).map(lambda raw: np.asarray(raw) / sum(raw))


class TestExpectedAlphaNext:
    def test_identity_balanced(self):
        alpha = np.full(4, 0.25)
        # Balanced: alpha_i (1 + alpha_i - gamma) = alpha_i exactly.
        assert expected_alpha_next(alpha) == pytest.approx(alpha)

    @given(alphas)
    @settings(max_examples=100, deadline=None)
    def test_preserves_total_mass(self, alpha):
        assert expected_alpha_next(alpha).sum() == pytest.approx(1.0)

    @given(alphas)
    @settings(max_examples=100, deadline=None)
    def test_leader_never_shrinks_in_expectation(self, alpha):
        """max_i alpha_i >= gamma, so the leader's drift is >= 0."""
        expected = expected_alpha_next(alpha)
        leader = int(np.argmax(alpha))
        assert expected[leader] >= alpha[leader] - 1e-12

    def test_monte_carlo_three_majority(self, rng):
        n = 50_000
        counts = np.asarray([n // 2, n // 4, n // 4])
        alpha = counts / n
        total = np.zeros(3)
        reps = 300
        for _ in range(reps):
            total += ThreeMajority().population_step(counts, rng)
        assert total / reps / n == pytest.approx(
            expected_alpha_next(alpha), abs=2e-3
        )

    def test_monte_carlo_two_choices(self, rng):
        n = 50_000
        counts = np.asarray([30_000, 20_000])
        alpha = counts / n
        total = np.zeros(2)
        reps = 300
        for _ in range(reps):
            total += TwoChoices().population_step(counts, rng)
        assert total / reps / n == pytest.approx(
            expected_alpha_next(alpha), abs=2e-3
        )


class TestVarianceBounds:
    def test_unknown_dynamics_rejected(self):
        with pytest.raises(ConfigurationError):
            var_alpha_upper_bound(np.asarray([0.5, 0.5]), 0, 10, "voter")

    @given(alphas)
    @settings(max_examples=50, deadline=None)
    def test_exact_variance_below_bound_3maj(self, alpha):
        n = 1000
        for i in range(alpha.size):
            exact = exact_var_alpha(alpha, i, "3-majority") / n
            bound = var_alpha_upper_bound(alpha, i, n, "3-majority")
            assert exact <= bound + 1e-12

    @given(alphas)
    @settings(max_examples=50, deadline=None)
    def test_exact_variance_below_bound_2cho(self, alpha):
        n = 1000
        for i in range(alpha.size):
            exact = exact_var_alpha(alpha, i, "2-choices") / n
            bound = var_alpha_upper_bound(alpha, i, n, "2-choices")
            assert exact <= bound + 1e-12

    def test_monte_carlo_variance_three_majority(self, rng):
        n = 10_000
        counts = np.asarray([6000, 3000, 1000])
        alpha = counts / n
        reps = 4000
        samples = np.empty((reps, 3))
        for row in range(reps):
            samples[row] = (
                ThreeMajority().population_step(counts, rng) / n
            )
        empirical = samples.var(axis=0, ddof=1)
        exact = np.asarray(
            [
                exact_var_alpha(alpha, i, "3-majority") / n
                for i in range(3)
            ]
        )
        assert empirical == pytest.approx(exact, rel=0.15)

    def test_monte_carlo_variance_two_choices(self, rng):
        n = 10_000
        counts = np.asarray([7000, 3000])
        alpha = counts / n
        reps = 4000
        samples = np.empty((reps, 2))
        for row in range(reps):
            samples[row] = TwoChoices().population_step(counts, rng) / n
        empirical = samples.var(axis=0, ddof=1)
        exact = np.asarray(
            [exact_var_alpha(alpha, i, "2-choices") / n for i in range(2)]
        )
        assert empirical == pytest.approx(exact, rel=0.15)


class TestDeltaMoments:
    @given(alphas)
    @settings(max_examples=50, deadline=None)
    def test_mean_identity(self, alpha):
        expected = expected_alpha_next(alpha)
        for i in range(alpha.size):
            for j in range(alpha.size):
                if i == j:
                    continue
                assert expected_delta_next(alpha, i, j) == pytest.approx(
                    expected[i] - expected[j], abs=1e-12
                )

    def test_strong_pair_drift_positive(self):
        """Identity (3): two strong opinions amplify their bias."""
        alpha = np.asarray([0.4, 0.3, 0.1, 0.1, 0.1])
        delta = alpha[0] - alpha[1]
        assert expected_delta_next(alpha, 0, 1) > delta

    @given(alphas)
    @settings(max_examples=50, deadline=None)
    def test_var_bounds_ordering(self, alpha):
        n = 500
        for dynamics in ("3-majority", "2-choices"):
            upper = var_delta_upper_bound(alpha, 0, 1, n, dynamics)
            lower = var_delta_lower_bound(alpha, 0, 1, n, dynamics)
            assert 0 <= lower <= upper + 1e-15

    def test_var_delta_monte_carlo_within_bounds(self, rng):
        n = 10_000
        counts = np.asarray([4000, 3500, 2500])
        alpha = counts / n
        reps = 3000
        deltas = np.empty(reps)
        for row in range(reps):
            new = ThreeMajority().population_step(counts, rng)
            deltas[row] = (new[0] - new[1]) / n
        var = deltas.var(ddof=1)
        assert var <= var_delta_upper_bound(alpha, 0, 1, n, "3-majority")
        # Both opinions are non-weak here, so the lower bound applies.
        assert var >= var_delta_lower_bound(alpha, 0, 1, n, "3-majority")


class TestGammaDrift:
    @given(alphas)
    @settings(max_examples=100, deadline=None)
    def test_floor_non_negative(self, alpha):
        for dynamics in ("3-majority", "2-choices"):
            floor = expected_gamma_increase_lower_bound(
                alpha, 1000, dynamics
            )
            assert floor >= -1e-15

    def test_exact_gamma_next_three_majority(self, rng):
        n = 20_000
        counts = np.asarray([10_000, 6000, 4000])
        alpha = counts / n
        reps = 2000
        total = 0.0
        for _ in range(reps):
            new = ThreeMajority().population_step(counts, rng) / n
            total += float(np.dot(new, new))
        empirical = total / reps
        assert empirical == pytest.approx(
            exact_gamma_next_three_majority(alpha, n), rel=1e-3
        )

    def test_exact_exceeds_floor(self):
        alpha = np.asarray([0.5, 0.3, 0.2])
        n = 1000
        gamma = gamma_of_alpha(alpha)
        exact = exact_gamma_next_three_majority(alpha, n)
        floor = expected_gamma_increase_lower_bound(alpha, n, "3-majority")
        assert exact - gamma >= floor - 1e-12

    def test_submartingale_two_choices_monte_carlo(self, rng):
        n = 20_000
        counts = np.asarray([8000, 7000, 5000])
        gamma0 = gamma_of_alpha(counts / n)
        reps = 2000
        total = 0.0
        for _ in range(reps):
            new = TwoChoices().population_step(counts, rng) / n
            total += float(np.dot(new, new))
        assert total / reps >= gamma0  # submartingale, comfortably


class TestTable1Rows:
    def test_six_rows(self):
        assert len(TABLE1_ROWS) == 6

    def test_rows_well_formed(self):
        for row in TABLE1_ROWS:
            assert row.direction in ("<=", ">=")
            assert row.quantity
            assert row.condition
