"""Tests for initial-configuration generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.configs import (
    balanced,
    biased,
    custom,
    dirichlet_random,
    geometric_gamma,
    two_block,
    zipf,
)
from repro.errors import ConfigurationError
from repro.state import gamma_from_counts

nk = st.tuples(
    st.integers(min_value=2, max_value=2000),
    st.integers(min_value=1, max_value=50),
).filter(lambda t: t[0] >= t[1])


class TestBalanced:
    def test_exact_division(self):
        assert balanced(100, 4).tolist() == [25, 25, 25, 25]

    def test_remainder_distribution(self):
        counts = balanced(10, 3)
        assert counts.tolist() == [4, 3, 3]

    @given(nk)
    @settings(max_examples=100, deadline=None)
    def test_properties(self, t):
        n, k = t
        counts = balanced(n, k)
        assert counts.sum() == n
        assert counts.size == k
        assert counts.max() - counts.min() <= 1
        assert counts.min() >= 1

    def test_rejects_n_below_k(self):
        with pytest.raises(ConfigurationError, match="n >= k"):
            balanced(3, 5)

    def test_rejects_k_zero(self):
        with pytest.raises(ConfigurationError):
            balanced(10, 0)


class TestBiased:
    def test_margin_zero_is_balanced(self):
        assert biased(100, 4, 0.0).tolist() == balanced(100, 4).tolist()

    def test_margin_moves_mass_to_leader(self):
        counts = biased(1000, 10, 0.1)
        assert counts.sum() == 1000
        assert counts[0] >= 100 + 90  # lead plus moved mass
        assert np.all(counts[1:] >= 1)  # validity preserved

    def test_leader_margin_over_all(self):
        counts = biased(10_000, 10, 0.05)
        margins = counts[0] - counts[1:]
        assert np.all(margins >= 0.04 * 10_000)

    def test_rejects_margin_out_of_range(self):
        with pytest.raises(ConfigurationError):
            biased(100, 4, 1.5)

    def test_k1_noop(self):
        assert biased(50, 1, 0.2).tolist() == [50]

    def test_full_slack_margin_delivered_exactly(self):
        # balanced(13, 4) = [4, 3, 3, 3]: donors can give exactly 6.
        counts = biased(13, 4, 6 / 13)
        assert counts.tolist() == [10, 1, 1, 1]

    def test_unachievable_margin_raises(self):
        """Regression: the old donor cap silently delivered a smaller
        margin than requested instead of failing."""
        with pytest.raises(ConfigurationError, match="achievable"):
            biased(13, 4, 7 / 13)
        with pytest.raises(ConfigurationError, match="achievable"):
            biased(100, 2, 0.8)  # single donor has only 49 to give

    @given(nk, st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=200, deadline=None)
    def test_margin_exact_or_rejected(self, t, margin):
        """Achievable margins are delivered in full (the leader gains
        exactly round(margin * n)); unachievable ones raise."""
        n, k = t
        base = balanced(n, k)
        move = int(round(margin * n))
        available = int((base[1:] - 1).sum()) if k > 1 else 0
        if k > 1 and move > available:
            with pytest.raises(ConfigurationError):
                biased(n, k, margin)
            return
        counts = biased(n, k, margin)
        assert counts.sum() == n
        assert counts.min() >= 1
        if k > 1:
            assert counts[0] == base[0] + move
            assert np.all(counts[0] - counts[1:] >= move)


class TestTwoBlock:
    def test_leader_fraction(self):
        counts = two_block(1000, 5, 0.4)
        assert counts[0] == 400
        assert counts.sum() == 1000
        assert counts.size == 5

    def test_remainder_balanced(self):
        counts = two_block(1000, 5, 0.4)
        assert counts[1:].max() - counts[1:].min() <= 1

    def test_extreme_fraction_clamped(self):
        counts = two_block(100, 10, 0.999)
        assert counts.sum() == 100
        assert np.all(counts >= 1)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            two_block(100, 5, 0.0)


class TestZipf:
    def test_total_and_validity(self):
        counts = zipf(1000, 20, 1.0)
        assert counts.sum() == 1000
        assert np.all(counts >= 1)

    def test_monotone_profile(self):
        counts = zipf(10_000, 10, 1.5)
        assert np.all(np.diff(counts) <= 0)

    def test_exponent_zero_near_balanced(self):
        counts = zipf(1000, 8, 0.0)
        assert counts.max() - counts.min() <= 1

    def test_rejects_negative_exponent(self):
        with pytest.raises(ConfigurationError):
            zipf(100, 5, -1.0)


class TestDirichlet:
    def test_total_and_validity(self):
        counts = dirichlet_random(500, 12, 1.0, seed=0)
        assert counts.sum() == 500
        assert np.all(counts >= 1)

    def test_reproducible(self):
        a = dirichlet_random(500, 12, 1.0, seed=1)
        b = dirichlet_random(500, 12, 1.0, seed=1)
        assert np.array_equal(a, b)

    def test_concentration_effect(self):
        skewed = dirichlet_random(100_000, 10, 0.05, seed=2)
        flat = dirichlet_random(100_000, 10, 100.0, seed=2)
        assert gamma_from_counts(skewed) > gamma_from_counts(flat)

    def test_rejects_bad_concentration(self):
        with pytest.raises(ConfigurationError):
            dirichlet_random(100, 5, 0.0)


class TestGeometricGamma:
    @pytest.mark.parametrize("target", [0.02, 0.1, 0.5, 0.9])
    def test_hits_target(self, target):
        counts = geometric_gamma(100_000, 100, target)
        assert gamma_from_counts(counts) == pytest.approx(
            target, rel=0.05
        )

    def test_rejects_below_floor(self):
        with pytest.raises(ConfigurationError, match="1/k"):
            geometric_gamma(1000, 10, 0.05)

    def test_rejects_one(self):
        with pytest.raises(ConfigurationError):
            geometric_gamma(1000, 10, 1.0)

    def test_k1(self):
        assert geometric_gamma(100, 1, 1.0 - 1e-9).tolist() == [100]


class TestCustom:
    def test_copies_input(self):
        original = np.asarray([5, 5], dtype=np.int64)
        out = custom(original)
        out[0] = 99
        assert original[0] == 5

    def test_validates(self):
        with pytest.raises(Exception):
            custom([-1, 2])
