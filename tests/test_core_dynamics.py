"""Tests for the dynamics implementations (correctness of the chains).

The load-bearing checks:

* both step flavours conserve mass and never revive dead opinions;
* consensus is absorbing;
* the closed-form laws (eqs. (5), (6)) match Monte-Carlo estimates from
  both the population and the agent engines — i.e. the exact count-level
  simulation and the vertex-level simulation are the same Markov chain;
* 3-Majority's "first-two-else-third" rule is majority-of-three with
  uniform tie-breaking (the HMajority(3) cross-check);
* 2-Choices' two population-step strategies agree in distribution;
* MedianRule coincides with 2-Choices for k = 2 (the [DGMSS11] remark).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    HMajority,
    MedianRule,
    ThreeMajority,
    TwoChoices,
    UndecidedStateDynamics,
    Voter,
    three_majority_law,
    two_choices_law,
    with_undecided_slot,
)
from repro.core.h_majority import majority_winners
from repro.graphs import CompleteGraph
from repro.state import agents_to_counts, counts_to_agents

ALL_SIMPLE_DYNAMICS = [
    ThreeMajority(),
    TwoChoices(),
    Voter(),
    MedianRule(),
    HMajority(3),
    HMajority(5),
]

count_vectors = st.lists(
    st.integers(min_value=0, max_value=30), min_size=2, max_size=8
).filter(lambda c: sum(c) >= 2)


@pytest.mark.parametrize(
    "dynamics", ALL_SIMPLE_DYNAMICS, ids=lambda d: d.name
)
class TestUniversalInvariants:
    def test_population_step_conserves_mass(self, dynamics, rng):
        counts = np.asarray([10, 20, 5, 0, 15], dtype=np.int64)
        new = dynamics.population_step(counts, rng)
        assert new.sum() == counts.sum()
        assert new.dtype == np.int64

    def test_population_step_never_revives_dead(self, dynamics, rng):
        counts = np.asarray([25, 0, 25, 0], dtype=np.int64)
        for _ in range(20):
            counts = dynamics.population_step(counts, rng)
            assert counts[1] == 0 and counts[3] == 0

    def test_consensus_absorbing_population(self, dynamics, rng):
        counts = np.asarray([0, 50, 0], dtype=np.int64)
        for _ in range(5):
            counts = dynamics.population_step(counts, rng)
        assert counts.tolist() == [0, 50, 0]

    def test_agent_step_shape_and_labels(self, dynamics, rng):
        graph = CompleteGraph(40)
        opinions = counts_to_agents(np.asarray([10, 20, 10]))
        new = dynamics.agent_step(opinions, graph, rng)
        assert new.shape == opinions.shape
        assert set(np.unique(new)) <= {0, 1, 2}

    def test_consensus_absorbing_agent(self, dynamics, rng):
        graph = CompleteGraph(30)
        opinions = np.full(30, 2, dtype=np.int64)
        new = dynamics.agent_step(opinions, graph, rng)
        assert np.all(new == 2)

    @given(counts=count_vectors)
    @settings(max_examples=25, deadline=None)
    def test_population_step_property(self, dynamics, counts):
        local_rng = np.random.default_rng(0)
        counts = np.asarray(counts, dtype=np.int64)
        new = dynamics.population_step(counts, local_rng)
        assert new.sum() == counts.sum()
        assert np.all(new >= 0)
        assert np.all(new[counts == 0] == 0)


class TestThreeMajorityLaw:
    def test_law_sums_to_one(self):
        alpha = np.asarray([0.5, 0.3, 0.2])
        assert three_majority_law(alpha).sum() == pytest.approx(1.0)

    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=9
        ).filter(lambda a: sum(a) > 0)
    )
    @settings(max_examples=100, deadline=None)
    def test_law_is_distribution(self, raw):
        alpha = np.asarray(raw)
        alpha = alpha / alpha.sum()
        law = three_majority_law(alpha)
        assert law.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(law >= -1e-12)

    def test_law_matches_enumeration(self):
        """Eq. (5) equals brute-force enumeration over (w1, w2, w3)."""
        alpha = np.asarray([0.5, 0.3, 0.2])
        k = alpha.size
        law = np.zeros(k)
        for a in range(k):
            for b in range(k):
                for c in range(k):
                    p = alpha[a] * alpha[b] * alpha[c]
                    winner = a if a == b else c
                    law[winner] += p
        assert three_majority_law(alpha) == pytest.approx(law)

    def test_rule_equals_majority_with_random_ties(self):
        """First-two-else-third == majority-of-3, uniform tie-break.

        With all three distinct (a tie), each sampled opinion should win
        w.p. 1/3: P[adopt c-slot value] covers that case.  Verified via
        the exact law against HMajority(3)'s DP law.
        """
        alpha = np.asarray([0.4, 0.35, 0.25])
        dp_law = HMajority(3).single_vertex_law(alpha, 0)
        assert three_majority_law(alpha) == pytest.approx(dp_law)

    def test_population_step_matches_law(self, rng):
        n = 200_000
        counts = np.asarray([n // 2, 3 * n // 10, n // 5])
        alpha = counts / n
        new = ThreeMajority().population_step(counts, rng)
        law = three_majority_law(alpha)
        sigma = np.sqrt(n * law * (1 - law))
        assert np.all(np.abs(new - n * law) < 5 * sigma)

    def test_expected_alpha_next(self):
        alpha = np.asarray([0.6, 0.4])
        expected = ThreeMajority().expected_alpha_next(alpha)
        gamma = 0.36 + 0.16
        assert expected[0] == pytest.approx(0.6 * (1 + 0.6 - gamma))


class TestTwoChoicesLaw:
    def test_law_sums_to_one(self):
        alpha = np.asarray([0.5, 0.3, 0.2])
        for current in range(3):
            law = two_choices_law(alpha, current)
            assert law.sum() == pytest.approx(1.0)

    def test_law_matches_enumeration(self):
        """Eq. (6) equals brute-force enumeration over (w1, w2)."""
        alpha = np.asarray([0.5, 0.3, 0.2])
        k = alpha.size
        for own in range(k):
            law = np.zeros(k)
            for a in range(k):
                for b in range(k):
                    p = alpha[a] * alpha[b]
                    law[a if a == b else own] += p
            assert two_choices_law(alpha, own) == pytest.approx(law)

    def test_group_and_pair_strategies_agree(self, rng_factory):
        """Both exact strategies give the same mean and variance."""
        counts = np.asarray([300, 200, 100, 400], dtype=np.int64)
        n = int(counts.sum())
        dynamics = TwoChoices()
        alive = np.flatnonzero(counts)
        reps = 4000
        group_samples = np.empty((reps, 4))
        pair_samples = np.empty((reps, 4))
        rng_a, rng_b = rng_factory(1), rng_factory(2)
        for row in range(reps):
            group_samples[row] = dynamics._population_step_groups(
                counts, alive, n, rng_a
            )
            pair_samples[row] = dynamics._population_step_pairs(
                counts, alive, n, rng_b
            )
        mean_gap = np.abs(
            group_samples.mean(axis=0) - pair_samples.mean(axis=0)
        )
        pooled_sem = np.sqrt(
            group_samples.var(axis=0) / reps
            + pair_samples.var(axis=0) / reps
        )
        assert np.all(mean_gap < 5 * pooled_sem + 1e-9)
        var_ratio = group_samples.var(axis=0) / pair_samples.var(axis=0)
        assert np.all((var_ratio > 0.8) & (var_ratio < 1.25))

    def test_threshold_dispatch(self, rng):
        # Tiny threshold forces the pair strategy even for small support.
        dynamics = TwoChoices(group_step_threshold=1e-9)
        counts = np.asarray([50, 50], dtype=np.int64)
        new = dynamics.population_step(counts, rng)
        assert new.sum() == 100

    def test_bad_threshold(self):
        with pytest.raises(ValueError):
            TwoChoices(group_step_threshold=0.0)

    def test_population_step_matches_mean(self, rng):
        n = 100_000
        counts = np.asarray([60_000, 40_000])
        alpha = counts / n
        total = np.zeros(2)
        reps = 50
        for _ in range(reps):
            total += TwoChoices().population_step(counts, rng)
        mean = total / reps / n
        expected = TwoChoices().expected_alpha_next(alpha)
        assert mean == pytest.approx(expected, abs=3e-3)


class TestHMajority:
    def test_h1_is_voter(self, rng):
        alpha = np.asarray([0.3, 0.7])
        law = HMajority(1).single_vertex_law(alpha, 0)
        assert law == pytest.approx(alpha)

    def test_rejects_h0(self):
        with pytest.raises(ValueError):
            HMajority(0)

    def test_majority_winners_clear_majority(self, rng):
        samples = np.asarray([[1, 1, 2], [0, 2, 2], [3, 3, 3]])
        winners = majority_winners(samples, rng)
        assert winners.tolist() == [1, 2, 3]

    def test_majority_winners_tie_uniform(self, rng):
        samples = np.tile(np.asarray([[0, 1, 2]]), (30_000, 1))
        winners = majority_winners(samples, rng)
        histogram = np.bincount(winners, minlength=3) / 30_000
        assert np.all(np.abs(histogram - 1 / 3) < 0.02)

    def test_exact_law_is_distribution(self):
        alpha = np.asarray([0.25, 0.25, 0.5])
        for h in (2, 3, 4, 5):
            law = HMajority(h).single_vertex_law(alpha, 0)
            assert law.sum() == pytest.approx(1.0)
            assert np.all(law >= 0)

    def test_exact_law_refuses_huge_support(self):
        alpha = np.full(20, 1 / 20)
        with pytest.raises(NotImplementedError):
            HMajority(3).single_vertex_law(alpha, 0)

    def test_population_step_matches_exact_law(self, rng):
        n = 100_000
        counts = np.asarray([n // 2, n // 4, n // 4])
        alpha = counts / n
        law = HMajority(5).single_vertex_law(alpha, 0)
        new = HMajority(5).population_step(counts, rng)
        sigma = np.sqrt(n * law * (1 - law))
        assert np.all(np.abs(new - n * law) < 5 * sigma)

    def test_larger_h_amplifies_leader(self):
        alpha = np.asarray([0.6, 0.4])
        p3 = HMajority(3).single_vertex_law(alpha, 0)[0]
        p7 = HMajority(7).single_vertex_law(alpha, 0)[0]
        assert p7 > p3 > alpha[0]


class TestVoter:
    def test_martingale(self):
        alpha = np.asarray([0.1, 0.9])
        assert Voter().expected_alpha_next(alpha) == pytest.approx(alpha)

    def test_population_step_multinomial(self, rng):
        counts = np.asarray([5000, 5000])
        new = Voter().population_step(counts, rng)
        assert abs(int(new[0]) - 5000) < 500


class TestMedianRule:
    def test_single_vertex_law_distribution(self):
        alpha = np.asarray([0.2, 0.3, 0.5])
        for own in range(3):
            law = MedianRule().single_vertex_law(alpha, own)
            assert law.sum() == pytest.approx(1.0)
            assert np.all(law >= 0)

    def test_law_matches_enumeration(self):
        alpha = np.asarray([0.2, 0.3, 0.1, 0.4])
        k = alpha.size
        for own in range(k):
            brute = np.zeros(k)
            for a in range(k):
                for b in range(k):
                    med = sorted((own, a, b))[1]
                    brute[med] += alpha[a] * alpha[b]
            law = MedianRule().single_vertex_law(alpha, own)
            assert law == pytest.approx(brute, abs=1e-12)

    def test_coincides_with_two_choices_for_k2(self):
        """[DGMSS11]: median of {own, X, Y} == 2-Choices when k = 2."""
        alpha = np.asarray([0.35, 0.65])
        for own in range(2):
            med = MedianRule().single_vertex_law(alpha, own)
            cho = two_choices_law(alpha, own)
            assert med == pytest.approx(cho)

    def test_median_validity_not_plurality(self):
        """The median rule can elect a non-plurality opinion: with mass
        on the extremes, the middle opinion wins — the validity caveat
        that motivates majority dynamics for k > 2."""
        alpha = np.asarray([0.45, 0.1, 0.45])
        expected = MedianRule().expected_alpha_next(alpha)
        assert expected[1] > alpha[1]


class TestUndecided:
    def test_with_undecided_slot(self):
        out = with_undecided_slot(np.asarray([3, 4]))
        assert out.tolist() == [3, 4, 0]

    def test_population_step_conserves(self, rng):
        dynamics = UndecidedStateDynamics()
        counts = with_undecided_slot(np.asarray([40, 40, 20]))
        for _ in range(10):
            counts = dynamics.population_step(counts, rng)
            assert counts.sum() == 100

    def test_clash_produces_undecided(self, rng):
        dynamics = UndecidedStateDynamics()
        counts = with_undecided_slot(np.asarray([500, 500]))
        new = dynamics.population_step(counts, rng)
        assert new[2] > 0  # clashes must have occurred w.o.p.

    def test_single_vertex_law(self):
        dynamics = UndecidedStateDynamics()
        alpha = np.asarray([0.4, 0.4, 0.2])  # last = undecided
        law = dynamics.single_vertex_law(alpha, 0)
        assert law[0] == pytest.approx(0.6)  # stay: alpha_0 + alpha_u
        assert law[2] == pytest.approx(0.4)
        law_u = dynamics.single_vertex_law(alpha, 2)
        assert law_u == pytest.approx(alpha)

    def test_expected_alpha_next_sums_to_one(self):
        dynamics = UndecidedStateDynamics()
        alpha = np.asarray([0.3, 0.3, 0.2, 0.2])
        expected = dynamics.expected_alpha_next(alpha)
        assert expected.sum() == pytest.approx(1.0)

    def test_agent_step_semantics(self, rng):
        dynamics = UndecidedStateDynamics(num_decided=2)
        graph = CompleteGraph(6)
        # All vertices decided 0 except one undecided (label 2).
        opinions = np.asarray([0, 0, 0, 0, 0, 2], dtype=np.int64)
        new = dynamics.agent_step(opinions, graph, rng)
        # Decided-0 vertices can only stay 0 (they see 0 or undecided).
        assert set(np.unique(new[:5])) <= {0}

    def test_agent_step_requires_label_binding(self, rng):
        """Regression: no more opinions.max() fallback, which mistook
        the top decided label for the undecided state on any fully
        decided start."""
        from repro.errors import ConfigurationError

        dynamics = UndecidedStateDynamics()
        opinions = np.asarray([0, 1, 0, 1], dtype=np.int64)
        with pytest.raises(ConfigurationError, match="num_decided"):
            dynamics.agent_step(opinions, CompleteGraph(4), rng)

    def test_decided_start_on_non_complete_graph(self, rng):
        """Regression: from a fully decided start on a non-complete
        graph, vertices holding the top decided label must clash into
        the undecided state — never be treated as undecided and adopt
        a decided opinion directly."""
        from repro.engine import AgentEngine
        from repro.graphs.generators import random_regular

        n = 200
        graph = random_regular(n, 8, seed=1, self_loops=True)
        opinions = np.asarray([0, 1] * (n // 2), dtype=np.int64)
        engine = AgentEngine(
            UndecidedStateDynamics(),
            graph,
            opinions,
            num_opinions=3,  # binds the undecided label to 2
            seed=rng,
        )
        assert engine.dynamics.num_decided == 2
        new = engine.step()
        # One synchronous USD step can only keep a decided opinion or
        # clash into undecided; a decided vertex can never jump to the
        # *other* decided opinion in one round.
        assert set(np.unique(new[opinions == 0])) <= {0, 2}
        assert set(np.unique(new[opinions == 1])) <= {1, 2}
        # Clashes must actually occur w.o.p. from a half/half start.
        assert (new == 2).any()

    def test_bind_opinion_space_conflict_raises(self):
        from repro.errors import ConfigurationError

        dynamics = UndecidedStateDynamics(num_decided=2)
        dynamics.bind_opinion_space(3)  # consistent: idempotent
        assert dynamics.num_decided == 2
        with pytest.raises(ConfigurationError, match="fresh instance"):
            dynamics.bind_opinion_space(5)

    def test_agent_engine_inferred_labels_fail_loudly(self, rng):
        """AgentEngine's label-maximum num_opinions fallback must not
        silently bind a fully decided start's top label as undecided —
        the unbound dynamics raises at the first step instead."""
        from repro.engine import AgentEngine
        from repro.errors import ConfigurationError

        engine = AgentEngine(
            UndecidedStateDynamics(),
            CompleteGraph(4),
            np.asarray([0, 1, 0, 1], dtype=np.int64),
            seed=rng,  # num_opinions omitted on purpose
        )
        assert engine.dynamics.num_decided is None
        with pytest.raises(ConfigurationError, match="num_decided"):
            engine.step()

    def test_population_matches_expected(self, rng):
        dynamics = UndecidedStateDynamics()
        counts = with_undecided_slot(np.asarray([600, 300]))
        counts[2] = 100
        counts[0] -= 100
        n = counts.sum()
        alpha = counts / n
        total = np.zeros(3)
        reps = 400
        for _ in range(reps):
            total += dynamics.population_step(counts, rng)
        mean = total / reps / n
        assert mean == pytest.approx(
            dynamics.expected_alpha_next(alpha), abs=5e-3
        )


class TestEngineEquivalence:
    """Population and agent chains agree on the complete graph."""

    @pytest.mark.parametrize(
        "dynamics",
        [ThreeMajority(), TwoChoices(), Voter(), MedianRule()],
        ids=lambda d: d.name,
    )
    def test_one_step_mean_agreement(self, dynamics, rng_factory):
        counts = np.asarray([500, 300, 200], dtype=np.int64)
        n = int(counts.sum())
        k = counts.size
        graph = CompleteGraph(n)
        opinions = counts_to_agents(counts)
        reps = 1200
        pop_mean = np.zeros(k)
        agent_mean = np.zeros(k)
        rng_a, rng_b = rng_factory(11), rng_factory(12)
        for _ in range(reps):
            pop_mean += dynamics.population_step(counts, rng_a)
            agent_mean += agents_to_counts(
                dynamics.agent_step(opinions, graph, rng_b), k
            )
        pop_mean /= reps
        agent_mean /= reps
        # Means should agree within a few standard errors (~ sqrt(n)).
        tolerance = 6 * np.sqrt(n) / np.sqrt(reps) * 3
        assert np.all(np.abs(pop_mean - agent_mean) < tolerance)
