"""Tests for stopping times (Def. 4.4) and the bound formulas (Fig. 1)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import ThreeMajority
from repro.engine import PopulationEngine, run_until_consensus
from repro.errors import ConfigurationError
from repro.theory.bounds import (
    exponent_curve_prior,
    exponent_curve_this_work,
    gamma_condition,
    lower_bound,
    plurality_margin,
    prior_upper_bound,
    upper_bound,
)
from repro.theory.stopping import (
    DriftConstants,
    StoppingTimeTracker,
    classify_opinions,
)


class TestDriftConstants:
    def test_paper_defaults(self):
        c = DriftConstants()
        assert c.c_weak == pytest.approx(0.1)
        assert c.c_active == pytest.approx(0.05)
        assert c.c_down_gamma == pytest.approx(1 / 30)

    def test_ordering_enforced(self):
        with pytest.raises(ConfigurationError, match="requires"):
            DriftConstants(c_active=0.2)  # violates c_active < c_weak

    def test_c_weak_range(self):
        with pytest.raises(ConfigurationError):
            DriftConstants(c_weak=0.6)


class TestClassifyOpinions:
    def test_leader_never_weak(self):
        for alpha in (
            np.asarray([0.5, 0.3, 0.2]),
            np.full(10, 0.1),
            np.asarray([0.9, 0.05, 0.05]),
        ):
            weak = classify_opinions(alpha)
            assert not weak[int(np.argmax(alpha))]

    def test_small_opinion_weak(self):
        alpha = np.asarray([0.59, 0.40, 0.01])
        weak = classify_opinions(alpha)
        assert weak[2]
        assert not weak[0]

    def test_balanced_all_strong(self):
        alpha = np.full(5, 0.2)
        assert not classify_opinions(alpha).any()


class TestStoppingTimeTracker:
    def _feed(self, tracker, sequence):
        for round_index, counts in enumerate(sequence):
            tracker.observe(round_index, np.asarray(counts))

    def test_vanish_detection(self):
        tracker = StoppingTimeTracker(pair=(0, 1))
        self._feed(
            tracker, [[50, 50, 0], [30, 70, 0], [0, 100, 0]]
        )
        assert tracker.times["vanish_i"] == 2
        assert "vanish_j" not in tracker.times

    def test_band_exits(self):
        tracker = StoppingTimeTracker(pair=(0, 1))
        # alpha_0: 0.50 -> 0.56 (>= 1.1x needs 0.55): up_i at round 1.
        self._feed(tracker, [[50, 50], [56, 44]])
        assert tracker.times["up_i"] == 1
        assert tracker.times["down_j"] == 1

    def test_plus_delta_threshold(self):
        tracker = StoppingTimeTracker(pair=(0, 1), x_delta=0.3)
        self._feed(tracker, [[50, 50], [60, 40], [70, 30]])
        assert tracker.times["plus_delta"] == 2

    def test_weak_firing(self):
        tracker = StoppingTimeTracker(pair=(0, 1))
        # Round 1: alpha = (0.7, 0.02, ...), gamma ~ 0.5 -> j weak.
        self._feed(tracker, [[50, 50, 0], [70, 2, 28]])
        assert tracker.times["weak_j"] == 1

    def test_eta_threshold(self):
        tracker = StoppingTimeTracker(pair=(0, 1), x_eta=0.2)
        # eta = (alpha_0 - alpha_1) / sqrt(max): round 1 has
        # (0.64 - 0.36) / 0.8 = 0.35 >= 0.2.
        self._feed(tracker, [[50, 50], [64, 36]])
        assert tracker.times["plus_eta"] == 1

    def test_up_eta_relative_growth(self):
        tracker = StoppingTimeTracker(pair=(0, 1))
        # eta grows from 0.1/sqrt(0.55) to 0.3/sqrt(0.65): >> 1.001x.
        self._feed(tracker, [[55, 45], [65, 35]])
        assert tracker.times["up_eta"] == 1

    def test_first_helper(self):
        tracker = StoppingTimeTracker(pair=(0, 1))
        self._feed(tracker, [[50, 50], [56, 44]])
        assert tracker.first("up_i", "vanish_i") == 1
        assert tracker.first("vanish_i") is None

    def test_round0_conditions_can_fire(self):
        tracker = StoppingTimeTracker(pair=(0, 1))
        self._feed(tracker, [[90, 1, 9]])
        assert tracker.times.get("weak_j") == 0

    def test_integration_with_engine(self):
        tracker = StoppingTimeTracker(pair=(0, 1), x_gamma=0.9)
        engine = PopulationEngine(
            ThreeMajority(), [400, 300, 300], seed=0
        )
        run_until_consensus(
            engine, max_rounds=10_000, observers=(tracker,)
        )
        # At consensus one of the pair vanished or gamma hit 0.9.
        assert tracker.first(
            "vanish_i", "vanish_j", "plus_gamma"
        ) is not None


class TestBoundFormulas:
    def test_upper_bound_crossover_3maj(self):
        n = 10_000
        small_k = upper_bound("3-majority", n, 4)
        log_n = math.log(n)
        assert small_k == pytest.approx(4 * log_n)
        big_k = upper_bound("3-majority", n, n)
        assert big_k == pytest.approx(math.sqrt(n) * log_n**2)

    def test_upper_bound_2cho_linear(self):
        n = 10_000
        assert upper_bound("2-choices", n, 50) == pytest.approx(
            50 * math.log(n)
        )

    def test_prior_bound_regimes(self):
        n = 10**6
        # Small k: k log n for both.
        assert prior_upper_bound("3-majority", n, 10) == pytest.approx(
            10 * math.log(n)
        )
        # Large k: n^{2/3} polylog for 3-majority; None for 2-choices.
        assert prior_upper_bound("3-majority", n, n // 2) == (
            pytest.approx(n ** (2 / 3) * math.log(n) ** 1.5)
        )
        assert prior_upper_bound("2-choices", n, n // 2) is None

    def test_lower_bound(self):
        n = 10_000
        assert lower_bound("2-choices", n, 100) == 100
        assert lower_bound("3-majority", n, n) == pytest.approx(
            math.sqrt(n / math.log(n))
        )

    def test_gamma_condition(self):
        n = 10_000
        assert gamma_condition("3-majority", n) == pytest.approx(
            math.log(n) / math.sqrt(n)
        )
        assert gamma_condition("2-choices", n) == pytest.approx(
            math.log(n) ** 2 / n
        )

    def test_plurality_margin(self):
        n = 10_000
        assert plurality_margin("3-majority", n) == pytest.approx(
            math.sqrt(math.log(n) / n)
        )
        assert plurality_margin(
            "2-choices", n, alpha_leader=0.25
        ) == pytest.approx(math.sqrt(0.25 * math.log(n) / n))

    def test_plurality_margin_2cho_requires_leader(self):
        with pytest.raises(ConfigurationError):
            plurality_margin("2-choices", 100)

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            upper_bound("3-majority", 100, 1)
        with pytest.raises(ConfigurationError):
            upper_bound("3-majority", 100, 101)

    def test_rejects_unknown_dynamics(self):
        with pytest.raises(ConfigurationError):
            upper_bound("voter", 100, 5)


class TestExponentCurves:
    def test_this_work_matches_figure_1b(self):
        assert exponent_curve_this_work("3-majority", 0.3) == 0.3
        assert exponent_curve_this_work("3-majority", 0.8) == 0.5
        assert exponent_curve_this_work("2-choices", 0.8) == 0.8

    def test_prior_matches_figure_1a(self):
        assert exponent_curve_prior("3-majority", 0.2) == 0.2
        assert exponent_curve_prior("3-majority", 0.5) == pytest.approx(
            2 / 3
        )
        assert exponent_curve_prior("2-choices", 0.4) == 0.4
        assert exponent_curve_prior("2-choices", 0.7) is None

    def test_improvement_region(self):
        """This work strictly improves in (1/3, 1) for 3-Majority."""
        for kappa in (0.4, 0.5, 0.7, 0.9):
            new = exponent_curve_this_work("3-majority", kappa)
            old = exponent_curve_prior("3-majority", kappa)
            assert new <= old
            if kappa > 1 / 3 and kappa != 2 / 3:
                assert new < old or kappa < 0.5

    def test_kappa_domain(self):
        with pytest.raises(ConfigurationError):
            exponent_curve_this_work("3-majority", 1.5)
