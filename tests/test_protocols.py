"""Tests for the population-protocol substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocols import (
    ApproximateMajority,
    PairwiseEngine,
    UndecidedPairwise,
    VoterPairwise,
)


class TestEngineBasics:
    def test_requires_matching_state_count(self):
        with pytest.raises(ConfigurationError, match="states"):
            PairwiseEngine(ApproximateMajority(), [10, 10])

    def test_requires_two_agents(self):
        with pytest.raises(ConfigurationError, match="2 agents"):
            PairwiseEngine(ApproximateMajority(), [1, 0, 0])

    def test_step_conserves_agents(self):
        engine = PairwiseEngine(
            ApproximateMajority(), [30, 20, 10], seed=0
        )
        for _ in range(200):
            engine.step()
            assert engine.counts.sum() == 60
            assert np.all(engine.counts >= 0)

    def test_parallel_time(self):
        engine = PairwiseEngine(
            ApproximateMajority(), [5, 5, 0], seed=0
        )
        engine.run_interactions(20)
        assert engine.parallel_time == pytest.approx(2.0)

    def test_consensus_detection_with_blanks(self):
        protocol = ApproximateMajority()
        engine = PairwiseEngine(protocol, [10, 0, 0], seed=0)
        assert engine.is_consensus()
        assert engine.winner() == 0
        # Blanks present: output consensus not yet reached.
        engine = PairwiseEngine(protocol, [9, 0, 1], seed=0)
        assert not engine.is_consensus()
        assert engine.winner() is None

    def test_run_until_consensus_budget(self):
        engine = PairwiseEngine(
            ApproximateMajority(), [500, 500, 0], seed=0
        )
        assert engine.run_until_consensus(max_interactions=1) is None


class TestApproximateMajority:
    def test_rules(self, rng):
        protocol = ApproximateMajority()
        A, B, BLANK = protocol.A, protocol.B, protocol.BLANK
        assert protocol.interact(A, B, rng) == (A, BLANK)
        assert protocol.interact(B, A, rng) == (B, BLANK)
        assert protocol.interact(A, BLANK, rng) == (A, A)
        assert protocol.interact(B, BLANK, rng) == (B, B)
        assert protocol.interact(A, A, rng) == (A, A)
        assert protocol.interact(BLANK, A, rng) == (BLANK, A)

    def test_converges_to_clear_majority(self):
        """[AAE07]: a large initial gap decides for the majority."""
        n = 1000
        wins = 0
        runs = 8
        for seed in range(runs):
            engine = PairwiseEngine(
                ApproximateMajority(),
                ApproximateMajority.initial_counts(650, 350),
                seed=(1, seed),
            )
            result = engine.run_until_consensus(
                max_interactions=200 * n
            )
            assert result is not None
            wins += engine.winner() == ApproximateMajority.A
        assert wins == runs

    def test_parallel_time_logarithmic_shape(self):
        """Consensus in O(log n) parallel time: doubling n does not
        double the parallel time."""

        def median_parallel_time(n):
            times = []
            for seed in range(5):
                engine = PairwiseEngine(
                    ApproximateMajority(),
                    ApproximateMajority.initial_counts(
                        2 * n // 3, n // 3
                    ),
                    seed=(2, n, seed),
                )
                result = engine.run_until_consensus(400 * n)
                assert result is not None
                times.append(result / n)
            return float(np.median(times))

        small = median_parallel_time(250)
        large = median_parallel_time(1000)
        assert large < 2.5 * small

    def test_initial_counts_helper(self):
        counts = ApproximateMajority.initial_counts(3, 4, 5)
        assert counts.tolist() == [3, 4, 5]


class TestUndecidedPairwise:
    def test_rules(self, rng):
        protocol = UndecidedPairwise(3)
        undecided = 3
        assert protocol.interact(undecided, 1, rng) == (1, 1)
        assert protocol.interact(undecided, undecided, rng) == (
            undecided,
            undecided,
        )
        assert protocol.interact(0, 1, rng) == (undecided, 1)
        assert protocol.interact(0, 0, rng) == (0, 0)
        assert protocol.interact(0, undecided, rng) == (0, undecided)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            UndecidedPairwise(0)

    def test_consensus_from_biased_start(self):
        counts = np.asarray([260, 120, 120, 0], dtype=np.int64)
        engine = PairwiseEngine(UndecidedPairwise(3), counts, seed=5)
        result = engine.run_until_consensus(max_interactions=500_000)
        assert result is not None
        assert engine.winner() in (0, 1, 2)

    def test_outputs_hide_undecided(self):
        protocol = UndecidedPairwise(2)
        assert protocol.output(0) == 0
        assert protocol.output(2) is None


class TestVoterPairwise:
    def test_rules(self, rng):
        protocol = VoterPairwise(4)
        assert protocol.interact(0, 3, rng) == (3, 3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            VoterPairwise(0)

    def test_consensus_much_slower_than_approximate_majority(self):
        """Voter needs Theta(n) parallel time vs O(log n) for AM."""
        n = 400
        voter_times = []
        am_times = []
        for seed in range(3):
            voter = PairwiseEngine(
                VoterPairwise(2),
                np.asarray([n // 2, n // 2]),
                seed=(7, seed),
            )
            result = voter.run_until_consensus(5000 * n)
            assert result is not None
            voter_times.append(result / n)
            am = PairwiseEngine(
                ApproximateMajority(),
                ApproximateMajority.initial_counts(n // 2, n // 2),
                seed=(8, seed),
            )
            result = am.run_until_consensus(5000 * n)
            assert result is not None
            am_times.append(result / n)
        assert np.median(voter_times) > 3 * np.median(am_times)
