"""Unit tests for the EXPERIMENTS.md generator."""

from __future__ import annotations

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.reporting import render_experiments_markdown
from repro.experiments.base import ExperimentResult


def _result(experiment_id: str, verdicts: list[str]) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title=f"title of {experiment_id}",
        preset="paper",
        headers=["a", "b"],
        rows=[[1, 2], [3, 4]],
        comparisons=[
            ComparisonRecord(experiment_id, f"claim {i}", "measured", v)
            for i, v in enumerate(verdicts)
        ],
        notes="some notes",
    )


class TestRenderExperimentsMarkdown:
    def test_header_and_sections(self):
        body = render_experiments_markdown(
            [_result("fig1", ["match"])], preset="paper"
        )
        assert body.startswith("# EXPERIMENTS")
        assert "--preset paper" in body
        assert "## fig1 — title of fig1" in body
        assert "some notes" in body
        assert "| claim 0 |" in body

    def test_summary_counts(self):
        body = render_experiments_markdown(
            [_result("x", ["match", "partial", "match"])], preset="quick"
        )
        assert "| x | title of x | 2/3 match | partial |" in body

    def test_overall_states(self):
        body = render_experiments_markdown(
            [
                _result("all-good", ["match", "match"]),
                _result("has-partial", ["match", "partial"]),
                _result("has-bad", ["mismatch"]),
            ],
            preset="quick",
        )
        assert "| all-good | title of all-good | 2/2 match | match |" in body
        assert "| has-bad | title of has-bad | 0/1 match | mismatch |" in body

    def test_elapsed_rendered(self):
        body = render_experiments_markdown(
            [_result("fig1", ["match"])],
            preset="paper",
            elapsed={"fig1": 12.34},
        )
        assert "Wall-clock: 12.3s" in body

    def test_table_in_code_block(self):
        body = render_experiments_markdown(
            [_result("fig1", ["match"])], preset="paper"
        )
        assert "```\n[fig1]" in body
