"""Tests for ``repro.lint`` — the static contract checker.

Each rule gets a minimal violating fixture tree (asserting the exact
diagnostic), a clean fixture, and the suite covers suppression-comment
semantics, the rule registry, and an end-to-end ``repro lint`` run
over the installed package asserting zero violations.
"""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.lint import (
    Diagnostic,
    available_rules,
    get_rule,
    register_rule,
    run_lint,
    unregister_rule,
)

ALL_RULES = {
    "rng-discipline",
    "no-row-loop",
    "registry-completeness",
    "optimize-safe-contracts",
    "spec-threading",
    "store-transaction-discipline",
}


def write_tree(root: Path, files: dict[str, str]) -> Path:
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return root


def lint(root: Path, rule: str) -> list[Diagnostic]:
    return run_lint([root], select=[rule])


# ---------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------


class _DummyRule:
    name = "dummy-rule"
    description = "a test rule"
    severity = "warning"

    def check(self, context):
        return []


def test_registry_register_lookup_unregister():
    try:
        register_rule(_DummyRule())
        assert "dummy-rule" in available_rules()
        assert get_rule("dummy-rule").description == "a test rule"
        with pytest.raises(ConfigurationError):
            register_rule(_DummyRule())
        register_rule(_DummyRule(), replace=True)
    finally:
        unregister_rule("dummy-rule")
    assert "dummy-rule" not in available_rules()
    with pytest.raises(ConfigurationError):
        get_rule("dummy-rule")


def test_registry_rejects_bad_severity():
    class Bad(_DummyRule):
        name = "bad-severity"
        severity = "fatal"

    with pytest.raises(ConfigurationError):
        register_rule(Bad())


def test_builtin_rules_registered():
    assert ALL_RULES <= set(available_rules())


def test_diagnostic_render_format():
    diagnostic = Diagnostic(
        path="core/base.py", line=7, rule="rng-discipline", message="boom"
    )
    assert diagnostic.render() == "core/base.py:7: rng-discipline boom"


# ---------------------------------------------------------------------
# rng-discipline
# ---------------------------------------------------------------------


def test_rng_discipline_flags_default_rng(tmp_path):
    write_tree(
        tmp_path,
        {
            "sampler.py": """\
                import numpy as np

                def draw():
                    rng = np.random.default_rng(0)
                    return rng.integers(10)
            """
        },
    )
    (diagnostic,) = lint(tmp_path, "rng-discipline")
    assert diagnostic.render() == (
        "sampler.py:4: rng-discipline call to np.random.default_rng "
        "outside seeding.py; take a numpy.random.Generator parameter "
        "(repro.seeding.as_generator / spawn_generators) instead"
    )


def test_rng_discipline_flags_legacy_and_imports(tmp_path):
    write_tree(
        tmp_path,
        {
            "legacy.py": """\
                import numpy as np
                from numpy.random import default_rng

                def jitter(x):
                    np.random.seed(0)
                    return x + np.random.normal()
            """
        },
    )
    diagnostics = lint(tmp_path, "rng-discipline")
    assert [(d.line, d.rule) for d in diagnostics] == [
        (2, "rng-discipline"),
        (5, "rng-discipline"),
        (6, "rng-discipline"),
    ]


def test_rng_discipline_allows_seeding_and_declarative(tmp_path):
    write_tree(
        tmp_path,
        {
            "seeding.py": """\
                import numpy as np

                def as_generator(seed):
                    return np.random.default_rng(seed)
            """,
            "clean.py": """\
                import numpy as np

                def split(seed):
                    root = np.random.SeedSequence(seed)
                    return root.spawn(2)

                def step(counts, rng: np.random.Generator):
                    return rng.permutation(counts)
            """,
        },
    )
    assert lint(tmp_path, "rng-discipline") == []


# ---------------------------------------------------------------------
# no-row-loop
# ---------------------------------------------------------------------


def test_no_row_loop_flags_loop_and_missing_override(tmp_path):
    write_tree(
        tmp_path,
        {
            "core/dyn.py": """\
                import numpy as np


                class Looped(Dynamics):
                    def population_step_batch(self, counts, rng):
                        out = []
                        for row in counts:
                            out.append(self.population_step(row, rng))
                        return np.stack(out)
            """
        },
    )
    diagnostics = lint(tmp_path, "no-row-loop")
    messages = [d.render() for d in diagnostics]
    assert (
        "core/dyn.py:4: no-row-loop Looped does not override "
        "async_population_step_batch; without it the base class "
        "row-loop fallback runs and the batch engines lose their "
        "speedup"
    ) in messages
    assert (
        "core/dyn.py:7: no-row-loop Python for loop in "
        "Looped.population_step_batch; batch methods must vectorize "
        "over the replica axis (use iter_row_chunks for scratch-memory "
        "chunking)"
    ) in messages
    assert len(diagnostics) == 2


def test_no_row_loop_requires_agent_batch_for_pull_trio(tmp_path):
    write_tree(
        tmp_path,
        {
            "core/three_majority.py": """\
                class ThreeMajority(Dynamics):
                    def population_step_batch(self, counts, rng):
                        return counts

                    def async_population_step_batch(self, counts, rng):
                        return counts
            """
        },
    )
    (diagnostic,) = lint(tmp_path, "no-row-loop")
    assert "does not override agent_step_batch" in diagnostic.message


def test_no_row_loop_allows_chunk_iterators_and_base_class(tmp_path):
    write_tree(
        tmp_path,
        {
            "core/clean.py": """\
                import abc


                class Dynamics(abc.ABC):
                    def population_step_batch(self, counts, rng):
                        # Base-class fallback row loop is exempt: the
                        # class subclasses ABC, not Dynamics.
                        return [self.step(row, rng) for row in counts]


                class Chunked(Dynamics):
                    def population_step_batch(self, counts, rng):
                        for start, stop in iter_row_chunks(8, 4, 16):
                            counts[start:stop] *= 1
                        return counts

                    def async_population_step_batch(self, counts, rng):
                        return counts
            """
        },
    )
    assert lint(tmp_path, "no-row-loop") == []


# ---------------------------------------------------------------------
# registry-completeness
# ---------------------------------------------------------------------


def test_registry_completeness_unregistered_dynamics(tmp_path):
    write_tree(
        tmp_path,
        {
            "core/registry.py": """\
                _FACTORIES = {"voter": Voter}
            """,
            "core/voter.py": """\
                class Voter(Dynamics):
                    def population_step_batch(self, counts, rng):
                        return counts

                    def async_population_step_batch(self, counts, rng):
                        return counts

                    def agent_step_batch(self, opinions, graph, rng):
                        return opinions
            """,
            "core/orphan.py": """\
                class Orphan(Dynamics):
                    def population_step_batch(self, counts, rng):
                        return counts

                    def async_population_step_batch(self, counts, rng):
                        return counts
            """,
        },
    )
    (diagnostic,) = lint(tmp_path, "registry-completeness")
    assert diagnostic.render() == (
        "core/orphan.py:1: registry-completeness Dynamics subclass "
        "Orphan is not referenced by core/registry.py; register it so "
        "make_dynamics can build it"
    )


def test_registry_completeness_unregistered_engine_and_backend(tmp_path):
    write_tree(
        tmp_path,
        {
            "engine/fast.py": """\
                class FastEngine:
                    pass
            """,
            "backends/gpu.py": """\
                class GpuBackend:
                    name = "gpu"
            """,
        },
    )
    diagnostics = lint(tmp_path, "registry-completeness")
    assert [d.path for d in diagnostics] == [
        "backends/gpu.py",
        "engine/fast.py",
    ]
    assert "register_backend" in diagnostics[0].message
    assert "register_engine" in diagnostics[1].message


def test_registry_completeness_orphan_kernel(tmp_path):
    write_tree(
        tmp_path,
        {
            "backends/numba_kernels.py": """\
                KERNEL_NAMES = frozenset({"ghost_kernel"})
            """,
            "core/base.py": """\
                def hot_path(backend, data):
                    fn = backend.kernel("real_kernel")
                    return fn(data)
            """,
        },
    )
    (diagnostic,) = lint(tmp_path, "registry-completeness")
    assert diagnostic.render() == (
        "backends/numba_kernels.py:1: registry-completeness kernel "
        "'ghost_kernel' is exported by KERNEL_NAMES but no dispatch "
        'site requests it via .kernel("ghost_kernel")'
    )


def test_registry_completeness_backend_kernel_counts_as_request(tmp_path):
    # The quarantine-aware dispatch helper requests kernels by name
    # through a plain function call, not a backend attribute; the rule
    # must recognise both forms or every backend_kernel site regresses
    # into a false "orphan kernel" diagnostic.
    write_tree(
        tmp_path,
        {
            "backends/numba_kernels.py": """\
                KERNEL_NAMES = frozenset({"real_kernel"})
            """,
            "core/base.py": """\
                def hot_path(data):
                    fn = backend_kernel("real_kernel")
                    return fn(data)
            """,
        },
    )
    assert lint(tmp_path, "registry-completeness") == []


def test_registry_completeness_unarmed_fault_point(tmp_path):
    write_tree(
        tmp_path,
        {
            "faults/points.py": """\
                DECLARED = (FaultPoint("store.transaction", "doc"),)
            """,
            "service/store.py": """\
                def begin():
                    fault_point("worker.rogue")
            """,
        },
    )
    rendered = sorted(
        d.render() for d in lint(tmp_path, "registry-completeness")
    )
    assert len(rendered) == 2
    assert "declared but no armed" in rendered[0]
    assert "'store.transaction'" in rendered[0]
    assert "undeclared point 'worker.rogue'" in rendered[1]


def test_registry_completeness_armed_fault_point_is_clean(tmp_path):
    write_tree(
        tmp_path,
        {
            "faults/points.py": """\
                DECLARED = (FaultPoint("store.transaction", "doc"),)
            """,
            "service/store.py": """\
                def begin():
                    fault_point("store.transaction", operation="write")
            """,
        },
    )
    assert lint(tmp_path, "registry-completeness") == []


def test_registry_completeness_clean_tree(tmp_path):
    write_tree(
        tmp_path,
        {
            "core/registry.py": """\
                _FACTORIES = {"voter": Voter}
            """,
            "core/voter.py": """\
                class Voter(Dynamics):
                    def population_step_batch(self, counts, rng):
                        return counts

                    def async_population_step_batch(self, counts, rng):
                        return counts

                    def agent_step_batch(self, opinions, graph, rng):
                        return opinions
            """,
            "engine/fast.py": """\
                class FastEngine:
                    pass


                register_engine("fast", FastEngine)
            """,
            "backends/__init__.py": """\
                register_backend("gpu", GpuBackend)
            """,
            "backends/gpu.py": """\
                class GpuBackend:
                    name = "gpu"
            """,
            "backends/numba_kernels.py": """\
                KERNEL_NAMES = frozenset({"real_kernel"})
            """,
            "core/base.py": """\
                def hot_path(backend, data):
                    fn = backend.kernel("real_kernel")
                    return fn(data)
            """,
        },
    )
    assert lint(tmp_path, "registry-completeness") == []


def test_registry_completeness_unregistered_invariant(tmp_path):
    write_tree(
        tmp_path,
        {
            "invariants/checks.py": """\
                class MassInvariant:
                    name = "mass"


                class GhostInvariant:
                    name = "ghost"


                register_invariant(MassInvariant())
            """,
            "invariants/registry.py": """\
                class Invariant(Protocol):
                    name: str
            """,
        },
    )
    (diagnostic,) = lint(tmp_path, "registry-completeness")
    assert diagnostic.render() == (
        "invariants/checks.py:5: registry-completeness invariant class "
        "GhostInvariant is not passed to a register_invariant call "
        "anywhere in the tree; check_trace can never run it"
    )


# ---------------------------------------------------------------------
# optimize-safe-contracts
# ---------------------------------------------------------------------


def test_optimize_safe_contracts_flags_assert(tmp_path):
    write_tree(
        tmp_path,
        {
            "checks.py": """\
                def positive(x):
                    assert x > 0
                    return x
            """
        },
    )
    (diagnostic,) = lint(tmp_path, "optimize-safe-contracts")
    assert diagnostic.render() == (
        "checks.py:2: optimize-safe-contracts bare assert is stripped "
        "under python -O; raise a typed repro.errors exception instead"
    )


def test_optimize_safe_contracts_clean_raise(tmp_path):
    write_tree(
        tmp_path,
        {
            "checks.py": """\
                from repro.errors import StateError

                def positive(x):
                    if x <= 0:
                        raise StateError(f"x must be positive, got {x}")
                    return x
            """
        },
    )
    assert lint(tmp_path, "optimize-safe-contracts") == []


# ---------------------------------------------------------------------
# spec-threading
# ---------------------------------------------------------------------

_SPEC_FIXTURE = """\
    class SimulationSpec:
        n: int = 0
        foo: str = "bar"

        def describe(self):
            return f"n={self.n}"
"""

_GRID_FIXTURE = """\
    def spec_from_params(params):
        return {"n": params["n"]}
"""

_CLI_FIXTURE = """\
    def build():
        parser.add_argument("--n", type=int)
"""


def test_spec_threading_flags_half_wired_field(tmp_path):
    write_tree(
        tmp_path,
        {
            "spec.py": _SPEC_FIXTURE,
            "grid.py": _GRID_FIXTURE,
            "cli.py": _CLI_FIXTURE,
        },
    )
    diagnostics = lint(tmp_path, "spec-threading")
    assert [d.render() for d in diagnostics] == [
        "spec.py:3: spec-threading spec field 'foo' does not appear in "
        "describe(); run summaries would hide this axis",
        "spec.py:3: spec-threading spec field 'foo' has no CLI flag "
        "--foo; the axis is unreachable from the command line",
        "spec.py:3: spec-threading spec field 'foo' is not threaded "
        "through the sweep canonicalisation in grid.py; cache keys "
        "would alias across its values",
    ]


def test_spec_threading_clean_when_fully_wired(tmp_path):
    write_tree(
        tmp_path,
        {
            "spec.py": """\
                class SimulationSpec:
                    n: int = 0
                    foo: str = "bar"

                    def describe(self):
                        return f"n={self.n}, foo={self.foo}"
            """,
            "grid.py": """\
                def spec_from_params(params):
                    return {"n": params["n"], "foo": params["foo"]}
            """,
            "cli.py": """\
                def build():
                    parser.add_argument("--n", type=int)
                    parser.add_argument("--foo")
            """,
        },
    )
    assert lint(tmp_path, "spec-threading") == []


def test_spec_threading_real_spec_is_fully_wired():
    assert run_lint(select=["spec-threading"]) == []


# ---------------------------------------------------------------------
# store-transaction-discipline
# ---------------------------------------------------------------------


def test_store_discipline_flags_untransacted_dml(tmp_path):
    write_tree(
        tmp_path,
        {
            "service/store.py": """\
                class JobStore:
                    def _transaction(self):
                        return _Transaction(self._connection)

                    def sneak(self, job_id):
                        self._connection.execute(
                            "UPDATE jobs SET state = 'done' WHERE id = ?",
                            (job_id,),
                        )
            """
        },
    )
    (diagnostic,) = lint(tmp_path, "store-transaction-discipline")
    assert diagnostic.render() == (
        "service/store.py:6: store-transaction-discipline "
        "JobStore.sneak executes UPDATE outside the BEGIN IMMEDIATE "
        "helper; wrap it in 'with self._transaction():'"
    )


def test_store_discipline_allows_transacted_dml_and_reads(tmp_path):
    write_tree(
        tmp_path,
        {
            "service/store.py": """\
                class JobStore:
                    def _transaction(self):
                        return _Transaction(self._connection)

                    def complete(self, job_id):
                        with self._lock, self._transaction():
                            self._connection.execute(
                                f"UPDATE jobs SET state = ? {_SUFFIX}",
                                (job_id,),
                            )

                    def get(self, job_id):
                        return self._connection.execute(
                            "SELECT * FROM jobs WHERE id = ?", (job_id,)
                        ).fetchone()

                    def _init_schema(self):
                        self._connection.execute(
                            "CREATE TABLE IF NOT EXISTS jobs (id TEXT)"
                        )
            """
        },
    )
    assert lint(tmp_path, "store-transaction-discipline") == []


# ---------------------------------------------------------------------
# Suppression comments
# ---------------------------------------------------------------------


def test_suppression_named_rule(tmp_path):
    write_tree(
        tmp_path,
        {
            "snippet.py": """\
                def check(x):
                    assert x  # repro: noqa[optimize-safe-contracts]
            """
        },
    )
    assert lint(tmp_path, "optimize-safe-contracts") == []


def test_suppression_bare_noqa_suppresses_every_rule(tmp_path):
    write_tree(
        tmp_path,
        {
            "snippet.py": """\
                import numpy as np

                def check(x):
                    rng = np.random.default_rng(0)  # repro: noqa
                    assert rng  # repro: noqa
            """
        },
    )
    assert run_lint([tmp_path]) == []


def test_suppression_for_other_rule_does_not_apply(tmp_path):
    write_tree(
        tmp_path,
        {
            "snippet.py": """\
                def check(x):
                    assert x  # repro: noqa[rng-discipline]
            """
        },
    )
    (diagnostic,) = lint(tmp_path, "optimize-safe-contracts")
    assert diagnostic.rule == "optimize-safe-contracts"


# ---------------------------------------------------------------------
# Runner / CLI
# ---------------------------------------------------------------------


def test_unknown_rule_name_raises(tmp_path):
    with pytest.raises(ConfigurationError):
        run_lint([tmp_path], select=["no-such-rule"])


def test_missing_path_raises(tmp_path):
    with pytest.raises(ConfigurationError):
        run_lint([tmp_path / "absent"])


def test_syntax_error_becomes_diagnostic(tmp_path):
    write_tree(tmp_path, {"broken.py": "def broken(:\n"})
    (diagnostic,) = run_lint([tmp_path])
    assert diagnostic.rule == "syntax-error"
    assert diagnostic.path == "broken.py"


def test_end_to_end_package_tree_is_clean():
    assert run_lint() == []


def test_cli_lint_exits_zero_on_package(capsys):
    assert main(["lint"]) == 0
    assert capsys.readouterr().out == ""


def test_cli_lint_exits_nonzero_with_diagnostics(tmp_path, capsys):
    write_tree(tmp_path, {"bad.py": "assert True\n"})
    assert main(["lint", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "bad.py:1: optimize-safe-contracts" in out
    assert "repro: noqa" in out


def test_cli_lint_select_and_list(tmp_path, capsys):
    write_tree(tmp_path, {"bad.py": "assert True\n"})
    assert main(["lint", str(tmp_path), "--select", "rng-discipline"]) == 0
    assert main(["lint", "--list"]) == 0
    out = capsys.readouterr().out
    for name in ALL_RULES:
        assert name in out
    assert main(["lint", str(tmp_path), "--select", "bogus"]) == 2
