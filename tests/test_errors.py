"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    ConsensusNotReached,
    GraphError,
    ReproError,
    StateError,
)


def test_hierarchy():
    assert issubclass(ConfigurationError, ReproError)
    assert issubclass(StateError, ReproError)
    assert issubclass(ConsensusNotReached, ReproError)
    assert issubclass(GraphError, ReproError)


def test_value_error_compatibility():
    """Config/state errors double as ValueError for generic callers."""
    assert issubclass(ConfigurationError, ValueError)
    assert issubclass(StateError, ValueError)
    assert issubclass(ConsensusNotReached, RuntimeError)


def test_consensus_not_reached_carries_rounds():
    err = ConsensusNotReached(42)
    assert err.rounds == 42
    assert "42" in str(err)


def test_consensus_not_reached_custom_message():
    err = ConsensusNotReached(7, "custom")
    assert str(err) == "custom"


def test_single_catch_point():
    with pytest.raises(ReproError):
        raise StateError("boom")
