"""Tests for ``repro.invariants`` — the cross-engine invariant harness.

The positive matrix runs every registered engine against every
catalogued dynamics family (and against every adversary strategy) under
full recording and demands a clean :func:`~repro.invariants.check_trace`
pass — the "simulator runs but lies" net.  The negative tests hand the
checks deliberately violating traces and pin down that each one raises
:class:`~repro.errors.InvariantViolation` naming its invariant.  The
registry behaves like the engine/backend/lint registries it mirrors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary.registry import available_adversaries
from repro.engine.registry import available_engines
from repro.errors import ConfigurationError, InvariantViolation
from repro.invariants import (
    CorruptionRecord,
    Invariant,
    RunTrace,
    available_invariants,
    check_trace,
    get_invariant,
    register_invariant,
    run_traced,
    unregister_invariant,
)

ENGINES = (
    "population",
    "agent",
    "async",
    "batch",
    "agent-batch",
    "async-batch",
)

DYNAMICS = (
    "3-majority",
    "2-choices",
    "voter",
    "median",
    "undecided",
    "5-majority",
)

INVARIANTS = (
    "adversary-budget",
    "frozen-immutability",
    "mass-conservation",
    "monotone-consensus",
    "undecided-censoring",
)


def test_matrix_is_exhaustive():
    """The parametrized matrices cover every registered name."""
    assert sorted(ENGINES) == available_engines()
    assert list(INVARIANTS) == available_invariants()


# ---------------------------------------------------------------------
# Positive matrix: every engine x every dynamics, clean pass
# ---------------------------------------------------------------------


@pytest.mark.parametrize("dynamics", DYNAMICS)
@pytest.mark.parametrize("engine", ENGINES)
def test_every_engine_dynamics_pair_passes_all_invariants(
    engine, dynamics
):
    trace = run_traced(
        engine,
        dynamics,
        n=16,
        k=3,
        num_replicas=3,
        seed=hash((engine, dynamics)) % 2**32,
        max_rounds=150,
    )
    assert len(trace.snapshots) >= 1
    assert trace.corruptions == []
    if engine in ("population", "agent", "async"):
        assert trace.num_replicas == 1
    else:
        assert trace.num_replicas == 3
    if dynamics == "undecided":
        assert trace.undecided_label == trace.num_labels - 1
        assert trace.num_labels == 4  # k decided labels + undecided
    check_trace(trace)


# ---------------------------------------------------------------------
# Positive matrix: every engine x every adversary strategy
# ---------------------------------------------------------------------


@pytest.mark.parametrize("strategy", sorted(available_adversaries()))
@pytest.mark.parametrize("engine", ENGINES)
def test_every_engine_adversary_pair_passes_all_invariants(
    engine, strategy
):
    trace = run_traced(
        engine,
        "3-majority",
        n=16,
        k=3,
        num_replicas=2,
        seed=hash((engine, strategy)) % 2**32,
        adversary=strategy,
        adversary_budget=1,
        max_rounds=80,
    )
    assert trace.adversary_budget == 1
    check_trace(trace)


def test_adversarial_run_actually_records_corruptions():
    trace = run_traced(
        "batch",
        "3-majority",
        n=16,
        k=3,
        num_replicas=2,
        seed=0,
        adversary="random",
        adversary_budget=1,
        max_rounds=80,
    )
    assert trace.corruptions
    assert all(
        isinstance(record, CorruptionRecord)
        for record in trace.corruptions
    )


def test_undecided_adversarial_run_passes():
    # USD + adversary exercises the censoring check under a custom
    # target on target-capable engines and without one on async.
    for engine in ("batch", "async"):
        trace = run_traced(
            engine,
            "undecided",
            n=16,
            k=2,
            num_replicas=2,
            seed=3,
            adversary="random",
            adversary_budget=1,
            max_rounds=60,
        )
        check_trace(trace)


# ---------------------------------------------------------------------
# Harness input validation
# ---------------------------------------------------------------------


def test_unknown_engine_is_rejected():
    with pytest.raises(ConfigurationError):
        run_traced("warp", "voter", n=8, k=2)


def test_adversary_requires_budget():
    with pytest.raises(ConfigurationError):
        run_traced("batch", "voter", n=8, k=2, adversary="random")


def test_negative_max_rounds_is_rejected():
    with pytest.raises(ConfigurationError):
        run_traced("batch", "voter", n=8, k=2, max_rounds=-1)


# ---------------------------------------------------------------------
# Negative tests: handcrafted lying traces, one per invariant
# ---------------------------------------------------------------------


def _trace(**overrides):
    defaults = dict(
        engine="batch",
        dynamics="3-majority",
        n=10,
        num_labels=2,
        num_replicas=1,
    )
    defaults.update(overrides)
    return RunTrace(**defaults)


def test_mass_conservation_catches_leaked_vertices():
    trace = _trace()
    trace.snap(0, [5, 5], [False])
    trace.snap(1, [5, 4], [False])  # one vertex vanished
    with pytest.raises(InvariantViolation) as excinfo:
        check_trace(trace, select=["mass-conservation"])
    assert excinfo.value.invariant == "mass-conservation"
    assert "total mass 9" in str(excinfo.value)


def test_frozen_immutability_catches_edited_frozen_rows():
    trace = _trace(num_replicas=2)
    trace.snap(0, [[10, 0], [5, 5]], [True, False])
    trace.snap(1, [[9, 1], [6, 4]], [True, False])  # frozen row moved
    with pytest.raises(InvariantViolation) as excinfo:
        check_trace(trace, select=["frozen-immutability"])
    assert excinfo.value.invariant == "frozen-immutability"


def test_monotone_consensus_catches_thawing():
    trace = _trace()
    trace.snap(0, [10, 0], [True])
    trace.snap(1, [10, 0], [False])  # stopped row came back to life
    with pytest.raises(InvariantViolation) as excinfo:
        check_trace(trace, select=["monotone-consensus"])
    assert excinfo.value.invariant == "monotone-consensus"
    assert "thawed" in str(excinfo.value)


def test_monotone_consensus_catches_stalled_index():
    trace = _trace()
    trace.snap(3, [5, 5], [False])
    trace.snap(3, [5, 5], [False])  # observation time did not advance
    with pytest.raises(InvariantViolation) as excinfo:
        check_trace(trace, select=["monotone-consensus"])
    assert excinfo.value.invariant == "monotone-consensus"


def test_adversary_budget_catches_corruption_without_adversary():
    trace = _trace()  # adversary_budget=None
    trace.corruptions.append(
        CorruptionRecord(call=0, moved=np.array([1]))
    )
    with pytest.raises(InvariantViolation) as excinfo:
        check_trace(trace, select=["adversary-budget"])
    assert excinfo.value.invariant == "adversary-budget"
    assert "adversary-free" in str(excinfo.value)


def test_adversary_budget_catches_overdrawn_row():
    trace = _trace(adversary_budget=2)
    trace.corruptions.append(
        CorruptionRecord(call=0, moved=np.array([2, 3]))  # 3 > F=2
    )
    with pytest.raises(InvariantViolation) as excinfo:
        check_trace(trace, select=["adversary-budget"])
    assert "exceeding the per-round budget F=2" in str(excinfo.value)


def test_undecided_censoring_catches_undecided_winner():
    trace = _trace(num_labels=3, undecided_label=2)
    trace.snap(0, [[0, 0, 10]], [True])  # froze all-undecided
    with pytest.raises(InvariantViolation) as excinfo:
        check_trace(trace, select=["undecided-censoring"])
    assert excinfo.value.invariant == "undecided-censoring"
    assert "censor" in str(excinfo.value)


def test_undecided_censoring_demands_decided_consensus():
    trace = _trace(num_labels=3, undecided_label=2)
    trace.snap(0, [[8, 0, 2]], [True])  # froze with undecided residue
    with pytest.raises(InvariantViolation):
        check_trace(trace, select=["undecided-censoring"])
    # ... but a custom stopping target legitimises early freezing.
    lenient = _trace(
        num_labels=3, undecided_label=2, custom_target=True
    )
    lenient.snap(0, [[8, 0, 2]], [True])
    check_trace(lenient, select=["undecided-censoring"])


def test_undecided_censoring_ignores_dynamics_without_a_slot():
    trace = _trace()  # undecided_label=None
    trace.snap(0, [[10, 0]], [True])
    check_trace(trace, select=["undecided-censoring"])


# ---------------------------------------------------------------------
# Registry semantics (mirrors the engine/backend registries)
# ---------------------------------------------------------------------


class _TautologyInvariant:
    name = "tautology"
    description = "always passes"

    def check(self, trace) -> None:
        return None


def test_builtin_catalogue_is_registered():
    for name in INVARIANTS:
        invariant = get_invariant(name)
        assert isinstance(invariant, Invariant)
        assert invariant.name == name
        assert invariant.description


def test_register_and_unregister_roundtrip():
    register_invariant(_TautologyInvariant())
    try:
        assert "tautology" in available_invariants()
        trace = _trace()
        trace.snap(0, [5, 5], [False])
        check_trace(trace, select=["tautology"])
    finally:
        unregister_invariant("tautology")
    assert "tautology" not in available_invariants()


def test_duplicate_registration_requires_replace():
    register_invariant(_TautologyInvariant())
    try:
        with pytest.raises(ConfigurationError):
            register_invariant(_TautologyInvariant())
        register_invariant(_TautologyInvariant(), replace=True)
    finally:
        unregister_invariant("tautology")


def test_invalid_and_unknown_names_are_rejected():
    with pytest.raises(ConfigurationError):
        register_invariant(object())  # no name attribute
    with pytest.raises(ConfigurationError):
        get_invariant("no-such-invariant")
    trace = _trace()
    with pytest.raises(ConfigurationError):
        check_trace(trace, select=["no-such-invariant"])
