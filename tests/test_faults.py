"""Tests for the deterministic fault-injection framework and hardening.

Layered like the package: the registry and plan machinery pure (no
threads), then each armed choke point driven through a targeted plan —
typed store-busy errors at every transaction call site, dropped
heartbeats with orphan requeue, torn cache writes healed by
``on_corrupt="remeasure"``, crash faults via a real subprocess, client
retry + idempotent submit over a live HTTP service, and runtime kernel
quarantine with graceful degradation to the reference path.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.backends import (
    degraded_kernels,
    register_backend,
    unregister_backend,
    use_backend,
)
from repro.backends.registry import _clear_quarantine, backend_kernel
from repro.core.h_majority import majority_winners
from repro.errors import (
    CacheIntegrityError,
    ConfigurationError,
    InjectedFaultError,
    ServiceError,
    StateError,
    StoreBusyError,
    SweepPointError,
)
from repro.faults import (
    FaultPlan,
    FaultPoint,
    FaultRule,
    available_fault_points,
    available_plans,
    builtin_plan,
    declare_fault_point,
    fault_point,
    faults_armed,
    get_fault_point,
    unregister_fault_point,
    use_fault_plan,
)
from repro.faults.plan import FAULT_PLAN_ENV_VAR
from repro.service import (
    JobSpec,
    JobStore,
    Scheduler,
    ServiceClient,
    SimulationService,
    WorkerFleet,
)
from repro.service.workers import (
    PERMANENT_FAILURE_TYPES,
    _jitter,
    is_permanent_failure,
)
from repro.sweep import SweepSpec, run_sweep


def _spec(ns=(64,), k=2, runs=2, seed=1) -> JobSpec:
    return JobSpec(
        grid={"n": list(ns), "k": [k]},
        num_runs=runs,
        seed=seed,
        fixed={"dynamics": "3-majority"},
    )


def _wait_for(predicate, timeout=20.0, interval=0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def store(tmp_path):
    with JobStore(tmp_path / "jobs.db") as job_store:
        yield job_store


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------


class TestFaultPointRegistry:
    def test_builtin_points_declared(self):
        names = available_fault_points()
        for expected in (
            "store.transaction",
            "worker.job-execute",
            "worker.heartbeat",
            "server.request",
            "server.response",
            "client.request",
            "sweep.cache-write",
            "backend.kernel",
        ):
            assert expected in names

    def test_declare_get_unregister(self):
        point = FaultPoint("test.point", "doc", kinds=("error",))
        declare_fault_point(point)
        try:
            assert get_fault_point("test.point") is point
            assert "test.point" in available_fault_points()
        finally:
            unregister_fault_point("test.point")
        with pytest.raises(ConfigurationError, match="test.point"):
            get_fault_point("test.point")

    def test_duplicate_declaration_raises(self):
        with pytest.raises(ConfigurationError, match="already declared"):
            declare_fault_point(
                FaultPoint("store.transaction", "imposter")
            )

    def test_torn_write_requires_write_context(self):
        with pytest.raises(ConfigurationError, match="torn-write"):
            FaultPoint("test.bad", "doc", kinds=("torn-write",))


# ---------------------------------------------------------------------------
# Rules and plans (pure decision layer)
# ---------------------------------------------------------------------------


class TestFaultRule:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            FaultRule("store.transaction", kind="gremlin")

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError, match="probability"):
            FaultRule("store.transaction", probability=1.5)

    def test_unknown_error_factory_rejected(self):
        with pytest.raises(ConfigurationError, match="error factory"):
            FaultRule("store.transaction", error="meteor")

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            FaultRule.from_dict(
                {"point": "store.transaction", "surprise": 1}
            )

    def test_round_trip(self):
        rule = FaultRule(
            "sweep.cache-write",
            kind="torn-write",
            probability=0.25,
            max_injections=3,
        )
        assert FaultRule.from_dict(rule.to_dict()) == rule


class TestFaultPlan:
    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError, match="rogue"):
            FaultPlan([FaultRule.from_dict({"point": "test.rogue"})])

    def test_unsupported_kind_rejected(self):
        # store.transaction does not support torn-write.
        with pytest.raises(ConfigurationError, match="does not support"):
            FaultPlan(
                [{"point": "store.transaction", "kind": "torn-write"}]
            )

    def test_decisions_replay_bit_identically(self):
        make = lambda: FaultPlan(
            [FaultRule("worker.job-execute", probability=0.5)], seed=7
        )
        first = make().decisions("worker.job-execute", 200)
        second = make().decisions("worker.job-execute", 200)
        assert first == second
        assert "error" in first and None in first  # p=0.5 mixes both

    def test_different_seeds_differ(self):
        a = FaultPlan(
            [FaultRule("worker.job-execute", probability=0.5)], seed=1
        ).decisions("worker.job-execute", 100)
        b = FaultPlan(
            [FaultRule("worker.job-execute", probability=0.5)], seed=2
        ).decisions("worker.job-execute", 100)
        assert a != b

    def test_at_rule_fires_exact_occurrences(self):
        plan = FaultPlan([FaultRule("worker.heartbeat", at=(1, 3))])
        assert plan.decisions("worker.heartbeat", 5) == [
            None, "error", None, "error", None,
        ]
        plan.fire("worker.heartbeat", {})  # occurrence 0: clean
        with pytest.raises(InjectedFaultError) as excinfo:
            plan.fire("worker.heartbeat", {})  # occurrence 1
        assert excinfo.value.point == "worker.heartbeat"
        assert excinfo.value.index == 1

    def test_max_injections_budget(self):
        plan = FaultPlan(
            [
                FaultRule(
                    "worker.heartbeat",
                    probability=1.0,
                    max_injections=2,
                )
            ]
        )
        fired = 0
        for _ in range(5):
            try:
                plan.fire("worker.heartbeat", {})
            except InjectedFaultError:
                fired += 1
        assert fired == 2

    def test_reset_replays_from_zero(self):
        plan = FaultPlan([FaultRule("worker.heartbeat", at=(0,))])
        with pytest.raises(InjectedFaultError):
            plan.fire("worker.heartbeat", {})
        plan.fire("worker.heartbeat", {})  # occurrence 1: clean
        assert plan.occurrences() == {"worker.heartbeat": 2}
        plan.reset()
        assert plan.occurrences() == {}
        with pytest.raises(InjectedFaultError):
            plan.fire("worker.heartbeat", {})

    def test_json_round_trip(self):
        plan = builtin_plan("mixed", seed=42)
        clone = FaultPlan.from_json(plan.to_json())
        assert clone.seed == plan.seed
        assert clone.rules == plan.rules
        for point in plan.summary()["points"]:
            assert clone.decisions(point, 50) == plan.decisions(point, 50)

    def test_delay_kind_sleeps(self):
        plan = FaultPlan(
            [FaultRule("worker.heartbeat", kind="delay", delay=0.05)]
        )
        started = time.monotonic()
        plan.fire("worker.heartbeat", {})
        assert time.monotonic() - started >= 0.04

    def test_builtin_plans_build(self):
        for name in available_plans():
            plan = builtin_plan(name, seed=3)
            assert plan.rules
        with pytest.raises(ConfigurationError, match="unknown chaos plan"):
            builtin_plan("hurricane")


class TestActivation:
    def test_disarmed_by_default(self):
        assert not faults_armed()
        fault_point("worker.heartbeat")  # no-op, must not raise

    def test_context_scope_arms_and_restores(self):
        plan = FaultPlan([FaultRule("worker.heartbeat", at=(0,))])
        with use_fault_plan(plan, scope="context"):
            assert faults_armed()
            with pytest.raises(InjectedFaultError):
                fault_point("worker.heartbeat")
        assert not faults_armed()

    def test_process_scope_reaches_new_threads(self):
        import threading

        plan = FaultPlan([FaultRule("worker.heartbeat", at=(0,))])
        seen: list[bool] = []
        with use_fault_plan(plan, scope="process"):
            thread = threading.Thread(
                target=lambda: seen.append(faults_armed())
            )
            thread.start()
            thread.join()
        assert seen == [True]
        assert not faults_armed()

    def test_none_masks_outer_plan(self):
        plan = FaultPlan([FaultRule("worker.heartbeat", at=(0,))])
        with use_fault_plan(plan, scope="process"):
            with use_fault_plan(None):
                assert not faults_armed()
            assert faults_armed()

    def test_env_var_activation(self, monkeypatch):
        plan = FaultPlan([FaultRule("worker.heartbeat", at=(0,))])
        monkeypatch.setenv(FAULT_PLAN_ENV_VAR, plan.to_json())
        armed = __import__(
            "repro.faults.plan", fromlist=["active_fault_plan"]
        ).active_fault_plan()
        assert armed is not None
        assert armed.decisions("worker.heartbeat", 2) == ["error", None]

    def test_export_env_round_trips(self):
        plan = FaultPlan([FaultRule("worker.heartbeat", at=(0,))])
        assert FAULT_PLAN_ENV_VAR not in os.environ
        with use_fault_plan(plan, export_env=True):
            assert os.environ[FAULT_PLAN_ENV_VAR] == plan.to_json()
        assert FAULT_PLAN_ENV_VAR not in os.environ


# ---------------------------------------------------------------------------
# Store resilience: typed busy errors at every transaction call site
# ---------------------------------------------------------------------------


def _busy_plan() -> FaultPlan:
    return FaultPlan(
        [
            FaultRule(
                "store.transaction", error="sqlite-busy", probability=1.0
            )
        ]
    )


class TestStoreBusyTranslation:
    """Every ``_transaction`` call site surfaces the typed error."""

    def test_submit(self, store):
        with use_fault_plan(_busy_plan(), scope="context"):
            with pytest.raises(StoreBusyError):
                store.submit(_spec(), client="a")

    def test_lease_heartbeat_complete_fail(self, store):
        job = store.submit(_spec(), client="a")
        with use_fault_plan(_busy_plan(), scope="context"):
            with pytest.raises(StoreBusyError):
                store.lease_next("w")
        leased = store.lease_next("w")
        assert leased.id == job.id
        with use_fault_plan(_busy_plan(), scope="context"):
            with pytest.raises(StoreBusyError):
                store.record_heartbeat(job.id)
            with pytest.raises(StoreBusyError):
                store.complete(job.id, [])
            with pytest.raises(StoreBusyError):
                store.fail(job.id, "boom")

    def test_cancel_requeues_and_orphans(self, store):
        job = store.submit(_spec(), client="a")
        with use_fault_plan(_busy_plan(), scope="context"):
            with pytest.raises(StoreBusyError):
                store.cancel(job.id)
            with pytest.raises(StoreBusyError):
                store.requeue_orphans()
        store.lease_next("w")
        store.fail(job.id, "gave up", dead=True)
        with use_fault_plan(_busy_plan(), scope="context"):
            with pytest.raises(StoreBusyError):
                store.requeue_dead(job.id)
        # Disarmed, the same operation succeeds — nothing was corrupted.
        assert store.requeue_dead(job.id).state == "queued"

    def test_busy_error_is_service_error(self):
        assert issubclass(StoreBusyError, ServiceError)


class TestDeadLifecycle:
    def test_fail_dead_and_requeue_resets(self, store):
        job = store.submit(_spec(), client="a")
        store.lease_next("w")
        store.fail(job.id, "transient storm", dead=True)
        dead = store.get(job.id)
        assert dead.state == "dead"
        assert dead.attempts == 1
        assert "storm" in dead.error
        requeued = store.requeue_dead(job.id)
        assert requeued.state == "queued"
        assert requeued.attempts == 0
        assert requeued.not_before == 0
        assert requeued.worker is None

    def test_requeue_dead_rejects_other_states(self, store):
        from repro.errors import InvalidJobState

        job = store.submit(_spec(), client="a")
        with pytest.raises(InvalidJobState, match="queued"):
            store.requeue_dead(job.id)

    def test_dead_jobs_listable_and_countable(self, store):
        job = store.submit(_spec(), client="a")
        store.lease_next("w")
        store.fail(job.id, "x", dead=True)
        assert [j.id for j in store.jobs(state="dead")] == [job.id]
        assert store.stats()["dead"] == 1


class TestIdempotentSubmit:
    def test_same_key_returns_existing_job(self, store):
        first = store.submit(
            _spec(), client="a", idempotency_key="k1"
        )
        replay = store.submit(
            _spec(), client="a", idempotency_key="k1"
        )
        assert replay.id == first.id
        assert len(store.jobs()) == 1

    def test_different_keys_create_jobs(self, store):
        store.submit(_spec(), client="a", idempotency_key="k1")
        store.submit(_spec(), client="a", idempotency_key="k2")
        assert len(store.jobs()) == 2

    def test_scheduler_admit_idempotent_skips_quota_on_replay(self, store):
        from repro.service import QuotaPolicy

        scheduler = Scheduler(store, QuotaPolicy(max_jobs=1))
        job, created = scheduler.admit_idempotent(
            _spec(), client="a", idempotency_key="k1"
        )
        assert created
        # The replay must not count against (or trip) the quota.
        replay, created_again = scheduler.admit_idempotent(
            _spec(), client="a", idempotency_key="k1"
        )
        assert replay.id == job.id
        assert not created_again


# ---------------------------------------------------------------------------
# Worker fleet under fault plans
# ---------------------------------------------------------------------------


class TestFleetUnderFaults:
    def _fleet(self, store, runner=None, **kwargs):
        kwargs.setdefault("num_workers", 1)
        kwargs.setdefault("poll_interval", 0.01)
        kwargs.setdefault("heartbeat_interval", 0.02)
        kwargs.setdefault("backoff_base", 0.01)
        return WorkerFleet(
            store, Scheduler(store), runner=runner, **kwargs
        )

    def test_injected_execute_faults_retried_to_done(self, store):
        plan = FaultPlan([FaultRule("worker.job-execute", at=(0,))])
        runner = lambda job, progress: [
            {"params": {}, "values": [1.0], "error": None}
        ]
        fleet = self._fleet(store, runner=runner, max_retries=2)
        job = store.submit(_spec(), client="a")
        with use_fault_plan(plan, scope="process"):
            fleet.start()
            try:
                assert _wait_for(
                    lambda: store.get(job.id).state == "done"
                )
            finally:
                assert fleet.drain(10.0)
        assert store.get(job.id).attempts == 1

    def test_exhausted_injected_faults_go_dead(self, store):
        plan = FaultPlan(
            [FaultRule("worker.job-execute", probability=1.0)]
        )
        fleet = self._fleet(store, runner=lambda j, p: [], max_retries=1)
        job = store.submit(_spec(), client="a")
        with use_fault_plan(plan, scope="process"):
            fleet.start()
            try:
                assert _wait_for(
                    lambda: store.get(job.id).state == "dead"
                )
            finally:
                assert fleet.drain(10.0)
        dead = store.get(job.id)
        assert "injected" in dead.error
        assert dead.attempts == 2

    def test_dropped_heartbeats_do_not_kill_job(self, store):
        plan = builtin_plan("heartbeat-drop")
        runner = lambda job, progress: (
            progress(1, 1),
            [{"params": {}, "values": [1.0], "error": None}],
        )[1]
        fleet = self._fleet(store, runner=runner)
        job = store.submit(_spec(), client="a")
        with use_fault_plan(plan, scope="process"):
            fleet.start()
            try:
                assert _wait_for(
                    lambda: store.get(job.id).state == "done"
                )
            finally:
                assert fleet.drain(10.0)
        assert plan.occurrences().get("worker.heartbeat", 0) >= 1

    def test_orphan_requeue_recovers_heartbeatless_job(self, store):
        # A worker whose every heartbeat is dropped dies mid-job: the
        # job is stuck 'running' with a stale heartbeat.  Startup
        # recovery must return it to the queue.
        job = store.submit(_spec(), client="a")
        store.lease_next("w")
        assert store.get(job.id).state == "running"
        assert store.requeue_orphans() == 1
        requeued = store.get(job.id)
        assert requeued.state == "queued"
        assert requeued.worker is None


class TestPermanentFailurePredicate:
    def test_configuration_and_state_errors_permanent(self):
        assert is_permanent_failure(ConfigurationError("bad"))
        assert is_permanent_failure(StateError("bad"))

    def test_runtime_and_injected_errors_transient(self):
        assert not is_permanent_failure(RuntimeError("blip"))
        assert not is_permanent_failure(
            InjectedFaultError("worker.job-execute", 0)
        )
        assert not is_permanent_failure(StoreBusyError("locked"))

    def test_sweep_point_error_unwraps_cause(self):
        wrapped = SweepPointError({"n": 64}, ConfigurationError("bad"))
        wrapped.__cause__ = ConfigurationError("bad")
        assert is_permanent_failure(wrapped)
        transient = SweepPointError({"n": 64}, RuntimeError("blip"))
        transient.__cause__ = RuntimeError("blip")
        assert not is_permanent_failure(transient)

    def test_table_is_extensible(self):
        class VenomError(Exception):
            pass

        assert not is_permanent_failure(VenomError())
        PERMANENT_FAILURE_TYPES.append(VenomError)
        try:
            assert is_permanent_failure(VenomError())
        finally:
            PERMANENT_FAILURE_TYPES.remove(VenomError)

    def test_jitter_is_deterministic_and_bounded(self):
        assert _jitter("job:1") == _jitter("job:1")
        assert _jitter("job:1") != _jitter("job:2")
        assert all(
            0.0 <= _jitter(f"token:{i}") < 1.0 for i in range(100)
        )


# ---------------------------------------------------------------------------
# Sweep cache: torn writes, remeasure healing, stale-tmp hygiene, crash
# ---------------------------------------------------------------------------


def _tiny_sweep_spec() -> SweepSpec:
    return SweepSpec(
        grid={"n": [16], "k": [2]},
        num_runs=2,
        seed=0,
        fixed={"max_rounds": 4000},
    )


class TestTornCacheWrite:
    def test_torn_write_poisons_then_remeasure_heals(self, tmp_path):
        cache = tmp_path / "cache"
        plan = FaultPlan(
            [
                FaultRule(
                    "sweep.cache-write", kind="torn-write", at=(0,)
                )
            ]
        )
        with use_fault_plan(plan, scope="context"):
            with pytest.raises(InjectedFaultError, match="torn-write"):
                run_sweep(_tiny_sweep_spec(), cache_dir=cache)
        torn = [p for p in cache.glob("*.json")]
        assert len(torn) == 1
        with pytest.raises(json.JSONDecodeError):
            json.loads(torn[0].read_text())
        # Default on_corrupt="raise": the poisoned file is a loud,
        # typed error for interactive use.
        with pytest.raises(CacheIntegrityError):
            run_sweep(_tiny_sweep_spec(), cache_dir=cache)
        # The service path heals: corrupt entry discarded, point
        # re-measured on its own seed stream — identical values.
        (healed,) = run_sweep(
            _tiny_sweep_spec(), cache_dir=cache, on_corrupt="remeasure"
        )
        (clean,) = run_sweep(
            _tiny_sweep_spec(), cache_dir=tmp_path / "reference"
        )
        assert healed.values == clean.values
        payload = json.loads(torn[0].read_text())
        assert tuple(payload["values"]) == clean.values

    def test_healed_cache_verifies_clean(self, tmp_path):
        from repro.provenance import verify_chain

        cache = tmp_path / "cache"
        plan = FaultPlan(
            [
                FaultRule(
                    "sweep.cache-write", kind="torn-write", at=(0,)
                )
            ]
        )
        with use_fault_plan(plan, scope="context"):
            with pytest.raises(InjectedFaultError):
                run_sweep(_tiny_sweep_spec(), cache_dir=cache)
        run_sweep(
            _tiny_sweep_spec(), cache_dir=cache, on_corrupt="remeasure"
        )
        report = verify_chain(cache)
        assert report.ok, report.render()


class TestStaleTmpHygiene:
    def test_old_tmp_swept_young_tmp_kept(self, tmp_path):
        cache = tmp_path / "cache"
        cache.mkdir()
        stale = cache / ".deadbeef.json.123.tmp"
        stale.write_text("{}")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        fresh = cache / ".cafef00d.json.456.tmp"
        fresh.write_text("{}")
        run_sweep(_tiny_sweep_spec(), cache_dir=cache)
        assert not stale.exists()
        assert fresh.exists()

    def test_crash_fault_leaves_tmp_not_torn_cache(self, tmp_path):
        """A hard crash between temp-write and rename, via subprocess.

        The injected ``crash`` kind calls ``os._exit(70)``; the cache
        must hold the orphaned temp file (future hygiene sweeps it) and
        no final payload — the atomic-rename window never published.
        """
        cache = tmp_path / "cache"
        plan = FaultPlan(
            [FaultRule("sweep.cache-write", kind="crash", at=(0,))]
        )
        script = (
            "from repro.sweep import SweepSpec, run_sweep\n"
            "run_sweep(SweepSpec(grid={'n': [16], 'k': [2]},"
            " num_runs=2, seed=0, fixed={'max_rounds': 4000}),"
            f" cache_dir={str(cache)!r})\n"
        )
        env = dict(os.environ)
        env[FAULT_PLAN_ENV_VAR] = plan.to_json()
        env["PYTHONPATH"] = str(
            Path(__file__).resolve().parents[1] / "src"
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert result.returncode == 70
        assert list(cache.glob("*.json")) == []
        assert len(list(cache.glob(".*.tmp"))) == 1


# ---------------------------------------------------------------------------
# Client retry + idempotency over a live service
# ---------------------------------------------------------------------------


@pytest.fixture
def service(tmp_path):
    with SimulationService(
        tmp_path / "jobs.db",
        cache_dir=tmp_path / "cache",
        port=0,
        num_workers=1,
        backoff_base=0.02,
    ) as svc:
        yield svc


class TestClientRetry:
    def test_lost_response_submit_does_not_duplicate(self, service):
        # The server commits the job, then the response is torn off the
        # wire (occurrence 0 of server.response is our POST).  The
        # client's retry carries the same Idempotency-Key, so the store
        # must hold exactly one job.
        plan = FaultPlan(
            [
                FaultRule(
                    "server.response",
                    error="connection-reset",
                    at=(0,),
                )
            ]
        )
        client = ServiceClient(
            service.url, client_id="retry-test", retry_base=0.01
        )
        with use_fault_plan(plan, scope="process"):
            job_id = client.submit(_spec())
        jobs = service.store.jobs()
        assert [job.id for job in jobs] == [job_id]

    def test_connection_reset_before_send_retried(self, service):
        plan = FaultPlan(
            [
                FaultRule(
                    "client.request",
                    error="connection-reset",
                    at=(0,),
                )
            ]
        )
        client = ServiceClient(
            service.url, client_id="reset-test", retry_base=0.01
        )
        with use_fault_plan(plan, scope="context"):
            job_id = client.submit(_spec())
        assert service.store.get(job_id).state in ("queued", "running", "done")

    def test_deliberate_resubmit_creates_new_job(self, service):
        client = ServiceClient(service.url, client_id="dup-test")
        first = client.submit(_spec())
        second = client.submit(_spec())
        assert first != second

    def test_store_busy_maps_to_503_and_retries(self, service):
        plan = FaultPlan(
            [
                FaultRule(
                    "store.transaction",
                    error="sqlite-busy",
                    at=(0,),
                )
            ]
        )
        client = ServiceClient(
            service.url, client_id="busy-test", retry_base=0.01
        )
        with use_fault_plan(plan, scope="process"):
            job_id = client.submit(_spec())
        assert service.store.get(job_id) is not None

    def test_exhausted_retries_raise_service_error(self, tmp_path):
        client = ServiceClient(
            "http://127.0.0.1:9",  # nothing listens on the discard port
            client_id="downtime",
            max_retries=1,
            retry_base=0.01,
            timeout=0.2,
        )
        with pytest.raises(ServiceError, match="after 2 attempt"):
            client.jobs()

    def test_wait_raises_on_dead_job(self, service):
        job = service.store.submit(_spec(), client="w")
        service.store.lease_next("w0")
        service.store.fail(job.id, "storm", dead=True)
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError, match="ended dead"):
            client.wait(job.id, timeout=5.0)

    def test_backoff_grows_and_jitters_deterministically(self):
        a = ServiceClient("http://x", client_id="same")
        b = ServiceClient("http://x", client_id="same")
        delays_a = [a._backoff(i) for i in range(5)]
        delays_b = [b._backoff(i) for i in range(5)]
        assert delays_a == delays_b  # seeded per client id
        other = ServiceClient("http://x", client_id="other")
        assert [other._backoff(i) for i in range(5)] != delays_a
        for attempt, delay in enumerate(delays_a):
            cap = min(a.retry_base * 2**attempt, a.retry_cap)
            assert 0.5 * cap <= delay <= 1.5 * cap


# ---------------------------------------------------------------------------
# Kernel quarantine and graceful degradation
# ---------------------------------------------------------------------------


class _ExplodingBackend:
    """A backend whose only kernel dies at runtime."""

    name = "exploding"
    description = "test backend with a kernel that raises"
    priority = -10
    accelerates = frozenset({"majority_winners"})

    def kernel(self, name):
        if name == "majority_winners":
            def _boom(samples, rng):
                raise RuntimeError("kernel exploded")

            return _boom
        return None

    def is_available(self):
        return True

    def self_check(self):
        return None


@pytest.fixture
def exploding_backend():
    register_backend(
        "exploding", _ExplodingBackend, priority=-10, replace=True
    )
    _clear_quarantine()
    try:
        yield
    finally:
        _clear_quarantine()
        unregister_backend("exploding")


class TestKernelDegradation:
    def test_runtime_kernel_failure_degrades_to_reference(
        self, exploding_backend
    ):
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 3, size=(32, 3))
        with use_backend("exploding"):
            with pytest.warns(RuntimeWarning, match="falling back"):
                winners = majority_winners(samples, rng)
            assert winners.shape == (32,)
            assert degraded_kernels() == {
                "exploding/majority_winners": (
                    "RuntimeError: kernel exploded"
                )
            }
            # Second call: kernel is quarantined — no second warning,
            # straight to the reference path.
            import warnings

            with warnings.catch_warnings():
                warnings.simplefilter("error")
                majority_winners(samples, rng)

    def test_backend_kernel_returns_none_when_quarantined(
        self, exploding_backend
    ):
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 3, size=(8, 3))
        with use_backend("exploding"):
            assert backend_kernel("majority_winners") is not None
            with pytest.warns(RuntimeWarning):
                majority_winners(samples, rng)
            assert backend_kernel("majority_winners") is None

    def test_fault_plan_can_kill_kernels(self, exploding_backend):
        # Replace the exploding kernel's failure with an *injected* one:
        # the fault wrapper fires before the kernel body runs.
        plan = FaultPlan([FaultRule("backend.kernel", at=(0,))])
        rng = np.random.default_rng(0)
        samples = rng.integers(0, 3, size=(8, 3))
        with use_backend("exploding"):
            with use_fault_plan(plan, scope="context"):
                with pytest.warns(RuntimeWarning, match="falling back"):
                    winners = majority_winners(samples, rng)
        assert winners.shape == (8,)
        assert "exploding/majority_winners" in degraded_kernels()

    def test_numpy_backend_has_no_kernels_to_wrap(self):
        with use_backend("numpy"):
            assert backend_kernel("majority_winners") is None

    def test_execute_records_degradation_on_result(
        self, exploding_backend
    ):
        from repro.simulation import Simulation

        # 5-majority takes the sampled HMajority path, whose batch
        # update dispatches through backend kernels (3-majority is
        # closed-form and never asks the backend for anything).
        spec = (
            Simulation.of("5-majority")
            .n(32)
            .k(2)
            .engine("batch")
            .replicas(2)
            .seed(0)
            .max_rounds(4000)
            .backend("exploding")
            .build()
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            results = spec.run()
        assert "exploding/majority_winners" in results.degraded_kernels
        assert results.num_converged == 2
