"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for experiment_id in ("fig1", "thm11", "table1", "adv"):
            assert experiment_id in out

    def test_lists_dynamics(self, capsys):
        assert main(["dynamics"]) == 0
        out = capsys.readouterr().out
        assert "3-majority" in out
        assert "2-choices" in out

    def test_lists_engines_with_capabilities(self, capsys):
        assert main(["engines"]) == 0
        out = capsys.readouterr().out
        for engine in ("population", "agent", "async", "batch"):
            assert engine in out
        assert "adversary" in out

    def test_registered_engine_appears_in_listing(self, capsys):
        from repro.engine import register_engine, unregister_engine

        register_engine("toy-cli", lambda spec: [], description="toy")
        try:
            assert main(["engines"]) == 0
            assert "toy-cli" in capsys.readouterr().out
        finally:
            unregister_engine("toy-cli")


class TestRun:
    def test_run_prints_table_and_verdicts(self, capsys):
        main(["run", "lem41", "--preset", "micro"])
        out = capsys.readouterr().out
        assert "[lem41]" in out
        assert "| verdict |" in out
        assert "elapsed" in out

    def test_run_csv_output(self, tmp_path, capsys):
        main(
            [
                "run",
                "table1",
                "--preset",
                "micro",
                "--csv",
                str(tmp_path),
            ]
        )
        assert (tmp_path / "table1.csv").exists()

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "not-an-experiment"])

    def test_seed_flag(self, capsys):
        code = main(["run", "table1", "--preset", "micro", "--seed", "3"])
        assert code in (0, 1)


class TestSimulate:
    def test_runs_to_consensus(self, capsys):
        code = main(
            [
                "simulate",
                "--dynamics",
                "3-majority",
                "--n",
                "512",
                "--k",
                "4",
                "--seed",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "consensus on opinion" in out
        assert "gamma=" in out

    def test_budget_exhaustion_exit_code(self, capsys):
        code = main(
            [
                "simulate",
                "--n",
                "4096",
                "--k",
                "512",
                "--max-rounds",
                "2",
            ]
        )
        assert code == 1
        assert "no consensus" in capsys.readouterr().out

    def test_zipf_config(self, capsys):
        code = main(
            [
                "simulate",
                "--n",
                "512",
                "--k",
                "8",
                "--config",
                "zipf",
            ]
        )
        assert code == 0

    def test_batch_replicas_print_aggregate(self, capsys):
        code = main(
            [
                "simulate",
                "--n",
                "2048",
                "--k",
                "16",
                "--engine",
                "batch",
                "--replicas",
                "8",
                "--seed",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "8 runs, 8 converged" in out
        assert "consensus time: median" in out

    def test_async_batch_replicas_print_aggregate(self, capsys):
        code = main(
            [
                "simulate",
                "--n",
                "128",
                "--k",
                "4",
                "--engine",
                "async-batch",
                "--replicas",
                "6",
                "--seed",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "engine=async-batch" in out
        assert "6 runs, 6 converged" in out

    def test_replicas_without_batch_aggregate(self, capsys):
        code = main(
            [
                "simulate",
                "--n",
                "512",
                "--k",
                "4",
                "--replicas",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3 runs, 3 converged" in out

    def test_aggregate_censoring_exit_code(self, capsys):
        code = main(
            [
                "simulate",
                "--n",
                "4096",
                "--k",
                "512",
                "--engine",
                "batch",
                "--replicas",
                "4",
                "--max-rounds",
                "2",
            ]
        )
        assert code == 1
        assert "4 censored" in capsys.readouterr().out

    def test_adversarial_batch_aggregate(self, capsys):
        code = main(
            [
                "simulate",
                "--n",
                "1024",
                "--k",
                "4",
                "--engine",
                "batch",
                "--replicas",
                "4",
                "--adversary",
                "runner-up",
                "--adversary-budget",
                "2",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "adversary=runner-up(F=2)" in out
        assert "4 runs, 4 converged" in out

    def test_adversarial_trajectory_reports_threshold(self, capsys):
        code = main(
            [
                "simulate",
                "--n",
                "1024",
                "--k",
                "4",
                "--adversary",
                "runner-up",
                "--adversary-budget",
                "2",
                "--seed",
                "3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "threshold of 1016 vertices" in out

    def test_adversary_without_budget_exit_2(self, capsys):
        code = main(
            [
                "simulate",
                "--n",
                "512",
                "--k",
                "4",
                "--adversary",
                "runner-up",
            ]
        )
        assert code == 2
        assert "adversary_budget" in capsys.readouterr().out

    def test_bad_config_parameters_exit_2(self, capsys):
        code = main(
            [
                "simulate",
                "--n",
                "512",
                "--k",
                "8",
                "--config",
                "geometric_gamma",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().out


class TestSweepCommand:
    def test_prints_grid_table(self, capsys):
        code = main(
            [
                "sweep",
                "--n",
                "256",
                "512",
                "--k",
                "2",
                "4",
                "--runs",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Consensus-time sweep (4 points" in out
        assert "median T" in out

    def test_measure_sequential_opt_out(self, capsys):
        code = main(
            [
                "sweep",
                "--n",
                "256",
                "--k",
                "2",
                "--runs",
                "2",
                "--measure",
                "sequential",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "measure=sequential" in out

    def test_async_chain_sweep(self, capsys):
        code = main(
            [
                "sweep",
                "--n",
                "128",
                "--k",
                "2",
                "--runs",
                "2",
                "--chain",
                "async",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "chain=async" in out

    def test_async_chain_rejects_graph(self, capsys):
        code = main(
            [
                "sweep",
                "--n",
                "128",
                "--k",
                "2",
                "--chain",
                "async",
                "--graph",
                "random-regular",
                "--degree",
                "4",
            ]
        )
        out = capsys.readouterr().out
        assert code == 2
        assert "complete graph" in out

    def test_measure_modes_cache_separately(self, tmp_path, capsys):
        args = [
            "sweep",
            "--n",
            "256",
            "--k",
            "2",
            "--runs",
            "2",
            "--cache",
            str(tmp_path),
        ]
        assert main(args) == 0
        assert len(list(tmp_path.glob("*.json"))) == 1
        assert main(args + ["--measure", "sequential"]) == 0
        capsys.readouterr()
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_multiple_dynamics_axis(self, capsys):
        code = main(
            [
                "sweep",
                "--dynamics",
                "3-majority",
                "2-choices",
                "--n",
                "256",
                "--k",
                "4",
                "--runs",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "3-majority" in out
        assert "2-choices" in out

    def test_adversary_budget_axis(self, capsys):
        code = main(
            [
                "sweep",
                "--n",
                "512",
                "--k",
                "4",
                "--runs",
                "1",
                "--adversary",
                "runner-up",
                "--adversary-budget",
                "0",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "2 points" in out
        assert "adversary=runner-up" in out
        assert "| F " in out or "F " in out.splitlines()[2]

    def test_adversary_budget_without_strategy_exit_2(self, capsys):
        code = main(
            [
                "sweep",
                "--n",
                "256",
                "--k",
                "4",
                "--adversary-budget",
                "2",
            ]
        )
        assert code == 2
        assert "--adversary" in capsys.readouterr().out

    def test_adversarial_cache_distinct_from_plain(self, tmp_path, capsys):
        plain = [
            "sweep",
            "--n",
            "256",
            "--k",
            "4",
            "--runs",
            "1",
            "--cache",
            str(tmp_path),
        ]
        attacked = plain + [
            "--adversary",
            "runner-up",
            "--adversary-budget",
            "2",
        ]
        assert main(plain) == 0
        assert main(attacked) == 0
        # Two distinct cache entries: plain and adversarial points
        # never share a key.
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_cache_reuse(self, tmp_path, capsys):
        argv = [
            "sweep",
            "--n",
            "256",
            "--k",
            "4",
            "--runs",
            "2",
            "--cache",
            str(tmp_path),
        ]
        assert main(argv) == 0
        files = sorted(tmp_path.glob("*.json"))
        assert len(files) == 1
        stamp = files[0].stat().st_mtime_ns
        assert main(argv) == 0
        assert files[0].stat().st_mtime_ns == stamp


class TestReport:
    def test_writes_markdown(self, tmp_path, capsys):
        output = tmp_path / "EXPERIMENTS.md"
        code = main(
            [
                "report",
                "--preset",
                "micro",
                "--output",
                str(output),
            ]
        )
        assert code in (0, 1)
        body = output.read_text()
        assert "# EXPERIMENTS" in body
        assert "## Verdict summary" in body
        for experiment_id in ("fig1", "thm11", "table1"):
            assert f"## {experiment_id}" in body
        assert "| verdict |" in body


class TestServiceVerbs:
    @pytest.fixture
    def service(self, tmp_path):
        from repro.service import SimulationService

        with SimulationService(
            tmp_path / "jobs.db",
            cache_dir=tmp_path / "cache",
            num_workers=1,
        ) as svc:
            yield svc

    def test_submit_wait_status_result(self, service, capsys):
        assert (
            main(
                [
                    "submit",
                    "--url", service.url,
                    "--n", "64", "128",
                    "--k", "2",
                    "--runs", "2",
                    "--seed", "1",
                    "--wait",
                    "--timeout", "60",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "submitted job" in out
        assert "median T" in out
        job_id = out.split("submitted job ")[1].split()[0]

        assert main(["status", "--url", service.url, job_id]) == 0
        out = capsys.readouterr().out
        assert "done" in out
        assert "2/2 points" in out

        assert main(["result", "--url", service.url, job_id]) == 0
        out = capsys.readouterr().out
        assert "3-majority" in out
        assert "median T" in out

    def test_submit_without_wait_prints_poll_hint(
        self, service, capsys
    ):
        assert (
            main(
                [
                    "submit",
                    "--url", service.url,
                    "--n", "64",
                    "--k", "2",
                    "--runs", "1",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "repro status --url" in out

    def test_status_unknown_job_exit_2(self, service, capsys):
        assert main(["status", "--url", service.url, "nope"]) == 2
        assert "no job" in capsys.readouterr().out

    def test_submit_bad_grid_exit_2(self, service, capsys):
        # --degree without --graph: same validation as local sweep.
        assert (
            main(
                [
                    "submit",
                    "--url", service.url,
                    "--n", "64",
                    "--k", "2",
                    "--degree", "4",
                ]
            )
            == 2
        )
        assert "--graph" in capsys.readouterr().out

    def test_unreachable_service_exit_2(self, capsys):
        assert (
            main(
                [
                    "status",
                    "--url", "http://127.0.0.1:9",  # discard port
                    "whatever",
                ]
            )
            == 2
        )
        assert "cannot reach" in capsys.readouterr().out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
