"""End-to-end chaos tests: the whole service stack under seeded faults.

Each test drives :func:`repro.faults.chaos.run_chaos` — a real
SQLite-backed store, worker fleet and HTTP API — under one of the
builtin fault plans at a fixed seed, and asserts the harness's own
invariant audit comes back clean: jobs settle ``done``/``dead`` only,
dead jobs carry errors, nothing is lost or duplicated, done results are
byte-identical to a fault-free baseline, and the sweep cache's
provenance chain replays.  A final test pins the determinism contract
itself: the same ``(plan, seed)`` always produces the same fault
schedule.
"""

from __future__ import annotations

import subprocess
import sys
import time
from pathlib import Path

from repro.faults import builtin_plan, use_fault_plan
from repro.faults.chaos import run_chaos
from repro.service import ServiceClient, SimulationService

# Small-but-real chaos runs: enough jobs to get worker contention,
# few enough to keep each test in single-digit seconds.
_CHAOS_KWARGS = dict(jobs=4, clients=2, workers=2, timeout=120.0)


def _assert_clean(report):
    assert report.ok, report.render()
    assert len(report.jobs) == len(report.submitted)


class TestChaosPlans:
    def test_worker_crash_heals_to_done(self):
        report = run_chaos("worker-crash", seed=0, **_CHAOS_KWARGS)
        _assert_clean(report)
        # p=0.5 over every execute attempt: the plan genuinely bit.
        assert report.fired.get("worker.job-execute", 0) >= 1
        assert report.state_counts().get("done", 0) >= 1
        assert report.compared_points > 0

    def test_torn_cache_write_healed_not_published(self):
        report = run_chaos("torn-cache-write", seed=0, **_CHAOS_KWARGS)
        _assert_clean(report)
        assert report.fired.get("sweep.cache-write", 0) >= 1
        # Every done job's values matched the fault-free baseline and
        # the provenance chain over the healed cache replays clean.
        assert report.verify_report is not None
        assert "broken" not in report.verify_report

    def test_flaky_transport_absorbed_by_retries(self):
        report = run_chaos("flaky-transport", seed=0, **_CHAOS_KWARGS)
        _assert_clean(report)
        fired = sum(
            report.fired.get(point, 0)
            for point in (
                "client.request",
                "server.request",
                "server.response",
            )
        )
        assert fired >= 1
        # Transport faults never kill jobs — they only delay them.
        assert report.state_counts() == {"done": len(report.submitted)}

    def test_crash_storm_goes_dead_then_requeues_to_done(self, tmp_path):
        # Every execute attempt faults: retries exhaust, jobs go dead
        # (not failed — the specs are valid).  After the storm passes,
        # an operator requeue must carry every job to done.
        plan = builtin_plan("worker-crash-storm", seed=0)
        with SimulationService(
            tmp_path / "jobs.db",
            cache_dir=tmp_path / "cache",
            port=0,
            num_workers=2,
            max_retries=1,
            backoff_base=0.02,
        ) as service:
            client = ServiceClient(
                service.url, client_id="storm", retry_base=0.02
            )
            with use_fault_plan(plan, scope="process"):
                job_id = client.submit(
                    {
                        "grid": {"n": [16], "k": [2]},
                        "num_runs": 2,
                        "seed": 0,
                        "fixed": {"max_rounds": 4000},
                        "measure": "batch",
                    }
                )
                deadline = time.monotonic() + 60
                while time.monotonic() < deadline:
                    if client.status(job_id)["state"] == "dead":
                        break
                    time.sleep(0.05)
            status = client.status(job_id)
            assert status["state"] == "dead"
            assert status["error"]
            # Storm over (plan disarmed): requeue and ride it to done.
            requeued = client.requeue(job_id)
            assert requeued["state"] == "queued"
            result = client.wait(job_id, timeout=60)
            assert result["state"] == "done"
            assert result["points"]

    def test_report_renders(self):
        report = run_chaos(
            "heartbeat-drop", seed=0, jobs=2, clients=1, workers=1
        )
        _assert_clean(report)
        rendered = report.render()
        assert "chaos plan=heartbeat-drop seed=0" in rendered
        assert "OK: all chaos invariants held" in rendered


class TestChaosDeterminism:
    def test_same_seed_same_schedule(self):
        for name in ("mixed", "flaky-transport", "sqlite-busy"):
            first = builtin_plan(name, seed=7)
            second = builtin_plan(name, seed=7)
            for point in first.summary()["points"]:
                assert first.decisions(point, 300) == second.decisions(
                    point, 300
                ), f"{name}/{point} schedule is not reproducible"

    def test_custom_plan_reports_custom_name(self):
        plan = builtin_plan("heartbeat-drop", seed=0)
        report = run_chaos(plan, jobs=1, clients=1, workers=1)
        assert report.plan_name == "custom"
        _assert_clean(report)


class TestChaosCli:
    def test_cli_runs_plan_and_exits_zero(self, tmp_path):
        env = {
            "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
            "PATH": "/usr/bin:/bin",
        }
        result = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "chaos",
                "--plan",
                "heartbeat-drop",
                "--seed",
                "0",
                "--jobs",
                "2",
                "--clients",
                "1",
                "--workers",
                "1",
                "--dir",
                str(tmp_path / "chaos"),
                "--keep",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert "OK: all chaos invariants held" in result.stdout
        assert (tmp_path / "chaos" / "cache").is_dir()

    def test_cli_rejects_unknown_plan(self):
        env = {
            "PYTHONPATH": str(Path(__file__).resolve().parents[1] / "src"),
            "PATH": "/usr/bin:/bin",
        }
        result = subprocess.run(
            [sys.executable, "-m", "repro", "chaos", "--plan", "hurricane"],
            env=env,
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert result.returncode == 2
