"""Tests for the vectorised asynchronous batch engine.

Mirrors the guarantees of the synchronous batch-engine suite:

* **distributional equivalence** — a batch of R asynchronous replicas
  must simulate the same tick chain as R independent sequential
  :class:`~repro.engine.asynchronous.AsyncPopulationEngine` runs (KS
  tests on consensus ticks, for a vectorised dynamics and for the
  base-class row-loop fallback path);
* **ledger integrity** — per-row mass conservation every tick, frozen
  rows never change, recorded consensus ticks are final, and the
  active-row masking edge cases (R = 1, all-frozen-at-start, budget
  exhaustion under ``on_budget="raise"``) behave;
* **helper contracts** — the integer-exact holder sampler and the
  batched categorical draw.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.adversary import SupportRunnerUp
from repro.configs import balanced
from repro.core import (
    Dynamics,
    HMajority,
    MedianRule,
    ThreeMajority,
    TwoChoices,
    UndecidedStateDynamics,
    Voter,
    batch_categorical,
    sample_holders_batch,
    with_undecided_slot,
)
from repro.engine import (
    AsyncBatchPopulationEngine,
    AsyncPopulationEngine,
    available_engines,
    get_engine,
)
from repro.errors import (
    ConfigurationError,
    ConsensusNotReached,
    StateError,
)
from repro.seeding import spawn_generators
from repro.simulation import SimulationSpec, execute


class _RowLoopThreeMajority(ThreeMajority):
    """3-Majority with the vectorised async override stripped.

    Forces the engine through the base-class row-loop fallback, so the
    fallback path gets its own KS equivalence and ledger coverage.
    """

    async_population_step_batch = Dynamics.async_population_step_batch


def _sequential_ticks(dynamics, counts, runs, seed, max_ticks=10_000_000):
    ticks = []
    for rng in spawn_generators(seed, runs):
        engine = AsyncPopulationEngine(dynamics, counts, seed=rng)
        tick = engine.run_until_consensus(max_ticks=max_ticks)
        assert tick is not None
        ticks.append(tick)
    return ticks


class TestDistributionalEquivalence:
    """Batch R async replicas ~ R sequential async runs (KS tests).

    Seeds are fixed, so these are deterministic checks that the two
    samplers draw from indistinguishable distributions, not flaky
    significance tests.
    """

    RUNS = 100

    @pytest.mark.parametrize(
        "dynamics, counts",
        [
            (ThreeMajority(), balanced(96, 4)),
            (_RowLoopThreeMajority(), balanced(96, 4)),
            (TwoChoices(), balanced(96, 4)),
            (Voter(), balanced(32, 2)),
            (MedianRule(), balanced(96, 4)),
            (HMajority(5), balanced(64, 3)),
            (
                UndecidedStateDynamics(),
                with_undecided_slot(balanced(64, 2)),
            ),
        ],
        ids=[
            "3-majority",
            "3-majority-row-loop",
            "2-choices",
            "voter",
            "median",
            "5-majority",
            "undecided",
        ],
    )
    def test_consensus_tick_distribution_matches(self, dynamics, counts):
        sequential = _sequential_ticks(
            dynamics, counts, self.RUNS, seed=11
        )
        engine = AsyncBatchPopulationEngine(
            dynamics, counts, num_replicas=self.RUNS, seed=22
        )
        results = engine.run_until_consensus(10_000_000)
        batch = [r.metrics["ticks"] for r in results]
        assert all(r.converged for r in results)
        statistic, p_value = ks_2samp(sequential, batch)
        assert p_value > 1e-3, (
            f"{dynamics.name}: KS statistic {statistic:.3f}, "
            f"p={p_value:.2e} — batch and sequential consensus ticks "
            "differ in distribution"
        )

    def test_winner_distribution_uniform_from_balanced(self):
        engine = AsyncBatchPopulationEngine(
            ThreeMajority(), balanced(64, 4), num_replicas=400, seed=9
        )
        results = engine.run_until_consensus(10_000_000)
        histogram = np.bincount(
            [r.winner for r in results], minlength=4
        )
        assert histogram.sum() == 400
        # Expected 100 per bin; 5-sigma band for Binomial(400, 1/4).
        assert (
            np.abs(histogram - 100) < 5 * np.sqrt(400 * 0.25 * 0.75)
        ).all()


class TestLedger:
    @pytest.mark.parametrize("num_replicas", [1, 7])
    def test_stepwise_invariants(self, num_replicas):
        engine = AsyncBatchPopulationEngine(
            ThreeMajority(),
            balanced(80, 4),
            num_replicas=num_replicas,
            seed=42,
        )
        n = engine.num_vertices
        frozen_snapshots: dict[int, np.ndarray] = {}
        prev_frozen = engine.frozen.copy()
        for _ in range(50_000):
            engine.step()
            assert (engine.counts.sum(axis=1) == n).all()
            assert (engine.counts >= 0).all()
            # Frozen is monotone and frozen rows never change again.
            assert (engine.frozen | ~prev_frozen).all()
            for row, snapshot in frozen_snapshots.items():
                assert (engine.counts[row] == snapshot).all()
            for row in np.flatnonzero(engine.frozen & ~prev_frozen):
                frozen_snapshots[int(row)] = engine.counts[row].copy()
            assert (
                engine.consensus_ticks[engine.frozen] >= 0
            ).all()
            assert (
                engine.consensus_ticks[~engine.frozen] == -1
            ).all()
            prev_frozen = engine.frozen.copy()
            if engine.all_consensus():
                break
        assert engine.all_consensus()

    def test_all_frozen_at_start(self):
        """A consensus start freezes every row before any tick."""
        engine = AsyncBatchPopulationEngine(
            ThreeMajority(),
            np.asarray([50, 0, 0]),
            num_replicas=3,
            seed=0,
        )
        assert engine.frozen.all()
        results = engine.run_until_consensus(1000)
        assert engine.tick_index == 0
        for r in results:
            assert r.converged
            assert r.rounds == 0
            assert r.metrics["ticks"] == 0
            assert r.winner == 0

    def test_usd_all_undecided_never_freezes(self):
        """All-undecided rows are absorbing but not consensus."""
        counts = np.asarray([0, 0, 30])  # k = 2 decided + undecided
        engine = AsyncBatchPopulationEngine(
            UndecidedStateDynamics(), counts, num_replicas=4, seed=1
        )
        engine.run_ticks(200)
        assert not engine.frozen.any()
        results = engine.results()
        assert all(not r.converged for r in results)
        assert all(r.winner is None for r in results)

    def test_results_units(self):
        """rounds = ceil(ticks/n); consensus_rounds = ticks // n."""
        engine = AsyncBatchPopulationEngine(
            ThreeMajority(), balanced(50, 3), num_replicas=5, seed=3
        )
        results = engine.run_until_consensus(10_000_000)
        for r, ticks, whole in zip(
            results, engine.consensus_ticks, engine.consensus_rounds
        ):
            assert r.metrics["ticks"] == ticks
            assert r.rounds == math.ceil(ticks / 50)
            assert whole == ticks // 50

    def test_budget_censoring(self):
        engine = AsyncBatchPopulationEngine(
            ThreeMajority(), balanced(512, 16), num_replicas=3, seed=0
        )
        results = engine.run_until_consensus(10)
        assert engine.tick_index == 10
        for r in results:
            assert not r.converged
            assert r.metrics["ticks"] == 10
            assert r.rounds == 1  # ceil(10 / 512)
            assert r.winner is None

    def test_negative_budget_rejected(self):
        engine = AsyncBatchPopulationEngine(
            ThreeMajority(), balanced(50, 2), num_replicas=2, seed=0
        )
        with pytest.raises(ConfigurationError, match="non-negative"):
            engine.run_until_consensus(-1)
        with pytest.raises(ConfigurationError, match="non-negative"):
            engine.run_ticks(-1)

    def test_deterministic_under_seed(self):
        def run():
            engine = AsyncBatchPopulationEngine(
                ThreeMajority(), balanced(60, 3), num_replicas=6, seed=17
            )
            return engine.run_until_consensus(10_000_000)

        a, b = run(), run()
        assert [r.metrics["ticks"] for r in a] == [
            r.metrics["ticks"] for r in b
        ]
        assert [r.winner for r in a] == [r.winner for r in b]

    def test_shares_batch_start_validation(self):
        with pytest.raises(ConfigurationError, match="num_replicas"):
            AsyncBatchPopulationEngine(ThreeMajority(), balanced(60, 3))
        with pytest.raises(ConfigurationError, match="total mass"):
            AsyncBatchPopulationEngine(
                ThreeMajority(), np.asarray([[5, 5], [6, 5]])
            )


class TestAdversary:
    def test_corruption_once_per_round_mass_conserved(self):
        n, budget = 40, 2
        engine = AsyncBatchPopulationEngine(
            ThreeMajority(),
            balanced(n, 4),
            num_replicas=5,
            seed=8,
            adversary=SupportRunnerUp(budget),
        )
        for _ in range(3 * n):
            before = engine.counts.copy()
            engine.step()
            assert (engine.counts.sum(axis=1) == n).all()
            if engine.tick_index % n == 0:
                # Corruption tick: at most 1 (dynamics) + budget moves
                # per active row.
                moved = (
                    np.abs(engine.counts - before).sum(axis=1) // 2
                )
                assert (moved <= 1 + budget).all()

    def test_adversary_slows_consensus(self):
        """Statistical sanity: a runner-up adversary delays the chain."""

        def median_ticks(adversary):
            engine = AsyncBatchPopulationEngine(
                ThreeMajority(),
                balanced(64, 2),
                num_replicas=40,
                seed=5,
                adversary=adversary,
            )
            results = engine.run_until_consensus(2_000_000)
            return np.median(
                [r.metrics["ticks"] for r in results if r.converged]
            )

        assert median_ticks(SupportRunnerUp(2)) > median_ticks(None)


class TestSpecIntegration:
    def test_registered_with_capabilities(self):
        assert "async-batch" in available_engines()
        info = get_engine("async-batch")
        assert info.supports_adversary
        assert not info.supports_graph
        assert not info.supports_target
        assert not info.supports_observers

    def test_spec_round_budget_is_ticks_over_n(self):
        spec = SimulationSpec(
            n=64, k=4, engine="async-batch", replicas=8, seed=2,
        )
        results = execute(spec)
        assert len(results) == 8
        for r in results:
            assert r.converged
            assert r.rounds == math.ceil(r.metrics["ticks"] / 64)

    def test_on_budget_raise(self):
        spec = SimulationSpec(
            n=1024,
            k=64,
            engine="async-batch",
            replicas=4,
            seed=0,
            max_rounds=1,
            on_budget="raise",
        )
        with pytest.raises(ConsensusNotReached, match="ticks"):
            get_engine("async-batch").run(spec)

    def test_graph_rejected(self):
        from repro.graphs import CompleteGraph

        with pytest.raises(ConfigurationError, match="graph"):
            SimulationSpec(
                n=16,
                k=2,
                engine="async-batch",
                graph=CompleteGraph(16),
            )


class TestHelpers:
    def test_sample_holders_never_picks_dead_labels(self):
        counts = np.asarray([[5, 0, 7], [0, 12, 0]])
        rng = np.random.default_rng(0)
        draws = sample_holders_batch(counts, 64, rng)
        assert draws.shape == (2, 64)
        assert set(np.unique(draws[0])) <= {0, 2}
        assert set(np.unique(draws[1])) == {1}

    def test_sample_holders_matches_alpha(self):
        counts = np.asarray([[10, 30, 60]])
        rng = np.random.default_rng(1)
        draws = sample_holders_batch(counts, 20_000, rng)
        freq = np.bincount(draws[0], minlength=3) / 20_000
        assert np.allclose(freq, [0.1, 0.3, 0.6], atol=0.02)

    def test_batch_categorical_matches_law(self):
        law = np.tile(np.asarray([0.2, 0.0, 0.8]), (20_000, 1))
        rng = np.random.default_rng(2)
        draws = batch_categorical(law, rng)
        freq = np.bincount(draws, minlength=3) / 20_000
        assert np.allclose(freq, [0.2, 0.0, 0.8], atol=0.02)

    def test_batch_categorical_rejects_bad_rows(self):
        rng = np.random.default_rng(0)
        law = np.asarray([[0.5, 0.5], [0.9, 0.3]])
        with pytest.raises(StateError) as excinfo:
            batch_categorical(law, rng, "3-majority")
        message = str(excinfo.value)
        assert "row 1" in message
        assert "3-majority" in message
