"""Tests for repro.theory.quantities (Definitions 3.2 and 5.3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.theory.quantities import (
    delta,
    eta,
    gamma_lower_bound,
    gamma_of_alpha,
    p_norm,
)

alphas = st.lists(
    st.floats(min_value=0.0, max_value=1.0), min_size=2, max_size=10
).filter(lambda raw: sum(raw) > 0).map(
    lambda raw: np.asarray(raw) / sum(raw)
)


class TestGamma:
    def test_balanced(self):
        assert gamma_of_alpha(np.full(8, 1 / 8)) == pytest.approx(1 / 8)

    def test_consensus(self):
        assert gamma_of_alpha(np.asarray([1.0, 0.0])) == 1.0

    @given(alphas)
    @settings(max_examples=100, deadline=None)
    def test_bounds(self, alpha):
        gamma = gamma_of_alpha(alpha)
        assert gamma <= 1.0 + 1e-12
        assert gamma >= gamma_lower_bound(alpha.size) - 1e-12

    @given(alphas)
    @settings(max_examples=100, deadline=None)
    def test_leader_dominates_gamma(self, alpha):
        """max_i alpha_i >= gamma — why the leader is never weak."""
        assert float(alpha.max()) >= gamma_of_alpha(alpha) - 1e-12

    def test_lower_bound_validation(self):
        with pytest.raises(ValueError):
            gamma_lower_bound(0)


class TestDeltaEta:
    def test_delta(self):
        alpha = np.asarray([0.5, 0.2, 0.3])
        assert delta(alpha, 0, 1) == pytest.approx(0.3)
        assert delta(alpha, 1, 0) == pytest.approx(-0.3)

    def test_eta_scaling(self):
        alpha = np.asarray([0.49, 0.36, 0.15])
        # eta = (0.49 - 0.36) / sqrt(0.49) = 0.13 / 0.7
        assert eta(alpha, 0, 1) == pytest.approx(0.13 / 0.7)

    def test_eta_sign(self):
        alpha = np.asarray([0.2, 0.8])
        assert eta(alpha, 0, 1) < 0

    def test_eta_extinct_pair(self):
        alpha = np.asarray([0.0, 0.0, 1.0])
        assert eta(alpha, 0, 1) == 0.0

    @given(alphas)
    @settings(max_examples=50, deadline=None)
    def test_eta_at_most_sqrt_alpha(self, alpha):
        """|eta| <= sqrt(max alpha) since |delta| <= max alpha."""
        value = abs(eta(alpha, 0, 1))
        top = max(alpha[0], alpha[1])
        assert value <= np.sqrt(top) + 1e-12


class TestPNorm:
    def test_l1(self):
        assert p_norm(np.asarray([0.25, 0.75]), 1) == pytest.approx(1.0)

    def test_l2_consistent_with_gamma(self):
        alpha = np.asarray([0.5, 0.3, 0.2])
        assert p_norm(alpha, 2) ** 2 == pytest.approx(
            gamma_of_alpha(alpha)
        )

    def test_linf(self):
        assert p_norm(np.asarray([0.1, 0.9]), np.inf) == 0.9

    @given(alphas)
    @settings(max_examples=50, deadline=None)
    def test_norm_monotone_in_p(self, alpha):
        """||x||_3 <= ||x||_2 for probability vectors."""
        assert p_norm(alpha, 3) <= p_norm(alpha, 2) + 1e-12

    @given(alphas)
    @settings(max_examples=50, deadline=None)
    def test_cauchy_schwarz_cube(self, alpha):
        """gamma^2 <= ||alpha||_3^3 — the inequality used in eq. (7)."""
        gamma = gamma_of_alpha(alpha)
        assert gamma**2 <= p_norm(alpha, 3) ** 3 + 1e-12
