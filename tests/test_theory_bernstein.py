"""Tests for the Bernstein condition toolbox (Def. 3.3, Lemmas 3.4/4.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ThreeMajority, TwoChoices
from repro.errors import ConfigurationError
from repro.theory.bernstein import (
    BernsteinParams,
    alpha_params,
    delta_params,
    empirical_mgf_check,
    gamma_params,
    mgf_bound,
)
from repro.theory.drift import expected_alpha_next
from repro.theory.quantities import gamma_of_alpha


class TestBernsteinParams:
    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            BernsteinParams(-1.0, 1.0)

    def test_weaken(self):
        params = BernsteinParams(1.0, 2.0).weaken(2.0, 3.0)
        assert params.D == 2.0 and params.s == 3.0

    def test_weaken_rejects_tightening(self):
        with pytest.raises(ConfigurationError):
            BernsteinParams(1.0, 2.0).weaken(0.5, 3.0)

    def test_scale(self):
        params = BernsteinParams(2.0, 3.0).scale(-2.0)
        assert params.D == 4.0
        assert params.s == 12.0

    def test_scale_one_sided_negative_rejected(self):
        one_sided = BernsteinParams(1.0, 1.0, one_sided=True)
        with pytest.raises(ConfigurationError, match="flips the side"):
            one_sided.scale(-1.0)

    def test_add_independent(self):
        a = BernsteinParams(1.0, 2.0)
        b = BernsteinParams(1.0, 3.0)
        assert a.add_independent(b).s == 5.0

    def test_add_independent_requires_same_d(self):
        with pytest.raises(ConfigurationError, match="share D"):
            BernsteinParams(1.0, 1.0).add_independent(
                BernsteinParams(2.0, 1.0)
            )

    def test_sum_family(self):
        family = [BernsteinParams(0.5, 1.0), BernsteinParams(1.0, 2.0)]
        combined = BernsteinParams.sum_family(family)
        assert combined.D == 1.0
        assert combined.s == 3.0
        assert not combined.one_sided

    def test_sum_family_na_is_one_sided(self):
        combined = BernsteinParams.sum_family(
            [BernsteinParams(1.0, 1.0)], negatively_associated=True
        )
        assert combined.one_sided

    def test_sum_family_empty(self):
        with pytest.raises(ConfigurationError):
            BernsteinParams.sum_family([])


class TestMgfBound:
    def test_domain(self):
        params = BernsteinParams(1.0, 1.0)
        with pytest.raises(ConfigurationError, match="domain"):
            mgf_bound(3.0, params)

    def test_one_sided_rejects_negative_lambda(self):
        params = BernsteinParams(1.0, 1.0, one_sided=True)
        with pytest.raises(ConfigurationError):
            mgf_bound(-0.5, params)

    def test_value(self):
        params = BernsteinParams(0.0, 2.0)
        assert mgf_bound(1.0, params) == pytest.approx(np.e)

    def test_bounded_variable_satisfies_condition(self, rng):
        """Lemma 3.4(i): |X| <= D, E X = 0 => (D, Var X)-Bernstein."""
        samples = rng.uniform(-1.0, 1.0, size=200_000)
        samples -= samples.mean()
        params = BernsteinParams(1.0, float(samples.var()))
        report = empirical_mgf_check(samples, params)
        assert report["ok"], report

    def test_gaussian_violates_small_d_bound(self, rng):
        """A heavy-ish variable with an understated s must fail."""
        samples = rng.normal(0.0, 1.0, size=100_000)
        params = BernsteinParams(0.1, 0.01)  # s far below Var = 1
        report = empirical_mgf_check(samples, params)
        assert not report["ok"]


class TestDynamicsParams:
    """Lemma 4.2: the paper's (D, s) pairs certify real increments."""

    def _alpha_increments(self, dynamics, counts, i, reps, rng):
        n = int(counts.sum())
        alpha = counts / n
        expected = expected_alpha_next(alpha)[i]
        out = np.empty(reps)
        for row in range(reps):
            out[row] = (
                dynamics.population_step(counts, rng)[i] / n - expected
            )
        return out

    @pytest.mark.parametrize(
        "dynamics,name",
        [(ThreeMajority(), "3-majority"), (TwoChoices(), "2-choices")],
        ids=["3maj", "2cho"],
    )
    def test_alpha_increment_certificate(self, dynamics, name, rng):
        counts = np.asarray([600, 250, 150], dtype=np.int64)
        n = int(counts.sum())
        alpha = counts / n
        params = alpha_params(alpha, 0, n, name)
        assert params.D == pytest.approx(1.0 / n)
        samples = self._alpha_increments(dynamics, counts, 0, 40_000, rng)
        report = empirical_mgf_check(samples, params, slack=1.02)
        assert report["ok"], report

    def test_delta_params_shape(self):
        alpha = np.asarray([0.5, 0.3, 0.2])
        params = delta_params(alpha, 0, 1, 100, "3-majority")
        assert params.D == pytest.approx(2.0 / 100)
        assert params.s == pytest.approx(2.0 * 0.8 / 100)

    @pytest.mark.parametrize(
        "dynamics,name",
        [(ThreeMajority(), "3-majority"), (TwoChoices(), "2-choices")],
        ids=["3maj", "2cho"],
    )
    def test_gamma_decrease_certificate(self, dynamics, name, rng):
        """Lemma 4.2(iii): gamma_{t-1} - gamma_t is one-sided Bernstein."""
        counts = np.asarray([500, 300, 200], dtype=np.int64)
        n = int(counts.sum())
        alpha = counts / n
        gamma0 = gamma_of_alpha(alpha)
        params = gamma_params(alpha, n, name)
        assert params.one_sided
        reps = 40_000
        samples = np.empty(reps)
        for row in range(reps):
            new = dynamics.population_step(counts, rng) / n
            samples[row] = gamma0 - float(np.dot(new, new))
        # One-sided condition controls the MGF for lambda >= 0; the
        # increments also carry a drift (gamma is a submartingale) that
        # only helps, so the certificate must pass.
        report = empirical_mgf_check(samples, params, slack=1.02)
        assert report["ok"], report

    def test_gamma_params_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            gamma_params(np.asarray([0.5, 0.5]), 10, "voter")
