"""Compute-backend layer: registry, kernels, threading, equivalence.

Four groups:

* registry semantics — registration, lookup, fail-closed detection,
  the env default, the ambient ``use_backend`` context and the
  unavailable-backend error path (all numpy-only);
* kernel logic — the numba kernel *source* run in pure Python via
  identity decorators against the NumPy reference implementations,
  including the edge cases (h=1, k=2, dead labels, all-frozen rows)
  and the h > 127 widening regression (all numpy-only, so the loop
  bodies stay verified even where numba is not installed);
* wiring — spec/builder/CLI/sweep carry the backend dimension and
  sweep points cache per backend;
* NumPy-vs-Numba equivalence — KS tests across the batch, agent-batch
  and async-batch engines plus compiled-kernel unit checks.  These
  require numba and are *skipped* (never failed) without it.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.backends import (
    AUTO_BACKEND,
    BACKEND_ENV_VAR,
    NumbaBackend,
    active_backend,
    available_backends,
    backend_available,
    default_backend,
    detect_backend,
    get_backend,
    register_backend,
    resolve_backend,
    unregister_backend,
    use_backend,
)
from repro.backends.numba_kernels import KERNEL_NAMES, build_kernels
from repro.backends.registry import _clear_default_cache
from repro.core import (
    HMajority,
    ThreeMajority,
    Voter,
    batch_categorical,
    sample_and_gather_neighbor_opinions_batch,
    sample_holders_batch,
)
from repro.core.h_majority import majority_winners
from repro.engine import (
    AsyncBatchPopulationEngine,
    BatchAgentEngine,
    BatchPopulationEngine,
)
from repro.errors import BackendUnavailableError, ConfigurationError
from repro.graphs import make_graph
from repro.simulation import Simulation, SimulationSpec
from repro.sweep.grid import _point_key, spec_from_params

NUMBA_AVAILABLE = backend_available("numba")
needs_numba = pytest.mark.skipif(
    not NUMBA_AVAILABLE, reason="numba is not installed"
)

KS_PVALUE_FLOOR = 0.01


def _identity_njit(*args, **kwargs):
    """Stand-in for ``numba.njit`` that leaves functions untouched."""
    if args and callable(args[0]):
        return args[0]

    def deco(fn):
        return fn

    return deco


@pytest.fixture
def pure_kernels():
    """The numba kernel bodies as plain Python functions."""
    return build_kernels(_identity_njit, range)


@pytest.fixture(autouse=True)
def _unpolluted_backend_registry():
    """Snapshot the registry so dummy registrations never leak."""
    before = set(available_backends())
    yield
    for name in set(available_backends()) - before:
        unregister_backend(name)
    _clear_default_cache()


class _DummyBackend:
    name = "dummy"
    description = "test double"
    accelerates = frozenset()

    def __init__(self, available=True, check_fails=False):
        self._available = available
        self._check_fails = check_fails
        self.unavailable_reason = "" if available else "synthetic outage"

    def is_available(self):
        return self._available

    def kernel(self, name):
        return None

    def self_check(self):
        if self._check_fails:
            raise RuntimeError("synthetic self-check failure")


# ---------------------------------------------------------------------------
# Registry semantics
# ---------------------------------------------------------------------------
class TestRegistry:
    def test_builtin_backends_registered(self):
        assert available_backends() == ["numba", "numpy"]

    def test_numpy_backend_always_available(self):
        backend = get_backend("numpy")
        assert backend.is_available()
        assert backend.accelerates == frozenset()
        assert all(
            backend.kernel(name) is None for name in sorted(KERNEL_NAMES)
        )

    def test_unknown_backend_raises_with_known_names(self):
        with pytest.raises(ConfigurationError, match="numpy"):
            get_backend("cuda")

    def test_duplicate_registration_rejected(self):
        register_backend("dummy", _DummyBackend)
        with pytest.raises(ConfigurationError, match="already registered"):
            register_backend("dummy", _DummyBackend)
        register_backend("dummy", _DummyBackend, replace=True)

    def test_reserved_and_bad_names_rejected(self):
        with pytest.raises(ConfigurationError):
            register_backend(AUTO_BACKEND, _DummyBackend)
        with pytest.raises(ConfigurationError):
            register_backend("", _DummyBackend)

    def test_unregister_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            unregister_backend("never-registered")

    def test_unavailable_backend_error_path(self):
        register_backend(
            "dummy", lambda: _DummyBackend(available=False)
        )
        assert not backend_available("dummy")
        with pytest.raises(BackendUnavailableError) as excinfo:
            get_backend("dummy")
        assert excinfo.value.backend == "dummy"
        assert "synthetic outage" in str(excinfo.value)
        # The CLI listing path still gets an instance to describe.
        assert get_backend("dummy", require_available=False) is not None

    def test_detection_fails_closed_on_self_check(self):
        register_backend(
            "dummy",
            lambda: _DummyBackend(check_fails=True),
            priority=99,
        )
        # dummy outranks everything but its self-check raises, so
        # detection must skip it rather than select it.
        assert detect_backend().name != "dummy"

    def test_detection_fails_closed_on_broken_factory(self):
        def broken():
            raise RuntimeError("factory exploded")

        register_backend("dummy", broken, priority=99)
        assert detect_backend().name != "dummy"
        assert not backend_available("dummy")

    def test_detection_prefers_verified_high_priority(self):
        register_backend("dummy", _DummyBackend, priority=99)
        _clear_default_cache()
        assert detect_backend().name == "dummy"

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
        _clear_default_cache()
        assert default_backend().name == "numpy"

    def test_env_override_unknown_raises(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "no-such-backend")
        _clear_default_cache()
        with pytest.raises(ConfigurationError):
            default_backend()

    def test_env_override_unavailable_raises(self, monkeypatch):
        register_backend(
            "dummy", lambda: _DummyBackend(available=False)
        )
        monkeypatch.setenv(BACKEND_ENV_VAR, "dummy")
        _clear_default_cache()
        # A pinned env backend must fail loudly, never silently fall
        # back — the user is relying on the pin.
        with pytest.raises(BackendUnavailableError):
            default_backend()

    def test_use_backend_nesting_and_inheritance(self):
        base = active_backend()
        with use_backend("numpy") as outer:
            assert active_backend() is outer
            with use_backend(None) as inherited:
                # None = inherit the ambient backend.
                assert inherited is outer
        assert active_backend() is base

    def test_resolve_backend_forms(self):
        assert resolve_backend(None) is default_backend()
        assert resolve_backend(AUTO_BACKEND) is default_backend()
        assert resolve_backend("numpy").name == "numpy"
        instance = get_backend("numpy")
        assert resolve_backend(instance) is instance
        with pytest.raises(ConfigurationError):
            resolve_backend(123)

    def test_numba_backend_advertises_expected_kernels(self):
        # Importable (and meaningful) without numba installed: the
        # capability flags are class metadata, not compiled state.
        assert NumbaBackend.accelerates == KERNEL_NAMES
        assert KERNEL_NAMES == {
            "majority_winners",
            "hmajority_population_batch",
            "csr_sample_gather",
            "batch_categorical",
            "sample_holders",
        }

    def test_numba_unavailable_reports_reason(self):
        if NUMBA_AVAILABLE:
            pytest.skip("numba installed; unavailable path not reachable")
        with pytest.raises(BackendUnavailableError, match="numba"):
            get_backend("numba")


# ---------------------------------------------------------------------------
# Kernel logic in pure Python against the NumPy references
# ---------------------------------------------------------------------------
class TestKernelLogic:
    def test_majority_winners_deterministic_rows(self, pure_kernels, rng):
        samples = np.array([[1, 1, 2], [3, 2, 2], [5, 5, 5]])
        out = np.empty(3, dtype=samples.dtype)
        pure_kernels["majority_winners"](samples, rng.random(3), out)
        assert out.tolist() == [1, 2, 5]

    def test_majority_winners_h1_is_identity(self, pure_kernels, rng):
        samples = rng.integers(0, 9, size=(50, 1))
        out = np.empty(50, dtype=samples.dtype)
        pure_kernels["majority_winners"](samples, rng.random(50), out)
        assert (out == samples[:, 0]).all()

    def test_majority_winners_tie_break_uniform(self, pure_kernels, rng):
        rows = np.tile([0, 0, 1, 1], (4000, 1))
        out = np.empty(4000, dtype=rows.dtype)
        pure_kernels["majority_winners"](rows, rng.random(4000), out)
        frac = out.mean()
        assert 0.45 < frac < 0.55

    def test_hmajority_kernel_mass_and_dead_labels(self, pure_kernels):
        counts = np.array([[5, 0, 7, 0], [12, 0, 0, 0]], dtype=np.int64)
        out = np.zeros_like(counts)
        with np.errstate(over="ignore"):
            pure_kernels["hmajority_population_batch"](
                counts, 3, np.uint64(12345), out
            )
        assert (out.sum(axis=1) == 12).all()
        # Dead labels occupy zero-width integer-CDF steps: unreachable.
        assert (out[:, [1, 3]] == 0).all()
        # A consensus (all-frozen) row is a fixed point of the chain.
        assert out[1].tolist() == [12, 0, 0, 0]

    def test_hmajority_kernel_h1_matches_voter_mean(self, pure_kernels):
        counts = np.tile([30, 70], (3000, 1)).astype(np.int64)
        out = np.zeros_like(counts)
        with np.errstate(over="ignore"):
            pure_kernels["hmajority_population_batch"](
                counts, 1, np.uint64(99), out
            )
        # h=1 is the Voter chain: E[next fraction] = current fraction.
        assert abs(out[:, 0].mean() / 100 - 0.30) < 0.02

    def test_hmajority_kernel_k2_majority_amplifies(self, pure_kernels):
        # k=2 edge case: with a 70/30 split and h=5, majority sampling
        # amplifies the leader in expectation (the 3/5-majority law).
        counts = np.tile([30, 70], (2000, 1)).astype(np.int64)
        out = np.zeros_like(counts)
        with np.errstate(over="ignore"):
            pure_kernels["hmajority_population_batch"](
                counts, 5, np.uint64(7), out
            )
        assert (out.sum(axis=1) == 100).all()
        assert out[:, 1].mean() / 100 > 0.75

    def test_csr_kernel_samples_true_neighbors(self, pure_kernels):
        graph = make_graph("random-regular", 30, degree=4, seed=1)
        indptr, indices = graph.csr_kernel_tables()
        opinions = (np.arange(60).reshape(2, 30) % 7).astype(np.int16)
        out = np.empty((3, 2, 30), dtype=opinions.dtype)
        with np.errstate(over="ignore"):
            pure_kernels["csr_sample_gather"](
                indptr, indices, np.ascontiguousarray(opinions),
                np.uint64(11), out,
            )
        for row in range(2):
            for vertex in range(30):
                neighbors = opinions[
                    row, indices[indptr[vertex]:indptr[vertex + 1]]
                ]
                assert set(out[:, row, vertex]) <= set(neighbors)

    def test_batch_categorical_kernel_bitwise_vs_reference(
        self, pure_kernels
    ):
        p = np.random.default_rng(3).dirichlet([1.0] * 5, size=64)
        reference = batch_categorical(p, np.random.default_rng(42))
        out = np.empty(64, dtype=np.int64)
        pure_kernels["batch_categorical"](
            np.ascontiguousarray(p),
            np.random.default_rng(42).random(64),
            out,
        )
        assert (reference == out).all()

    def test_batch_categorical_kernel_one_hot_rows(self, pure_kernels):
        p = np.eye(4)[[2, 0, 3, 1]]
        out = np.empty(4, dtype=np.int64)
        pure_kernels["batch_categorical"](
            np.ascontiguousarray(p), np.random.default_rng(0).random(4), out
        )
        assert out.tolist() == [2, 0, 3, 1]

    def test_sample_holders_kernel_bitwise_vs_reference(
        self, pure_kernels
    ):
        counts = np.random.default_rng(5).integers(1, 50, size=(32, 6))
        reference = sample_holders_batch(
            counts, 4, np.random.default_rng(7)
        )
        c64 = np.ascontiguousarray(counts, dtype=np.int64)
        draws = np.random.default_rng(7).integers(
            0, c64.sum(axis=1, keepdims=True), size=(32, 4)
        )
        out = np.empty_like(draws)
        pure_kernels["sample_holders"](c64, draws, out)
        assert (reference == out).all()

    def test_bounded_draw_is_exact_and_in_range(self, pure_kernels):
        bounded = pure_kernels["_bounded"]
        state = np.uint64(424242)
        seen = np.zeros(7, dtype=np.int64)
        with np.errstate(over="ignore"):
            for _ in range(7000):
                state, value = bounded(state, np.uint64(7))
                seen[int(value)] += 1
        assert seen.sum() == 7000
        # Exact uniformity: each cell ~1000; 5-sigma band ~±150.
        assert seen.min() > 800 and seen.max() < 1200


# ---------------------------------------------------------------------------
# The h > 127 widening regression (satellite fix)
# ---------------------------------------------------------------------------
class TestWideHRegression:
    def test_majority_winners_h_above_int8_range(self, rng):
        # 128 occurrences of the majority label: int8 scratch would
        # wrap to -128 and argmax would crown the minority.
        h = 130
        row = np.array([0] * 128 + [1] * 2)
        samples = np.tile(row, (64, 1))
        assert samples.shape[1] == h
        winners = majority_winners(samples, rng)
        assert (winners == 0).all()

    def test_hmajority_population_step_wide_h(self, rng):
        dynamics = HMajority(130)
        counts = np.array([180, 20], dtype=np.int64)
        stepped = dynamics.population_step(counts, rng)
        assert stepped.sum() == 200
        # With h=130 samples per vertex at alpha=0.9, every vertex sees
        # a label-0 majority essentially surely.
        assert stepped[0] == 200

    def test_pure_kernel_wide_h(self, pure_kernels, rng):
        row = np.array([0] * 128 + [1] * 2)
        samples = np.tile(row, (16, 1))
        out = np.empty(16, dtype=samples.dtype)
        pure_kernels["majority_winners"](samples, rng.random(16), out)
        assert (out == 0).all()


# ---------------------------------------------------------------------------
# Spec / builder / sweep / CLI wiring
# ---------------------------------------------------------------------------
class TestWiring:
    def test_spec_default_backend_is_auto(self):
        spec = SimulationSpec(n=100, k=2)
        assert spec.backend == AUTO_BACKEND
        assert AUTO_BACKEND not in spec.describe()

    def test_spec_accepts_registered_backend(self):
        spec = SimulationSpec(n=100, k=2, backend="numpy")
        assert spec.backend == "numpy"
        assert "backend=numpy" in spec.describe()

    def test_spec_rejects_unknown_backend(self):
        with pytest.raises(ConfigurationError):
            SimulationSpec(n=100, k=2, backend="no-such-backend")

    def test_spec_rejects_non_string_backend(self):
        with pytest.raises(ConfigurationError, match="declarative"):
            SimulationSpec(n=100, k=2, backend=get_backend("numpy"))

    def test_spec_unavailable_backend_raises_eagerly(self):
        if NUMBA_AVAILABLE:
            spec = SimulationSpec(n=100, k=2, backend="numba")
            assert spec.backend == "numba"
        else:
            with pytest.raises(BackendUnavailableError):
                SimulationSpec(n=100, k=2, backend="numba")

    def test_builder_backend_round_trip(self):
        spec = (
            Simulation.of("3-majority")
            .n(1000)
            .k(5)
            .replicas(4)
            .batch()
            .backend("numpy")
            .build()
        )
        assert spec.backend == "numpy"
        assert Simulation.from_spec(spec).build().backend == "numpy"

    def test_spec_runs_under_pinned_numpy_backend(self):
        results = (
            Simulation.of("3-majority")
            .n(500)
            .k(4)
            .replicas(6)
            .batch()
            .seed(3)
            .backend("numpy")
            .run()
        )
        assert results.num_converged == 6

    def test_engine_backend_knob_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            BatchPopulationEngine(
                ThreeMajority(),
                np.array([50, 50]),
                num_replicas=4,
                backend="no-such-backend",
            )

    def test_engine_backend_knob_pins_instance(self):
        engine = BatchPopulationEngine(
            ThreeMajority(),
            np.array([50, 50]),
            num_replicas=4,
            seed=0,
            backend="numpy",
        )
        assert engine.backend.name == "numpy"
        engine.step()
        assert (engine.counts.sum(axis=1) == 100).all()

    def test_sweep_params_carry_backend(self):
        spec = spec_from_params({"n": 200, "k": 2, "backend": "numpy"})
        assert spec.backend == "numpy"
        default = spec_from_params({"n": 200, "k": 2})
        assert default.backend == AUTO_BACKEND

    def test_sweep_cache_keys_distinct_per_backend(self):
        base = {"n": 200, "k": 2}
        keys = {
            _point_key(base),
            _point_key({**base, "backend": "numpy"}),
            _point_key({**base, "backend": "numba"}),
        }
        assert len(keys) == 3

    def test_cli_backends_subcommand(self, capsys):
        from repro.cli import main

        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "numpy" in out
        assert "numba" in out
        assert "[default]" in out

    def test_cli_simulate_backend_flag(self, capsys):
        from repro.cli import main

        code = main(
            [
                "simulate",
                "--n", "500", "--k", "3",
                "--replicas", "4",
                "--engine", "batch",
                "--backend", "numpy",
            ]
        )
        assert code == 0
        assert "consensus time" in capsys.readouterr().out

    def test_cli_simulate_unavailable_backend_is_clean_error(
        self, capsys
    ):
        if NUMBA_AVAILABLE:
            pytest.skip("numba installed; unavailable path not reachable")
        from repro.cli import main

        code = main(
            ["simulate", "--n", "100", "--k", "2", "--backend", "numba"]
        )
        assert code == 2
        assert "not available" in capsys.readouterr().out

    def test_cli_sweep_backend_axis(self, tmp_path, capsys):
        from repro.cli import main

        argv = [
            "sweep",
            "--dynamics", "3-majority",
            "--n", "200", "--k", "2",
            "--runs", "2",
            "--workers", "1",
            "--cache", str(tmp_path),
            "--backend", "numpy",
        ]
        assert main(argv) == 0
        capsys.readouterr()

    def test_execute_installs_spec_backend(self):
        from repro.engine.registry import register_engine, unregister_engine
        from repro.simulation.run import execute

        seen = {}

        def probe_engine(spec):
            seen["backend"] = active_backend().name
            return []

        try:
            register_engine(
                "backend-probe", probe_engine, description="probe"
            )
            execute(
                SimulationSpec(
                    n=10, k=2, engine="backend-probe", backend="numpy"
                )
            )
        finally:
            unregister_engine("backend-probe")
        assert seen["backend"] == "numpy"


# ---------------------------------------------------------------------------
# NumPy-vs-Numba equivalence (skipped without numba, never failed)
# ---------------------------------------------------------------------------
def _consensus_times(engine_name, dynamics, backend, seed):
    builder = (
        Simulation.of(dynamics)
        .n(300)
        .k(5)
        .replicas(60)
        .engine(engine_name)
        .seed(seed)
        .backend(backend)
    )
    if engine_name == "agent-batch":
        builder.on_graph(
            make_graph("random-regular", 300, degree=8, seed=2)
        ).engine(engine_name)
    results = builder.run()
    return np.asarray(results.consensus_times, dtype=float)


@needs_numba
class TestNumbaEquivalence:
    @pytest.mark.parametrize(
        "engine_name,dynamics",
        [
            ("batch", "5-majority"),
            ("batch", "3-majority"),
            ("agent-batch", "voter"),
            ("agent-batch", "3-majority"),
            ("async-batch", "3-majority"),
        ],
    )
    def test_consensus_time_ks_equivalence(self, engine_name, dynamics):
        numpy_times = _consensus_times(engine_name, dynamics, "numpy", 11)
        numba_times = _consensus_times(engine_name, dynamics, "numba", 17)
        assert not np.isnan(numpy_times).any()
        assert not np.isnan(numba_times).any()
        _, p_value = ks_2samp(numpy_times, numba_times)
        assert p_value > KS_PVALUE_FLOOR

    def test_compiled_majority_winners_matches_reference_law(self):
        kernel = get_backend("numba").kernel("majority_winners")
        samples = np.array([[1, 1, 2], [3, 2, 2], [5, 5, 5]], np.int64)
        winners = kernel(samples, np.random.default_rng(0))
        assert winners.tolist() == [1, 2, 5]
        # h=1 edge: identity regardless of the tie-break stream.
        single = np.random.default_rng(1).integers(0, 5, size=(40, 1))
        assert (
            kernel(single, np.random.default_rng(2)) == single[:, 0]
        ).all()

    def test_compiled_hmajority_kernel_mass_and_dead_labels(self):
        kernel = get_backend("numba").kernel("hmajority_population_batch")
        counts = np.array([[5, 0, 7, 0], [12, 0, 0, 0]], dtype=np.int64)
        out = kernel(counts, 3, np.random.default_rng(0))
        assert (out.sum(axis=1) == 12).all()
        assert (out[:, [1, 3]] == 0).all()
        assert out[1].tolist() == [12, 0, 0, 0]

    def test_compiled_holders_bitwise_equal_reference(self):
        counts = np.random.default_rng(5).integers(1, 50, size=(32, 6))
        with use_backend("numpy"):
            reference = sample_holders_batch(
                counts, 4, np.random.default_rng(7)
            )
        with use_backend("numba"):
            accelerated = sample_holders_batch(
                counts, 4, np.random.default_rng(7)
            )
        assert (reference == accelerated).all()

    def test_compiled_categorical_matches_reference(self):
        p = np.random.default_rng(3).dirichlet([1.0] * 5, size=64)
        with use_backend("numpy"):
            reference = batch_categorical(p, np.random.default_rng(42))
        with use_backend("numba"):
            accelerated = batch_categorical(p, np.random.default_rng(42))
        assert (reference == accelerated).all()

    def test_compiled_csr_gather_samples_true_neighbors(self):
        graph = make_graph("random-regular", 50, degree=6, seed=3)
        opinions = (
            np.random.default_rng(0).integers(0, 4, size=(4, 50))
        ).astype(np.int16)
        with use_backend("numba"):
            gathered = sample_and_gather_neighbor_opinions_batch(
                opinions, graph, 3, np.random.default_rng(1)
            )
        assert gathered.shape == (3, 4, 50)
        indptr, indices = graph.csr_kernel_tables()
        for row in range(4):
            for vertex in range(50):
                neighbors = set(
                    opinions[row, indices[indptr[vertex]:indptr[vertex + 1]]]
                )
                assert set(gathered[:, row, vertex]) <= neighbors

    def test_all_frozen_rows_are_fixed_points(self):
        consensus = np.array([[100, 0], [0, 100]], dtype=np.int64)
        engine = BatchPopulationEngine(
            HMajority(5), consensus, seed=0, backend="numba"
        )
        assert engine.all_consensus()
        engine.step()
        assert (engine.counts == consensus).all()

    def test_async_engine_under_numba(self):
        engine = AsyncBatchPopulationEngine(
            ThreeMajority(),
            np.array([40, 60]),
            num_replicas=8,
            seed=4,
            backend="numba",
        )
        engine.run_until_consensus(max_ticks=200_000)
        assert engine.frozen.all()

    def test_agent_engine_under_numba_preserves_mass(self):
        graph = make_graph("random-regular", 120, degree=6, seed=5)
        opinions = np.random.default_rng(0).integers(
            0, 3, size=120
        )
        engine = BatchAgentEngine(
            Voter(),
            graph,
            opinions,
            num_replicas=6,
            num_opinions=3,
            seed=1,
            backend="numba",
        )
        engine.step()
        assert engine.opinions.shape == (6, 120)
        assert int(engine.opinions.max()) < 3
