"""Empirical checks of the negative-association facts behind Lemma 4.2(iii).

The trickiest step of the paper's concentration analysis is the norm
gamma_t: the per-opinion contributions are *not* independent, but the
indicator family ``(1[opn_t(v) = i])_{i}`` sums to one per vertex and is
therefore negatively associated (Lemma A.6), which closes the Bernstein
condition for sums (Lemma 3.4(vi)).  These tests verify the measurable
consequences on the actual chains:

* pairwise covariances of distinct opinion counts are non-positive;
* monotone functions of disjoint index sets have non-positive
  correlation (Definition A.4's defining inequality, spot-checked);
* the one-sided Bernstein certificate for gamma decreases fails if we
  *drop* the negative-association variance aggregation (i.e. the
  factor-k-smaller ``s`` really is needed and really does hold).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import ThreeMajority, TwoChoices


def _count_samples(dynamics, counts, reps, rng):
    out = np.empty((reps, counts.size))
    for row in range(reps):
        out[row] = dynamics.population_step(counts, rng)
    return out


@pytest.mark.parametrize(
    "dynamics", [ThreeMajority(), TwoChoices()], ids=lambda d: d.name
)
class TestNegativeCovariance:
    def test_pairwise_covariances_non_positive(self, dynamics, rng):
        counts = np.asarray([300, 250, 250, 200], dtype=np.int64)
        samples = _count_samples(dynamics, counts, 6000, rng)
        cov = np.cov(samples.T)
        k = counts.size
        sem = samples.std(axis=0).max() ** 2 / np.sqrt(6000)
        for i in range(k):
            for j in range(k):
                if i != j:
                    assert cov[i, j] <= 5 * sem

    def test_monotone_disjoint_functions_anticorrelate(
        self, dynamics, rng
    ):
        """E[f(X_I) g(X_J)] <= E[f] E[g] for non-decreasing f, g."""
        counts = np.asarray([400, 300, 200, 100], dtype=np.int64)
        samples = _count_samples(dynamics, counts, 6000, rng)
        f = samples[:, 0] + samples[:, 1]  # non-decreasing in (X0, X1)
        g = np.maximum(samples[:, 2], samples[:, 3])
        lhs = float(np.mean(f * g))
        rhs = float(np.mean(f) * np.mean(g))
        noise = float(np.std(f * g)) / np.sqrt(6000)
        assert lhs <= rhs + 5 * noise


class TestVarianceAggregation:
    def test_gamma_variance_beats_naive_bound(self, rng):
        """Var of the gamma decrease is far below the no-NA estimate.

        Without negative association the best generic bound on
        ``Var[sum_i Y_i]`` is ``k * sum Var[Y_i]`` (Cauchy-Schwarz);
        with it, ``sum Var[Y_i]`` suffices (Lemma 3.4(vi)).  The
        measured variance must respect the NA-level bound.
        """
        n = 10_000
        k = 50
        counts = np.full(k, n // k, dtype=np.int64)
        dynamics = ThreeMajority()
        alpha = counts / n
        gamma0 = float(np.dot(alpha, alpha))
        reps = 4000
        decreases = np.empty(reps)
        for row in range(reps):
            new = dynamics.population_step(counts, rng) / n
            decreases[row] = gamma0 - float(np.dot(new, new))
        measured = decreases.var(ddof=1)
        # Lemma 4.2(iii): s = 4 gamma^{1.5} / n bounds the *MGF* proxy;
        # the raw variance must sit below it too.
        na_bound = 4.0 * gamma0**1.5 / n
        assert measured <= na_bound
