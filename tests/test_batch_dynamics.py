"""Tests for the newly vectorised batch dynamics (Median, USD, h-Majority).

Mirrors the guarantees of ``test_batch_engine.py`` for the dynamics that
gained ``population_step_batch`` overrides:

* **distributional equivalence** — KS tests of batch vs sequential
  consensus times for the Median rule, the Undecided-State Dynamics and
  sampled h-Majority, plus chunked-vs-unchunked h-Majority;
* **label conventions** — USD's ``k + 1``-label consensus convention
  (one *decided* opinion holds everything; all-undecided is censored,
  never a winner) as seen through the batch engine;
* **helper contracts** — the batched sampling primitives and the
  row-chunking memory guard;
* **no-row-loop guard** — every catalogued dynamics must keep its
  vectorised override (also enforced by the CI benchmark job via
  ``benchmarks/bench_batch_dynamics.py``).
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.configs import balanced
from repro.core import (
    Dynamics,
    HMajority,
    MedianRule,
    UndecidedStateDynamics,
    available_dynamics,
    batch_binomial,
    iter_row_chunks,
    make_dynamics,
    sample_opinions_from_counts_batch,
    with_undecided_slot,
)
from repro.engine import (
    BatchPopulationEngine,
    PopulationEngine,
    replicate,
    run_until_consensus,
)
from repro.errors import ConfigurationError, StateError


def _sequential_times(dynamics, counts, runs, seed, max_rounds=100_000):
    def one(rng):
        engine = PopulationEngine(dynamics, counts, seed=rng)
        return run_until_consensus(engine, max_rounds=max_rounds)

    return [r.rounds for r in replicate(one, runs, seed=seed)]


def _batch_times(dynamics, counts, runs, seed, max_rounds=100_000):
    engine = BatchPopulationEngine(
        dynamics, counts, num_replicas=runs, seed=seed
    )
    return [r.rounds for r in engine.run_until_consensus(max_rounds)]


class TestDistributionalEquivalence:
    """Batch R replicas ~ R sequential runs for the new overrides.

    Seeds are fixed, so these are deterministic checks that the two
    samplers were drawn from indistinguishable distributions.
    """

    RUNS = 100

    @pytest.mark.parametrize(
        "dynamics,counts",
        [
            (MedianRule(), balanced(1024, 8)),
            (HMajority(5), balanced(512, 8)),
            (
                UndecidedStateDynamics(),
                with_undecided_slot(balanced(512, 4)),
            ),
        ],
        ids=lambda x: getattr(x, "name", "counts"),
    )
    def test_consensus_time_distribution_matches(self, dynamics, counts):
        sequential = _sequential_times(
            dynamics, counts, self.RUNS, seed=11
        )
        batch = _batch_times(dynamics, counts, self.RUNS, seed=22)
        statistic, p_value = ks_2samp(sequential, batch)
        assert p_value > 1e-3, (
            f"{dynamics.name}: KS statistic {statistic:.3f}, "
            f"p={p_value:.2e} — batch and sequential consensus times "
            "differ in distribution"
        )

    def test_one_step_mean_matches_closed_form(self):
        # Monte-Carlo one-step means of the batched samplers against
        # expected_alpha_next, a sharper per-coordinate check than the
        # KS endpoint tests above.
        rng = np.random.default_rng(5)
        reps = 4000
        cases = [
            (MedianRule(), np.asarray([300, 500, 200])),
            (UndecidedStateDynamics(), np.asarray([300, 300, 200])),
        ]
        for dynamics, start in cases:
            n = int(start.sum())
            matrix = np.tile(start, (reps, 1))
            mean = (
                dynamics.population_step_batch(matrix, rng).mean(axis=0)
                / n
            )
            expected = dynamics.expected_alpha_next(start / n)
            assert mean == pytest.approx(expected, abs=5e-3), (
                dynamics.name
            )

    @pytest.mark.parametrize(
        "dynamics",
        [
            MedianRule(),
            HMajority(5),
        ],
        ids=lambda d: d.name,
    )
    def test_mass_conserved_every_round(self, dynamics):
        engine = BatchPopulationEngine(
            dynamics, balanced(300, 5), num_replicas=16, seed=3
        )
        for _ in range(200):
            engine.step()
            assert (engine.counts.sum(axis=1) == 300).all()
            assert (engine.counts >= 0).all()
            if engine.all_consensus():
                break
        assert engine.all_consensus()

    def test_usd_mass_conserved_every_round(self):
        engine = BatchPopulationEngine(
            UndecidedStateDynamics(),
            with_undecided_slot(balanced(300, 4)),
            num_replicas=16,
            seed=3,
        )
        for _ in range(5000):
            engine.step()
            assert (engine.counts.sum(axis=1) == 300).all()
            assert (engine.counts >= 0).all()
            if engine.all_consensus():
                break
        assert engine.all_consensus()


class TestUndecidedConsensusConvention:
    """USD's k+1-label convention as the batch engine sees it."""

    def test_consensus_mask_requires_decided_winner(self):
        dynamics = UndecidedStateDynamics()
        rows = np.asarray(
            [
                [100, 0, 0],  # decided consensus
                [0, 100, 0],  # decided consensus (second opinion)
                [0, 0, 100],  # all undecided: absorbing, NOT consensus
                [90, 0, 10],  # leader + undecided pool: not consensus
                [50, 50, 0],  # split: not consensus
            ]
        )
        mask = dynamics.consensus_mask_batch(rows)
        assert mask.tolist() == [True, True, False, False, False]

    def test_decided_consensus_start_frozen_with_winner(self):
        engine = BatchPopulationEngine(
            UndecidedStateDynamics(),
            np.asarray([0, 100, 0]),
            num_replicas=3,
            seed=0,
        )
        assert engine.frozen.all()
        results = engine.run_until_consensus(10)
        assert all(r.converged and r.rounds == 0 for r in results)
        assert all(r.winner == 1 for r in results)

    def test_all_undecided_start_is_censored_not_winner(self):
        # The all-undecided configuration is absorbing; under the k+1
        # convention it must surface as a censored run, never as
        # "consensus on the undecided label".
        engine = BatchPopulationEngine(
            UndecidedStateDynamics(),
            np.asarray([0, 0, 100]),
            num_replicas=4,
            seed=0,
        )
        results = engine.run_until_consensus(20)
        assert engine.round_index == 20
        assert all(not r.converged for r in results)
        assert all(r.winner is None for r in results)

    def test_batch_run_reports_decided_winners_only(self):
        counts = with_undecided_slot(balanced(256, 3))
        engine = BatchPopulationEngine(
            UndecidedStateDynamics(), counts, num_replicas=40, seed=7
        )
        results = engine.run_until_consensus(100_000)
        undecided_label = counts.size - 1
        for r in results:
            assert r.converged
            assert r.winner is not None and r.winner < undecided_label
            assert r.final_counts[undecided_label] == 0
            assert r.final_counts[r.winner] == 256

    def test_spec_run_through_batch_engine(self):
        from repro.simulation import SimulationSpec

        results = SimulationSpec(
            dynamics="undecided",
            counts=with_undecided_slot(balanced(128, 2)),
            engine="batch",
            replicas=8,
            seed=1,
        ).run()
        assert results.num_converged == 8
        assert all(r.winner in (0, 1) for r in results)

    def test_sequential_engines_share_the_convention(self):
        """The k+1-label convention is cross-engine: the sequential
        population chain must also censor an all-undecided start rather
        than report the undecided label as a winner."""
        engine = PopulationEngine(
            UndecidedStateDynamics(), np.asarray([0, 0, 100]), seed=0
        )
        assert not engine.is_consensus()
        assert engine.winner() is None  # never the undecided label
        result = run_until_consensus(engine, max_rounds=20)
        assert not result.converged
        assert result.winner is None
        # A decided consensus start is consensus everywhere.
        decided = PopulationEngine(
            UndecidedStateDynamics(), np.asarray([100, 0, 0]), seed=0
        )
        assert decided.is_consensus()
        assert decided.winner() == 0

    def test_target_stop_never_reports_undecided_winner(self):
        """A custom target that halts at the all-undecided state gets
        converged=True (its predicate fired) but no winner — the same
        gate the batch engine applies."""
        engine = PopulationEngine(
            UndecidedStateDynamics(), np.asarray([0, 0, 100]), seed=0
        )
        result = run_until_consensus(
            engine, max_rounds=5, target=lambda c: c[-1] == c.sum()
        )
        assert result.converged
        assert result.winner is None


class TestHMajorityChunking:
    """Chunked and unchunked shared-sample paths sample the same chain."""

    def test_one_step_distribution_equal(self):
        start = balanced(256, 4)
        matrix = np.tile(start, (300, 1))
        unchunked = HMajority(5).population_step_batch(
            matrix, np.random.default_rng(1)
        )
        # budget < n*h forces one row per vectorised call.
        chunked = HMajority(
            5, batch_element_budget=500
        ).population_step_batch(matrix, np.random.default_rng(2))
        assert (chunked.sum(axis=1) == 256).all()
        statistic, p_value = ks_2samp(unchunked[:, 0], chunked[:, 0])
        assert p_value > 1e-3, (statistic, p_value)

    def test_consensus_times_distribution_equal(self):
        counts = balanced(256, 4)
        plain = _batch_times(HMajority(5), counts, 80, seed=5)
        chunked = _batch_times(
            HMajority(5, batch_element_budget=2048), counts, 80, seed=6
        )
        statistic, p_value = ks_2samp(plain, chunked)
        assert p_value > 1e-3, (statistic, p_value)

    def test_engine_element_budget_knob(self):
        dynamics = HMajority(5, batch_element_budget=9999)
        engine = BatchPopulationEngine(
            dynamics,
            balanced(64, 4),
            num_replicas=2,
            seed=0,
            element_budget=1234,
        )
        assert engine.dynamics.batch_element_budget == 1234
        # The caller's instance keeps its own budget (no shared-state
        # mutation across engines).
        assert dynamics.batch_element_budget == 9999

    def test_engine_rejects_bad_element_budget(self):
        with pytest.raises(ConfigurationError, match="element_budget"):
            BatchPopulationEngine(
                HMajority(5),
                balanced(64, 4),
                num_replicas=2,
                element_budget=0,
            )

    def test_constructor_rejects_bad_budget(self):
        with pytest.raises(ValueError, match="batch_element_budget"):
            HMajority(5, batch_element_budget=-1)

    def test_uneven_row_mass_falls_back_to_row_loop(self):
        # Direct calls with unequal row masses are outside the engine's
        # contract but must still be exact (row-loop fallback).
        matrix = np.asarray([[30, 30, 40], [10, 20, 30]])
        out = HMajority(3).population_step_batch(
            matrix, np.random.default_rng(0)
        )
        assert out.sum(axis=1).tolist() == [100, 60]


class TestBatchedSamplingHelpers:
    def test_iter_row_chunks_covers_all_rows(self):
        chunks = list(iter_row_chunks(10, 3, 9))  # 3 rows per chunk
        assert chunks == [(0, 3), (3, 6), (6, 9), (9, 10)]
        # A row wider than the budget still runs, one row at a time.
        assert list(iter_row_chunks(2, 100, 10)) == [(0, 1), (1, 2)]

    def test_sample_opinions_batch_rowwise_law(self):
        rng = np.random.default_rng(0)
        counts = np.asarray([[90, 10, 0], [10, 0, 90]])
        samples = sample_opinions_from_counts_batch(counts, 5000, rng)
        assert samples.shape == (2, 5000)
        # Dead opinions are never sampled.
        assert not (samples[0] == 2).any()
        assert not (samples[1] == 1).any()
        # Per-row frequencies track each row's own alpha.
        freq0 = (samples[0] == 0).mean()
        freq1 = (samples[1] == 2).mean()
        assert freq0 == pytest.approx(0.9, abs=0.02)
        assert freq1 == pytest.approx(0.9, abs=0.02)

    def test_batch_binomial_clips_ulp_overshoot(self):
        rng = np.random.default_rng(0)
        p = np.asarray([1.0 + 1e-12, 0.5])
        out = batch_binomial(np.asarray([10, 10]), p, rng)
        assert out[0] == 10

    def test_batch_binomial_rejects_material_violation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(StateError, match="outside"):
            batch_binomial(
                np.asarray([10]), np.asarray([1.5]), rng, "undecided"
            )


class TestNoRowLoopFallback:
    """Every catalogued dynamics must keep its vectorised override."""

    def test_catalogue_is_fully_vectorised(self):
        specs = list(available_dynamics()) + ["5-majority", "7-majority"]
        for spec in specs:
            dynamics = make_dynamics(spec)
            assert (
                type(dynamics).population_step_batch
                is not Dynamics.population_step_batch
            ), (
                f"{spec} lost its vectorised population_step_batch "
                "override and would fall back to the Python row loop"
            )
