"""Smoke + contract tests for the experiment harness (micro presets)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments.base import ExperimentResult, require_preset
from repro.experiments.registry import (
    EXPERIMENTS,
    get_experiment,
    run_experiment,
)

ALL_IDS = sorted(EXPERIMENTS)


class TestRegistry:
    def test_all_design_doc_ids_present(self):
        expected = {
            "fig1",
            "table1",
            "fig2",
            "thm11",
            "thm21",
            "thm22",
            "thm26",
            "thm27",
            "lem41",
            "rem25",
            "async",
            "adv",
            "ext",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_id(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            get_experiment("nope")

    @pytest.mark.parametrize("experiment_id", ALL_IDS)
    def test_module_contract(self, experiment_id):
        module = get_experiment(experiment_id)
        assert hasattr(module, "run")
        assert hasattr(module, "PRESETS")
        assert hasattr(module, "TITLE")
        assert "quick" in module.PRESETS
        assert "paper" in module.PRESETS
        assert "micro" in module.PRESETS

    def test_require_preset_error(self):
        with pytest.raises(ConfigurationError, match="unknown preset"):
            require_preset({"quick": {}}, "huge")

    def test_require_preset_copies(self):
        presets = {"quick": {"n": 1}}
        out = require_preset(presets, "quick")
        out["n"] = 99
        assert presets["quick"]["n"] == 1


@pytest.mark.parametrize("experiment_id", ALL_IDS)
def test_experiment_micro_run(experiment_id):
    """Every experiment runs end-to-end at micro scale and reports."""
    result = run_experiment(experiment_id, preset="micro", seed=0)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rows, "experiment produced no rows"
    for row in result.rows:
        assert len(row) == len(result.headers)
    table = result.table()
    assert result.experiment_id in table
    # Micro scale is too small for the asymptotic shape checks to be
    # meaningful, so only the machinery is asserted here, not verdicts.
    for comparison in result.comparisons:
        assert comparison.verdict in ("match", "partial", "mismatch")


def test_experiment_result_csv(tmp_path):
    result = run_experiment("lem41", preset="micro", seed=0)
    path = result.save_csv(tmp_path)
    assert path.exists()
    header = path.read_text().splitlines()[0]
    assert header.split(",")[0] == result.headers[0]


def test_experiment_reproducible():
    a = run_experiment("thm27", preset="micro", seed=5)
    b = run_experiment("thm27", preset="micro", seed=5)
    assert a.rows == b.rows


def test_lem41_micro_moments_match():
    """Even at micro scale, Lemma 4.1's closed forms must hold."""
    result = run_experiment("lem41", preset="micro", seed=1)
    mean_check = result.comparisons[0]
    assert mean_check.verdict == "match", mean_check


def test_table1_micro_no_violations():
    """The Table 1 drift inequalities are exact; scale-independent."""
    result = run_experiment("table1", preset="micro", seed=1)
    assert result.comparisons[0].verdict == "match", result.comparisons[0]
