"""Tests for run control: run_until_consensus, replicate, observers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.configs import balanced
from repro.core import ThreeMajority, Voter
from repro.engine import (
    FunctionObserver,
    PopulationEngine,
    TrajectoryRecorder,
    replicate,
    run_until_consensus,
)
from repro.errors import ConfigurationError, ConsensusNotReached


class TestRunUntilConsensus:
    def test_converges_and_reports(self):
        engine = PopulationEngine(
            ThreeMajority(), balanced(1000, 5), seed=0
        )
        result = run_until_consensus(engine, max_rounds=5000)
        assert result.converged
        assert result.consensus_time == result.rounds
        assert result.winner in range(5)
        assert result.final_counts.max() == 1000

    def test_budget_returns_unconverged(self):
        engine = PopulationEngine(
            ThreeMajority(), balanced(10_000, 100), seed=0
        )
        result = run_until_consensus(engine, max_rounds=2)
        assert not result.converged
        assert result.consensus_time is None
        assert result.rounds == 2
        assert result.winner is None

    def test_budget_raise_mode(self):
        engine = PopulationEngine(
            ThreeMajority(), balanced(10_000, 100), seed=0
        )
        with pytest.raises(ConsensusNotReached):
            run_until_consensus(engine, max_rounds=2, on_budget="raise")

    def test_bad_on_budget(self):
        engine = PopulationEngine(ThreeMajority(), [5, 5], seed=0)
        with pytest.raises(ConfigurationError):
            run_until_consensus(engine, 10, on_budget="explode")

    def test_negative_budget(self):
        engine = PopulationEngine(ThreeMajority(), [5, 5], seed=0)
        with pytest.raises(ConfigurationError):
            run_until_consensus(engine, -1)

    def test_already_at_consensus(self):
        engine = PopulationEngine(ThreeMajority(), [0, 10], seed=0)
        result = run_until_consensus(engine, max_rounds=100)
        assert result.converged
        assert result.rounds == 0
        assert result.winner == 1

    def test_custom_target(self):
        engine = PopulationEngine(
            ThreeMajority(), balanced(1000, 4), seed=0
        )
        result = run_until_consensus(
            engine,
            max_rounds=5000,
            target=lambda c: c.max() >= 600,
        )
        assert result.converged
        assert result.final_counts.max() >= 600

    def test_observers_see_every_round(self):
        seen = []
        obs = FunctionObserver(lambda r, c: seen.append(r))
        engine = PopulationEngine(
            ThreeMajority(), balanced(500, 4), seed=0
        )
        result = run_until_consensus(
            engine, max_rounds=5000, observers=(obs,)
        )
        assert seen == list(range(result.rounds + 1))

    def test_final_counts_is_copy(self):
        engine = PopulationEngine(ThreeMajority(), [0, 10], seed=0)
        result = run_until_consensus(engine, max_rounds=1)
        result.final_counts[0] = 99
        assert engine.counts[0] == 0


class TestTrajectoryRecorder:
    def test_records_gamma_and_alive(self):
        recorder = TrajectoryRecorder()
        engine = PopulationEngine(
            ThreeMajority(), balanced(500, 4), seed=0
        )
        result = run_until_consensus(
            engine, max_rounds=5000, observers=(recorder,)
        )
        arrays = recorder.as_arrays()
        assert arrays["round"].size == result.rounds + 1
        assert arrays["gamma"][0] == pytest.approx(0.25)
        assert arrays["gamma"][-1] == pytest.approx(1.0)
        assert arrays["alive"][-1] == 1

    def test_bias_and_max_alpha(self):
        recorder = TrajectoryRecorder(
            record_max_alpha=True, bias_pair=(0, 1)
        )
        engine = PopulationEngine(ThreeMajority(), [60, 40], seed=0)
        run_until_consensus(engine, max_rounds=1, observers=(recorder,))
        arrays = recorder.as_arrays()
        assert arrays["bias"][0] == pytest.approx(0.2)
        assert arrays["max_alpha"][0] == pytest.approx(0.6)

    def test_snapshots_stride(self):
        recorder = TrajectoryRecorder(counts_stride=2)
        engine = PopulationEngine(Voter(), balanced(100, 3), seed=0)
        for _ in range(5):
            recorder.observe(engine.round_index, engine.counts)
            engine.step()
        rounds = [r for r, _ in recorder.snapshots]
        assert rounds == [0, 2, 4]


class TestReplicate:
    def _factory(self, rng):
        engine = PopulationEngine(
            ThreeMajority(), balanced(500, 4), seed=rng
        )
        return run_until_consensus(engine, max_rounds=5000)

    def test_num_runs(self):
        results = replicate(self._factory, num_runs=4, seed=0)
        assert len(results) == 4
        assert all(r.converged for r in results)

    def test_reproducible(self):
        a = [r.rounds for r in replicate(self._factory, 3, seed=9)]
        b = [r.rounds for r in replicate(self._factory, 3, seed=9)]
        assert a == b

    def test_runs_differ_across_streams(self):
        results = replicate(self._factory, num_runs=8, seed=0)
        winners = {r.winner for r in results}
        times = {r.rounds for r in results}
        assert len(winners) > 1 or len(times) > 1

    def test_rejects_zero_runs(self):
        with pytest.raises(ConfigurationError):
            replicate(self._factory, num_runs=0, seed=0)


class TestRunResultMetrics:
    def test_metrics_dict_attachable(self):
        engine = PopulationEngine(ThreeMajority(), [0, 5], seed=0)
        result = run_until_consensus(engine, max_rounds=1)
        result.metrics["note"] = np.asarray([1, 2])
        assert "note" in result.metrics
