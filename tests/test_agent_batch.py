"""Cross-engine equivalence harness for the batched graph engine.

The ``agent-batch`` engine must simulate, per replica row, exactly the
chain the sequential :class:`~repro.engine.agent.AgentEngine` runs on
the same substrate.  This module is the contract:

* **distributional equivalence** — KS tests of batch vs sequential
  consensus times on (a) the complete graph with self-loops and (b) a
  fixed random-regular graph, for 3-Majority and Voter;
* **no-row-loop guard** — the pull-based paper dynamics must keep their
  vectorised ``agent_step_batch`` overrides;
* **sampling primitive** — ``Graph.sample_neighbors_batch`` draws
  uniform neighbours on every code path (power-of-two constant degree,
  general constant degree, irregular degrees, complete graph), and the
  CSR export round-trips;
* **adversary lift** — ``corrupt_batch`` plus vertex reassignment
  conserves every row's mass, moves exactly the corrupted number of
  vertices, respects the per-round F-bound, and identical seeds give
  identical ``(R, n)`` opinion matrices;
* **wiring regressions** — spec validation names the graph-capable
  engines, ``on_graph(...).batch()`` resolves to ``agent-batch``
  instead of dropping the graph, sweep grids accept ``graph``/
  ``degree`` parameters, and ``on_budget="raise"`` behaves like every
  other engine.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.adversary import make_adversary
from repro.configs import balanced
from repro.core import (
    Dynamics,
    ThreeMajority,
    TwoChoices,
    UndecidedStateDynamics,
    Voter,
    gather_neighbor_opinions_batch,
    with_undecided_slot,
)
from repro.engine import (
    AgentEngine,
    BatchAgentEngine,
    replicate,
    run_until_consensus,
)
from repro.engine.agent_batch import apply_count_delta
from repro.engine.registry import get_engine
from repro.errors import ConfigurationError, ConsensusNotReached, GraphError
from repro.graphs import (
    AdjacencyGraph,
    CompleteGraph,
    Graph,
    cycle_graph,
    make_graph,
    random_regular,
)
from repro.simulation import Simulation, SimulationSpec
from repro.state import agents_to_counts, counts_to_agents


def _sequential_times(dynamics, graph, counts, runs, seed, k):
    def one(rng):
        opinions = counts_to_agents(counts, rng=rng, shuffle=True)
        engine = AgentEngine(
            dynamics, graph, opinions, num_opinions=k, seed=rng
        )
        return run_until_consensus(engine, max_rounds=1_000_000)

    return [r.rounds for r in replicate(one, runs, seed=seed)]


def _batch_times(dynamics, graph, counts, runs, seed, k):
    rng = np.random.default_rng(seed)
    opinions = rng.permuted(
        np.tile(counts_to_agents(counts), (runs, 1)), axis=1
    )
    engine = BatchAgentEngine(
        dynamics, graph, opinions, num_opinions=k, seed=rng
    )
    return [r.rounds for r in engine.run_until_consensus(1_000_000)]


class TestDistributionalEquivalence:
    """Batch R graph replicas ~ R sequential agent runs.

    Seeds are fixed, so these are deterministic checks that the two
    samplers were drawn from indistinguishable distributions.
    """

    RUNS = 100

    @pytest.mark.parametrize(
        "dynamics,n,k",
        [(ThreeMajority(), 512, 4), (Voter(), 96, 2)],
        ids=lambda x: getattr(x, "name", str(x)),
    )
    def test_complete_graph_with_self_loops(self, dynamics, n, k):
        graph = CompleteGraph(n, self_loops=True)
        counts = balanced(n, k)
        sequential = _sequential_times(
            dynamics, graph, counts, self.RUNS, seed=11, k=k
        )
        batch = _batch_times(
            dynamics, graph, counts, self.RUNS, seed=22, k=k
        )
        statistic, p_value = ks_2samp(sequential, batch)
        assert p_value > 1e-3, (
            f"{dynamics.name} on {graph!r}: KS statistic "
            f"{statistic:.3f}, p={p_value:.2e} — batch and sequential "
            "consensus times differ in distribution"
        )

    @pytest.mark.parametrize(
        "dynamics,n,k,degree",
        [
            # Degree 7 + self-loops = 8: the power-of-two raw-bit path.
            (ThreeMajority(), 512, 4, 7),
            # Degree 5 + self-loops = 6: the general scalar-bound path.
            (Voter(), 96, 2, 5),
        ],
        ids=lambda x: getattr(x, "name", str(x)),
    )
    def test_fixed_random_regular_graph(self, dynamics, n, k, degree):
        graph = random_regular(n, degree, seed=3)
        counts = balanced(n, k)
        sequential = _sequential_times(
            dynamics, graph, counts, self.RUNS, seed=11, k=k
        )
        batch = _batch_times(
            dynamics, graph, counts, self.RUNS, seed=22, k=k
        )
        statistic, p_value = ks_2samp(sequential, batch)
        assert p_value > 1e-3, (
            f"{dynamics.name} on {graph!r}: KS statistic "
            f"{statistic:.3f}, p={p_value:.2e} — batch and sequential "
            "consensus times differ in distribution"
        )

    def test_two_choices_matches_on_sparse_substrate(self):
        # 2-Choices exercises the keep-own-opinion branch of the
        # batched combiner, which the other two dynamics never hit.
        graph = random_regular(256, 9, seed=5)
        counts = balanced(256, 4)
        sequential = _sequential_times(
            TwoChoices(), graph, counts, 80, seed=1, k=4
        )
        batch = _batch_times(TwoChoices(), graph, counts, 80, seed=2, k=4)
        statistic, p_value = ks_2samp(sequential, batch)
        assert p_value > 1e-3, (statistic, p_value)

    def test_chunked_and_unchunked_sample_the_same_law(self):
        # element_budget changes how the raw stream is consumed (and so
        # the realisation), but never the sampled law — including on the
        # power-of-two raw-bit sampling path, where chunking rounds the
        # per-call draw to word granularity.
        graph = random_regular(128, 7, seed=2)  # degree 8: pow2 path
        counts = balanced(128, 4)

        def times(budget, seed):
            rng = np.random.default_rng(seed)
            opinions = rng.permuted(
                np.tile(counts_to_agents(counts), (60, 1)), axis=1
            )
            engine = BatchAgentEngine(
                ThreeMajority(),
                graph,
                opinions,
                num_opinions=4,
                seed=rng,
                element_budget=budget,
            )
            return [r.rounds for r in engine.run_until_consensus(10_000)]

        plain = times(None, seed=1)
        chunked = times(4 * 128, seed=2)  # one row per vectorised call
        statistic, p_value = ks_2samp(plain, chunked)
        assert p_value > 1e-3, (statistic, p_value)

    def test_out_of_range_labels_fail_loudly_in_counts(self):
        # The offset bincount behind counts/results would silently file
        # an out-of-range label under the next row's bins; it must
        # raise instead (mirrors the sequential engine's validation).
        from repro.errors import StateError

        engine = BatchAgentEngine(
            ThreeMajority(),
            CompleteGraph(10),
            np.zeros(10, dtype=np.int64),
            num_replicas=2,
            num_opinions=2,
            seed=0,
        )
        engine.opinions[0, 0] = 5  # simulate a label-minting dynamics
        with pytest.raises(StateError, match="opinion space"):
            engine.counts

    def test_row_loop_fallback_dynamics_supported(self):
        # A dynamics without an agent_step_batch override must still run
        # correctly through the base-class row loop (USD has none).
        counts = with_undecided_slot(balanced(128, 2))
        graph = random_regular(128, 5, seed=7)
        times = _batch_times(
            UndecidedStateDynamics(), graph, counts, 20, seed=9, k=3
        )
        assert all(t > 0 for t in times)


class TestNoRowLoopFallback:
    """The pull-based paper dynamics keep their vectorised overrides."""

    def test_vectorised_agent_batch_overrides_registered(self):
        for dynamics in (ThreeMajority(), TwoChoices(), Voter()):
            assert (
                type(dynamics).agent_step_batch
                is not Dynamics.agent_step_batch
            ), (
                f"{dynamics.name} lost its vectorised agent_step_batch "
                "override and would fall back to the Python row loop"
            )


class TestSampleNeighborsBatch:
    """The batched sampling primitive on every code path."""

    def _assert_uniform_over_neighbors(self, graph, vertex, rng):
        samples = graph.sample_neighbors_batch(rng, 2, 400)
        drawn = np.asarray(samples)[:, :, vertex].reshape(-1)
        indptr, indices = graph.csr_arrays()
        neighborhood = indices[indptr[vertex] : indptr[vertex + 1]]
        values, freq = np.unique(drawn, return_counts=True)
        assert set(values.tolist()) <= set(neighborhood.tolist())
        expected = drawn.size / neighborhood.size
        assert (np.abs(freq - expected) < 5 * np.sqrt(expected)).all()

    def test_uniform_on_power_of_two_regular_graph(self):
        graph = random_regular(64, 7, seed=0)  # degree 8 with loops
        assert int(graph.degrees[0]) == 8
        self._assert_uniform_over_neighbors(
            graph, 5, np.random.default_rng(0)
        )

    def test_uniform_on_general_regular_graph(self):
        graph = random_regular(64, 5, seed=0)  # degree 6: Lemire path
        self._assert_uniform_over_neighbors(
            graph, 5, np.random.default_rng(0)
        )

    def test_uniform_on_irregular_graph(self):
        edges = np.asarray([[0, 1], [0, 2], [0, 3], [1, 2], [3, 4]])
        graph = AdjacencyGraph.from_edges(5, edges, self_loops=True)
        assert graph.degrees.min() != graph.degrees.max()
        self._assert_uniform_over_neighbors(
            graph, 0, np.random.default_rng(0)
        )

    def test_complete_graph_without_self_loops_never_samples_self(self):
        graph = CompleteGraph(17, self_loops=False)
        samples = graph.sample_neighbors_batch(
            np.random.default_rng(0), 3, 50
        )
        own = np.arange(17)
        assert not (np.asarray(samples) == own).any()
        assert samples.shape == (3, 50, 17)

    def test_base_fallback_matches_layout(self):
        # The Graph base-class row loop must produce the same
        # sample-major layout the overrides use.
        graph = cycle_graph(12)
        fallback = super(AdjacencyGraph, graph).sample_neighbors_batch(
            np.random.default_rng(0), 2, 3
        )
        assert fallback.shape == (2, 3, 12)
        indptr, indices = graph.csr_arrays()
        for j in range(2):
            for r in range(3):
                for v in range(12):
                    row = indices[indptr[v] : indptr[v + 1]]
                    assert fallback[j, r, v] in row

    def test_csr_arrays_roundtrip(self):
        graph = random_regular(32, 3, seed=1)
        indptr, indices = graph.csr_arrays()
        rebuilt = AdjacencyGraph(indptr, indices)
        assert rebuilt.num_vertices == 32
        assert (rebuilt.degrees == graph.degrees).all()

    def test_complete_graph_csr_export(self):
        indptr, indices = CompleteGraph(4, self_loops=True).csr_arrays()
        assert indptr.tolist() == [0, 4, 8, 12, 16]
        assert indices.reshape(4, 4).tolist() == [[0, 1, 2, 3]] * 4
        indptr, indices = CompleteGraph(3, self_loops=False).csr_arrays()
        assert indptr.tolist() == [0, 2, 4, 6]
        assert indices.tolist() == [1, 2, 0, 2, 0, 1]

    def test_base_graph_has_no_csr(self):
        class Opaque(Graph):
            num_vertices = 3

            def sample_neighbors(self, rng, samples_per_vertex):
                return np.zeros((3, samples_per_vertex), dtype=np.int64)

        with pytest.raises(GraphError, match="CSR"):
            Opaque().csr_arrays()

    def test_gather_matches_naive_loop(self):
        rng = np.random.default_rng(4)
        opinions = rng.integers(0, 5, size=(6, 40))
        ids = rng.integers(0, 40, size=(3, 6, 40))
        gathered = gather_neighbor_opinions_batch(opinions, ids)
        for j in range(3):
            for r in range(6):
                assert (
                    gathered[j, r] == opinions[r, ids[j, r]]
                ).all()


class TestAdversaryLift:
    """corrupt_batch + vertex reassignment on the opinion matrix."""

    N, K, R = 300, 5, 24

    def _engine(self, budget=6, seed=5):
        graph = random_regular(self.N, 7, seed=2)
        rng = np.random.default_rng(seed)
        opinions = rng.permuted(
            np.tile(counts_to_agents(balanced(self.N, self.K)), (self.R, 1)),
            axis=1,
        )
        return BatchAgentEngine(
            ThreeMajority(),
            graph,
            opinions,
            num_opinions=self.K,
            seed=rng,
            adversary=make_adversary("runner-up", budget),
        )

    def test_every_row_conserves_mass_every_round(self):
        engine = self._engine()
        for _ in range(40):
            engine.step()
            counts = engine.counts
            assert (counts.sum(axis=1) == self.N).all()
            assert (counts >= 0).all()
            if engine.all_consensus():
                break

    def test_apply_count_delta_realises_the_delta_exactly(self):
        rng = np.random.default_rng(0)
        opinions = counts_to_agents(np.asarray([40, 30, 20, 10]))
        rng.shuffle(opinions)
        before = agents_to_counts(opinions, 4)
        delta = np.asarray([-5, 2, -1, 4])
        reference = opinions.copy()
        apply_count_delta(opinions, delta, rng)
        after = agents_to_counts(opinions, 4)
        assert (after == before + delta).all()
        # The per-round F-bound on the agent level: exactly the moved
        # mass changes vertices, nothing else is touched.
        moved = int(np.abs(delta).sum()) // 2
        assert int((opinions != reference).sum()) == moved

    def test_over_budget_corruption_is_rejected(self):
        # The per-round F-bound is enforced on every row via
        # enforce_corruption_contract_batch: a strategy moving more than
        # its budget must surface as an error, never silent acceptance.
        from repro.adversary import Adversary

        class Cheater(Adversary):
            def corrupt(self, counts, rng):  # pragma: no cover
                return counts

            def corrupt_batch(self, counts, rng):
                counts[:, 0] += 10
                counts[:, 1] -= 10
                return counts

        bad = BatchAgentEngine(
            ThreeMajority(),
            random_regular(self.N, 7, seed=2),
            counts_to_agents(balanced(self.N, self.K)),
            num_replicas=4,
            num_opinions=self.K,
            seed=0,
            adversary=Cheater(1),
        )
        with pytest.raises(ConfigurationError, match="exceeding"):
            bad.step()

    def test_lift_moves_at_most_budget_vertices_per_round(self):
        # Freeze the dynamics (identity step) so the only vertex changes
        # come from the adversary's lift: per round, per row, at most F.
        budget = 4

        class FrozenDynamics(ThreeMajority):
            def agent_step_batch(self, opinions, graph, rng):
                return opinions.copy()

        graph = random_regular(self.N, 7, seed=2)
        engine = BatchAgentEngine(
            FrozenDynamics(),
            graph,
            counts_to_agents(balanced(self.N, self.K)),
            num_replicas=8,
            num_opinions=self.K,
            seed=3,
            adversary=make_adversary("runner-up", budget),
        )
        for _ in range(10):
            before = engine.opinions.copy()
            engine.step()
            changed = (engine.opinions != before).sum(axis=1)
            assert (changed <= budget).all(), changed

    def test_identical_seeds_identical_opinion_matrices(self):
        a = self._engine(seed=7)
        b = self._engine(seed=7)
        for _ in range(15):
            a.step()
            b.step()
        assert (a.opinions == b.opinions).all()
        assert (a.frozen == b.frozen).all()
        # And a different seed actually differs.
        c = self._engine(seed=8)
        for _ in range(15):
            c.step()
        assert (a.opinions != c.opinions).any()


class TestUndecidedConventionOnGraphs:
    """USD's k+1-label convention through the agent-batch engine."""

    def test_all_undecided_start_is_censored_not_winner(self):
        dynamics = UndecidedStateDynamics()
        engine = BatchAgentEngine(
            dynamics,
            CompleteGraph(50),
            np.full(50, 2, dtype=np.int64),
            num_replicas=3,
            num_opinions=3,
            seed=0,
        )
        results = engine.run_until_consensus(15)
        assert engine.round_index == 15
        assert all(not r.converged for r in results)
        assert all(r.winner is None for r in results)

    def test_decided_consensus_start_frozen_with_winner(self):
        engine = BatchAgentEngine(
            UndecidedStateDynamics(),
            CompleteGraph(50),
            np.full(50, 1, dtype=np.int64),
            num_replicas=3,
            num_opinions=3,
            seed=0,
        )
        assert engine.frozen.all()
        results = engine.run_until_consensus(10)
        assert all(r.converged and r.rounds == 0 for r in results)
        assert all(r.winner == 1 for r in results)


class TestSpecAndBuilderWiring:
    """Validation and builder-resolution regressions."""

    def test_graph_with_non_graph_engine_names_capable_engines(self):
        with pytest.raises(ConfigurationError) as excinfo:
            SimulationSpec(
                n=64,
                k=2,
                engine="batch",
                graph=CompleteGraph(64),
            )
        message = str(excinfo.value)
        assert "'agent'" in message and "'agent-batch'" in message

    def test_on_graph_then_batch_resolves_to_agent_batch(self):
        graph = random_regular(64, 3, seed=0)
        spec = (
            Simulation.of("3-majority")
            .n(64)
            .k(2)
            .on_graph(graph)
            .batch()
            .replicas(4)
            .build()
        )
        assert spec.engine == "agent-batch"
        assert spec.graph is graph

    def test_batch_then_on_graph_resolves_to_agent_batch(self):
        # The reverse call order must not silently drop the batch
        # request back to sequential agent replication.
        graph = random_regular(64, 3, seed=0)
        spec = (
            Simulation.of("3-majority")
            .n(64)
            .k(2)
            .batch()
            .on_graph(graph)
            .replicas(4)
            .build()
        )
        assert spec.engine == "agent-batch"
        assert spec.graph is graph

    def test_bare_on_graph_then_batch_resolves_to_agent_batch(self):
        spec = (
            Simulation.of("3-majority")
            .n(64)
            .k(2)
            .on_graph()
            .batch()
            .build()
        )
        assert spec.engine == "agent-batch"

    def test_plain_batch_still_population_level(self):
        spec = Simulation.of("3-majority").n(64).k(2).batch().build()
        assert spec.engine == "batch"

    def test_spec_run_through_agent_batch(self):
        graph = random_regular(128, 5, seed=1)
        results = (
            Simulation.of("3-majority")
            .n(128)
            .k(4)
            .on_graph(graph)
            .batch()
            .replicas(8)
            .seed(3)
            .run()
        )
        assert results.num_converged == 8
        assert all(r.winner in range(4) for r in results)

    def test_identical_spec_seeds_identical_results(self):
        graph = random_regular(128, 5, seed=1)

        def run():
            return (
                Simulation.of("3-majority")
                .n(128)
                .k(4)
                .on_graph(graph)
                .batch()
                .replicas(6)
                .seed(42)
                .run()
            )

        a, b = run(), run()
        assert [r.rounds for r in a] == [r.rounds for r in b]
        assert [r.winner for r in a] == [r.winner for r in b]

    def test_on_budget_raise_contract(self):
        # Voter on a big cycle cannot reach consensus in 3 rounds.
        spec = SimulationSpec(
            dynamics="voter",
            n=64,
            k=2,
            engine="agent-batch",
            graph=cycle_graph(64),
            replicas=4,
            max_rounds=3,
            seed=0,
            on_budget="raise",
        )
        with pytest.raises(ConsensusNotReached):
            get_engine("agent-batch").run(spec)

    def test_registry_capabilities(self):
        info = get_engine("agent-batch")
        assert info.supports_graph
        assert info.supports_target
        assert info.supports_adversary
        assert not info.supports_observers

    def test_target_predicate_on_counts(self):
        spec = SimulationSpec(
            dynamics="3-majority",
            n=128,
            k=4,
            engine="agent-batch",
            graph=random_regular(128, 5, seed=1),
            replicas=4,
            seed=2,
            target=lambda counts: counts.max() >= 100,
        )
        results = spec.run()
        assert all(r.converged for r in results)
        assert all(r.final_counts.max() >= 100 for r in results)


class TestSweepGraphDimension:
    """Graph substrate as sweep grid parameters."""

    def test_spec_from_params_builds_graph_point(self):
        from repro.sweep import spec_from_params

        spec = spec_from_params(
            {
                "n": 64,
                "k": 2,
                "graph": "random-regular",
                "degree": 3,
                "graph_seed": 5,
            }
        )
        assert spec.engine == "agent"
        assert spec.graph is not None
        assert spec.graph.num_vertices == 64

    def test_complete_graph_point_stays_population(self):
        from repro.sweep import spec_from_params

        spec = spec_from_params({"n": 64, "k": 2, "graph": "complete"})
        assert spec.engine == "population"
        assert spec.graph is None

    def test_graph_points_hash_to_distinct_cache_keys(self):
        from repro.sweep.grid import _point_key

        base = {"n": 64, "k": 2, "graph": "random-regular"}
        keys = {
            _point_key({**base, "degree": d, "graph_seed": s})
            for d in (3, 5)
            for s in (0, 1)
        }
        assert len(keys) == 4

    def test_consensus_time_point_on_graph(self):
        from repro.sweep import consensus_time_point

        value = consensus_time_point(
            {
                "n": 64,
                "k": 2,
                "graph": "random-regular",
                "degree": 3,
                "graph_seed": 1,
            },
            np.random.default_rng(0),
        )
        assert np.isfinite(value) and value > 0

    def test_make_graph_families(self):
        assert make_graph("complete", 10).num_vertices == 10
        assert make_graph(
            "random-regular", 10, degree=3, seed=0
        ).num_vertices == 10
        assert make_graph(
            "erdos-renyi", 10, edge_probability=0.5, seed=0
        ).num_vertices == 10
        assert make_graph("cycle", 10).num_vertices == 10
        with pytest.raises(GraphError, match="unknown graph family"):
            make_graph("petersen", 10)
        with pytest.raises(GraphError, match="degree"):
            make_graph("random-regular", 10)
        # Inapplicable parameters are rejected, never silently ignored
        # (a sweep axis over them would fabricate identical substrates
        # presented as different points).
        with pytest.raises(GraphError, match="does not take"):
            make_graph("erdos-renyi", 10, edge_probability=0.5, degree=3)
        with pytest.raises(GraphError, match="does not take"):
            make_graph("random-regular", 10, degree=3,
                       edge_probability=0.5)
        with pytest.raises(GraphError, match="does not take"):
            make_graph("complete", 10, degree=3)
        with pytest.raises(GraphError, match="does not take"):
            make_graph("cycle", 10, edge_probability=0.5)
