"""Tests for Freedman-type bounds and the additive drift lemma."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.theory.bernstein import BernsteinParams
from repro.theory.freedman import (
    additive_drift_hitting,
    additive_drift_upcrossing,
    freedman_classic_tail,
    freedman_tail,
)


class TestFreedmanTail:
    def test_formula(self):
        params = BernsteinParams(0.0, 1.0, one_sided=True)
        # exp(-h^2/2 / (T s)) with T=4, s=1, h=2 -> exp(-0.5).
        assert freedman_tail(2.0, 4.0, params) == pytest.approx(
            np.exp(-0.5)
        )

    def test_monotone_in_h(self):
        params = BernsteinParams(0.1, 1.0, one_sided=True)
        assert freedman_tail(2.0, 10.0, params) > freedman_tail(
            4.0, 10.0, params
        )

    def test_monotone_in_t(self):
        params = BernsteinParams(0.1, 1.0, one_sided=True)
        assert freedman_tail(2.0, 10.0, params) < freedman_tail(
            2.0, 20.0, params
        )

    def test_rejects_bad_inputs(self):
        params = BernsteinParams(0.1, 1.0)
        with pytest.raises(ConfigurationError):
            freedman_tail(-1.0, 10.0, params)
        with pytest.raises(ConfigurationError):
            freedman_tail(1.0, 0.0, params)

    def test_zero_variance_zero_jump(self):
        params = BernsteinParams(0.0, 0.0)
        assert freedman_tail(1.0, 10.0, params) == 0.0

    def test_classic_matches_bernstein_form(self):
        params = BernsteinParams(0.5, 2.0, one_sided=True)
        assert freedman_classic_tail(1.0, 5.0, 2.0, 0.5) == pytest.approx(
            freedman_tail(1.0, 5.0, params)
        )

    def test_bound_valid_on_simulated_martingale(self, rng):
        """Empirical upcrossing frequency stays below the bound."""
        T, reps = 50, 3000
        step_scale = 0.1
        h = 1.2
        params = BernsteinParams(step_scale, step_scale**2, one_sided=True)
        crossings = 0
        for _ in range(reps):
            steps = rng.uniform(-step_scale, step_scale, size=T)
            walk = np.cumsum(steps)
            if walk.max() >= h:
                crossings += 1
        bound = freedman_tail(h, T, params)
        assert crossings / reps <= bound + 3 * np.sqrt(
            bound * (1 - bound) / reps
        ) + 0.01


class TestAdditiveDrift:
    def test_upcrossing_trivial_when_drift_covers(self):
        params = BernsteinParams(0.1, 0.1)
        # h - R T = 1 - 2 <= 0 -> trivial bound 1.
        assert additive_drift_upcrossing(1.0, 10.0, 0.2, params) == 1.0

    def test_upcrossing_formula(self):
        params = BernsteinParams(0.0, 1.0)
        # z = 2, denom = 10 -> exp(-0.2).
        assert additive_drift_upcrossing(
            2.0, 10.0, 0.0, params
        ) == pytest.approx(np.exp(-0.2))

    def test_upcrossing_rejects_negative_drift(self):
        with pytest.raises(ConfigurationError):
            additive_drift_upcrossing(
                1.0, 1.0, -0.5, BernsteinParams(0.1, 0.1)
            )

    def test_hitting_requires_negative_drift(self):
        with pytest.raises(ConfigurationError):
            additive_drift_hitting(
                1.0, 1.0, 0.5, BernsteinParams(0.1, 0.1)
            )

    def test_hitting_trivial_when_horizon_short(self):
        params = BernsteinParams(0.1, 0.1)
        # (-R) T - h = 0.5 - 1 <= 0 -> trivial bound.
        assert additive_drift_hitting(1.0, 5.0, -0.1, params) == 1.0

    def test_hitting_formula(self):
        params = BernsteinParams(0.0, 1.0)
        # z = (-R) T - h = 3 - 1 = 2; denom = 10 -> exp(-0.2).
        assert additive_drift_hitting(
            1.0, 10.0, -0.3, params
        ) == pytest.approx(np.exp(-0.2))

    def test_hitting_bound_on_simulated_process(self, rng):
        """A -0.1-drift bounded walk drops by h within T w.h.p."""
        T, reps, h, R = 100, 2000, 2.0, -0.1
        scale = 0.3
        params = BernsteinParams(scale, scale**2, one_sided=True)
        failures = 0
        for _ in range(reps):
            steps = rng.uniform(-scale, scale, size=T) + R
            walk = np.cumsum(steps)
            if walk.min() > -h:
                failures += 1
        bound = additive_drift_hitting(h, T, R, params)
        assert failures / reps <= bound + 3 * np.sqrt(
            max(bound * (1 - bound), 1e-6) / reps
        ) + 0.01
