"""Smoke tests for the example scripts.

The fast examples run end-to-end (their output is part of the public
face of the library); the slow, sweep-style ones are compile-checked
and their helper functions exercised at reduced scale.
"""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES.glob("*.py"))


def _load(name: str):
    path = EXAMPLES / name
    spec = importlib.util.spec_from_file_location(
        f"example_{path.stem}", path
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_expected_examples_present():
    assert ALL_EXAMPLES == [
        "adversarial_consensus.py",
        "async_vs_sync.py",
        "crossover_study.py",
        "plurality_voting.py",
        "quickstart.py",
        "service_quickstart.py",
        "undecided_dynamics.py",
    ]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_examples_compile(name):
    source = (EXAMPLES / name).read_text()
    compile(source, name, "exec")


def test_quickstart_runs(capsys):
    module = _load("quickstart.py")
    module.N = 2000
    module.K = 10
    module.main()
    out = capsys.readouterr().out
    assert "3-majority" in out
    assert "2-choices" in out


def test_plurality_voting_helpers(capsys):
    module = _load("plurality_voting.py")
    module.N = 1024
    module.K = 8
    module.ELECTIONS_PER_MARGIN = 4
    results = module.hold_elections(0.05, seed=0)
    assert len(results) == 4
    assert all(r.converged for r in results)


def test_crossover_helpers():
    module = _load("crossover_study.py")
    module.N = 1024
    module.RUNS = 2
    from repro.core import ThreeMajority

    value = module.median_time(ThreeMajority(), 4, seed=0)
    assert value > 0


def test_adversarial_helpers():
    module = _load("adversarial_consensus.py")
    module.N = 1024
    module.K = 4
    module.RUNS = 3
    module.WINDOW = 2000
    fraction, median = module.survive_attack(0, seed=0)
    assert fraction == 1.0
    assert median > 0


def test_undecided_helpers():
    module = _load("undecided_dynamics.py")
    module.N = 256
    module.RUNS = 2
    assert module.synchronous_rounds(2) > 0
    assert module.pairwise_parallel_time(2) > 0


def test_service_quickstart_runs(capsys):
    module = _load("service_quickstart.py")
    module.GRID_A = {"n": [64, 128], "k": [2]}
    module.GRID_B = {"n": [128, 256], "k": [2]}
    module.NUM_RUNS = 2
    module.main()
    out = capsys.readouterr().out
    assert "cache hit" in out
    assert "rejected:" in out
    assert "status=ok" in out
