"""Tests for the string-keyed engine registry.

The acceptance bar for the registry refactor: adding a registry entry is
the *only* step needed to expose a new engine to specs (validation,
capability checks) and the dispatcher, and the four built-in engines all
dispatch through it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.configs import balanced
from repro.core import ThreeMajority
from repro.engine import (
    AgentEngine,
    AsyncPopulationEngine,
    BatchPopulationEngine,
    Engine,
    PopulationEngine,
    RunResult,
    available_engines,
    get_engine,
    register_engine,
    unregister_engine,
)
from repro.errors import ConfigurationError
from repro.graphs.generators import cycle_graph
from repro.simulation import SimulationSpec, execute


class TestRegistryContents:
    def test_builtin_engines_registered(self):
        assert set(available_engines()) >= {
            "population",
            "agent",
            "async",
            "batch",
        }

    def test_get_engine_returns_info(self):
        info = get_engine("batch")
        assert info.name == "batch"
        assert callable(info.run)
        assert info.supports_target
        assert not info.supports_observers
        assert info.supports_adversary

    def test_unknown_engine_lists_known(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            get_engine("warp")
        with pytest.raises(ConfigurationError, match="population"):
            get_engine("warp")

    def test_capability_flags_match_engine_semantics(self):
        assert get_engine("agent").supports_graph
        assert not get_engine("population").supports_graph
        assert not get_engine("async").supports_target
        assert get_engine("population").supports_observers

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_engine("population", lambda spec: [])

    def test_bad_name_rejected(self):
        with pytest.raises(ConfigurationError, match="non-empty"):
            register_engine("", lambda spec: [])

    def test_capability_flags_fail_closed_by_default(self):
        """An engine must declare what its runner honours; defaults
        reject target/adversary specs instead of silently ignoring
        those dimensions."""
        register_engine("bare", lambda spec: [])
        try:
            info = get_engine("bare")
            assert not info.supports_target
            assert not info.supports_adversary
            assert not info.supports_graph
            assert not info.supports_observers
            with pytest.raises(ConfigurationError, match="target"):
                SimulationSpec(
                    n=100, k=4, engine="bare", target=lambda c: True
                )
            with pytest.raises(ConfigurationError, match="adversary"):
                SimulationSpec(
                    n=100,
                    k=4,
                    engine="bare",
                    adversary="random",
                    adversary_budget=1,
                )
        finally:
            unregister_engine("bare")


class TestPluggableEngine:
    """A registry entry alone exposes a new engine to the spec layer."""

    @pytest.fixture
    def toy_engine(self):
        def run(spec):
            counts = spec.initial_counts()
            return [
                RunResult(
                    converged=True,
                    rounds=1,
                    winner=0,
                    final_counts=counts,
                )
                for _ in range(spec.replicas)
            ]

        register_engine(
            "toy",
            run,
            description="test double",
            supports_target=False,
            supports_adversary=False,
        )
        try:
            yield
        finally:
            unregister_engine("toy")

    def test_spec_accepts_and_executes_registered_engine(self, toy_engine):
        spec = SimulationSpec(n=100, k=4, engine="toy", replicas=3)
        results = execute(spec)
        assert len(results) == 3
        assert results.num_converged == 3

    def test_capabilities_enforced_from_entry(self, toy_engine):
        with pytest.raises(ConfigurationError, match="target"):
            SimulationSpec(
                n=100, k=4, engine="toy", target=lambda c: True
            )
        with pytest.raises(ConfigurationError, match="adversary"):
            SimulationSpec(
                n=100,
                k=4,
                engine="toy",
                adversary="random",
                adversary_budget=1,
            )

    def test_appears_in_available_engines(self, toy_engine):
        assert "toy" in available_engines()

    def test_on_budget_raise_is_uniform(self):
        """The dispatcher applies on_budget without engine knowledge."""

        def never_converges(spec):
            return [
                RunResult(
                    converged=False,
                    rounds=spec.round_budget(),
                    winner=None,
                    final_counts=spec.initial_counts(),
                )
            ]

        register_engine("stuck", never_converges)
        try:
            from repro.errors import ConsensusNotReached

            with pytest.raises(ConsensusNotReached):
                execute(
                    SimulationSpec(
                        n=100, k=4, engine="stuck", on_budget="raise"
                    )
                )
        finally:
            unregister_engine("stuck")

    @pytest.mark.parametrize(
        "engine", ["population", "agent", "async", "batch"]
    )
    def test_on_budget_raise_contract_at_adapter_level(self, engine):
        """Every built-in adapter honours on_budget='raise' itself.

        Regression: the batch adapter used to return censored results
        and rely on the ``execute`` dispatcher, so direct
        ``get_engine(...).run(spec)`` callers silently got censored
        data while the other engines raised.
        """
        from repro.errors import ConsensusNotReached

        spec = SimulationSpec(
            dynamics="voter",
            n=100,
            k=4,
            engine=engine,
            replicas=3,
            max_rounds=0,  # guaranteed censoring from a split start
            on_budget="raise",
            seed=0,
        )
        with pytest.raises(ConsensusNotReached):
            get_engine(engine).run(spec)

    @pytest.mark.parametrize(
        "engine", ["population", "agent", "async", "batch"]
    )
    def test_on_budget_return_yields_censored_results(self, engine):
        spec = SimulationSpec(
            dynamics="voter",
            n=100,
            k=4,
            engine=engine,
            replicas=3,
            max_rounds=0,
            on_budget="return",
            seed=0,
        )
        results = list(get_engine(engine).run(spec))
        assert len(results) == 3
        assert all(not r.converged for r in results)
        assert all(r.winner is None for r in results)

    def test_replace_flag_allows_override(self):
        original = get_engine("population")
        register_engine(
            "population",
            original.run,
            description="override",
            supports_target=original.supports_target,
            supports_observers=original.supports_observers,
            supports_adversary=original.supports_adversary,
            replace=True,
        )
        try:
            assert get_engine("population").description == "override"
        finally:
            register_engine(
                "population",
                original.run,
                description=original.description,
                supports_graph=original.supports_graph,
                supports_target=original.supports_target,
                supports_observers=original.supports_observers,
                supports_adversary=original.supports_adversary,
                replace=True,
            )


class TestEngineProtocol:
    def test_step_based_engines_conform(self):
        counts = balanced(60, 3)
        engines = [
            PopulationEngine(ThreeMajority(), counts, seed=0),
            BatchPopulationEngine(
                ThreeMajority(), counts, num_replicas=2, seed=0
            ),
            AsyncPopulationEngine(ThreeMajority(), counts, seed=0),
            AgentEngine(
                ThreeMajority(),
                cycle_graph(60),
                np.repeat(np.arange(3), 20),
                num_opinions=3,
                seed=0,
            ),
        ]
        for engine in engines:
            assert isinstance(engine, Engine), type(engine).__name__
