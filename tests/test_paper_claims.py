"""Integration tests: the paper's qualitative claims at test scale.

These are small-n statistical versions of the headline statements —
cheap enough for the unit suite, strong enough to catch a broken
dynamics or drift implementation.  The full-scale versions live in the
benchmark harness (one per paper artefact).
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.configs import balanced, biased, two_block
from repro.core import ThreeMajority, TwoChoices
from repro.engine import (
    PopulationEngine,
    TrajectoryRecorder,
    replicate,
    run_until_consensus,
)
from repro.theory.quantities import gamma_of_alpha
from repro.theory.stopping import classify_opinions

N = 4096


def _times(dynamics, counts, runs, seed, budget=200_000):
    def factory(rng):
        engine = PopulationEngine(dynamics, counts, seed=rng)
        return run_until_consensus(engine, max_rounds=budget)

    results = replicate(factory, runs, seed=seed)
    return np.asarray(
        [r.rounds for r in results if r.converged], dtype=float
    )


class TestTheorem11Shape:
    def test_three_majority_plateau(self):
        """T(k = n) barely exceeds T(k = sqrt n) for 3-Majority."""
        sqrt_k = int(math.sqrt(N))
        t_mid = np.median(_times(ThreeMajority(), balanced(N, sqrt_k), 3, 1))
        t_max = np.median(_times(ThreeMajority(), balanced(N, N), 3, 2))
        assert t_max <= 6 * t_mid

    def test_two_choices_no_plateau(self):
        """T(k) keeps growing for 2-Choices beyond sqrt(n)."""
        sqrt_k = int(math.sqrt(N))
        t_mid = np.median(_times(TwoChoices(), balanced(N, sqrt_k), 3, 3))
        t_big = np.median(
            _times(TwoChoices(), balanced(N, 8 * sqrt_k), 3, 4)
        )
        assert t_big >= 3 * t_mid

    def test_three_majority_beats_two_choices_at_large_k(self):
        k = 8 * int(math.sqrt(N))
        t3 = np.median(_times(ThreeMajority(), balanced(N, k), 3, 5))
        t2 = np.median(_times(TwoChoices(), balanced(N, k), 3, 6))
        assert t2 >= 2 * t3


class TestGammaSubmartingale:
    @pytest.mark.parametrize(
        "dynamics", [ThreeMajority(), TwoChoices()], ids=lambda d: d.name
    )
    def test_gamma_trends_up_along_run(self, dynamics):
        recorder = TrajectoryRecorder(record_gamma=True)
        engine = PopulationEngine(dynamics, balanced(N, 64), seed=0)
        run_until_consensus(
            engine, max_rounds=100_000, observers=(recorder,)
        )
        gamma = np.asarray(recorder.gamma)
        # Submartingale + strong drift: no deep collapse, final = 1.
        assert gamma[-1] == pytest.approx(1.0)
        assert gamma.min() >= 0.5 * gamma[0]

    def test_consensus_time_scales_with_inverse_gamma(self):
        """Theorem 2.1 shape: halving gamma_0 roughly doubles T."""
        slow = two_block(N, 256, 0.05)
        fast = two_block(N, 256, 0.4)
        t_slow = np.median(_times(ThreeMajority(), slow, 3, 7))
        t_fast = np.median(_times(ThreeMajority(), fast, 3, 8))
        ratio = gamma_of_alpha(fast / N) / gamma_of_alpha(slow / N)
        assert t_slow > t_fast
        assert t_slow / t_fast > ratio / 8


class TestWeakOpinionVanishes:
    @pytest.mark.parametrize(
        "dynamics", [ThreeMajority(), TwoChoices()], ids=lambda d: d.name
    )
    def test_lemma52(self, dynamics):
        """A weak opinion dies within ~C log n / gamma_0 rounds."""
        counts = two_block(N, 16, 0.5)
        weak_idx = 1
        counts[weak_idx] = max(1, counts[weak_idx] // 8)
        counts[0] += N - counts.sum()
        gamma0 = gamma_of_alpha(counts / N)
        alpha = counts / N
        assert classify_opinions(alpha)[weak_idx]  # setup sanity
        window = int(40 * math.log(N) / gamma0)
        died = 0
        runs = 5
        for seed in range(runs):
            engine = PopulationEngine(dynamics, counts, seed=(9, seed))
            result = run_until_consensus(
                engine,
                max_rounds=window,
                target=lambda c: c[weak_idx] == 0,
            )
            died += bool(result.converged)
        assert died == runs


class TestPluralityConsensus:
    def test_theorem26_margin_wins(self):
        """A 10x-threshold margin gives plurality consensus reliably."""
        margin = 10.0 * math.sqrt(math.log(N) / N)
        counts = biased(N, 16, margin)
        wins = 0
        runs = 10
        for seed in range(runs):
            engine = PopulationEngine(ThreeMajority(), counts, seed=(3, seed))
            result = run_until_consensus(engine, max_rounds=50_000)
            wins += result.converged and result.winner == 0
        assert wins >= 9

    def test_balanced_control_fair(self):
        """Without a margin every opinion wins ~uniformly (validity)."""
        winners = []
        for seed in range(12):
            engine = PopulationEngine(
                ThreeMajority(), balanced(N, 4), seed=(4, seed)
            )
            result = run_until_consensus(engine, max_rounds=50_000)
            winners.append(result.winner)
        assert len(set(winners)) >= 2  # not rigged towards one opinion


class TestLowerBound:
    def test_theorem27_linear_floor(self):
        """From balanced k, consensus needs >= ~k/4 rounds."""
        for k in (8, 32, 128):
            times = _times(ThreeMajority(), balanced(N, k), 3, (5, k))
            assert times.min() >= k / 4
