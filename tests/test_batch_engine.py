"""Tests for the vectorised batch-replica engine.

Two families of guarantees, mirroring the ledger-style invariant suites
used for stateful simulators:

* **distributional equivalence** — a batch of R replicas must simulate
  the same Markov chain as R independent sequential runs (KS tests on
  consensus times for both paper dynamics);
* **conservation / ledger integrity** — per-replica mass is conserved
  every round, the round index is bounded and monotone, frozen rows
  never change again, and recorded consensus rounds are final.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.configs import balanced, zipf
from repro.core import (
    HMajority,
    MedianRule,
    ThreeMajority,
    TwoChoices,
    Voter,
)
from repro.engine import (
    BatchPopulationEngine,
    PopulationEngine,
    replicate,
    run_until_consensus,
)
from repro.errors import ConfigurationError, StateError


def _sequential_times(dynamics, counts, runs, seed, max_rounds=100_000):
    def one(rng):
        engine = PopulationEngine(dynamics, counts, seed=rng)
        return run_until_consensus(engine, max_rounds=max_rounds)

    return [r.rounds for r in replicate(one, runs, seed=seed)]


class TestConstruction:
    def test_tile_from_single_configuration(self):
        engine = BatchPopulationEngine(
            ThreeMajority(), balanced(100, 4), num_replicas=5, seed=0
        )
        assert engine.counts.shape == (5, 4)
        assert (engine.counts.sum(axis=1) == 100).all()

    def test_matrix_start(self):
        matrix = np.stack([balanced(60, 3), zipf(60, 3)])
        engine = BatchPopulationEngine(TwoChoices(), matrix, seed=0)
        assert engine.num_replicas == 2
        assert engine.num_vertices == 60

    def test_requires_num_replicas_for_vector(self):
        with pytest.raises(ConfigurationError, match="num_replicas"):
            BatchPopulationEngine(ThreeMajority(), balanced(100, 4))

    def test_rejects_replica_count_mismatch(self):
        matrix = np.stack([balanced(60, 3)] * 2)
        with pytest.raises(ConfigurationError, match="rows"):
            BatchPopulationEngine(
                ThreeMajority(), matrix, num_replicas=3
            )

    def test_rejects_unequal_mass_rows(self):
        matrix = np.asarray([[50, 50], [60, 50]])
        with pytest.raises(ConfigurationError, match="total mass"):
            BatchPopulationEngine(ThreeMajority(), matrix)

    def test_rejects_3d_counts(self):
        with pytest.raises(ConfigurationError, match="shape"):
            BatchPopulationEngine(
                ThreeMajority(), np.ones((2, 2, 2), dtype=np.int64)
            )

    def test_consensus_start_is_frozen_immediately(self):
        engine = BatchPopulationEngine(
            ThreeMajority(),
            np.asarray([100, 0, 0]),
            num_replicas=3,
            seed=0,
        )
        assert engine.frozen.all()
        results = engine.run_until_consensus(10)
        assert all(r.converged and r.rounds == 0 for r in results)
        assert all(r.winner == 0 for r in results)


class TestConservationLedger:
    """SNIPPETS-style strict invariants, checked after every round."""

    @pytest.mark.parametrize(
        "dynamics",
        [
            ThreeMajority(),
            TwoChoices(),
            Voter(),
            HMajority(5),
            MedianRule(),
        ],
        ids=lambda d: d.name,
    )
    def test_stepwise_invariants(self, dynamics):
        engine = BatchPopulationEngine(
            dynamics, balanced(200, 6), num_replicas=8, seed=42
        )
        n = engine.num_vertices
        prev_round = engine.round_index
        prev_frozen = engine.frozen.copy()
        frozen_snapshots: dict[int, np.ndarray] = {}
        # Budget covers the Voter baseline too, which needs Theta(n)
        # rounds rather than the paper dynamics' polylog-ish times.
        for _ in range(5000):
            engine.step()
            # 1. Mass conserved in every replica row, every round.
            assert (engine.counts.sum(axis=1) == n).all()
            # 2. Counts stay within [0, n].
            assert (engine.counts >= 0).all()
            assert (engine.counts <= n).all()
            # 3. Round index is monotone, advancing by exactly one.
            assert engine.round_index == prev_round + 1
            prev_round = engine.round_index
            # 4. Frozen is monotone: a frozen row never thaws...
            assert (engine.frozen | ~prev_frozen).all()
            # ...and its counts never change again.
            for row, snapshot in frozen_snapshots.items():
                assert (engine.counts[row] == snapshot).all()
            for row in np.flatnonzero(engine.frozen & ~prev_frozen):
                frozen_snapshots[int(row)] = engine.counts[row].copy()
            # 5. Consensus rounds are recorded exactly for frozen rows.
            assert (engine.consensus_rounds[engine.frozen] >= 0).all()
            assert (
                engine.consensus_rounds[engine.frozen]
                <= engine.round_index
            ).all()
            assert (engine.consensus_rounds[~engine.frozen] == -1).all()
            prev_frozen = engine.frozen.copy()
            if engine.all_consensus():
                break
        assert engine.all_consensus(), (
            f"{dynamics.name} batch did not finish within the budget"
        )

    def test_results_report_recorded_consensus_rounds(self):
        engine = BatchPopulationEngine(
            ThreeMajority(), balanced(400, 4), num_replicas=6, seed=7
        )
        results = engine.run_until_consensus(100_000)
        assert len(results) == 6
        for r, recorded in zip(results, engine.consensus_rounds):
            assert r.converged
            assert r.rounds == recorded
            assert r.winner is not None
            assert r.final_counts[r.winner] == 400

    def test_budget_censoring(self):
        engine = BatchPopulationEngine(
            TwoChoices(), balanced(4096, 512), num_replicas=4, seed=0
        )
        results = engine.run_until_consensus(2)
        assert engine.round_index == 2
        assert all(not r.converged for r in results)
        assert all(r.rounds == 2 and r.winner is None for r in results)

    def test_negative_budget_rejected(self):
        engine = BatchPopulationEngine(
            ThreeMajority(), balanced(100, 2), num_replicas=2, seed=0
        )
        with pytest.raises(ConfigurationError, match="non-negative"):
            engine.run_until_consensus(-1)


class TestDistributionalEquivalence:
    """Batch R replicas ~ R independent sequential runs (KS tests).

    Seeds are fixed, so these are deterministic checks that the two
    samplers were drawn from indistinguishable distributions, not flaky
    significance tests.
    """

    RUNS = 120

    @pytest.mark.parametrize(
        "dynamics", [ThreeMajority(), TwoChoices()], ids=lambda d: d.name
    )
    def test_consensus_time_distribution_matches(self, dynamics):
        counts = balanced(1024, 8)
        sequential = _sequential_times(
            dynamics, counts, self.RUNS, seed=101
        )
        engine = BatchPopulationEngine(
            dynamics, counts, num_replicas=self.RUNS, seed=202
        )
        batch = [
            r.rounds for r in engine.run_until_consensus(100_000)
        ]
        statistic, p_value = ks_2samp(sequential, batch)
        assert p_value > 1e-3, (
            f"{dynamics.name}: KS statistic {statistic:.3f}, "
            f"p={p_value:.2e} — batch and sequential consensus times "
            "differ in distribution"
        )

    def test_winner_distribution_uniform_from_balanced(self):
        # From an exactly balanced start every opinion is equally likely
        # to win; a grossly skewed histogram would betray a bias in the
        # batched sampler (e.g. favouring low indices).
        engine = BatchPopulationEngine(
            ThreeMajority(), balanced(512, 4), num_replicas=400, seed=9
        )
        results = engine.run_until_consensus(100_000)
        histogram = np.bincount(
            [r.winner for r in results], minlength=4
        )
        assert histogram.sum() == 400
        # Expected 100 per bin; 5-sigma band for Binomial(400, 1/4).
        assert (np.abs(histogram - 100) < 5 * np.sqrt(400 * 0.25 * 0.75)).all()


class TestBatchMultinomialErrors:
    def test_bad_row_reported_with_shape_and_dynamics(self):
        from repro.core import batch_multinomial_counts

        rng = np.random.default_rng(0)
        probabilities = np.asarray([[0.5, 0.5], [0.9, 0.3]])
        with pytest.raises(StateError) as excinfo:
            batch_multinomial_counts(
                np.asarray([10, 10]), probabilities, rng, "3-majority"
            )
        message = str(excinfo.value)
        assert "row 1" in message
        assert "(2, 2)" in message
        assert "3-majority" in message

    def test_scalar_variant_reports_shape_and_dynamics(self):
        from repro.core import multinomial_counts

        rng = np.random.default_rng(0)
        with pytest.raises(StateError) as excinfo:
            multinomial_counts(
                10, np.asarray([0.9, 0.3]), rng, "2-choices"
            )
        message = str(excinfo.value)
        assert "(2,)" in message
        assert "2-choices" in message
