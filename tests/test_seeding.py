"""Tests for repro.seeding: normalisation and stream independence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.seeding import (
    as_generator,
    as_seed_sequence,
    generator_stream,
    spawn_generators,
)


class TestAsGenerator:
    def test_from_int_is_deterministic(self):
        a = as_generator(7).random(4)
        b = as_generator(7).random(4)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_from_seed_sequence(self):
        seq = np.random.SeedSequence(5)
        a = as_generator(seq).random()
        b = as_generator(np.random.SeedSequence(5)).random()
        assert a == b

    def test_from_none(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_from_tuple(self):
        a = as_generator((1, 2)).random()
        b = as_generator((1, 2)).random()
        assert a == b

    def test_tuple_components_matter(self):
        assert as_generator((1, 2)).random() != as_generator((1, 3)).random()

    def test_rejects_strings(self):
        with pytest.raises(TypeError, match="seed must be"):
            as_generator("42")


class TestAsSeedSequence:
    def test_from_int(self):
        assert isinstance(as_seed_sequence(3), np.random.SeedSequence)

    def test_passthrough(self):
        seq = np.random.SeedSequence(1)
        assert as_seed_sequence(seq) is seq

    def test_rejects_generator(self):
        with pytest.raises(TypeError, match="Generator"):
            as_seed_sequence(np.random.default_rng(0))

    def test_rejects_mixed_tuple(self):
        with pytest.raises(TypeError):
            as_seed_sequence((1, "a"))


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_zero_count(self):
        assert spawn_generators(0, 0) == []

    def test_negative_count(self):
        with pytest.raises(ValueError, match="non-negative"):
            spawn_generators(0, -1)

    def test_reproducible(self):
        a = [g.random() for g in spawn_generators(9, 4)]
        b = [g.random() for g in spawn_generators(9, 4)]
        assert a == b

    def test_streams_differ(self):
        values = [g.random() for g in spawn_generators(9, 8)]
        assert len(set(values)) == 8

    def test_prefix_stability(self):
        """Replica i gets the same stream regardless of total count."""
        few = [g.random() for g in spawn_generators(1, 3)]
        many = [g.random() for g in spawn_generators(1, 6)]
        assert few == many[:3]


class TestGeneratorStream:
    def test_matches_spawn(self):
        stream = generator_stream(4)
        streamed = [next(stream).random() for _ in range(3)]
        spawned = [g.random() for g in spawn_generators(4, 3)]
        assert streamed == spawned
