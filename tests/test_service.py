"""Tests for the simulation service: store, scheduler, fleet, API.

Layered like the package: the SQLite store and scheduler policy are
exercised directly (no HTTP, no threads), the worker fleet with
injectable runners (timeout/retry/backoff without real sweeps), the
HTTP surface through :class:`ServiceClient` against an in-process
:class:`SimulationService`, and finally the end-to-end acceptance
story — 8 concurrent tenants, one shared cache, quota rejection,
restart survival — plus a subprocess smoke test of ``repro serve``
(the CI smoke job runs exactly that test).
"""

from __future__ import annotations

import json
import re
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import (
    ConfigurationError,
    InvalidJobState,
    JobNotFound,
    QuotaExceededError,
    ServiceError,
)
from repro.service import (
    JobSpec,
    JobStore,
    QuotaPolicy,
    Scheduler,
    ServiceClient,
    SimulationService,
    WorkerFleet,
)
from repro.sweep import SweepSpec, run_sweep


def _spec(ns=(64,), k=2, runs=2, seed=1, **kwargs) -> JobSpec:
    return JobSpec(
        grid={"n": list(ns), "k": [k]},
        num_runs=runs,
        seed=seed,
        fixed={"dynamics": "3-majority"},
        **kwargs,
    )


def _explode_on_n128(params, rng):
    """Module-level point function failing on exactly one grid point."""
    if params["n"] == 128:
        raise RuntimeError("measurement exploded")
    return 1.0


def _wait_for(predicate, timeout=20.0, interval=0.02) -> bool:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return False


@pytest.fixture
def store(tmp_path):
    with JobStore(tmp_path / "jobs.db") as job_store:
        yield job_store


class TestJobSpec:
    def test_canonical_json_round_trip(self):
        spec = _spec(ns=(64, 128), seed=(1, 2))
        clone = JobSpec.from_json(spec.canonical_json())
        assert clone == spec
        assert clone.digest() == spec.digest()

    def test_num_points(self):
        assert _spec(ns=(64, 128, 256)).num_points == 3
        assert JobSpec(grid={"n": [64, 128], "k": [2, 4]}).num_points == 4

    def test_rejects_unknown_fields(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            JobSpec.from_mapping({"grid": {"n": [64], "k": [2]}, "x": 1})

    def test_rejects_missing_grid(self):
        with pytest.raises(ConfigurationError, match="grid"):
            JobSpec.from_mapping({"num_runs": 3})

    def test_rejects_bad_measure(self):
        with pytest.raises(ConfigurationError, match="measure"):
            _spec(measure="telepathy")

    def test_validates_points_eagerly(self):
        # n=2, k=4 is an impossible configuration; must fail at
        # construction, not deep inside a worker.
        with pytest.raises(ConfigurationError):
            JobSpec(grid={"n": [2], "k": [4]})

    def test_rejects_grid_missing_required_parameter(self):
        with pytest.raises(ConfigurationError, match="missing required"):
            JobSpec(grid={"n": [64]})

    def test_to_sweep_spec_matches(self):
        sweep = _spec(ns=(64, 128), runs=5, seed=3).to_sweep_spec()
        assert sweep.num_runs == 5
        assert sweep.seed == 3
        assert len(sweep.points()) == 2


class TestJobStore:
    def test_submit_get_round_trip(self, store):
        job = store.submit(_spec(), client="alice", priority=3)
        fetched = store.get(job.id)
        assert fetched.state == "queued"
        assert fetched.client == "alice"
        assert fetched.priority == 3
        assert fetched.spec == _spec()
        assert fetched.attempts == 0

    def test_get_unknown_raises(self, store):
        with pytest.raises(JobNotFound, match="nope"):
            store.get("nope")

    def test_survives_close_and_reopen(self, tmp_path):
        path = tmp_path / "jobs.db"
        with JobStore(path) as first:
            job = first.submit(_spec(), client="alice")
        with JobStore(path) as second:
            fetched = second.get(job.id)
            assert fetched.state == "queued"
            assert fetched.spec == _spec()

    def test_requeue_orphans_after_simulated_crash(self, tmp_path):
        """A running job from a dead server returns to the queue."""
        path = tmp_path / "jobs.db"
        with JobStore(path) as first:
            job = first.submit(_spec(), client="alice")
            leased = first.lease_next("worker-0")
            assert leased.id == job.id
            assert first.get(job.id).state == "running"
            # close without completing: simulated server death
        with JobStore(path) as second:
            assert second.requeue_orphans() == 1
            revived = second.get(job.id)
            assert revived.state == "queued"
            assert revived.worker is None
            assert second.lease_next("worker-1").id == job.id

    def test_lease_empty_queue(self, store):
        assert store.lease_next("w") is None

    def test_lease_priority_order(self, store):
        low = store.submit(_spec(), client="a", priority=0)
        high = store.submit(_spec(), client="a", priority=5)
        mid = store.submit(_spec(), client="a", priority=2)
        order = [store.lease_next("w").id for _ in range(3)]
        assert order == [high.id, mid.id, low.id]

    def test_lease_fifo_within_priority(self, store):
        first = store.submit(_spec(), client="a")
        second = store.submit(_spec(), client="a")
        assert store.lease_next("w").id == first.id
        assert store.lease_next("w").id == second.id

    def test_lease_fair_share_across_clients(self, store):
        """A flooding tenant cannot starve an idle one."""
        flood = [store.submit(_spec(), client="flood") for _ in range(3)]
        store.lease_next("w0")  # flood now has one running job
        quiet = store.submit(_spec(), client="quiet")
        # Same priority, flood submitted first — but fair-share puts
        # the client with no running jobs ahead.
        assert store.lease_next("w1").id == quiet.id
        assert store.lease_next("w2").id == flood[1].id

    def test_lease_respects_backoff(self, store):
        job = store.submit(_spec(), client="a")
        store.lease_next("w")
        store.fail(job.id, "transient", retry_at=time.time() + 60)
        assert store.get(job.id).state == "queued"
        assert store.lease_next("w") is None  # hidden by not_before
        assert store.lease_next("w", now=time.time() + 61).id == job.id
        assert store.get(job.id).attempts == 1

    def test_complete_records_result(self, store):
        job = store.submit(_spec(), client="a")
        store.lease_next("w")
        store.complete(job.id, [{"params": {"n": 64}, "values": [1.0]}])
        done = store.get(job.id)
        assert done.state == "done"
        assert done.result[0]["values"] == [1.0]
        assert done.done_points == done.total_points

    def test_fail_terminal(self, store):
        job = store.submit(_spec(), client="a")
        store.lease_next("w")
        store.fail(job.id, "RuntimeError: boom")
        failed = store.get(job.id)
        assert failed.state == "failed"
        assert "boom" in failed.error

    def test_cancel_queued(self, store):
        job = store.submit(_spec(), client="a")
        assert store.cancel(job.id).state == "cancelled"
        assert store.lease_next("w") is None

    def test_cancel_running_rejected(self, store):
        job = store.submit(_spec(), client="a")
        store.lease_next("w")
        with pytest.raises(InvalidJobState, match="running"):
            store.cancel(job.id)

    def test_cancel_done_rejected(self, store):
        job = store.submit(_spec(), client="a")
        store.lease_next("w")
        store.complete(job.id, [])
        with pytest.raises(InvalidJobState, match="done"):
            store.cancel(job.id)

    def test_complete_requires_running(self, store):
        job = store.submit(_spec(), client="a")
        with pytest.raises(InvalidJobState, match="complete"):
            store.complete(job.id, [])

    def test_heartbeat_updates_progress(self, store):
        job = store.submit(_spec(ns=(64, 128)), client="a")
        store.lease_next("w")
        store.record_heartbeat(job.id, done_points=1)
        running = store.get(job.id)
        assert running.done_points == 1
        assert running.heartbeat is not None

    def test_stats(self, store):
        store.submit(_spec(), client="a")
        job = store.submit(_spec(), client="b")
        store.cancel(job.id)
        counts = store.stats()
        assert counts["queued"] == 1
        assert counts["cancelled"] == 1
        assert counts["running"] == 0


class TestQuota:
    def test_max_jobs_rejected_with_clear_error(self, store):
        scheduler = Scheduler(store, QuotaPolicy(max_jobs=2))
        scheduler.admit(_spec(), client="alice")
        scheduler.admit(_spec(), client="alice")
        with pytest.raises(
            QuotaExceededError, match="'alice'.*2 active"
        ):
            scheduler.admit(_spec(), client="alice")

    def test_max_jobs_is_per_client(self, store):
        scheduler = Scheduler(store, QuotaPolicy(max_jobs=1))
        scheduler.admit(_spec(), client="alice")
        scheduler.admit(_spec(), client="bob")  # unaffected

    def test_max_points_rejected(self, store):
        scheduler = Scheduler(
            store, QuotaPolicy(max_points=4, max_points_per_job=None)
        )
        scheduler.admit(_spec(ns=(64, 128, 256)), client="alice")
        with pytest.raises(QuotaExceededError, match="grid\\s?points"):
            scheduler.admit(_spec(ns=(64, 128)), client="alice")

    def test_max_points_per_job_rejected(self, store):
        scheduler = Scheduler(store, QuotaPolicy(max_points_per_job=2))
        with pytest.raises(QuotaExceededError, match="per-job"):
            scheduler.admit(_spec(ns=(64, 128, 256)), client="alice")

    def test_finished_jobs_free_quota(self, store):
        scheduler = Scheduler(store, QuotaPolicy(max_jobs=1))
        job = scheduler.admit(_spec(), client="alice")
        store.lease_next("w")
        store.complete(job.id, [])
        scheduler.admit(_spec(), client="alice")  # slot freed

    def test_requires_client_id(self, store):
        scheduler = Scheduler(store)
        with pytest.raises(ConfigurationError, match="client"):
            scheduler.admit(_spec(), client="")

    def test_policy_validates_limits(self):
        with pytest.raises(ConfigurationError, match="max_jobs"):
            QuotaPolicy(max_jobs=0)


class _FlakyRunner:
    """Fails the first ``failures`` invocations, then succeeds."""

    def __init__(self, failures: int, error: Exception | None = None):
        self.failures = failures
        self.calls = 0
        self.error = error or RuntimeError("transient blip")

    def __call__(self, job, progress):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        progress(job.total_points, job.total_points)
        return [{"params": {}, "values": [1.0], "error": None}]


class TestWorkerFleet:
    def _fleet(self, store, runner=None, **kwargs):
        kwargs.setdefault("num_workers", 1)
        kwargs.setdefault("poll_interval", 0.01)
        kwargs.setdefault("heartbeat_interval", 0.02)
        kwargs.setdefault("backoff_base", 0.01)
        return WorkerFleet(
            store, Scheduler(store), runner=runner, **kwargs
        )

    def test_executes_real_sweep_job(self, store, tmp_path):
        fleet = self._fleet(store, cache_dir=tmp_path / "cache")
        job = store.submit(_spec(ns=(64, 128)), client="a")
        fleet.start()
        try:
            assert _wait_for(
                lambda: store.get(job.id).state == "done"
            )
        finally:
            assert fleet.drain(10.0)
        done = store.get(job.id)
        assert len(done.result) == 2
        assert done.done_points == 2
        values = done.result[0]["values"]
        assert len(values) == 2 and all(v > 0 for v in values)

    def test_transient_failure_retried_to_success(self, store):
        runner = _FlakyRunner(failures=2)
        fleet = self._fleet(store, runner=runner, max_retries=2)
        job = store.submit(_spec(), client="a")
        fleet.start()
        try:
            assert _wait_for(
                lambda: store.get(job.id).state == "done"
            )
        finally:
            assert fleet.drain(10.0)
        assert runner.calls == 3
        assert store.get(job.id).attempts == 2

    def test_retries_exhausted_goes_dead(self, store):
        runner = _FlakyRunner(failures=99)
        fleet = self._fleet(store, runner=runner, max_retries=1)
        job = store.submit(_spec(), client="a")
        fleet.start()
        try:
            assert _wait_for(
                lambda: store.get(job.id).state == "dead"
            )
        finally:
            assert fleet.drain(10.0)
        dead = store.get(job.id)
        assert runner.calls == 2  # initial + 1 retry
        assert "transient blip" in dead.error

    def test_backoff_delays_retry(self, store):
        runner = _FlakyRunner(failures=1)
        fleet = self._fleet(
            store, runner=runner, max_retries=1, backoff_base=0.2
        )
        job = store.submit(_spec(), client="a")
        fleet.start()
        try:
            assert _wait_for(
                lambda: store.get(job.id).attempts == 1, timeout=5.0
            )
            requeued = store.get(job.id)
            # The retry is scheduled into the future, not immediate.
            assert requeued.not_before > requeued.updated - 0.05
            assert _wait_for(
                lambda: store.get(job.id).state == "done"
            )
        finally:
            assert fleet.drain(10.0)

    def test_configuration_error_is_permanent(self, store):
        runner = _FlakyRunner(
            failures=99, error=ConfigurationError("bad spec")
        )
        fleet = self._fleet(store, runner=runner, max_retries=5)
        job = store.submit(_spec(), client="a")
        fleet.start()
        try:
            assert _wait_for(
                lambda: store.get(job.id).state == "failed"
            )
        finally:
            assert fleet.drain(10.0)
        assert runner.calls == 1  # never retried
        assert "bad spec" in store.get(job.id).error

    def test_job_timeout_retried_then_dead(self, store):
        def sleepy(job, progress):
            time.sleep(30.0)
            return []

        fleet = self._fleet(
            store,
            runner=sleepy,
            job_timeout=0.1,
            max_retries=1,
            heartbeat_interval=0.02,
        )
        job = store.submit(_spec(), client="a")
        fleet.start()
        try:
            assert _wait_for(
                lambda: store.get(job.id).state == "dead",
                timeout=15.0,
            )
        finally:
            assert fleet.drain(10.0)
        dead = store.get(job.id)
        assert dead.attempts == 2
        assert "timeout" in dead.error.lower()

    def test_graceful_drain_finishes_in_flight_job(self, store):
        release = threading.Event()

        def gated(job, progress):
            release.wait(10.0)
            return [{"params": {}, "values": [1.0], "error": None}]

        fleet = self._fleet(store, runner=gated)
        job = store.submit(_spec(), client="a")
        fleet.start()
        assert _wait_for(lambda: store.get(job.id).state == "running")
        release.set()
        assert fleet.drain(10.0)
        assert store.get(job.id).state == "done"
        assert fleet.alive_workers == 0

    def test_heartbeats_recorded_during_run(self, store):
        seen = threading.Event()

        def slow(job, progress):
            _wait_for(
                lambda: store.get(job.id).heartbeat is not None,
                timeout=5.0,
            )
            seen.set()
            return []

        fleet = self._fleet(store, runner=slow)
        store.submit(_spec(), client="a")
        fleet.start()
        try:
            assert seen.wait(10.0)
        finally:
            assert fleet.drain(10.0)


class TestHTTPAPI:
    @pytest.fixture
    def service(self, tmp_path):
        with SimulationService(
            tmp_path / "jobs.db",
            cache_dir=tmp_path / "cache",
            num_workers=2,
            quota=QuotaPolicy(
                max_jobs=4, max_points=64, max_points_per_job=32
            ),
        ) as svc:
            yield svc

    @pytest.fixture
    def idle_service(self, tmp_path):
        """No workers: jobs stay queued, cancellation is testable."""
        with SimulationService(
            tmp_path / "jobs.db",
            cache_dir=tmp_path / "cache",
            num_workers=0,
        ) as svc:
            yield svc

    def test_submit_poll_result_round_trip(self, service):
        client = ServiceClient(service.url, client_id="alice")
        job_id = client.submit(
            {
                "grid": {"n": [64, 128], "k": [2]},
                "fixed": {"dynamics": "3-majority"},
                "num_runs": 2,
                "seed": 1,
            }
        )
        status = client.status(job_id)
        assert status["state"] in ("queued", "running", "done")
        assert status["progress"]["total_points"] == 2
        result = client.wait(job_id, timeout=60.0)
        assert len(result["points"]) == 2
        assert client.status(job_id)["state"] == "done"
        for point in result["points"]:
            assert len(point["values"]) == 2
            assert point["error"] is None

    def test_result_matches_direct_run_sweep(self, service, tmp_path):
        """The service serves exactly what run_sweep measures."""
        spec = _spec(ns=(64, 128), runs=3, seed=7)
        client = ServiceClient(service.url, client_id="alice")
        result = client.wait(client.submit(spec), timeout=60.0)
        direct = run_sweep(
            spec.to_sweep_spec(),
            cache_dir=tmp_path / "direct-cache",
            measure="batch",
        )
        assert [p["values"] for p in result["points"]] == [
            list(p.values) for p in direct
        ]

    def test_cancel_queued_job(self, idle_service):
        client = ServiceClient(idle_service.url, client_id="alice")
        job_id = client.submit(_spec())
        assert client.status(job_id)["state"] == "queued"
        assert client.cancel(job_id)["state"] == "cancelled"
        with pytest.raises(InvalidJobState):
            client.cancel(job_id)

    def test_result_before_done_conflicts(self, idle_service):
        client = ServiceClient(idle_service.url, client_id="alice")
        job_id = client.submit(_spec())
        with pytest.raises(InvalidJobState, match="queued"):
            client.result(job_id)

    def test_unknown_job_404(self, idle_service):
        client = ServiceClient(idle_service.url)
        with pytest.raises(JobNotFound):
            client.status("doesnotexist")
        with pytest.raises(JobNotFound):
            client.cancel("doesnotexist")

    def test_bad_spec_rejected(self, idle_service):
        client = ServiceClient(idle_service.url)
        with pytest.raises(ConfigurationError):
            client.submit({"grid": {"n": [2], "k": [4]}})
        with pytest.raises(ConfigurationError):
            client.submit({"num_runs": 3})

    def test_quota_rejected_over_http(self, service):
        client = ServiceClient(service.url, client_id="greedy")
        with pytest.raises(QuotaExceededError, match="per-job"):
            client.submit(
                {"grid": {"n": [64] * 33, "k": [2]}, "num_runs": 1}
            )

    def test_healthz(self, service):
        health = ServiceClient(service.url).health()
        assert health["status"] == "ok"
        assert health["workers"]["alive"] == 2
        assert health["queue_depth"] == 0

    def test_unknown_route_404(self, service):
        client = ServiceClient(service.url)
        with pytest.raises(ServiceError, match="404"):
            client._request("GET", "/nope")


class TestLifecycleAcrossRestart:
    def test_queued_job_survives_service_restart(self, tmp_path):
        """Submit against one server process, finish under the next."""
        db = tmp_path / "jobs.db"
        with SimulationService(
            db, cache_dir=tmp_path / "cache", num_workers=0
        ) as first:
            client = ServiceClient(first.url, client_id="alice")
            job_id = client.submit(_spec(ns=(64, 128)))
            assert client.status(job_id)["state"] == "queued"
        # First server gone; a new one adopts the same store.
        with SimulationService(
            db, cache_dir=tmp_path / "cache", num_workers=1
        ) as second:
            client = ServiceClient(second.url, client_id="alice")
            result = client.wait(job_id, timeout=60.0)
            assert len(result["points"]) == 2

    def test_running_job_requeued_on_restart(self, tmp_path):
        """An orphaned running job is re-queued, then completes."""
        db = tmp_path / "jobs.db"
        with JobStore(db) as store:
            job = store.submit(_spec(ns=(64,)), client="alice")
            store.lease_next("dead-worker")
        with SimulationService(
            db, cache_dir=tmp_path / "cache", num_workers=1
        ) as service:
            assert service.requeued_orphans == 1
            client = ServiceClient(service.url, client_id="alice")
            result = client.wait(job.id, timeout=60.0)
            assert len(result["points"]) == 1

    def test_restart_preserves_cache_provenance_chain(self, tmp_path):
        """The cache's manifest chain survives an orphan-requeue cycle.

        A job leased to a dead worker is re-queued by the next server
        and completed; the shared cache's provenance chain must then
        verify end to end — one manifest per point, no gaps and no
        duplicates — and a second server finishing an overlapping job
        must only append manifests for the genuinely new points.
        """
        from repro.provenance import verify_chain

        db = tmp_path / "jobs.db"
        cache_dir = tmp_path / "cache"
        with JobStore(db) as store:
            job = store.submit(_spec(ns=(64, 128)), client="alice")
            store.lease_next("dead-worker")
        with SimulationService(
            db, cache_dir=cache_dir, num_workers=1
        ) as service:
            assert service.requeued_orphans == 1
            client = ServiceClient(service.url, client_id="alice")
            client.wait(job.id, timeout=60.0)
        report = verify_chain(cache_dir)
        assert report.ok, report.render()
        assert report.entries == 2 and report.payloads == 2
        # Second lifetime: an overlapping job appends only new points.
        with SimulationService(
            db, cache_dir=cache_dir, num_workers=1
        ) as service:
            client = ServiceClient(service.url, client_id="alice")
            client.wait(
                client.submit(_spec(ns=(64, 128, 256))), timeout=60.0
            )
        report = verify_chain(cache_dir)
        assert report.ok, report.render()
        assert report.entries == 3 and report.payloads == 3


class TestEndToEndAcceptance:
    def test_eight_concurrent_clients_share_one_cache(self, tmp_path):
        """The ISSUE acceptance story, in one test.

        8 concurrent clients submit overlapping sweeps; all results
        come out of one shared cache; a second identical submission
        completes from the cache without re-running any point; the
        over-limit client is rejected by quota; and a queued job
        survives a store close/re-open cycle.
        """
        cache_dir = tmp_path / "cache"
        db = tmp_path / "jobs.db"
        overlap = [64, 128]
        with SimulationService(
            db,
            cache_dir=cache_dir,
            num_workers=4,
            quota=QuotaPolicy(
                max_jobs=4, max_points=64, max_points_per_job=16
            ),
        ) as service:
            outcomes: dict[str, dict] = {}
            errors: list = []

            def tenant(index: int) -> None:
                try:
                    client = ServiceClient(
                        service.url, client_id=f"tenant-{index}"
                    )
                    spec = {
                        # every tenant shares the overlap points and
                        # adds one point of its own
                        "grid": {
                            "n": overlap + [256 + 64 * index],
                            "k": [2],
                        },
                        "fixed": {"dynamics": "3-majority"},
                        "num_runs": 2,
                        "seed": 5,
                    }
                    outcomes[f"tenant-{index}"] = client.wait(
                        client.submit(spec), timeout=120.0
                    )
                except Exception as exc:  # surfaces in the main thread
                    errors.append((index, exc))

            threads = [
                threading.Thread(target=tenant, args=(i,))
                for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(120.0)
            assert not errors, errors
            assert len(outcomes) == 8

            # Overlapping points were measured once and shared: every
            # tenant reports identical values on the shared points.
            shared = {
                name: {
                    point["params"]["n"]: point["values"]
                    for point in result["points"]
                    if point["params"]["n"] in overlap
                }
                for name, result in outcomes.items()
            }
            reference = shared["tenant-0"]
            assert all(view == reference for view in shared.values())
            # One cache file per distinct grid point: 2 shared + 8 own.
            cache_files = {
                f.name: f.stat().st_mtime_ns
                for f in cache_dir.glob("*.json")
            }
            assert len(cache_files) == 10

            # Second identical submission: served from cache, no
            # point re-measured (cache files untouched).
            client = ServiceClient(service.url, client_id="tenant-0")
            spec = {
                "grid": {"n": overlap + [256], "k": [2]},
                "fixed": {"dynamics": "3-majority"},
                "num_runs": 2,
                "seed": 5,
            }
            rerun = client.wait(client.submit(spec), timeout=60.0)
            assert [p["values"] for p in rerun["points"]] == [
                p["values"] for p in outcomes["tenant-0"]["points"]
            ]
            assert {
                f.name: f.stat().st_mtime_ns
                for f in cache_dir.glob("*.json")
            } == cache_files

            # Quota rejects the over-limit client.
            with pytest.raises(QuotaExceededError):
                client.submit(
                    {"grid": {"n": [64] * 17, "k": [2]}, "num_runs": 1}
                )

            # Leave one job queued behind the running server...
            queued = ServiceClient(
                service.url, client_id="latecomer"
            ).submit(
                {
                    "grid": {"n": [96], "k": [2]},
                    "fixed": {"dynamics": "3-majority"},
                    "num_runs": 1,
                    "seed": 5,
                }
            )
            # (it may complete before shutdown; both are fine — the
            # point is that the *store* survives the cycle)
        # ...then close and re-open the store directly.
        with JobStore(db) as reopened:
            survivor = reopened.get(queued)
            assert survivor.state in ("queued", "running", "done")
            assert survivor.spec.grid == {"n": [96], "k": [2]}


class TestServeSmoke:
    def test_serve_smoke_async_batch(self, tmp_path):
        """CI smoke: real ``repro serve`` subprocess, async-batch job.

        Starts the CLI server on an ephemeral port, submits a tiny
        async-chain sweep over HTTP, polls it to completion and checks
        the served values match a direct ``run_sweep`` of the same
        spec — the whole service stack, subprocess-for-real.
        """
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--port",
                "0",
                "--db",
                str(tmp_path / "jobs.db"),
                "--cache",
                str(tmp_path / "cache"),
                "--fleet",
                "1",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            line = proc.stdout.readline()
            match = re.search(r"http://[\d.]+:\d+", line)
            assert match, f"no URL in serve output: {line!r}"
            client = ServiceClient(match.group(0), client_id="smoke")
            spec = JobSpec(
                grid={"n": [48, 96], "k": [2]},
                num_runs=2,
                seed=3,
                fixed={"dynamics": "3-majority", "engine": "async"},
            )
            result = client.wait(client.submit(spec), timeout=120.0)
            direct = run_sweep(
                spec.to_sweep_spec(),
                cache_dir=tmp_path / "direct-cache",
                measure="batch",
            )
            assert [p["values"] for p in result["points"]] == [
                list(p.values) for p in direct
            ]
            health = client.health()
            assert health["status"] == "ok"
        finally:
            proc.terminate()
            proc.wait(15.0)


class TestResultDocument:
    def test_per_point_errors_are_structured(self, tmp_path):
        """A job with a failing point still serves the full grid.

        The worker measures with the sweep's ``on_error="skip"``, so a
        point whose measurement raises at runtime becomes a structured
        error entry next to its parameters instead of aborting the
        whole job.
        """
        store = JobStore(tmp_path / "jobs.db")

        def runner(job, progress):
            points = run_sweep(
                job.spec.to_sweep_spec(),
                point_function=_explode_on_n128,
                measure="sequential",
                on_error="skip",
                progress=lambda done, total, _point: progress(
                    done, total
                ),
            )
            return [
                {
                    "params": point.params,
                    "values": list(point.values),
                    "error": point.error,
                }
                for point in points
            ]

        fleet = WorkerFleet(
            store,
            Scheduler(store),
            runner=runner,
            num_workers=1,
            poll_interval=0.01,
        )
        job = store.submit(_spec(ns=(64, 128), runs=1), client="a")
        fleet.start()
        try:
            assert _wait_for(
                lambda: store.get(job.id).state == "done"
            )
        finally:
            assert fleet.drain(10.0)
        result = store.get(job.id).result
        assert len(result) == 2
        by_n = {point["params"]["n"]: point for point in result}
        assert "measurement exploded" in by_n[128]["error"]
        assert by_n[128]["values"] == []
        assert by_n[64]["error"] is None
        assert len(by_n[64]["values"]) == 1
        assert store.get(job.id).done_points == 2
        store.close()
