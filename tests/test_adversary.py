"""Tests for the F-bounded adversary substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import (
    AdversarialPopulationEngine,
    RandomCorruption,
    ReviveWeakest,
    SupportRunnerUp,
)
from repro.adversary.base import Adversary
from repro.configs import balanced, two_block
from repro.core import ThreeMajority
from repro.errors import ConfigurationError


class TestStrategies:
    def test_budget_validated(self):
        with pytest.raises(ConfigurationError):
            RandomCorruption(-1)

    @pytest.mark.parametrize(
        "adversary",
        [RandomCorruption(5), SupportRunnerUp(5), ReviveWeakest(5)],
        ids=["random", "runner-up", "revive"],
    )
    def test_mass_conserved(self, adversary, rng):
        counts = np.asarray([40, 30, 20, 10], dtype=np.int64)
        new = adversary.corrupt(counts, rng)
        assert new.sum() == 100
        assert np.all(new >= 0)

    @pytest.mark.parametrize(
        "adversary",
        [RandomCorruption(5), SupportRunnerUp(5), ReviveWeakest(5)],
        ids=["random", "runner-up", "revive"],
    )
    def test_budget_respected(self, adversary, rng):
        counts = np.asarray([40, 30, 20, 10], dtype=np.int64)
        new = adversary.corrupt(counts, rng)
        moved = int(np.abs(new - counts).sum()) // 2
        assert moved <= 5

    def test_zero_budget_noop(self, rng):
        counts = np.asarray([40, 60], dtype=np.int64)
        for adversary in (
            RandomCorruption(0),
            SupportRunnerUp(0),
            ReviveWeakest(0),
        ):
            assert np.array_equal(adversary.corrupt(counts, rng), counts)

    def test_support_runner_up_direction(self, rng):
        counts = np.asarray([70, 20, 10], dtype=np.int64)
        new = SupportRunnerUp(8).corrupt(counts, rng)
        assert new[0] < 70
        assert new[1] > 20
        assert new[2] == 10

    def test_support_runner_up_never_overtakes(self, rng):
        counts = np.asarray([52, 48], dtype=np.int64)
        new = SupportRunnerUp(100).corrupt(counts, rng)
        assert new[0] >= new[1]

    def test_support_runner_up_at_consensus_noop(self, rng):
        counts = np.asarray([0, 100], dtype=np.int64)
        assert np.array_equal(
            SupportRunnerUp(10).corrupt(counts, rng), counts
        )

    def test_revive_weakest_direction(self, rng):
        counts = np.asarray([70, 20, 10], dtype=np.int64)
        new = ReviveWeakest(5).corrupt(counts, rng)
        assert new[2] == 15
        assert new[0] == 65

    def test_revive_weakest_ignores_dead(self, rng):
        counts = np.asarray([70, 0, 30], dtype=np.int64)
        new = ReviveWeakest(5).corrupt(counts, rng)
        assert new[1] == 0  # dead opinions are not resurrected

    def test_random_corruption_spreads(self, rng):
        counts = np.asarray([1000, 0, 0, 0], dtype=np.int64)
        new = RandomCorruption(400).corrupt(counts, rng)
        # Victims are re-assigned uniformly, so other opinions appear.
        assert (new[1:] > 0).any()


class TestAdversarialEngine:
    def test_step_applies_both_phases(self):
        engine = AdversarialPopulationEngine(
            ThreeMajority(),
            two_block(1000, 4, 0.6),
            ReviveWeakest(3),
            seed=0,
        )
        engine.step()
        assert engine.round_index == 1
        assert engine.counts.sum() == 1000

    def test_budget_violation_detected(self):
        class Cheater(Adversary):
            def corrupt(self, counts, rng):
                new = counts.copy()
                move = min(self.budget + 5, int(new[0]))
                new[0] -= move
                new[1] += move
                return new

        engine = AdversarialPopulationEngine(
            ThreeMajority(), [500, 500], Cheater(2), seed=0
        )
        with pytest.raises(ConfigurationError, match="exceeding"):
            engine.step()

    def test_mass_violation_detected(self):
        class Leaker(Adversary):
            def corrupt(self, counts, rng):
                new = counts.copy()
                new[0] = max(new[0] - 1, 0)
                return new

        engine = AdversarialPopulationEngine(
            ThreeMajority(), [500, 500], Leaker(5), seed=0
        )
        with pytest.raises(Exception, match="sums|expected"):
            engine.step()

    def test_zero_budget_reaches_consensus(self):
        engine = AdversarialPopulationEngine(
            ThreeMajority(),
            balanced(1000, 4),
            SupportRunnerUp(0),
            seed=1,
        )
        for _ in range(5000):
            engine.step()
            if engine.is_consensus():
                break
        assert engine.is_consensus()

    def test_large_budget_stalls(self):
        """A budget ~n/8 per round pins the top two together."""
        engine = AdversarialPopulationEngine(
            ThreeMajority(),
            balanced(800, 2),
            SupportRunnerUp(100),
            seed=2,
        )
        for _ in range(2000):
            engine.step()
        assert not engine.is_consensus()

    def test_small_budget_still_converges_nearly(self):
        """F = 1 cannot stop the leader from taking all but O(1)."""
        engine = AdversarialPopulationEngine(
            ThreeMajority(),
            two_block(2000, 4, 0.5),
            SupportRunnerUp(1),
            seed=3,
        )
        for _ in range(4000):
            engine.step()
            if engine.counts.max() >= 2000 - 4:
                break
        assert engine.counts.max() >= 2000 - 4
