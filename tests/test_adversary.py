"""Tests for the F-bounded adversary substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.adversary import (
    AdversarialPopulationEngine,
    RandomCorruption,
    ReviveWeakest,
    SupportRunnerUp,
    available_adversaries,
    enforce_corruption_contract,
    make_adversary,
    near_consensus_target,
    near_consensus_threshold,
)
from repro.adversary.base import Adversary
from repro.configs import balanced, two_block
from repro.core import ThreeMajority
from repro.engine import (
    AgentEngine,
    AsyncPopulationEngine,
    PopulationEngine,
)
from repro.errors import ConfigurationError, StateError
from repro.graphs.complete import CompleteGraph
from repro.state import counts_to_agents


class TestStrategies:
    def test_budget_validated(self):
        with pytest.raises(ConfigurationError):
            RandomCorruption(-1)

    @pytest.mark.parametrize(
        "adversary",
        [RandomCorruption(5), SupportRunnerUp(5), ReviveWeakest(5)],
        ids=["random", "runner-up", "revive"],
    )
    def test_mass_conserved(self, adversary, rng):
        counts = np.asarray([40, 30, 20, 10], dtype=np.int64)
        new = adversary.corrupt(counts, rng)
        assert new.sum() == 100
        assert np.all(new >= 0)

    @pytest.mark.parametrize(
        "adversary",
        [RandomCorruption(5), SupportRunnerUp(5), ReviveWeakest(5)],
        ids=["random", "runner-up", "revive"],
    )
    def test_budget_respected(self, adversary, rng):
        counts = np.asarray([40, 30, 20, 10], dtype=np.int64)
        new = adversary.corrupt(counts, rng)
        moved = int(np.abs(new - counts).sum()) // 2
        assert moved <= 5

    def test_zero_budget_noop(self, rng):
        counts = np.asarray([40, 60], dtype=np.int64)
        for adversary in (
            RandomCorruption(0),
            SupportRunnerUp(0),
            ReviveWeakest(0),
        ):
            assert np.array_equal(adversary.corrupt(counts, rng), counts)

    def test_support_runner_up_direction(self, rng):
        counts = np.asarray([70, 20, 10], dtype=np.int64)
        new = SupportRunnerUp(8).corrupt(counts, rng)
        assert new[0] < 70
        assert new[1] > 20
        assert new[2] == 10

    def test_support_runner_up_never_overtakes(self, rng):
        counts = np.asarray([52, 48], dtype=np.int64)
        new = SupportRunnerUp(100).corrupt(counts, rng)
        assert new[0] >= new[1]

    def test_support_runner_up_at_consensus_noop(self, rng):
        counts = np.asarray([0, 100], dtype=np.int64)
        assert np.array_equal(
            SupportRunnerUp(10).corrupt(counts, rng), counts
        )

    def test_revive_weakest_direction(self, rng):
        counts = np.asarray([70, 20, 10], dtype=np.int64)
        new = ReviveWeakest(5).corrupt(counts, rng)
        assert new[2] == 15
        assert new[0] == 65

    def test_revive_weakest_ignores_dead(self, rng):
        counts = np.asarray([70, 0, 30], dtype=np.int64)
        new = ReviveWeakest(5).corrupt(counts, rng)
        assert new[1] == 0  # dead opinions are not resurrected

    def test_random_corruption_spreads(self, rng):
        counts = np.asarray([1000, 0, 0, 0], dtype=np.int64)
        new = RandomCorruption(400).corrupt(counts, rng)
        # Victims are re-assigned uniformly, so other opinions appear.
        assert (new[1:] > 0).any()


class TestAdversaryRegistry:
    def test_known_names_resolve(self):
        assert isinstance(
            make_adversary("random", 3), RandomCorruption
        )
        assert isinstance(
            make_adversary("runner-up", 3), SupportRunnerUp
        )
        assert isinstance(
            make_adversary("support-runner-up", 3), SupportRunnerUp
        )
        assert isinstance(
            make_adversary("revive-weakest", 3), ReviveWeakest
        )

    def test_instance_passthrough(self):
        adversary = SupportRunnerUp(5)
        assert make_adversary(adversary) is adversary
        assert make_adversary(adversary, 5) is adversary
        with pytest.raises(ConfigurationError, match="conflicts"):
            make_adversary(adversary, 6)

    def test_unknown_name_lists_known(self):
        with pytest.raises(ConfigurationError, match="revive-weakest"):
            make_adversary("gremlin", 1)

    def test_name_requires_budget(self):
        with pytest.raises(ConfigurationError, match="budget"):
            make_adversary("random")

    def test_available_names(self):
        names = available_adversaries()
        assert {"random", "runner-up", "revive-weakest"} <= set(names)


class TestNearConsensusConvention:
    """The shared n - 4F (majority-floored) agreement threshold."""

    def test_zero_budget_is_strict_consensus(self):
        assert near_consensus_threshold(1000, 0) == 1000

    def test_small_budget_is_n_minus_4f(self):
        assert near_consensus_threshold(1000, 10) == 960

    def test_large_budget_floored_at_strict_majority(self):
        # n - 4F = 200 would be satisfied by a balanced 2-way tie,
        # reporting the strongest adversaries as instant successes.
        assert near_consensus_threshold(1000, 200) == 501
        assert near_consensus_threshold(1000, 10_000) == 501

    def test_target_predicate_matches_threshold(self):
        target = near_consensus_target(1000, 10)
        assert target(np.asarray([960, 40]))
        assert not target(np.asarray([959, 41]))

    def test_target_batch_evaluation_matches_per_row(self):
        target = near_consensus_target(100, 5)
        rows = np.asarray([[80, 20], [79, 21], [100, 0], [50, 50]])
        batched = target.batch(rows)
        assert batched.tolist() == [target(row) for row in rows]

    def test_targets_with_equal_thresholds_compare_equal(self):
        assert near_consensus_target(1000, 10) == near_consensus_target(
            1000, 10
        )
        assert near_consensus_target(1000, 10) != near_consensus_target(
            1000, 11
        )


class TestCorruptionContract:
    """The contract is an explicit raise — it survives ``python -O``."""

    def test_valid_corruption_passes(self):
        before = np.asarray([40, 60], dtype=np.int64)
        after = np.asarray([43, 57], dtype=np.int64)
        checked = enforce_corruption_contract(before, after, 3)
        assert (checked == after).all()

    def test_budget_violation_is_configuration_error(self):
        before = np.asarray([40, 60], dtype=np.int64)
        after = np.asarray([45, 55], dtype=np.int64)
        with pytest.raises(ConfigurationError, match="exceeding"):
            enforce_corruption_contract(before, after, 3)

    def test_mass_violation_is_state_error(self):
        before = np.asarray([40, 60], dtype=np.int64)
        after = np.asarray([40, 59], dtype=np.int64)
        with pytest.raises(StateError, match="sums"):
            enforce_corruption_contract(before, after, 3)


class TestUnifiedEngineAdversaries:
    """All engines accept an adversary and enforce its contract."""

    def test_population_engine_interleaves_corruption(self):
        engine = PopulationEngine(
            ThreeMajority(),
            two_block(1000, 4, 0.6),
            seed=0,
            adversary=ReviveWeakest(3),
        )
        engine.step()
        assert engine.round_index == 1
        assert engine.counts.sum() == 1000

    def test_population_engine_detects_cheater(self):
        class Cheater(Adversary):
            def corrupt(self, counts, rng):
                new = counts.copy()
                move = min(self.budget + 5, int(new[0]))
                new[0] -= move
                new[1] += move
                return new

        engine = PopulationEngine(
            ThreeMajority(), [500, 500], seed=0, adversary=Cheater(2)
        )
        with pytest.raises(ConfigurationError, match="exceeding"):
            engine.step()

    def test_population_matches_legacy_adversarial_engine_bitwise(self):
        """The legacy engine is now a shim over the same chain."""
        counts = balanced(600, 4)
        unified = PopulationEngine(
            ThreeMajority(),
            counts,
            seed=11,
            adversary=SupportRunnerUp(3),
        )
        legacy = AdversarialPopulationEngine(
            ThreeMajority(), counts, SupportRunnerUp(3), seed=11
        )
        for _ in range(30):
            unified.step()
            legacy.step()
            assert (unified.counts == legacy.counts).all()

    def test_async_engine_corrupts_once_per_round(self):
        n = 120
        engine = AsyncPopulationEngine(
            ThreeMajority(),
            balanced(n, 3),
            seed=4,
            adversary=ReviveWeakest(2),
        )
        for _ in range(3 * n):
            engine.step()
            assert engine.counts.sum() == n
        assert engine.tick_index == 3 * n

    def test_agent_engine_lifts_count_corruption_onto_vertices(self):
        n, k = 300, 3
        counts = balanced(n, k)
        rng = np.random.default_rng(0)
        engine = AgentEngine(
            ThreeMajority(),
            CompleteGraph(n),
            counts_to_agents(counts, rng=rng, shuffle=True),
            num_opinions=k,
            seed=rng,
            adversary=SupportRunnerUp(5),
        )
        for _ in range(20):
            before = engine.counts
            engine.step()
            after = engine.counts
            assert after.sum() == n
            assert (after >= 0).all()
            del before
        assert engine.round_index == 20

    def test_agent_engine_detects_cheater(self):
        class Cheater(Adversary):
            def corrupt(self, counts, rng):
                new = counts.copy()
                move = min(self.budget + 5, int(new.max()))
                leader = int(new.argmax())
                new[leader] -= move
                new[(leader + 1) % new.size] += move
                return new

        n = 100
        engine = AgentEngine(
            ThreeMajority(),
            CompleteGraph(n),
            counts_to_agents(balanced(n, 2)),
            num_opinions=2,
            seed=0,
            adversary=Cheater(1),
        )
        with pytest.raises(ConfigurationError, match="exceeding"):
            engine.step()

    def test_in_place_mutating_cheater_still_detected(self):
        """A corrupt() that mutates its input cannot dodge the contract."""

        class InPlaceDrainer(Adversary):
            def corrupt(self, counts, rng):
                counts[counts.argmax()] -= 50  # destroys mass, in place
                return counts

        engine = PopulationEngine(
            ThreeMajority(),
            balanced(1000, 4),
            seed=0,
            adversary=InPlaceDrainer(1),
        )
        with pytest.raises(StateError, match="sums"):
            engine.step()
        # The engine's own state was never corrupted by the attempt.
        assert engine.counts.sum() == 1000

    def test_no_adversary_stream_untouched(self):
        """adversary=None must not perturb the historical seed streams."""
        counts = balanced(500, 4)
        plain = PopulationEngine(ThreeMajority(), counts, seed=9)
        explicit = PopulationEngine(
            ThreeMajority(), counts, seed=9, adversary=None
        )
        for _ in range(10):
            plain.step()
            explicit.step()
        assert (plain.counts == explicit.counts).all()


class TestAdversarialEngine:
    def test_step_applies_both_phases(self):
        engine = AdversarialPopulationEngine(
            ThreeMajority(),
            two_block(1000, 4, 0.6),
            ReviveWeakest(3),
            seed=0,
        )
        engine.step()
        assert engine.round_index == 1
        assert engine.counts.sum() == 1000

    def test_budget_violation_detected(self):
        class Cheater(Adversary):
            def corrupt(self, counts, rng):
                new = counts.copy()
                move = min(self.budget + 5, int(new[0]))
                new[0] -= move
                new[1] += move
                return new

        engine = AdversarialPopulationEngine(
            ThreeMajority(), [500, 500], Cheater(2), seed=0
        )
        with pytest.raises(ConfigurationError, match="exceeding"):
            engine.step()

    def test_mass_violation_detected(self):
        class Leaker(Adversary):
            def corrupt(self, counts, rng):
                new = counts.copy()
                new[0] = max(new[0] - 1, 0)
                return new

        engine = AdversarialPopulationEngine(
            ThreeMajority(), [500, 500], Leaker(5), seed=0
        )
        with pytest.raises(Exception, match="sums|expected"):
            engine.step()

    def test_zero_budget_reaches_consensus(self):
        engine = AdversarialPopulationEngine(
            ThreeMajority(),
            balanced(1000, 4),
            SupportRunnerUp(0),
            seed=1,
        )
        for _ in range(5000):
            engine.step()
            if engine.is_consensus():
                break
        assert engine.is_consensus()

    def test_large_budget_stalls(self):
        """A budget ~n/8 per round pins the top two together."""
        engine = AdversarialPopulationEngine(
            ThreeMajority(),
            balanced(800, 2),
            SupportRunnerUp(100),
            seed=2,
        )
        for _ in range(2000):
            engine.step()
        assert not engine.is_consensus()

    def test_small_budget_still_converges_nearly(self):
        """F = 1 cannot stop the leader from taking all but O(1)."""
        engine = AdversarialPopulationEngine(
            ThreeMajority(),
            two_block(2000, 4, 0.5),
            SupportRunnerUp(1),
            seed=3,
        )
        for _ in range(4000):
            engine.step()
            if engine.counts.max() >= 2000 - 4:
                break
        assert engine.counts.max() >= 2000 - 4
