"""Tests for repro.state: representations, conversions, invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StateError
from repro.state import (
    agents_to_counts,
    alpha_from_counts,
    bias,
    consensus_opinion,
    counts_to_agents,
    gamma_from_counts,
    is_consensus,
    num_alive,
    support,
    validate_agents,
    validate_counts,
)

count_vectors = st.lists(
    st.integers(min_value=0, max_value=50), min_size=1, max_size=12
).filter(lambda c: sum(c) > 0)


class TestValidateCounts:
    def test_accepts_plain_list(self):
        out = validate_counts([1, 2, 3])
        assert out.dtype == np.int64
        assert out.tolist() == [1, 2, 3]

    def test_accepts_float_integers(self):
        assert validate_counts([1.0, 2.0]).tolist() == [1, 2]

    def test_rejects_fractional(self):
        with pytest.raises(StateError, match="integers"):
            validate_counts([1.5, 2.0])

    def test_rejects_negative(self):
        with pytest.raises(StateError, match="non-negative"):
            validate_counts([1, -1])

    def test_rejects_empty(self):
        with pytest.raises(StateError, match="non-empty"):
            validate_counts([])

    def test_rejects_2d(self):
        with pytest.raises(StateError, match="1-D"):
            validate_counts([[1, 2]])

    def test_rejects_zero_mass(self):
        with pytest.raises(StateError, match="positive total"):
            validate_counts([0, 0])

    def test_checks_total_against_n(self):
        with pytest.raises(StateError, match="expected n=10"):
            validate_counts([4, 4], n=10)

    def test_accepts_matching_n(self):
        assert validate_counts([4, 6], n=10).sum() == 10


class TestValidateAgents:
    def test_basic(self):
        out = validate_agents(np.asarray([0, 1, 2, 1]))
        assert out.dtype == np.int64

    def test_rejects_float(self):
        with pytest.raises(StateError, match="integer"):
            validate_agents(np.asarray([0.5, 1.0]))

    def test_rejects_negative_labels(self):
        with pytest.raises(StateError, match="non-negative"):
            validate_agents(np.asarray([0, -1]))

    def test_rejects_labels_at_or_above_k(self):
        with pytest.raises(StateError, match="< k=2"):
            validate_agents(np.asarray([0, 2]), k=2)

    def test_rejects_empty(self):
        with pytest.raises(StateError):
            validate_agents(np.asarray([], dtype=np.int64))


class TestConversions:
    def test_agents_to_counts(self):
        counts = agents_to_counts(np.asarray([0, 1, 1, 3]), k=5)
        assert counts.tolist() == [1, 2, 0, 1, 0]

    def test_counts_to_agents_block_layout(self):
        agents = counts_to_agents(np.asarray([2, 0, 3]))
        assert agents.tolist() == [0, 0, 2, 2, 2]

    def test_counts_to_agents_shuffle_requires_rng(self):
        with pytest.raises(ValueError, match="rng"):
            counts_to_agents(np.asarray([1, 1]), shuffle=True)

    def test_counts_to_agents_shuffle_preserves_histogram(self, rng):
        counts = np.asarray([3, 5, 2])
        agents = counts_to_agents(counts, rng=rng, shuffle=True)
        assert agents_to_counts(agents, 3).tolist() == counts.tolist()

    @given(count_vectors)
    @settings(max_examples=50, deadline=None)
    def test_round_trip(self, counts):
        counts = np.asarray(counts, dtype=np.int64)
        agents = counts_to_agents(counts)
        assert agents_to_counts(agents, counts.size).tolist() == (
            counts.tolist()
        )


class TestQuantities:
    def test_alpha_sums_to_one(self):
        alpha = alpha_from_counts([1, 2, 3])
        assert alpha.sum() == pytest.approx(1.0)
        assert alpha.tolist() == pytest.approx([1 / 6, 2 / 6, 3 / 6])

    def test_gamma_balanced(self):
        assert gamma_from_counts([5, 5, 5, 5]) == pytest.approx(0.25)

    def test_gamma_consensus(self):
        assert gamma_from_counts([0, 9, 0]) == pytest.approx(1.0)

    @given(count_vectors)
    @settings(max_examples=100, deadline=None)
    def test_gamma_within_cauchy_schwarz_bounds(self, counts):
        gamma = gamma_from_counts(counts)
        k_alive = sum(1 for c in counts if c > 0)
        assert 1.0 / k_alive - 1e-12 <= gamma <= 1.0 + 1e-12

    def test_bias_antisymmetric(self):
        counts = [3, 7, 10]
        assert bias(counts, 0, 1) == pytest.approx(-bias(counts, 1, 0))
        assert bias(counts, 1, 0) == pytest.approx(4 / 20)

    def test_support_and_alive(self):
        counts = np.asarray([0, 3, 0, 1])
        assert support(counts).tolist() == [1, 3]
        assert num_alive(counts) == 2

    def test_consensus_detection(self):
        assert is_consensus([0, 5, 0])
        assert consensus_opinion([0, 5, 0]) == 1
        assert not is_consensus([1, 4])
        assert consensus_opinion([1, 4]) is None
