"""Tests for the unified simulation API (spec, builder, results)."""

from __future__ import annotations

import csv

import numpy as np
import pytest

from repro import ResultSet, Simulation, SimulationSpec, SupportRunnerUp
from repro.configs import balanced
from repro.core import ThreeMajority
from repro.engine import (
    PopulationEngine,
    RunResult,
    TrajectoryRecorder,
    replicate,
    run_until_consensus,
)
from repro.errors import ConfigurationError, ConsensusNotReached
from repro.graphs.generators import cycle_graph
from repro.simulation import default_round_budget, execute
from repro.experiments.base import measure_consensus_times


class TestSpecValidation:
    def test_defaults_resolve(self):
        spec = SimulationSpec(n=100, k=4)
        assert spec.engine == "population"
        assert spec.initial == "balanced"
        assert spec.round_budget() == default_round_budget(100, 4)

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="engine"):
            SimulationSpec(n=100, k=4, engine="warp")

    def test_rejects_unknown_initial(self):
        with pytest.raises(ConfigurationError, match="initial"):
            SimulationSpec(n=100, k=4, initial="bogus")

    def test_rejects_missing_nk(self):
        with pytest.raises(ConfigurationError, match="n and k"):
            SimulationSpec()

    def test_rejects_generator_seed(self):
        with pytest.raises(ConfigurationError, match="declarative"):
            SimulationSpec(n=100, k=4, seed=np.random.default_rng(0))

    def test_rejects_bad_dynamics_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown dynamics"):
            SimulationSpec(dynamics="42-flavour", n=100, k=4)

    def test_rejects_bad_initial_params_eagerly(self):
        with pytest.raises(ConfigurationError, match="zipf"):
            SimulationSpec(
                n=100, k=4, initial="zipf", initial_params={"slope": 2}
            )

    def test_rejects_graph_off_agent_engine(self):
        with pytest.raises(ConfigurationError, match="agent"):
            SimulationSpec(
                n=10, k=2, engine="population", graph=cycle_graph(10)
            )

    def test_rejects_graph_size_mismatch(self):
        with pytest.raises(ConfigurationError, match="vertices"):
            SimulationSpec(
                n=12, k=2, engine="agent", graph=cycle_graph(10)
            )

    def test_async_rejects_target_and_observers(self):
        with pytest.raises(ConfigurationError, match="target"):
            SimulationSpec(
                n=100, k=4, engine="async", target=lambda c: True
            )
        with pytest.raises(ConfigurationError, match="observers"):
            SimulationSpec(
                n=100,
                k=4,
                engine="async",
                observer_factory=lambda: (),
            )

    def test_batch_accepts_target_but_rejects_observers(self):
        """Per-row target masking lifted the old batch carve-out."""
        spec = SimulationSpec(
            n=100, k=4, engine="batch", target=lambda c: True
        )
        assert spec.target is not None
        with pytest.raises(ConfigurationError, match="observers"):
            SimulationSpec(
                n=100,
                k=4,
                engine="batch",
                observer_factory=lambda: (),
            )

    def test_counts_derive_and_check_nk(self):
        spec = SimulationSpec(counts=np.asarray([30, 20]))
        assert (spec.n, spec.k) == (50, 2)
        assert spec.initial == "custom"
        with pytest.raises(ConfigurationError, match="sum"):
            SimulationSpec(counts=np.asarray([30, 20]), n=60)
        with pytest.raises(ConfigurationError, match="opinions"):
            SimulationSpec(counts=np.asarray([30, 20]), k=3)

    def test_spec_counts_are_frozen(self):
        spec = SimulationSpec(counts=np.asarray([30, 20]))
        with pytest.raises(ValueError):
            spec.counts[0] = 7
        fresh = spec.initial_counts()
        fresh[0] = 7  # copies are writable
        assert spec.counts[0] == 30

    def test_initial_counts_matches_family(self):
        spec = SimulationSpec(n=100, k=4, initial="zipf")
        assert (spec.initial_counts() == np.asarray(
            SimulationSpec(n=100, k=4, initial="zipf").initial_counts()
        )).all()
        assert spec.initial_counts().sum() == 100

    def test_random_initial_family_is_reproducible_from_spec_seed(self):
        """dirichlet starts derive their stream from the spec seed."""
        spec = SimulationSpec(
            dynamics="voter", n=100, k=3, initial="dirichlet", seed=42
        )
        assert (spec.initial_counts() == spec.initial_counts()).all()
        twin = SimulationSpec(
            dynamics="voter", n=100, k=3, initial="dirichlet", seed=42
        )
        assert (spec.initial_counts() == twin.initial_counts()).all()
        other = SimulationSpec(
            dynamics="voter", n=100, k=3, initial="dirichlet", seed=43
        )
        assert (spec.initial_counts() != other.initial_counts()).any()
        # Whole runs of the same frozen spec agree too.
        assert (
            spec.run().consensus_times == twin.run().consensus_times
        ).all()

    def test_random_initial_family_explicit_seed_wins(self):
        spec = SimulationSpec(
            n=100,
            k=3,
            initial="dirichlet",
            initial_params={"seed": 7},
            seed=1,
        )
        other = SimulationSpec(
            n=100,
            k=3,
            initial="dirichlet",
            initial_params={"seed": 7},
            seed=2,
        )
        assert (spec.initial_counts() == other.initial_counts()).all()

    def test_describe_mentions_engine_and_start(self):
        spec = SimulationSpec(n=100, k=4, engine="batch", replicas=8)
        text = spec.describe()
        assert "engine=batch" in text
        assert "balanced" in text


class TestSpecAdversary:
    """The adversary is a first-class, validated spec dimension."""

    def test_name_resolves_with_budget(self):
        spec = SimulationSpec(
            n=100, k=4, adversary="runner-up", adversary_budget=3
        )
        adversary = spec.resolved_adversary()
        assert isinstance(adversary, SupportRunnerUp)
        assert adversary.budget == 3

    def test_name_requires_budget(self):
        with pytest.raises(ConfigurationError, match="adversary_budget"):
            SimulationSpec(n=100, k=4, adversary="runner-up")

    def test_budget_requires_adversary(self):
        with pytest.raises(ConfigurationError, match="without an adversary"):
            SimulationSpec(n=100, k=4, adversary_budget=3)

    def test_unknown_strategy_rejected_eagerly(self):
        with pytest.raises(ConfigurationError, match="unknown adversary"):
            SimulationSpec(
                n=100, k=4, adversary="gremlin", adversary_budget=1
            )

    def test_negative_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            SimulationSpec(
                n=100, k=4, adversary="random", adversary_budget=-2
            )

    def test_instance_derives_budget(self):
        spec = SimulationSpec(
            n=100, k=4, adversary=SupportRunnerUp(7)
        )
        assert spec.adversary_budget == 7
        assert spec.resolved_adversary() is spec.adversary

    def test_instance_budget_mismatch_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicts"):
            SimulationSpec(
                n=100,
                k=4,
                adversary=SupportRunnerUp(7),
                adversary_budget=9,
            )

    def test_adversary_in_repr_and_describe(self):
        spec = SimulationSpec(
            n=100, k=4, adversary="runner-up", adversary_budget=3
        )
        assert "adversary='runner-up'" in repr(spec)
        assert "adversary_budget=3" in repr(spec)
        assert "adversary=runner-up(F=3)" in spec.describe()

    def test_no_adversary_resolves_to_none(self):
        assert SimulationSpec(n=100, k=4).resolved_adversary() is None

    @pytest.mark.parametrize(
        "engine", ["population", "agent", "async", "batch"]
    )
    def test_every_engine_runs_adversarial_specs(self, engine):
        results = SimulationSpec(
            dynamics="3-majority",
            n=300,
            k=3,
            engine=engine,
            replicas=2,
            seed=6,
            adversary="random",
            adversary_budget=2,
            max_rounds=20_000,
        ).run()
        assert len(results) == 2
        assert all(r.converged for r in results)
        for r in results:
            assert r.final_counts.sum() == 300


class TestBuilder:
    def test_builds_equivalent_spec(self):
        spec = (
            Simulation.of("2-choices")
            .n(1000)
            .k(10)
            .zipf(exponent=0.5)
            .replicas(4)
            .batch()
            .seed(3)
            .max_rounds(500)
            .build()
        )
        assert spec == SimulationSpec(
            dynamics="2-choices",
            n=1000,
            k=10,
            initial="zipf",
            initial_params={"exponent": 0.5},
            engine="batch",
            replicas=4,
            seed=3,
            max_rounds=500,
        )

    def test_counts_clears_nk(self):
        spec = (
            Simulation.of("voter").n(5).k(5).counts([10, 10]).build()
        )
        assert (spec.n, spec.k) == (20, 2)

    def test_from_spec_roundtrip(self):
        original = SimulationSpec(
            n=100, k=4, engine="batch", replicas=8, seed=5
        )
        rebuilt = Simulation.from_spec(original).build()
        assert rebuilt == original

    def test_adversary_method(self):
        spec = (
            Simulation.of("3-majority")
            .n(100)
            .k(4)
            .adversary("revive-weakest", 2)
            .build()
        )
        assert spec.adversary == "revive-weakest"
        assert spec.adversary_budget == 2

    def test_from_spec_roundtrip_with_adversary(self):
        original = SimulationSpec(
            n=100,
            k=4,
            engine="batch",
            replicas=8,
            seed=5,
            adversary=SupportRunnerUp(4),
        )
        rebuilt = Simulation.from_spec(original).build()
        assert rebuilt == original
        assert rebuilt.adversary_budget == 4

    def test_on_graph_selects_agent_engine(self):
        spec = (
            Simulation.of("3-majority")
            .n(10)
            .k(2)
            .on_graph(cycle_graph(10))
            .build()
        )
        assert spec.engine == "agent"

    def test_run_returns_result_set(self):
        results = (
            Simulation.of("3-majority")
            .n(200)
            .k(4)
            .replicas(3)
            .seed(0)
            .run()
        )
        assert isinstance(results, ResultSet)
        assert len(results) == 3


class TestExecuteEngines:
    def test_population_matches_legacy_replicate_bitwise(self):
        """The spec path must reproduce the historical seed streams."""
        counts = balanced(512, 8)
        spec = SimulationSpec(
            dynamics="3-majority",
            counts=counts,
            replicas=5,
            seed=11,
            max_rounds=10_000,
        )
        via_spec = execute(spec)

        def legacy(rng):
            engine = PopulationEngine(ThreeMajority(), counts, seed=rng)
            return run_until_consensus(engine, max_rounds=10_000)

        via_replicate = replicate(legacy, 5, seed=11)
        assert [r.rounds for r in via_spec] == [
            r.rounds for r in via_replicate
        ]
        assert [r.winner for r in via_spec] == [
            r.winner for r in via_replicate
        ]

    def test_batch_engine_runs(self):
        results = (
            Simulation.of("3-majority")
            .n(2000)
            .k(16)
            .replicas(12)
            .batch()
            .seed(1)
            .run()
        )
        assert results.num_converged == 12
        assert (results.winner_histogram().sum()) == 12

    def test_agent_engine_on_cycle(self):
        results = (
            Simulation.of("voter")
            .n(16)
            .k(2)
            .on_graph(cycle_graph(16))
            .replicas(2)
            .max_rounds(50_000)
            .seed(4)
            .run()
        )
        assert len(results) == 2
        assert all(r.converged for r in results)

    def test_async_engine_reports_ticks(self):
        results = (
            Simulation.of("3-majority")
            .n(300)
            .k(3)
            .asynchronous()
            .replicas(2)
            .seed(5)
            .run()
        )
        for r in results:
            assert r.converged
            assert r.metrics["ticks"] >= r.rounds
            assert r.rounds == int(np.ceil(r.metrics["ticks"] / 300))

    def test_observer_factory_gives_fresh_observers_per_replica(self):
        results = (
            Simulation.of("3-majority")
            .n(200)
            .k(4)
            .replicas(3)
            .observe_with(lambda: (TrajectoryRecorder(),))
            .seed(0)
            .run()
        )
        recorders = [r.metrics["observers"][0] for r in results]
        assert len({id(rec) for rec in recorders}) == 3
        for r, rec in zip(results, recorders):
            # Initial observation plus one per executed round.
            assert len(rec.rounds) == r.rounds + 1

    def test_on_budget_raise(self):
        spec = SimulationSpec(
            dynamics="2-choices",
            n=4096,
            k=512,
            replicas=2,
            max_rounds=2,
            on_budget="raise",
        )
        with pytest.raises(ConsensusNotReached):
            execute(spec)
        with pytest.raises(ConsensusNotReached):
            execute(
                SimulationSpec(
                    dynamics="2-choices",
                    n=4096,
                    k=512,
                    engine="batch",
                    replicas=2,
                    max_rounds=2,
                    on_budget="raise",
                )
            )

    def test_custom_target_predicate(self):
        spec = SimulationSpec(
            dynamics="3-majority",
            n=1000,
            k=10,
            replicas=2,
            seed=2,
            target=lambda counts: np.count_nonzero(counts) <= 5,
        )
        for r in execute(spec):
            assert r.converged
            assert np.count_nonzero(r.final_counts) <= 5

    def test_batch_target_stops_per_row(self):
        """Per-row target masking: batch rows freeze at the predicate."""
        spec = SimulationSpec(
            dynamics="3-majority",
            n=1000,
            k=10,
            engine="batch",
            replicas=6,
            seed=2,
            target=lambda counts: np.count_nonzero(counts) <= 5,
        )
        results = execute(spec)
        assert results.num_converged == 6
        for r in results:
            assert np.count_nonzero(r.final_counts) <= 5
            # Stopped before strict consensus => no winner reported.
            if r.final_counts.max() < 1000:
                assert r.winner is None


class TestResultSet:
    def _mixed(self):
        return ResultSet(
            [
                RunResult(True, 10, 1, np.asarray([0, 50])),
                RunResult(True, 20, 0, np.asarray([50, 0])),
                RunResult(False, 99, None, np.asarray([25, 25])),
            ]
        )

    def test_sequence_protocol(self):
        results = self._mixed()
        assert len(results) == 3
        assert results[0].rounds == 10
        assert [r.rounds for r in results] == [10, 20, 99]
        sliced = results[:2]
        assert isinstance(sliced, ResultSet)
        assert len(sliced) == 2

    def test_consensus_times_nan_for_censored(self):
        times = self._mixed().consensus_times
        assert times[0] == 10 and times[1] == 20
        assert np.isnan(times[2])

    def test_quantiles_exclude_censored(self):
        results = self._mixed()
        assert results.median == 15
        assert results.quantiles((0.0, 1.0)).tolist() == [10.0, 20.0]

    def test_quantiles_all_censored_is_nan(self):
        results = ResultSet(
            [RunResult(False, 9, None, np.asarray([1, 1]))]
        )
        assert np.isnan(results.median)

    def test_censoring_counts(self):
        results = self._mixed()
        assert results.num_converged == 2
        assert results.num_censored == 1
        assert results.converged_fraction == pytest.approx(2 / 3)

    def test_winner_histogram(self):
        histogram = self._mixed().winner_histogram(num_opinions=3)
        assert histogram.tolist() == [1, 1, 0]

    def test_empty_slice_degrades_gracefully(self):
        """Slicing must mirror list semantics, including empty slices."""
        empty = self._mixed()[0:0]
        assert isinstance(empty, ResultSet)
        assert len(empty) == 0
        assert list(empty) == []
        assert empty.num_converged == 0
        assert np.isnan(empty.converged_fraction)
        assert np.isnan(empty.median)
        assert ResultSet([]).winner_histogram().tolist() == [0]

    def test_to_dicts_and_csv(self, tmp_path):
        results = self._mixed()
        dicts = results.to_dicts()
        assert dicts[2] == {
            "replica": 2,
            "converged": False,
            "rounds": 99,
            "winner": None,
        }
        path = results.to_csv(tmp_path / "runs.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[0]["rounds"] == "10"

    def test_summary_mentions_censoring(self):
        text = self._mixed().summary()
        assert "1 censored" in text
        assert "median 15" in text

    def test_summary_omits_winners_for_target_stopped_runs(self):
        """Converged-but-no-winner runs must not fabricate a winner."""
        results = ResultSet(
            [
                RunResult(True, 10, None, np.asarray([45, 5])),
                RunResult(True, 12, None, np.asarray([44, 6])),
            ]
        )
        text = results.summary()
        assert "2 converged" in text
        assert "winners" not in text


class TestMeasureConsensusTimesShim:
    def test_bitwise_compatible_with_seed_streams(self):
        counts = balanced(512, 8)
        results = measure_consensus_times(
            ThreeMajority(), counts, num_runs=4, max_rounds=10_000, seed=9
        )
        assert isinstance(results, ResultSet)

        def legacy(rng):
            engine = PopulationEngine(ThreeMajority(), counts, seed=rng)
            return run_until_consensus(engine, max_rounds=10_000)

        expected = replicate(legacy, 4, seed=9)
        assert [r.rounds for r in results] == [
            r.rounds for r in expected
        ]

    def test_batch_engine_option(self):
        results = measure_consensus_times(
            ThreeMajority(),
            balanced(512, 8),
            num_runs=6,
            max_rounds=10_000,
            seed=1,
            engine="batch",
        )
        assert results.num_converged == 6
