"""Tests for the parameter-sweep driver."""

from __future__ import annotations

import json

import numpy as np
import pytest
from scipy.stats import ks_2samp

from repro.errors import CacheIntegrityError, ConfigurationError
from repro.sweep import (
    SweepPoint,
    SweepSpec,
    consensus_times_point_batch,
    run_sweep,
    spec_from_params,
)
from repro.sweep.grid import _point_key, _seed_entropy, consensus_time_point


def _cheap_point(params, rng):
    """Deterministic-ish fast point function for driver tests."""
    return float(params["x"] * 10 + rng.integers(0, 3))


def _explodes_on_x3(params, rng):
    """Module-level (picklable) point function failing on one point."""
    if params["x"] == 3:
        raise RuntimeError("boom")
    return float(params["x"])


def _hammer_shared_cache(args):
    """Run one full sweep against a shared cache dir (subprocess)."""
    cache_dir, grid_size = args
    spec = SweepSpec(
        grid={"x": list(range(grid_size))}, num_runs=2, seed=0
    )
    points = run_sweep(
        spec, point_function=_cheap_point, cache_dir=cache_dir
    )
    return [point.values for point in points]


class TestSweepSpec:
    def test_points_cartesian(self):
        spec = SweepSpec(grid={"a": [1, 2], "b": ["x", "y"]})
        points = spec.points()
        assert len(points) == 4
        assert {"a": 1, "b": "x"} in points

    def test_fixed_merged(self):
        spec = SweepSpec(grid={"a": [1]}, fixed={"c": 9})
        assert spec.points() == [{"a": 1, "c": 9}]

    def test_rejects_empty_grid(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(grid={})

    def test_rejects_grid_fixed_overlap(self):
        with pytest.raises(ConfigurationError, match="both"):
            SweepSpec(grid={"a": [1]}, fixed={"a": 2})

    def test_rejects_zero_runs(self):
        with pytest.raises(ConfigurationError):
            SweepSpec(grid={"a": [1]}, num_runs=0)


class TestSweepPoint:
    def test_median_ignores_nan(self):
        point = SweepPoint({"a": 1}, (1.0, float("nan"), 3.0))
        assert point.median == 2.0
        assert point.censored == 1

    def test_all_censored(self):
        point = SweepPoint({}, (float("nan"),))
        assert np.isnan(point.median)


class TestRunSweep:
    def test_basic_run(self):
        spec = SweepSpec(grid={"x": [1, 2, 3]}, num_runs=4, seed=0)
        results = run_sweep(spec, point_function=_cheap_point)
        assert len(results) == 3
        for point in results:
            assert len(point.values) == 4
            assert point.median >= point.params["x"] * 10

    def test_reproducible(self):
        spec = SweepSpec(grid={"x": [1, 2]}, num_runs=3, seed=5)
        a = run_sweep(spec, point_function=_cheap_point)
        b = run_sweep(spec, point_function=_cheap_point)
        assert [p.values for p in a] == [p.values for p in b]

    def test_point_independent_of_grid(self):
        """Adding grid values never changes existing points."""
        small = SweepSpec(grid={"x": [1]}, num_runs=3, seed=5)
        big = SweepSpec(grid={"x": [1, 2, 3]}, num_runs=3, seed=5)
        a = run_sweep(small, point_function=_cheap_point)
        b = run_sweep(big, point_function=_cheap_point)
        assert a[0].values == b[0].values

    def test_cache_roundtrip(self, tmp_path):
        spec = SweepSpec(grid={"x": [1, 2]}, num_runs=2, seed=1)
        first = run_sweep(
            spec, point_function=_cheap_point, cache_dir=tmp_path
        )
        assert len(list(tmp_path.glob("*.json"))) == 2

        calls = []

        def spy(params, rng):
            calls.append(params)
            return 0.0

        second = run_sweep(spec, point_function=spy, cache_dir=tmp_path)
        assert not calls  # everything came from cache
        assert [p.values for p in first] == [p.values for p in second]

    def test_cache_resume_partial(self, tmp_path):
        spec1 = SweepSpec(grid={"x": [1]}, num_runs=2, seed=1)
        run_sweep(spec1, point_function=_cheap_point, cache_dir=tmp_path)
        spec2 = SweepSpec(grid={"x": [1, 2]}, num_runs=2, seed=1)
        calls = []

        def counting(params, rng):
            calls.append(params["x"])
            return _cheap_point(params, rng)

        run_sweep(spec2, point_function=counting, cache_dir=tmp_path)
        # Only the new point was measured (once per seed), never x = 1.
        assert calls == [2, 2]

    def test_cache_files_valid_json(self, tmp_path):
        spec = SweepSpec(grid={"x": [7]}, num_runs=1, seed=0)
        run_sweep(spec, point_function=_cheap_point, cache_dir=tmp_path)
        (path,) = tmp_path.glob("*.json")
        payload = json.loads(path.read_text())
        assert payload["params"] == {"x": 7}
        assert len(payload["values"]) == 1

    def test_truncated_cache_file_raises_cache_integrity_error(
        self, tmp_path
    ):
        spec = SweepSpec(grid={"x": [7]}, num_runs=1, seed=0)
        run_sweep(spec, point_function=_cheap_point, cache_dir=tmp_path)
        (path,) = tmp_path.glob("*.json")
        # Simulate a crash mid-write / disk truncation.
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        with pytest.raises(CacheIntegrityError) as excinfo:
            run_sweep(
                spec, point_function=_cheap_point, cache_dir=tmp_path
            )
        message = str(excinfo.value)
        assert path.name in message
        assert "delete it to re-measure" in message

    def test_cache_file_missing_key_raises_cache_integrity_error(
        self, tmp_path
    ):
        spec = SweepSpec(grid={"x": [7]}, num_runs=1, seed=0)
        run_sweep(spec, point_function=_cheap_point, cache_dir=tmp_path)
        (path,) = tmp_path.glob("*.json")
        payload = json.loads(path.read_text())
        del payload["values"]
        path.write_text(json.dumps(payload))
        with pytest.raises(CacheIntegrityError):
            run_sweep(
                spec, point_function=_cheap_point, cache_dir=tmp_path
            )

    def test_point_key_stable_under_ordering(self):
        assert _point_key({"a": 1, "b": 2}) == _point_key({"b": 2, "a": 1})

    def test_bad_seed_type(self):
        spec = SweepSpec(grid={"x": [1]}, seed=np.random.default_rng(0))
        with pytest.raises(ConfigurationError, match="stable"):
            run_sweep(spec, point_function=_cheap_point)

    def test_tuple_seed_order_matters(self):
        """Regression: (1, 2) and (2, 1) used to collapse (summed)."""
        a = run_sweep(
            SweepSpec(grid={"x": [1]}, num_runs=6, seed=(1, 2)),
            point_function=_cheap_point,
        )
        b = run_sweep(
            SweepSpec(grid={"x": [1]}, num_runs=6, seed=(2, 1)),
            point_function=_cheap_point,
        )
        assert a[0].values != b[0].values

    def test_int_seed_entropy_unchanged(self):
        """Int seeds keep their historical single-entry entropy."""
        assert _seed_entropy(7) == [7]
        assert _seed_entropy(None) == [0]
        assert _seed_entropy((3, 4)) == [3, 4]

    def test_workers_match_sequential(self, tmp_path):
        spec = SweepSpec(grid={"x": [1, 2, 3]}, num_runs=3, seed=8)
        sequential = run_sweep(spec, point_function=_cheap_point)
        parallel = run_sweep(
            spec, point_function=_cheap_point, workers=2
        )
        assert [p.values for p in sequential] == [
            p.values for p in parallel
        ]

    def test_workers_populate_cache(self, tmp_path):
        spec = SweepSpec(grid={"x": [1, 2]}, num_runs=2, seed=1)
        run_sweep(
            spec,
            point_function=_cheap_point,
            cache_dir=tmp_path,
            workers=2,
        )
        assert len(list(tmp_path.glob("*.json"))) == 2
        calls = []

        def spy(params, rng):
            calls.append(params)
            return 0.0

        run_sweep(spec, point_function=spy, cache_dir=tmp_path)
        assert not calls

    def test_cache_written_incrementally(self, tmp_path):
        """An interrupted sweep must keep every finished point."""
        spec = SweepSpec(grid={"x": [1, 2, 3]}, num_runs=1, seed=0)
        seen = []

        def explodes_on_third(params, rng):
            seen.append(params["x"])
            if len(seen) == 3:
                raise RuntimeError("boom")
            return float(params["x"])

        with pytest.raises(RuntimeError):
            run_sweep(
                spec,
                point_function=explodes_on_third,
                cache_dir=tmp_path,
            )
        assert len(list(tmp_path.glob("*.json"))) == 2

    def test_rejects_nonpositive_workers(self):
        spec = SweepSpec(grid={"x": [1]})
        with pytest.raises(ConfigurationError, match="workers"):
            run_sweep(spec, point_function=_cheap_point, workers=0)

    def test_rejects_bad_on_error(self):
        spec = SweepSpec(grid={"x": [1]})
        with pytest.raises(ConfigurationError, match="on_error"):
            run_sweep(
                spec, point_function=_cheap_point, on_error="ignore"
            )

    def test_raise_names_the_offending_point(self):
        """A failing point must identify itself, not raise bare."""
        from repro.errors import SweepPointError

        spec = SweepSpec(grid={"x": [1, 2, 3]}, num_runs=1, seed=0)
        with pytest.raises(SweepPointError, match="'x': 3") as info:
            run_sweep(spec, point_function=_explodes_on_x3)
        assert info.value.params == {"x": 3}
        assert isinstance(info.value.__cause__, RuntimeError)
        assert "boom" in str(info.value)

    def test_parallel_raise_names_the_offending_point(self):
        from repro.errors import SweepPointError

        spec = SweepSpec(grid={"x": [1, 2, 3]}, num_runs=1, seed=0)
        with pytest.raises(SweepPointError, match="'x': 3"):
            run_sweep(
                spec, point_function=_explodes_on_x3, workers=2
            )

    def test_skip_records_failure_and_keeps_going(self, tmp_path):
        spec = SweepSpec(grid={"x": [1, 2, 3, 4]}, num_runs=1, seed=0)
        points = run_sweep(
            spec,
            point_function=_explodes_on_x3,
            cache_dir=tmp_path,
            on_error="skip",
        )
        assert [p.params["x"] for p in points] == [1, 2, 3, 4]
        failed = points[2]
        assert failed.failed
        assert "boom" in failed.error
        assert failed.values == ()
        assert np.isnan(failed.median)
        assert all(not p.failed for i, p in enumerate(points) if i != 2)
        # Failures are never cached: a resume retries the point.
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_skip_parallel(self, tmp_path):
        spec = SweepSpec(grid={"x": [1, 2, 3, 4]}, num_runs=1, seed=0)
        points = run_sweep(
            spec,
            point_function=_explodes_on_x3,
            cache_dir=tmp_path,
            on_error="skip",
            workers=2,
        )
        assert [p.failed for p in points] == [
            False, False, True, False,
        ]
        assert len(list(tmp_path.glob("*.json"))) == 3

    def test_progress_reports_every_point(self, tmp_path):
        spec = SweepSpec(grid={"x": [1, 2, 3]}, num_runs=1, seed=0)
        run_sweep(
            spec, point_function=_cheap_point, cache_dir=tmp_path
        )
        calls = []
        # Second run: all three points come from the cache and must
        # still be reported.
        points = run_sweep(
            spec,
            point_function=_cheap_point,
            cache_dir=tmp_path,
            progress=lambda done, total, point: calls.append(
                (done, total, point.params["x"])
            ),
        )
        assert [c[:2] for c in calls] == [(1, 3), (2, 3), (3, 3)]
        assert [c[2] for c in calls] == [1, 2, 3]
        assert len(points) == 3

    def test_progress_counts_skipped_failures(self):
        spec = SweepSpec(grid={"x": [1, 2, 3]}, num_runs=1, seed=0)
        calls = []
        run_sweep(
            spec,
            point_function=_explodes_on_x3,
            on_error="skip",
            progress=lambda done, total, point: calls.append(done),
        )
        assert calls == [1, 2, 3]

    def test_atomic_cache_write_leaves_no_temp_files(self, tmp_path):
        spec = SweepSpec(grid={"x": [1, 2]}, num_runs=1, seed=0)
        run_sweep(
            spec, point_function=_cheap_point, cache_dir=tmp_path
        )
        assert not list(tmp_path.glob("*.tmp"))
        assert not list(tmp_path.glob(".*"))

    def test_two_processes_hammering_one_cache_dir(self, tmp_path):
        """Concurrent resumers must never interleave a torn write.

        Two subprocesses run the same sweep against one cache dir at
        the same time; afterwards every cache file must parse as
        complete JSON and both processes must have computed identical
        values (each point owns its seed stream, so last-writer-wins
        races are value-neutral).
        """
        from concurrent.futures import ProcessPoolExecutor

        grid_size = 12
        with ProcessPoolExecutor(max_workers=2) as pool:
            results = list(
                pool.map(
                    _hammer_shared_cache,
                    [(str(tmp_path), grid_size)] * 2,
                )
            )
        assert results[0] == results[1]
        cache_files = list(tmp_path.glob("*.json"))
        assert len(cache_files) == grid_size
        for path in cache_files:
            payload = json.loads(path.read_text())  # must not be torn
            assert len(payload["values"]) == 2
        assert not list(tmp_path.glob("*.tmp"))

    def test_parallel_failure_keeps_finished_points(self, tmp_path):
        """A failing point must not lose the other finished points.

        Regression for the head-of-line-blocking consumption pattern:
        results are consumed with ``as_completed``, every finished
        point is cached, and the first error surfaces afterwards.
        """
        spec = SweepSpec(grid={"x": [1, 2, 3]}, num_runs=1, seed=0)
        with pytest.raises(RuntimeError, match="boom"):
            run_sweep(
                spec,
                point_function=_explodes_on_x3,
                cache_dir=tmp_path,
                workers=2,
            )
        cached = [
            json.loads(p.read_text())["params"]["x"]
            for p in tmp_path.glob("*.json")
        ]
        assert sorted(cached) == [1, 2]


class TestSpecFromParams:
    def test_builds_validated_spec(self):
        spec = spec_from_params(
            {"dynamics": "2-choices", "n": 256, "k": 4, "max_rounds": 99}
        )
        assert spec.n == 256
        assert spec.round_budget() == 99

    def test_initial_family_passthrough(self):
        spec = spec_from_params(
            {
                "n": 256,
                "k": 4,
                "initial": "zipf",
                "initial_params": {"exponent": 2.0},
            }
        )
        counts = spec.initial_counts()
        assert counts[0] > counts[-1]

    def test_invalid_params_raise_eagerly(self):
        with pytest.raises(ConfigurationError):
            spec_from_params({"n": 2, "k": 4})

    def test_adversary_passthrough(self):
        spec = spec_from_params(
            {
                "n": 256,
                "k": 4,
                "adversary": "runner-up",
                "adversary_budget": 3,
            }
        )
        assert spec.adversary == "runner-up"
        assert spec.adversary_budget == 3
        assert spec.resolved_adversary().budget == 3

    def test_adversary_requires_budget(self):
        with pytest.raises(ConfigurationError, match="adversary_budget"):
            spec_from_params(
                {"n": 256, "k": 4, "adversary": "runner-up"}
            )


class TestAdversarialCacheKeys:
    """Adversarial points must never collide with plain points."""

    BASE = {"dynamics": "3-majority", "n": 256, "k": 4}

    def test_adversarial_key_differs_from_plain(self):
        plain = _point_key(self.BASE)
        attacked = _point_key(
            {**self.BASE, "adversary": "runner-up", "adversary_budget": 2}
        )
        assert plain != attacked

    def test_keys_differ_across_budgets(self):
        keys = {
            _point_key(
                {
                    **self.BASE,
                    "adversary": "runner-up",
                    "adversary_budget": budget,
                }
            )
            for budget in (0, 1, 2, 64)
        }
        assert len(keys) == 4

    def test_keys_differ_across_strategies(self):
        keys = {
            _point_key(
                {
                    **self.BASE,
                    "adversary": name,
                    "adversary_budget": 2,
                }
            )
            for name in ("random", "runner-up", "revive-weakest")
        }
        assert len(keys) == 3

    def test_budget_axis_cache_files_distinct(self, tmp_path):
        spec = SweepSpec(
            grid={"adversary_budget": [0, 2]},
            fixed={
                "dynamics": "3-majority",
                "n": 256,
                "k": 4,
                "adversary": "runner-up",
            },
            num_runs=2,
            seed=3,
        )
        points = run_sweep(spec, cache_dir=tmp_path)
        assert len(points) == 2
        assert len(list(tmp_path.glob("*.json"))) == 2
        by_budget = {
            p.params["adversary_budget"]: p.values for p in points
        }
        assert set(by_budget) == {0, 2}
        assert all(v > 0 for v in by_budget[0])
        assert all(v > 0 for v in by_budget[2])


class TestConsensusTimePoint:
    def test_measures_real_dynamics(self, rng):
        value = consensus_time_point(
            {"dynamics": "3-majority", "n": 512, "k": 4}, rng
        )
        assert value > 0

    def test_censoring_returns_nan(self, rng):
        value = consensus_time_point(
            {"dynamics": "2-choices", "n": 4096, "k": 512,
             "max_rounds": 2},
            rng,
        )
        assert np.isnan(value)

    def test_end_to_end_sweep(self, tmp_path):
        spec = SweepSpec(
            grid={"k": [2, 8]},
            fixed={"n": 512, "dynamics": "3-majority"},
            num_runs=2,
            seed=3,
        )
        results = run_sweep(spec, cache_dir=tmp_path)
        medians = {p.params["k"]: p.median for p in results}
        assert medians[8] > 0 and medians[2] > 0

    def test_adversarial_point_measures_threshold_time(self, rng):
        value = consensus_time_point(
            {
                "dynamics": "3-majority",
                "n": 512,
                "k": 4,
                "adversary": "runner-up",
                "adversary_budget": 2,
            },
            rng,
        )
        assert value > 0

    def test_adversarial_point_can_censor(self, rng):
        """A huge stalling budget exhausts the window -> NaN.

        With F = 30 on n = 512, k = 2 the adversary re-pins the top two
        opinions together after every round (gap <= 2F is halved to
        <= 1), so the n - 4F = 392 threshold stays out of reach.
        """
        value = consensus_time_point(
            {
                "dynamics": "3-majority",
                "n": 512,
                "k": 2,
                "max_rounds": 300,
                "adversary": "runner-up",
                "adversary_budget": 30,
            },
            rng,
        )
        assert np.isnan(value)

    def test_huge_budget_is_not_an_instant_success(self, rng):
        """The majority floor keeps n - 4F thresholds meaningful.

        With F = 200 on n = 1000, k = 2 the raw n - 4F = 200 threshold
        would be satisfied by the balanced start itself, reporting the
        strongest adversary as an instant (round-0) success.
        """
        value = consensus_time_point(
            {
                "dynamics": "3-majority",
                "n": 1000,
                "k": 2,
                "max_rounds": 300,
                "adversary": "runner-up",
                "adversary_budget": 200,
            },
            rng,
        )
        assert np.isnan(value)  # a stall, not a round-0 "success"

    def test_async_engine_point(self, rng):
        """engine='async' measures the tick chain in sync-equiv rounds."""
        value = consensus_time_point(
            {"dynamics": "3-majority", "n": 128, "k": 2,
             "engine": "async"},
            rng,
        )
        assert value > 0

    def test_async_engine_point_can_censor(self, rng):
        value = consensus_time_point(
            {"dynamics": "3-majority", "n": 512, "k": 64,
             "engine": "async", "max_rounds": 1},
            rng,
        )
        assert np.isnan(value)


class TestSpecFromParamsEngines:
    BASE = {"dynamics": "3-majority", "n": 256, "k": 4}

    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError, match="chain family"):
            spec_from_params({**self.BASE, "engine": "batch"})

    def test_rejects_graph_with_non_agent_engine(self):
        with pytest.raises(ConfigurationError, match="agent chain"):
            spec_from_params(
                {
                    **self.BASE,
                    "graph": "random-regular",
                    "degree": 4,
                    "engine": "async",
                }
            )

    @pytest.mark.parametrize(
        "engine, batch_engine",
        [
            (None, "batch"),
            ("population", "batch"),
            ("async", "async-batch"),
        ],
    )
    def test_batch_measure_maps_to_sibling(self, engine, batch_engine):
        params = dict(self.BASE)
        if engine is not None:
            params["engine"] = engine
        sequential = spec_from_params(params)
        batched = spec_from_params(
            params, replicas=6, seed=(1, 2), measure="batch"
        )
        assert sequential.engine == (engine or "population")
        assert batched.engine == batch_engine
        assert batched.replicas == 6

    def test_batch_measure_graph_point_maps_to_agent_batch(self):
        spec = spec_from_params(
            {
                **self.BASE,
                "graph": "random-regular",
                "degree": 4,
            },
            replicas=3,
            measure="batch",
        )
        assert spec.engine == "agent-batch"
        assert spec.graph is not None

    def test_batch_measure_adversarial_point_carries_target(self):
        spec = spec_from_params(
            {
                **self.BASE,
                "adversary": "runner-up",
                "adversary_budget": 2,
            },
            replicas=3,
            measure="batch",
        )
        assert spec.engine == "batch"
        assert spec.target is not None
        # Sequential specs keep the historical targetless shape (the
        # point function threads the target into run_until_consensus).
        assert spec_from_params(
            {
                **self.BASE,
                "adversary": "runner-up",
                "adversary_budget": 2,
            }
        ).target is None

    def test_rejects_unknown_measure(self):
        with pytest.raises(ConfigurationError, match="measure"):
            spec_from_params(self.BASE, measure="vectorised")

    def test_random_initial_family_shares_start_across_modes(self):
        """Dirichlet starts are a function of the params alone.

        Regression: the batched spec carries a measurement seed, which
        must not leak into the initial configuration — batch and
        sequential measurement (and every replica) see the identical
        random-family start.
        """
        params = {**self.BASE, "initial": "dirichlet"}
        sequential = spec_from_params(params).initial_counts()
        batched = spec_from_params(
            params, replicas=4, seed=(9, 9, 9), measure="batch"
        ).initial_counts()
        assert (sequential == batched).all()


class TestBatchMeasurement:
    """run_sweep defaults to batched measurement with sequential opt-out."""

    POINT = {"dynamics": "3-majority", "n": 512}

    def test_default_measure_is_batch(self, tmp_path):
        """The default point function routes through the batch sibling
        and caches under the batch key, not the sequential one."""
        spec = SweepSpec(
            grid={"k": [4]}, fixed=self.POINT, num_runs=3, seed=0
        )
        run_sweep(spec, cache_dir=tmp_path)
        (path,) = tmp_path.glob("*.json")
        payload = json.loads(path.read_text())
        assert payload["measure"] == "batch"
        params = {**self.POINT, "k": 4}
        assert path.stem == _point_key(params, "batch")
        assert path.stem != _point_key(params)

    def test_point_key_versioned_measure_field(self):
        params = {**self.POINT, "k": 4}
        assert _point_key(params, "sequential") == _point_key(params)
        assert _point_key(params, "batch") != _point_key(params)

    def test_modes_never_share_cache_files(self, tmp_path):
        """A batched sweep never reads old sequential caches (and vice
        versa): same grid, same dir, both modes measure fresh."""
        spec = SweepSpec(
            grid={"k": [2, 8]}, fixed=self.POINT, num_runs=2, seed=3
        )
        sequential = run_sweep(
            spec, cache_dir=tmp_path, measure="sequential"
        )
        assert len(list(tmp_path.glob("*.json"))) == 2
        batch = run_sweep(spec, cache_dir=tmp_path, measure="batch")
        assert len(list(tmp_path.glob("*.json"))) == 4
        # Cached reload stays mode-faithful.
        assert [p.values for p in run_sweep(
            spec, cache_dir=tmp_path, measure="sequential"
        )] == [p.values for p in sequential]
        assert [p.values for p in run_sweep(
            spec, cache_dir=tmp_path, measure="batch"
        )] == [p.values for p in batch]

    def test_custom_point_function_defaults_to_sequential(self, tmp_path):
        spec = SweepSpec(grid={"x": [1]}, num_runs=2, seed=1)
        run_sweep(
            spec, point_function=_cheap_point, cache_dir=tmp_path
        )
        (path,) = tmp_path.glob("*.json")
        assert json.loads(path.read_text())["measure"] == "sequential"

    def test_custom_point_function_cannot_batch_implicitly(self):
        spec = SweepSpec(grid={"x": [1]})
        with pytest.raises(ConfigurationError, match="batch"):
            run_sweep(
                spec, point_function=_cheap_point, measure="batch"
            )

    def test_rejects_unknown_measure(self):
        spec = SweepSpec(grid={"x": [1]})
        with pytest.raises(ConfigurationError, match="measure"):
            run_sweep(spec, measure="vectorised")

    def test_batch_and_sequential_statistically_equivalent(self):
        """Same chain, different streams: medians must agree (KS)."""
        spec = SweepSpec(
            grid={"k": [4]}, fixed=self.POINT, num_runs=60, seed=7
        )
        (sequential,) = run_sweep(spec, measure="sequential")
        (batch,) = run_sweep(spec, measure="batch")
        assert len(batch.values) == 60
        statistic, p_value = ks_2samp(sequential.values, batch.values)
        assert p_value > 1e-3, (
            f"KS statistic {statistic:.3f}, p={p_value:.2e} — batched "
            "and sequential sweep measurements differ in distribution"
        )
        assert (
            abs(sequential.median - batch.median)
            <= 0.35 * max(sequential.median, batch.median)
        )

    def test_batch_censored_rows_are_nan(self):
        spec = SweepSpec(
            grid={"k": [512]},
            fixed={"dynamics": "2-choices", "n": 4096, "max_rounds": 2},
            num_runs=3,
            seed=0,
        )
        (point,) = run_sweep(spec, measure="batch")
        assert all(np.isnan(v) for v in point.values)
        assert point.censored == 3

    def test_batch_point_function_direct(self):
        values = consensus_times_point_batch(
            {**self.POINT, "k": 4}, 5, (1, 2, 3)
        )
        assert len(values) == 5
        assert all(v > 0 for v in values)
        # Declarative seed: same entropy, same values.
        assert values == consensus_times_point_batch(
            {**self.POINT, "k": 4}, 5, (1, 2, 3)
        )

    def test_batch_workers_match_serial(self, tmp_path):
        spec = SweepSpec(
            grid={"k": [2, 4]}, fixed=self.POINT, num_runs=3, seed=5
        )
        serial = run_sweep(spec, measure="batch")
        parallel = run_sweep(spec, measure="batch", workers=2)
        assert [p.values for p in serial] == [
            p.values for p in parallel
        ]

    def test_async_points_measure_batched(self):
        spec = SweepSpec(
            grid={"k": [2, 4]},
            fixed={"dynamics": "3-majority", "n": 128, "engine": "async"},
            num_runs=3,
            seed=2,
        )
        points = run_sweep(spec)  # default batch -> async-batch
        for point in points:
            assert point.censored == 0
            assert point.median > 0
