"""Tests for ``repro.provenance`` — the hash-chained result ledger.

Property tests for the chain primitives (canonical-JSON stability, NaN
rejection, tamper detection naming the *first* broken link, empty and
single-entry chains), concurrency of the exclusive-create append, the
sweep-cache choke point (fresh caches verify, resumes append nothing,
tampering is caught), and the ``repro verify`` CLI exit codes.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.cli import main
from repro.errors import ProvenanceError
from repro.provenance import (
    MANIFEST_SCHEMA,
    PROVENANCE_DIRNAME,
    canon_hash,
    canonical_json,
    chain_hash,
    genesis_root,
    hash_bytes,
    record_artifact,
    verify_chain,
)
from repro.sweep import SweepSpec, run_sweep


def _write_payload(directory, name="point.json", body=None):
    path = directory / name
    path.write_text(json.dumps(body or {"value": 1}))
    return path


def _manifest_paths(directory):
    return sorted((directory / PROVENANCE_DIRNAME).glob("manifest-*.json"))


# ---------------------------------------------------------------------
# Canonical JSON primitives
# ---------------------------------------------------------------------


def test_canonical_json_is_key_order_independent():
    assert canonical_json({"b": 1, "a": [2, {"d": 3, "c": 4}]}) == (
        canonical_json({"a": [2, {"c": 4, "d": 3}]} | {"b": 1})
    )
    assert canon_hash({"x": 1, "y": 2}) == canon_hash({"y": 2, "x": 1})


def test_canonical_json_is_compact_and_sorted():
    assert canonical_json({"b": 1, "a": "ü"}) == '{"a":"ü","b":1}'


def test_canonical_json_rejects_nan_and_infinity():
    for poison in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ProvenanceError):
            canonical_json({"value": poison})


def test_canonical_json_rejects_unserialisable_values():
    with pytest.raises(ProvenanceError):
        canonical_json({"value": object()})


def test_hash_primitives_are_deterministic():
    assert hash_bytes(b"abc") == hash_bytes(b"abc")
    assert hash_bytes(b"abc") != hash_bytes(b"abd")
    assert genesis_root() == genesis_root()
    assert chain_hash(genesis_root(), canon_hash({"a": 1})) != (
        chain_hash(genesis_root(), canon_hash({"a": 2}))
    )


# ---------------------------------------------------------------------
# record_artifact / verify_chain round trips
# ---------------------------------------------------------------------


def test_empty_directory_verifies_vacuously(tmp_path):
    report = verify_chain(tmp_path)
    assert report.ok
    assert report.entries == 0 and report.payloads == 0
    assert report.render().startswith("ok: ")


def test_missing_directory_is_an_error(tmp_path):
    report = verify_chain(tmp_path / "nope")
    assert not report.ok
    assert "not a directory" in report.first_broken


def test_single_entry_chain(tmp_path):
    payload = _write_payload(tmp_path)
    entry = record_artifact(payload, kind="test", context={"seed": 3})
    assert entry["schema"] == MANIFEST_SCHEMA
    assert entry["seq"] == 1
    assert entry["prev_chain_root"] == genesis_root()
    assert entry["payload"] == "point.json"
    assert entry["context"] == {"seed": 3}
    report = verify_chain(tmp_path)
    assert report.ok
    assert report.entries == 1 and report.payloads == 1


def test_entries_link_through_history(tmp_path):
    first = record_artifact(_write_payload(tmp_path, "a.json"), kind="t")
    second = record_artifact(_write_payload(tmp_path, "b.json"), kind="t")
    assert second["seq"] == 2
    assert second["prev_chain_root"] == first["chain_root"]
    assert verify_chain(tmp_path).ok


def test_rewrite_appends_and_latest_manifest_wins(tmp_path):
    payload = _write_payload(tmp_path, body={"value": 1})
    record_artifact(payload, kind="t")
    payload.write_text(json.dumps({"value": 2}))
    # The stale manifest now disagrees with the bytes on disk ...
    assert not verify_chain(tmp_path).ok
    # ... until the rewrite is attested by a fresh append.
    record_artifact(payload, kind="t")
    report = verify_chain(tmp_path)
    assert report.ok
    assert report.entries == 2 and report.payloads == 1


def test_unattested_payload_is_flagged(tmp_path):
    _write_payload(tmp_path, "stray.json")
    report = verify_chain(tmp_path)
    assert not report.ok
    assert "stray.json has no provenance manifest" in report.first_broken


def test_non_json_files_are_outside_the_boundary(tmp_path):
    (tmp_path / "notes.csv").write_text("a,b\n1,2\n")
    assert verify_chain(tmp_path).ok


# ---------------------------------------------------------------------
# Tamper detection — the first broken link is named
# ---------------------------------------------------------------------


def test_payload_tamper_names_the_file(tmp_path):
    payload = _write_payload(tmp_path)
    record_artifact(payload, kind="t")
    raw = bytearray(payload.read_bytes())
    raw[-2] ^= 0xFF
    payload.write_bytes(bytes(raw))
    report = verify_chain(tmp_path)
    assert not report.ok
    assert "payload point.json does not match its manifest" in (
        report.first_broken
    )


def test_manifest_field_tamper_breaks_its_own_link(tmp_path):
    record_artifact(_write_payload(tmp_path, "a.json"), kind="t")
    record_artifact(_write_payload(tmp_path, "b.json"), kind="t")
    first, _second = _manifest_paths(tmp_path)
    entry = json.loads(first.read_text())
    entry["kind"] = "forged"
    first.write_text(canonical_json(entry))
    report = verify_chain(tmp_path)
    assert not report.ok
    assert report.first_broken == (
        f"manifest {first.name} is tampered: recorded chain_root does "
        "not match its recomputed content hash"
    )


def test_corrupt_manifest_json_is_the_broken_link(tmp_path):
    record_artifact(_write_payload(tmp_path), kind="t")
    (manifest,) = _manifest_paths(tmp_path)
    raw = bytearray(manifest.read_bytes())
    raw[0] ^= 0xFF  # clobber the opening brace: unparseable JSON
    manifest.write_bytes(bytes(raw))
    report = verify_chain(tmp_path)
    assert report.first_broken == (
        f"manifest {manifest.name} is unreadable (corrupt JSON)"
    )


def test_deleted_manifest_is_a_gap(tmp_path):
    for name in ("a.json", "b.json", "c.json"):
        record_artifact(_write_payload(tmp_path, name), kind="t")
    _first, second, _third = _manifest_paths(tmp_path)
    second.unlink()
    report = verify_chain(tmp_path)
    assert report.first_broken == "missing manifest seq 2 (gap in the chain)"
    # The walk stops at the gap: only the intact prefix is counted.
    assert report.entries == 1


def test_orphaned_manifest_names_the_missing_payload(tmp_path):
    payload = _write_payload(tmp_path)
    record_artifact(payload, kind="t")
    payload.unlink()
    report = verify_chain(tmp_path)
    assert report.first_broken == (
        "orphaned manifest (seq 1): payload point.json is missing"
    )


def test_chain_walk_failure_precedes_payload_failures(tmp_path):
    first_payload = _write_payload(tmp_path, "a.json")
    record_artifact(first_payload, kind="t")
    record_artifact(_write_payload(tmp_path, "b.json"), kind="t")
    first, _ = _manifest_paths(tmp_path)
    entry = json.loads(first.read_text())
    entry["kind"] = "forged"
    first.write_text(canonical_json(entry))
    first_payload.write_bytes(b'{"also": "tampered"}')
    report = verify_chain(tmp_path)
    # Both failures are reported, chain-walk damage first.
    assert "manifest" in report.first_broken
    assert any("payload a.json" in error for error in report.errors)


def test_unrecognised_file_in_chain_dir_is_flagged(tmp_path):
    record_artifact(_write_payload(tmp_path), kind="t")
    (tmp_path / PROVENANCE_DIRNAME / "README.txt").write_text("hi")
    report = verify_chain(tmp_path)
    assert any("unrecognised file" in error for error in report.errors)


def test_nan_in_context_is_rejected_before_commit(tmp_path):
    payload = _write_payload(tmp_path)
    with pytest.raises(ProvenanceError):
        record_artifact(payload, kind="t", context={"x": float("nan")})
    # Nothing was committed: the payload is now merely unattested.
    assert not (tmp_path / PROVENANCE_DIRNAME / "manifest-000001.json").exists()


# ---------------------------------------------------------------------
# Concurrency: exclusive-create append linearises writers
# ---------------------------------------------------------------------


def test_concurrent_appends_form_one_contiguous_chain(tmp_path):
    paths = [
        _write_payload(tmp_path, f"point-{i}.json", body={"i": i})
        for i in range(8)
    ]
    barrier = threading.Barrier(len(paths))

    def append(path):
        barrier.wait()
        record_artifact(path, kind="race")

    threads = [
        threading.Thread(target=append, args=(p,)) for p in paths
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report = verify_chain(tmp_path)
    assert report.ok, report.render()
    assert report.entries == len(paths)
    assert report.payloads == len(paths)


# ---------------------------------------------------------------------
# Sweep-cache choke point
# ---------------------------------------------------------------------


def _tiny_spec():
    return SweepSpec(
        grid={"n": [20, 40], "k": [2]},
        num_runs=2,
        seed=11,
        fixed={"dynamics": "3-majority", "max_rounds": 60},
    )


def test_sweep_cache_is_chain_attested(tmp_path):
    run_sweep(_tiny_spec(), cache_dir=tmp_path)
    report = verify_chain(tmp_path)
    assert report.ok, report.render()
    assert report.entries == 2 and report.payloads == 2
    manifest = json.loads(_manifest_paths(tmp_path)[0].read_text())
    assert manifest["kind"] == "sweep-point"
    context = manifest["context"]
    assert {
        "point_key",
        "spec_hash",
        "backend",
        "engine",
        "seed_entropy",
        "measure",
    } <= set(context)
    # The default consensus-time measure runs the batch sibling.
    assert context["engine"] == "batch"


def test_sweep_resume_appends_nothing(tmp_path):
    run_sweep(_tiny_spec(), cache_dir=tmp_path)
    run_sweep(_tiny_spec(), cache_dir=tmp_path)  # full cache hit
    report = verify_chain(tmp_path)
    assert report.ok
    assert report.entries == 2


def test_sweep_cache_tamper_is_caught(tmp_path):
    run_sweep(_tiny_spec(), cache_dir=tmp_path)
    victim = sorted(tmp_path.glob("*.json"))[0]
    raw = bytearray(victim.read_bytes())
    raw[-2] ^= 0xFF
    victim.write_bytes(bytes(raw))
    report = verify_chain(tmp_path)
    assert not report.ok
    assert victim.name in report.first_broken


# ---------------------------------------------------------------------
# CLI: repro verify
# ---------------------------------------------------------------------


def test_cli_verify_ok_and_broken_exit_codes(tmp_path, capsys):
    payload = _write_payload(tmp_path)
    record_artifact(payload, kind="t")
    assert main(["verify", str(tmp_path)]) == 0
    assert "ok:" in capsys.readouterr().out
    raw = bytearray(payload.read_bytes())
    raw[-2] ^= 0xFF
    payload.write_bytes(bytes(raw))
    assert main(["verify", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "BROKEN" in out and "point.json" in out


def test_cli_verify_file_argument_verifies_its_directory(tmp_path, capsys):
    payload = _write_payload(tmp_path)
    record_artifact(payload, kind="t")
    assert main(["verify", str(payload)]) == 0
    assert "ok:" in capsys.readouterr().out


def test_cli_verify_multiple_paths_any_failure_wins(tmp_path, capsys):
    good = tmp_path / "good"
    bad = tmp_path / "bad"
    good.mkdir()
    bad.mkdir()
    record_artifact(_write_payload(good), kind="t")
    _write_payload(bad, "unattested.json")
    assert main(["verify", str(good), str(bad)]) == 1
    out = capsys.readouterr().out
    assert "ok:" in out and "BROKEN" in out
