"""Tests for the analysis layer: estimators, scaling, tables, trajectories."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ComparisonRecord,
    bootstrap_ci,
    consensus_times,
    envelope,
    first_hitting_time,
    fit_power_law,
    fit_saturating_power_law,
    format_table,
    render_comparisons_markdown,
    split_exponents,
    success_probability,
    summarize,
    survival_curve,
    wilson_interval,
    write_csv,
)
from repro.engine import RunResult
from repro.errors import ConfigurationError


def _result(converged: bool, rounds: int, winner=None) -> RunResult:
    return RunResult(
        converged=converged,
        rounds=rounds,
        winner=winner,
        final_counts=np.asarray([1]),
    )


class TestSummarize:
    def test_basic_stats(self):
        stats = summarize([1, 2, 3, 4, 5])
        assert stats.count == 5
        assert stats.mean == 3.0
        assert stats.median == 3.0
        assert stats.minimum == 1.0 and stats.maximum == 5.0

    def test_single_value(self):
        stats = summarize([7.0])
        assert stats.std == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            summarize([])


class TestConsensusTimes:
    def test_filters_unconverged(self):
        results = [_result(True, 5), _result(False, 99), _result(True, 7)]
        assert consensus_times(results).tolist() == [5.0, 7.0]

    def test_require_all(self):
        results = [_result(True, 5), _result(False, 99)]
        with pytest.raises(ConfigurationError, match="did not converge"):
            consensus_times(results, require_all=True)


class TestBootstrap:
    def test_ci_contains_point_estimate(self):
        data = np.arange(100, dtype=float)
        low, high = bootstrap_ci(data, np.median, seed=0)
        assert low <= np.median(data) <= high

    def test_reproducible(self):
        data = np.arange(50, dtype=float)
        assert bootstrap_ci(data, seed=3) == bootstrap_ci(data, seed=3)

    def test_narrow_for_constant_data(self):
        low, high = bootstrap_ci([5.0] * 30, seed=0)
        assert low == high == 5.0

    def test_rejects_bad_confidence(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0, 2.0], confidence=1.5)


class TestWilson:
    def test_symmetric_half(self):
        low, high = wilson_interval(50, 100)
        assert low < 0.5 < high
        assert abs((0.5 - low) - (high - 0.5)) < 1e-6

    def test_extremes_stay_in_unit(self):
        low, high = wilson_interval(0, 20)
        assert low == 0.0 and high > 0.0
        low, high = wilson_interval(20, 20)
        assert high == 1.0 and low < 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            wilson_interval(5, 0)
        with pytest.raises(ConfigurationError):
            wilson_interval(10, 5)


class TestSuccessProbability:
    def test_counts_predicate(self):
        results = [
            _result(True, 3, winner=0),
            _result(True, 4, winner=1),
            _result(False, 9),
        ]
        stats = success_probability(
            results, lambda r: r.converged and r.winner == 0
        )
        assert stats["successes"] == 1
        assert stats["trials"] == 3
        assert 0.0 <= stats["low"] <= stats["probability"] <= stats["high"]


class TestPowerLawFits:
    def test_exact_power_law_recovered(self):
        x = np.asarray([1.0, 2.0, 4.0, 8.0, 16.0])
        y = 3.0 * x**1.5
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(1.5)
        assert fit.amplitude == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        x = np.asarray([1.0, 2.0, 4.0])
        fit = fit_power_law(x, 2.0 * x)
        assert fit.predict([8.0])[0] == pytest.approx(16.0)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0, -2.0], [1.0, 2.0])

    def test_rejects_single_point(self):
        with pytest.raises(ConfigurationError):
            fit_power_law([1.0], [1.0])

    def test_saturating_fit_finds_crossover(self):
        x = np.asarray([1, 2, 4, 8, 16, 32, 64, 128, 256], dtype=float)
        y = np.minimum(2.0 * x, 60.0)
        fit = fit_saturating_power_law(x, y)
        assert fit.exponent == pytest.approx(1.0, abs=0.1)
        assert fit.plateau == pytest.approx(60.0, rel=0.1)
        assert fit.crossover == pytest.approx(30.0, rel=0.3)

    def test_saturating_fit_pure_power_law(self):
        x = np.asarray([1, 2, 4, 8, 16], dtype=float)
        fit = fit_saturating_power_law(x, 5.0 * x)
        assert fit.exponent == pytest.approx(1.0, abs=0.05)
        # No crossover inside the data range.
        assert fit.crossover > x.max()

    def test_split_exponents_detect_plateau(self):
        x = np.asarray([1, 2, 4, 8, 16, 32, 64, 128], dtype=float)
        y = np.minimum(x, 8.0)
        low, high = split_exponents(x, y)
        assert low > 0.8
        assert high < 0.2

    def test_split_exponents_need_four_points(self):
        with pytest.raises(ConfigurationError):
            split_exponents([1.0, 2.0, 4.0], [1.0, 2.0, 4.0])


class TestTables:
    def test_format_alignment(self):
        table = format_table(
            ["name", "value"], [["a", 1], ["long-name", 2.5]]
        )
        lines = table.splitlines()
        assert lines[0].startswith("name")
        assert all("|" in line for line in (lines[0], lines[2]))

    def test_format_title(self):
        table = format_table(["x"], [[1]], title="T")
        assert table.splitlines()[0] == "T"

    def test_format_floats(self):
        table = format_table(["v"], [[0.000012], [123456.0], [1.5]])
        assert "1.200e-05" in table
        assert "1.235e+05" in table
        assert "1.5" in table

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_write_csv(self, tmp_path):
        path = write_csv(
            tmp_path / "sub" / "out.csv", ["a", "b"], [[1, 2], [3, 4]]
        )
        content = path.read_text().strip().splitlines()
        assert content == ["a,b", "1,2", "3,4"]


class TestComparisonRecord:
    def test_verdict_validated(self):
        with pytest.raises(ValueError):
            ComparisonRecord("x", "claim", "measured", "maybe")

    def test_markdown_render(self):
        records = [ComparisonRecord("fig1", "c", "m", "match")]
        out = render_comparisons_markdown(records)
        assert "| fig1 | c | m | match |" in out


class TestTrajectories:
    def test_first_hitting_up(self):
        series = np.asarray([0.1, 0.2, 0.5, 0.4])
        assert first_hitting_time(series, 0.5, "up") == 2

    def test_first_hitting_down(self):
        series = np.asarray([0.9, 0.5, 0.1])
        assert first_hitting_time(series, 0.2, "down") == 2

    def test_never_hits(self):
        assert first_hitting_time(np.asarray([0.1, 0.2]), 0.9) is None

    def test_bad_direction(self):
        with pytest.raises(ConfigurationError):
            first_hitting_time(np.asarray([1.0]), 0.5, "sideways")

    def test_survival_curve(self):
        curve = survival_curve([2, 5, None], horizon=6)
        assert curve[0] == pytest.approx(1.0)
        assert curve[2] == pytest.approx(2 / 3)
        assert curve[5] == pytest.approx(1 / 3)
        assert curve[6] == pytest.approx(1 / 3)

    def test_envelope(self):
        bands = envelope([[1, 2, 3], [3, 2, 1]])
        assert bands["min"].tolist() == [1, 2, 1]
        assert bands["max"].tolist() == [3, 2, 3]
        assert bands["median"].tolist() == [2.0, 2.0, 2.0]

    def test_envelope_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            envelope([[1, 2], [1, 2, 3]])
