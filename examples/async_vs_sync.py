"""Asynchronous vs synchronous 3-Majority — Section 1.1's correspondence.

One synchronous round is "worth" n asynchronous ticks: [CMRSS25]'s
asynchronous bound of ~O(min(kn, n^1.5)) ticks suggested the synchronous
~O(min(k, sqrt n)) that this paper proves.  The correspondence is a
heuristic, not a theorem — this example measures how well it holds on
actual runs, k by k.

Both sides replicate batched: all RUNS asynchronous chains of a k-point
advance tick-by-tick in lockstep inside one
``AsyncBatchPopulationEngine``, and the synchronous side runs all RUNS
replicas as one ``(R, k)`` matrix in a ``BatchPopulationEngine``.

Run:  python examples/async_vs_sync.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AsyncBatchPopulationEngine,
    BatchPopulationEngine,
    ThreeMajority,
)
from repro.analysis import format_table
from repro.configs import balanced

N = 1_024
KS = (2, 4, 8, 16, 32)
RUNS = 5
SEED = 17


def main() -> None:
    rows = []
    for k in KS:
        async_engine = AsyncBatchPopulationEngine(
            ThreeMajority(), balanced(N, k), num_replicas=RUNS,
            seed=(SEED, k),
        )
        async_ticks = [
            r.metrics["ticks"]
            for r in async_engine.run_until_consensus(50_000_000)
            if r.converged
        ]
        sync_engine = BatchPopulationEngine(
            ThreeMajority(), balanced(N, k), num_replicas=RUNS,
            seed=(SEED, k, 1),
        )
        sync_rounds = [
            r.rounds
            for r in sync_engine.run_until_consensus(100_000)
            if r.converged
        ]
        ticks_median = float(np.median(async_ticks))
        sync_median = float(np.median(sync_rounds))
        rows.append(
            [
                k,
                ticks_median,
                round(ticks_median / N, 1),
                sync_median,
                round(ticks_median / N / sync_median, 2),
            ]
        )
    print(
        format_table(
            [
                "k",
                "async ticks",
                "ticks / n",
                "sync rounds",
                "(ticks/n) / sync",
            ],
            rows,
            title=f"Async vs sync 3-Majority (n={N:,}, {RUNS} runs/row)",
        )
    )
    print(
        "The last column is the async/sync correspondence constant; the\n"
        "paper explains why proving it rigorously required new machinery\n"
        "(synchronous jumps are unbounded, breaking [CMRSS25]'s D = 1/n\n"
        "Freedman argument — hence the Bernstein condition of Section 3.2)."
    )


if __name__ == "__main__":
    main()
