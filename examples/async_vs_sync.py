"""Asynchronous vs synchronous 3-Majority — Section 1.1's correspondence.

One synchronous round is "worth" n asynchronous ticks: [CMRSS25]'s
asynchronous bound of ~O(min(kn, n^1.5)) ticks suggested the synchronous
~O(min(k, sqrt n)) that this paper proves.  The correspondence is a
heuristic, not a theorem — this example measures how well it holds on
actual runs, k by k.

Run:  python examples/async_vs_sync.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    AsyncPopulationEngine,
    PopulationEngine,
    ThreeMajority,
    run_until_consensus,
)
from repro.analysis import format_table
from repro.configs import balanced
from repro.seeding import spawn_generators

N = 1_024
KS = (2, 4, 8, 16, 32)
RUNS = 5
SEED = 17


def main() -> None:
    rows = []
    for k in KS:
        async_ticks = []
        sync_rounds = []
        for idx, rng in enumerate(spawn_generators((SEED, k), RUNS)):
            engine = AsyncPopulationEngine(
                ThreeMajority(), balanced(N, k), seed=rng
            )
            ticks = engine.run_until_consensus(max_ticks=50_000_000)
            if ticks is not None:
                async_ticks.append(ticks)
            pop = PopulationEngine(
                ThreeMajority(), balanced(N, k), seed=(SEED, k, idx)
            )
            result = run_until_consensus(pop, max_rounds=100_000)
            if result.converged:
                sync_rounds.append(result.rounds)
        ticks_median = float(np.median(async_ticks))
        sync_median = float(np.median(sync_rounds))
        rows.append(
            [
                k,
                ticks_median,
                round(ticks_median / N, 1),
                sync_median,
                round(ticks_median / N / sync_median, 2),
            ]
        )
    print(
        format_table(
            [
                "k",
                "async ticks",
                "ticks / n",
                "sync rounds",
                "(ticks/n) / sync",
            ],
            rows,
            title=f"Async vs sync 3-Majority (n={N:,}, {RUNS} runs/row)",
        )
    )
    print(
        "The last column is the async/sync correspondence constant; the\n"
        "paper explains why proving it rigorously required new machinery\n"
        "(synchronous jumps are unbounded, breaking [CMRSS25]'s D = 1/n\n"
        "Freedman argument — hence the Bernstein condition of Section 3.2)."
    )


if __name__ == "__main__":
    main()
