"""Quickstart: the simulation service — submit, poll, fetch, share.

Spins up an in-process :class:`~repro.service.SimulationService`
(persistent SQLite job store, priority scheduler with per-client
quotas, a small worker fleet, the stdlib-HTTP submit/poll/result API)
and drives it exactly the way a remote tenant would, through
:class:`~repro.service.ServiceClient`:

* two clients submit overlapping consensus-time sweep grids,
* both jobs execute through the batch-first sweep path into one
  *shared* result cache — overlapping grid points are measured once,
* a re-submission of a finished grid completes near-instantly from
  the cache,
* an over-quota submission is rejected with a clear error.

Against a long-running server the only change is the URL: start one
with ``repro serve --db jobs.db --cache results --port 8642`` and point
``ServiceClient("http://127.0.0.1:8642")`` at it.

Run:  python examples/service_quickstart.py
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

from repro.errors import QuotaExceededError
from repro.service import QuotaPolicy, ServiceClient, SimulationService

GRID_A = {"n": [64, 128, 256], "k": [2]}
GRID_B = {"n": [128, 256, 512], "k": [2]}  # overlaps A on 128/256
NUM_RUNS = 3
SEED = 11


def submit_and_wait(client: ServiceClient, grid: dict) -> dict:
    job_id = client.submit(
        {
            "grid": grid,
            "fixed": {"dynamics": "3-majority"},
            "num_runs": NUM_RUNS,
            "seed": SEED,
        }
    )
    started = time.perf_counter()
    result = client.wait(job_id, timeout=120.0)
    wall = time.perf_counter() - started
    print(f"  [{client.client_id}] job {job_id} done in {wall:.2f}s")
    for point in result["points"]:
        print(
            f"    n={point['params']['n']:>4} k={point['params']['k']}"
            f"  median T = {point['median']}"
        )
    return result


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="repro-service-"))
    quota = QuotaPolicy(max_jobs=4, max_points=64, max_points_per_job=32)
    with SimulationService(
        workdir / "jobs.db",
        cache_dir=workdir / "cache",
        num_workers=2,
        quota=quota,
    ) as service:
        alice = ServiceClient(service.url, client_id="alice")
        bob = ServiceClient(service.url, client_id="bob")

        print("two tenants, overlapping grids, one shared cache:")
        submit_and_wait(alice, GRID_A)
        submit_and_wait(bob, GRID_B)

        print("re-submitting alice's grid (pure cache hit):")
        submit_and_wait(alice, GRID_A)

        print("over-quota submission is rejected:")
        try:
            alice.submit(
                {"grid": {"n": [64] * 33, "k": [2]}, "num_runs": 1}
            )
        except QuotaExceededError as exc:
            print(f"  rejected: {exc}")

        health = alice.health()
        print(
            f"healthz: status={health['status']} "
            f"queue_depth={health['queue_depth']} "
            f"workers={health['workers']['alive']}"
            f"/{health['workers']['configured']}"
        )


if __name__ == "__main__":
    main()
