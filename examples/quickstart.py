"""Quickstart: run 3-Majority and 2-Choices to consensus and watch gamma_t.

Demonstrates the core public API:

* build an initial configuration (``repro.configs``),
* construct the exact population engine (``PopulationEngine``),
* run to consensus with a trajectory recorder,
* compare the measured time against the paper's bound shapes
  (``repro.theory.bounds``).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    PopulationEngine,
    ThreeMajority,
    TwoChoices,
    TrajectoryRecorder,
    run_until_consensus,
)
from repro.analysis import format_table
from repro.configs import balanced
from repro.theory.bounds import upper_bound

N = 100_000
K = 100
SEED = 7


def run_one(dynamics) -> list:
    recorder = TrajectoryRecorder(record_gamma=True, record_alive=True)
    engine = PopulationEngine(dynamics, balanced(N, K), seed=SEED)
    result = run_until_consensus(
        engine, max_rounds=200_000, observers=(recorder,)
    )
    arrays = recorder.as_arrays()
    halfway = len(arrays["gamma"]) // 2
    return [
        dynamics.name,
        result.rounds,
        f"opinion {result.winner}",
        f"{arrays['gamma'][0]:.5f}",
        f"{arrays['gamma'][halfway]:.4f}",
        round(upper_bound(dynamics.name, N, K), 0),
        arrays["alive"][halfway],
    ]


def main() -> None:
    rows = [run_one(ThreeMajority()), run_one(TwoChoices())]
    print(
        format_table(
            [
                "dynamics",
                "T_cons",
                "winner",
                "gamma_0",
                "gamma mid-run",
                "paper bound",
                "alive mid-run",
            ],
            rows,
            title=(
                f"Consensus from the balanced configuration "
                f"(n={N:,}, k={K})"
            ),
        )
    )
    print(
        "Both dynamics start at gamma_0 = 1/k and ride the submartingale\n"
        "gamma_t upward (Theorem 2.2) until weak opinions die in bulk\n"
        "(Lemma 5.2); 3-Majority kills losers faster because a vertex\n"
        "abandons its own opinion every round, while 2-Choices only\n"
        "switches on an agreeing pair."
    )


if __name__ == "__main__":
    main()
