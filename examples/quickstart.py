"""Quickstart: run 3-Majority and 2-Choices to consensus and watch gamma_t.

Demonstrates the unified simulation API:

* describe a run declaratively with the fluent ``Simulation`` builder,
* attach a per-replica trajectory recorder,
* read the winner/consensus time off the returned ``ResultSet``,
* compare the measured time against the paper's bound shapes
  (``repro.theory.bounds``).

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import Simulation, ThreeMajority, TwoChoices, TrajectoryRecorder
from repro.analysis import format_table
from repro.theory.bounds import upper_bound

N = 100_000
K = 100
SEED = 7


def run_one(dynamics) -> list:
    results = (
        Simulation.of(dynamics)
        .n(N)
        .k(K)
        .balanced()
        .max_rounds(200_000)
        .observe_with(
            lambda: (
                TrajectoryRecorder(record_gamma=True, record_alive=True),
            )
        )
        .seed(SEED)
        .run()
    )
    result = results[0]
    recorder = result.metrics["observers"][0]
    arrays = recorder.as_arrays()
    halfway = len(arrays["gamma"]) // 2
    return [
        dynamics.name,
        result.rounds,
        f"opinion {result.winner}",
        f"{arrays['gamma'][0]:.5f}",
        f"{arrays['gamma'][halfway]:.4f}",
        round(upper_bound(dynamics.name, N, K), 0),
        arrays["alive"][halfway],
    ]


def main() -> None:
    rows = [run_one(ThreeMajority()), run_one(TwoChoices())]
    print(
        format_table(
            [
                "dynamics",
                "T_cons",
                "winner",
                "gamma_0",
                "gamma mid-run",
                "paper bound",
                "alive mid-run",
            ],
            rows,
            title=(
                f"Consensus from the balanced configuration "
                f"(n={N:,}, k={K})"
            ),
        )
    )
    print(
        "Both dynamics start at gamma_0 = 1/k and ride the submartingale\n"
        "gamma_t upward (Theorem 2.2) until weak opinions die in bulk\n"
        "(Lemma 5.2); 3-Majority kills losers faster because a vertex\n"
        "abandons its own opinion every round, while 2-Choices only\n"
        "switches on an agreeing pair."
    )


if __name__ == "__main__":
    main()
