"""The undecided-state dynamics: gossip vs population-protocol models.

Section 2.5 of the paper lists the consensus time of the k-opinion
undecided dynamics as an open question, in both the synchronous
(gossip) and asynchronous (population-protocol) models.  This example
measures both side by side:

* synchronous USD (`repro.core.UndecidedStateDynamics`) — each round
  every vertex samples one neighbour;
* the pairwise protocol model (`repro.protocols.UndecidedPairwise`) —
  one random ordered pair interacts per tick, reported in parallel time
  (interactions / n);
* [AAE07] approximate majority as the k = 2 reference point.

Run:  python examples/undecided_dynamics.py
"""

from __future__ import annotations

import numpy as np

from repro import PopulationEngine, run_until_consensus
from repro.analysis import format_table
from repro.configs import balanced
from repro.core import UndecidedStateDynamics, with_undecided_slot
from repro.protocols import (
    ApproximateMajority,
    PairwiseEngine,
    UndecidedPairwise,
)
from repro.seeding import spawn_generators

N = 2_048
KS = (2, 4, 8, 16, 32)
RUNS = 5
SEED = 23


def synchronous_rounds(k: int) -> float:
    times = []
    for rng in spawn_generators((SEED, 0, k), RUNS):
        engine = PopulationEngine(
            UndecidedStateDynamics(),
            with_undecided_slot(balanced(N, k)),
            seed=rng,
        )
        result = run_until_consensus(engine, max_rounds=500_000)
        if result.converged:
            times.append(result.rounds)
    return float(np.median(times)) if times else float("nan")


def pairwise_parallel_time(k: int) -> float:
    times = []
    counts = np.concatenate([balanced(N, k), [0]])
    for rng in spawn_generators((SEED, 1, k), RUNS):
        engine = PairwiseEngine(UndecidedPairwise(k), counts, seed=rng)
        result = engine.run_until_consensus(max_interactions=5_000 * N)
        if result is not None:
            times.append(result / N)
    return float(np.median(times)) if times else float("nan")


def main() -> None:
    rows = []
    for k in KS:
        rows.append(
            [k, synchronous_rounds(k), pairwise_parallel_time(k)]
        )
    am_times = []
    for rng in spawn_generators((SEED, 2), RUNS):
        engine = PairwiseEngine(
            ApproximateMajority(),
            ApproximateMajority.initial_counts(N // 2, N // 2),
            seed=rng,
        )
        result = engine.run_until_consensus(max_interactions=5_000 * N)
        if result is not None:
            am_times.append(result / N)
    print(
        format_table(
            [
                "k",
                "sync USD rounds",
                "pairwise USD parallel time",
            ],
            rows,
            title=f"Undecided-state dynamics, n={N:,} (balanced starts)",
        )
    )
    print(
        f"[AAE07] 3-state approximate majority at k=2: median "
        f"{np.median(am_times):.1f} parallel time.\n"
        "The open question (Section 2.5) is the tight k-dependence of\n"
        "these curves for arbitrary 2 <= k <= n; at this scale both\n"
        "models grow slowly with k (the additive log-n endgame still\n"
        "dominates), which is exactly why the asymptotic answer needs\n"
        "proof machinery rather than simulation."
    )


if __name__ == "__main__":
    main()
