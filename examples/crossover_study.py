"""The sqrt(n) crossover — the paper's headline (Theorem 1.1) at a glance.

Sweeps the number of opinions k at fixed n for both dynamics and prints
the measured consensus times next to the paper's bound shapes:

* 3-Majority tracks ``k log n`` until ``k ~ sqrt(n)``, then *flattens*
  at ``~sqrt(n)`` — adding more opinions beyond sqrt(n) costs nothing,
  because the norm-growth phase (Theorem 2.2) dominates;
* 2-Choices stays linear in k all the way to ``k = n`` — the regime no
  bound covered before this paper.

A saturating power-law fit extracts the crossover location from the
measured 3-Majority curve and compares it to sqrt(n).

Run:  python examples/crossover_study.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import Simulation, ThreeMajority, TwoChoices
from repro.analysis import (
    fit_power_law,
    fit_saturating_power_law,
    format_table,
)

N = 65_536  # sqrt(n) = 256
KS = (4, 16, 64, 256, 1024, 4096)
RUNS = 3
SEED = 11


def median_time(dynamics, k: int, seed) -> float:
    # The batch engine advances all RUNS replicas in one vectorised
    # loop — this sweep is exactly the workload it exists for.
    results = (
        Simulation.of(dynamics)
        .n(N)
        .k(k)
        .balanced()
        .replicas(RUNS)
        .batch()
        .max_rounds(500_000)
        .seed(seed)
        .run()
    )
    return results.median


def main() -> None:
    sqrt_n = math.sqrt(N)
    rows = []
    series = {"3-majority": [], "2-choices": []}
    for k in KS:
        t3 = median_time(ThreeMajority(), k, seed=(SEED, k, 0))
        t2 = median_time(TwoChoices(), k, seed=(SEED, k, 1))
        series["3-majority"].append(t3)
        series["2-choices"].append(t2)
        rows.append(
            [
                k,
                t3,
                t2,
                round(min(k, sqrt_n), 0),
                k,
                round(t2 / t3, 1),
            ]
        )
    print(
        format_table(
            [
                "k",
                "3-majority T",
                "2-choices T",
                "min(k, sqrt n)",
                "k (2-choices shape)",
                "2c/3m",
            ],
            rows,
            title=f"Crossover study, n = {N:,} (sqrt n = {sqrt_n:.0f})",
        )
    )
    fit = fit_saturating_power_law(
        np.asarray(KS, float), np.asarray(series["3-majority"])
    )
    linear = fit_power_law(
        np.asarray(KS, float), np.asarray(series["2-choices"])
    )
    print(
        f"3-Majority: rising exponent {fit.exponent:.2f}, plateau at "
        f"{fit.plateau:.0f} rounds,\n  measured crossover k ~ "
        f"{fit.crossover:.0f} vs sqrt(n) = {sqrt_n:.0f} (Theorem 1.1).\n"
        f"2-Choices: global exponent {linear.exponent:.2f} "
        f"(r^2 = {linear.r_squared:.3f}) — linear in k, no plateau."
    )


if __name__ == "__main__":
    main()
