"""Plurality voting in a sensor swarm — Theorem 2.6 in action.

Scenario: 50,000 sensors each prefer one of 40 firmware channels, with a
slight real preference for channel 0.  The swarm must converge on *the
plurality choice* using only constant-size messages: each sensor polls
three random peers per round (3-Majority).

Theorem 2.6 says the plurality opinion wins w.h.p. as soon as its margin
over every rival exceeds ``C sqrt(log n / n)`` — far below what a human
would call a landslide.  This example sweeps the true margin around the
threshold and reports how often the network elects channel 0, plus how
long elections take.

Run:  python examples/plurality_voting.py
"""

from __future__ import annotations

import math

from repro import PopulationEngine, ThreeMajority, run_until_consensus
from repro.analysis import format_table, success_probability, summarize
from repro.configs import biased
from repro.engine import replicate
from repro.theory.bounds import plurality_margin

N = 50_000
K = 40
ELECTIONS_PER_MARGIN = 30
SEED = 2026


def hold_elections(margin: float, seed) -> list:
    counts = biased(N, K, margin)

    def one_election(rng):
        engine = PopulationEngine(ThreeMajority(), counts, seed=rng)
        return run_until_consensus(engine, max_rounds=50_000)

    return replicate(one_election, ELECTIONS_PER_MARGIN, seed=seed)


def main() -> None:
    threshold = plurality_margin("3-majority", N)
    rows = []
    for mult in (0.0, 0.5, 1.0, 2.0, 5.0, 10.0):
        margin = mult * threshold
        results = hold_elections(margin, seed=(SEED, int(mult * 10)))
        wins = success_probability(
            results, lambda r: r.converged and r.winner == 0
        )
        times = summarize([r.rounds for r in results if r.converged])
        rows.append(
            [
                f"{mult:.1f}x",
                f"{margin * N:.0f} votes",
                f"{wins['probability']:.2f}",
                f"[{wins['low']:.2f}, {wins['high']:.2f}]",
                times.median,
            ]
        )
    print(
        format_table(
            [
                "margin / threshold",
                "lead of channel 0",
                "P[channel 0 wins]",
                "95% CI",
                "median rounds",
            ],
            rows,
            title=(
                f"Sensor-swarm elections (n={N:,}, k={K}; threshold "
                f"margin = {threshold:.4f} = "
                f"{threshold * N:.0f} votes; "
                f"{ELECTIONS_PER_MARGIN} elections per row)"
            ),
        )
    )
    print(
        "Theorem 2.6's margin is ~sqrt(log n / n): with n = 50k the\n"
        f"plurality leader needs only ~{threshold * N:.0f} extra "
        "supporters out of 50,000\n"
        "for a near-certain win — and elections finish in "
        f"O(log n / gamma_0) ~ {math.log(N) * K:.0f} rounds."
    )


if __name__ == "__main__":
    main()
