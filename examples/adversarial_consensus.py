"""Consensus under attack — the F-bounded adversary of [GL18]/Section 2.5.

Scenario: a fleet of 16,384 replicas runs 3-Majority to agree on a
configuration epoch while an attacker reassigns up to F replicas per
round, always propping up the strongest challenger (the optimal stalling
strategy against bias amplification).

[GL18] proves tolerance of ``F = O(sqrt(n) / k^{1.5})``; this example
sweeps F through that scale and reports when agreement survives.  Note
that with any F >= 1 the attacker can keep a token minority alive
forever, so "agreement" means the leader holds all but 4F replicas.

Adversaries are first-class in the unified simulation API: each sweep
point below is one fluent ``Simulation`` with ``.adversary(...)``, run
on the batch engine so all RUNS attacked chains advance as a single
vectorised count matrix (the legacy hand-wired
``AdversarialPopulationEngine`` loop this replaces was RUNS sequential
Python round-loops).

Run:  python examples/adversarial_consensus.py
"""

from __future__ import annotations

import math

import numpy as np

from repro import Simulation
from repro.adversary import near_consensus_target
from repro.analysis import format_table

N = 16_384
K = 8
RUNS = 10
WINDOW = 4_000
SEED = 99


def survive_attack(budget: int, seed) -> tuple[float, float]:
    results = (
        Simulation.of("3-majority")
        .n(N)
        .k(K)
        .replicas(RUNS)
        .batch()
        .adversary("runner-up", budget)
        .stop_when(near_consensus_target(N, budget))
        .max_rounds(WINDOW)
        .seed(seed)
        .run()
    )
    fraction = results.converged_fraction
    median = (
        float(np.nanmedian(results.consensus_times))
        if results.num_converged
        else math.nan
    )
    return fraction, median


def main() -> None:
    gl18_scale = math.sqrt(N) / K**1.5
    rows = []
    for mult in (0.0, 0.5, 1.0, 2.0, 8.0, 32.0, 128.0):
        budget = int(round(mult * gl18_scale))
        fraction, median = survive_attack(budget, seed=(SEED, budget))
        rows.append(
            [
                f"{mult:g}x",
                budget,
                f"{fraction:.2f}",
                median,
            ]
        )
    print(
        format_table(
            [
                "F / (sqrt n / k^1.5)",
                "F (replicas/round)",
                "P[agreement]",
                "median rounds",
            ],
            rows,
            title=(
                f"3-Majority vs SupportRunnerUp adversary "
                f"(n={N:,}, k={K}; [GL18] scale = {gl18_scale:.1f})"
            ),
        )
    )
    print(
        "Small budgets merely slow the bias amplification of Lemmas\n"
        "5.4-5.10; once F outruns the ~gamma * delta * n per-round drift\n"
        "the adversary resets the leader's gap every round and agreement\n"
        "never forms — an empirical tolerance threshold in the [GL18] "
        "regime."
    )


if __name__ == "__main__":
    main()
