"""Paper-vs-measured comparison records.

Each experiment emits :class:`ComparisonRecord` objects stating what the
paper claims, what was measured, and whether the measured shape matches.
EXPERIMENTS.md is generated from these records, so the reproduction's
bookkeeping lives next to the code that produced it.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComparisonRecord", "render_comparisons_markdown"]


@dataclass(frozen=True)
class ComparisonRecord:
    """One paper-claim-vs-measurement line.

    ``verdict`` is one of ``"match"``, ``"partial"``, ``"mismatch"`` —
    assigned by the experiment's own shape test, never by hand.
    """

    experiment_id: str
    claim: str
    measured: str
    verdict: str

    VERDICTS = ("match", "partial", "mismatch")

    def __post_init__(self) -> None:
        if self.verdict not in self.VERDICTS:
            raise ValueError(
                f"verdict must be one of {self.VERDICTS}, "
                f"got {self.verdict!r}"
            )


def render_comparisons_markdown(records) -> str:
    """Render records as a GitHub-flavoured markdown table."""
    lines = [
        "| experiment | paper claim | measured | verdict |",
        "|---|---|---|---|",
    ]
    for rec in records:
        lines.append(
            f"| {rec.experiment_id} | {rec.claim} | {rec.measured} "
            f"| {rec.verdict} |"
        )
    return "\n".join(lines) + "\n"
