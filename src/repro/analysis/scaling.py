"""Scaling-law fits for consensus-time curves.

Theorem 1.1's claims are about *shapes*: 3-Majority's consensus time
grows like ``k`` until ``k ~ sqrt(n)`` and then flattens, while
2-Choices keeps growing linearly.  The fitters here extract those shapes
from measured ``(k, T)`` series:

* :func:`fit_power_law` — least-squares exponent on log-log axes;
* :func:`fit_saturating_power_law` — the ``min(a k^b, c)`` shape of
  Figure 1(b)'s 3-Majority curve, with the crossover location;
* :func:`split_exponents` — exponents on the lower/upper halves of a
  sweep, a robust crossover detector used by the shape assertions in the
  benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError, InternalError

__all__ = [
    "PowerLawFit",
    "SaturatingFit",
    "fit_power_law",
    "fit_saturating_power_law",
    "split_exponents",
]


@dataclass(frozen=True)
class PowerLawFit:
    """``y ~ amplitude * x^exponent`` fitted on log-log axes."""

    exponent: float
    amplitude: float
    r_squared: float

    def predict(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return self.amplitude * x**self.exponent


def _validated_xy(x, y) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape or x.ndim != 1:
        raise ConfigurationError("x and y must be 1-D arrays of equal size")
    if x.size < 2:
        raise ConfigurationError("need at least two points to fit")
    if (x <= 0).any() or (y <= 0).any():
        raise ConfigurationError("power-law fits need positive data")
    return x, y


def fit_power_law(x, y) -> PowerLawFit:
    """Ordinary least squares of ``log y`` on ``log x``."""
    x, y = _validated_xy(x, y)
    lx, ly = np.log(x), np.log(y)
    slope, intercept = np.polyfit(lx, ly, 1)
    predicted = slope * lx + intercept
    ss_res = float(np.sum((ly - predicted) ** 2))
    ss_tot = float(np.sum((ly - ly.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return PowerLawFit(
        exponent=float(slope),
        amplitude=float(np.exp(intercept)),
        r_squared=r2,
    )


@dataclass(frozen=True)
class SaturatingFit:
    """``y ~ min(amplitude * x^exponent, plateau)`` with crossover.

    ``crossover`` is the x at which the rising branch meets the plateau;
    ``x`` values beyond it are predicted flat.
    """

    exponent: float
    amplitude: float
    plateau: float
    crossover: float
    sse: float

    def predict(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=np.float64)
        return np.minimum(self.amplitude * x**self.exponent, self.plateau)


def fit_saturating_power_law(x, y) -> SaturatingFit:
    """Fit ``min(a x^b, c)`` by scanning the breakpoint.

    For each candidate split position the rising branch is fitted on the
    left part and the plateau as the mean of the right part (in log
    space); the split with the smallest total squared error on log axes
    wins.  The all-rising and all-flat extremes are included, so the
    fitter degrades gracefully on data with no crossover.
    """
    x, y = _validated_xy(x, y)
    order = np.argsort(x)
    x, y = x[order], y[order]
    lx, ly = np.log(x), np.log(y)
    best: SaturatingFit | None = None
    m = x.size
    for split in range(2, m + 1):
        # Rising branch on points [0, split); plateau on [split, m).
        slope, intercept = np.polyfit(lx[:split], ly[:split], 1)
        if split < m:
            plateau_log = float(np.mean(ly[split:]))
        else:
            plateau_log = float(ly[-1] + 10.0)  # effectively no plateau
        predicted = np.minimum(slope * lx + intercept, plateau_log)
        sse = float(np.sum((ly - predicted) ** 2))
        if best is None or sse < best.sse:
            amplitude = float(np.exp(intercept))
            plateau = float(np.exp(plateau_log))
            if slope > 0:
                crossover = float((plateau / amplitude) ** (1.0 / slope))
            else:
                crossover = float("inf")
            best = SaturatingFit(
                exponent=float(slope),
                amplitude=amplitude,
                plateau=plateau,
                crossover=crossover,
                sse=sse,
            )
    if best is None:  # m >= 2 guarantees at least one candidate
        raise InternalError(
            "saturating fit produced no candidate split despite "
            f"{m} points"
        )
    return best


def split_exponents(x, y) -> tuple[float, float]:
    """Power-law exponents on the lower and upper halves of the sweep.

    A cheap, assumption-light crossover detector: for 3-Majority beyond
    ``sqrt(n)`` the upper-half exponent collapses towards 0 while the
    lower half stays near 1; for 2-Choices both stay near 1.
    """
    x, y = _validated_xy(x, y)
    order = np.argsort(x)
    x, y = x[order], y[order]
    half = x.size // 2
    if half < 2 or x.size - half < 2:
        raise ConfigurationError(
            "need at least 4 points for split exponents"
        )
    low = fit_power_law(x[:half], y[:half])
    high = fit_power_law(x[half:], y[half:])
    return low.exponent, high.exponent
