"""Statistical analysis of simulation output."""

from repro.analysis.reporting import render_experiments_markdown  # noqa: F401
from repro.analysis.comparison import (
    ComparisonRecord,
    render_comparisons_markdown,
)
from repro.analysis.estimators import (
    SummaryStats,
    bootstrap_ci,
    consensus_times,
    success_probability,
    summarize,
    wilson_interval,
)
from repro.analysis.scaling import (
    PowerLawFit,
    SaturatingFit,
    fit_power_law,
    fit_saturating_power_law,
    split_exponents,
)
from repro.analysis.tables import format_table, write_csv
from repro.analysis.trajectories import (
    envelope,
    first_hitting_time,
    survival_curve,
)

__all__ = [
    "ComparisonRecord",
    "PowerLawFit",
    "SaturatingFit",
    "SummaryStats",
    "bootstrap_ci",
    "consensus_times",
    "envelope",
    "first_hitting_time",
    "fit_power_law",
    "fit_saturating_power_law",
    "format_table",
    "render_comparisons_markdown",
    "split_exponents",
    "success_probability",
    "summarize",
    "survival_curve",
    "wilson_interval",
    "write_csv",
]
