"""Trajectory-level utilities: hitting times, survival, envelopes.

These operate on recorded per-round series (see
:class:`~repro.engine.callbacks.TrajectoryRecorder`) and back the
norm-growth (Theorem 2.2) and weak-opinion-vanishing (Lemma 5.2)
experiments.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "envelope",
    "first_hitting_time",
    "survival_curve",
]


def first_hitting_time(
    series: np.ndarray,
    threshold: float,
    direction: str = "up",
) -> int | None:
    """First index where the series crosses ``threshold``.

    ``direction="up"`` fires at ``series[t] >= threshold``;
    ``"down"`` at ``series[t] <= threshold``.  Returns ``None`` if the
    series never crosses.
    """
    series = np.asarray(series, dtype=np.float64)
    if direction == "up":
        hits = np.flatnonzero(series >= threshold)
    elif direction == "down":
        hits = np.flatnonzero(series <= threshold)
    else:
        raise ConfigurationError(
            f"direction must be 'up' or 'down', got {direction!r}"
        )
    return int(hits[0]) if hits.size else None


def survival_curve(times, horizon: int) -> np.ndarray:
    """Fraction of runs still *not* finished at each round ``0..horizon``.

    ``times`` holds per-run completion rounds with ``None`` (or NaN) for
    runs that never finished; those count as surviving throughout.
    """
    finished = np.asarray(
        [np.inf if t is None else float(t) for t in times],
        dtype=np.float64,
    )
    finished = np.where(np.isnan(finished), np.inf, finished)
    grid = np.arange(horizon + 1, dtype=np.float64)
    return (finished[None, :] > grid[:, None]).mean(axis=1)


def envelope(series_list) -> dict[str, np.ndarray]:
    """Pointwise min/median/max over same-length series.

    Used to band gamma_t trajectories across replicas; raises when the
    series differ in length (align them on a fixed horizon first).
    """
    arrays = [np.asarray(s, dtype=np.float64) for s in series_list]
    if not arrays:
        raise ConfigurationError("need at least one series")
    length = arrays[0].size
    if any(a.size != length for a in arrays):
        raise ConfigurationError(
            "all series must have equal length for an envelope"
        )
    stacked = np.vstack(arrays)
    return {
        "min": stacked.min(axis=0),
        "median": np.median(stacked, axis=0),
        "max": stacked.max(axis=0),
    }
