"""Statistical summaries of Monte-Carlo run results.

Consensus times are heavy-tailed near phase boundaries, so the default
point estimate is the median with bootstrap confidence intervals; success
probabilities (plurality consensus, Theorem 2.6) use Wilson score
intervals, which behave sensibly at 0 and 1.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.engine.runner import RunResult
from repro.seeding import RandomState, as_generator
from repro.errors import ConfigurationError

__all__ = [
    "SummaryStats",
    "bootstrap_ci",
    "consensus_times",
    "success_probability",
    "summarize",
    "wilson_interval",
]


@dataclass(frozen=True)
class SummaryStats:
    """Five-number-plus summary of a sample."""

    count: int
    mean: float
    std: float
    median: float
    q25: float
    q75: float
    minimum: float
    maximum: float

    @classmethod
    def from_sample(cls, data: np.ndarray) -> "SummaryStats":
        data = np.asarray(data, dtype=np.float64)
        if data.size == 0:
            raise ConfigurationError("cannot summarise an empty sample")
        return cls(
            count=int(data.size),
            mean=float(np.mean(data)),
            std=float(np.std(data, ddof=1)) if data.size > 1 else 0.0,
            median=float(np.median(data)),
            q25=float(np.quantile(data, 0.25)),
            q75=float(np.quantile(data, 0.75)),
            minimum=float(np.min(data)),
            maximum=float(np.max(data)),
        )


def summarize(data) -> SummaryStats:
    """Shorthand for :meth:`SummaryStats.from_sample`."""
    return SummaryStats.from_sample(np.asarray(data, dtype=np.float64))


def consensus_times(
    results: Sequence[RunResult], require_all: bool = False
) -> np.ndarray:
    """Extract consensus times from converged runs.

    Non-converged runs are dropped (with ``require_all=True`` they raise
    instead — use when a censored time would silently bias the summary).
    """
    times = [r.rounds for r in results if r.converged]
    if require_all and len(times) != len(results):
        missing = len(results) - len(times)
        raise ConfigurationError(
            f"{missing} of {len(results)} runs did not converge; "
            "increase max_rounds or pass require_all=False"
        )
    return np.asarray(times, dtype=np.float64)


def bootstrap_ci(
    data,
    statistic: Callable[[np.ndarray], float] = np.median,
    confidence: float = 0.95,
    num_resamples: int = 2000,
    seed: RandomState = None,
) -> tuple[float, float]:
    """Percentile bootstrap confidence interval for ``statistic``."""
    data = np.asarray(data, dtype=np.float64)
    if data.size == 0:
        raise ConfigurationError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ConfigurationError(
            f"confidence must be in (0, 1), got {confidence}"
        )
    rng = as_generator(seed)
    indices = rng.integers(0, data.size, size=(num_resamples, data.size))
    stats = np.asarray(
        [statistic(data[row]) for row in indices], dtype=np.float64
    )
    tail = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(stats, tail)),
        float(np.quantile(stats, 1.0 - tail)),
    )


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if not 0 <= successes <= trials:
        raise ConfigurationError(
            f"successes must be in [0, trials], got {successes}/{trials}"
        )
    from scipy.stats import norm

    z = float(norm.ppf(1.0 - (1.0 - confidence) / 2.0))
    p = successes / trials
    denom = 1.0 + z * z / trials
    centre = (p + z * z / (2 * trials)) / denom
    half = (
        z
        * np.sqrt(p * (1 - p) / trials + z * z / (4 * trials * trials))
        / denom
    )
    return (max(0.0, centre - half), min(1.0, centre + half))


def success_probability(
    results: Sequence[RunResult],
    predicate: Callable[[RunResult], bool],
    confidence: float = 0.95,
) -> dict:
    """Empirical probability of ``predicate`` with a Wilson interval.

    Returns ``{"probability", "low", "high", "successes", "trials"}``.
    Typical predicate: ``lambda r: r.converged and r.winner == 0`` for
    plurality consensus on opinion 0.
    """
    trials = len(results)
    successes = sum(1 for r in results if predicate(r))
    low, high = wilson_interval(successes, trials, confidence)
    return {
        "probability": successes / trials,
        "low": low,
        "high": high,
        "successes": successes,
        "trials": trials,
    }
