"""Text-table and CSV rendering for experiment output.

No plotting dependency is assumed; every experiment renders its
rows/series the way the paper's tables read, as aligned ASCII, and can
dump CSV for downstream tooling.
"""

from __future__ import annotations

import csv
import io
from collections.abc import Sequence
from pathlib import Path

__all__ = ["format_table", "write_csv"]


def _format_cell(value) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    title: str | None = None,
) -> str:
    """Render rows as an aligned, pipe-separated ASCII table."""
    str_rows = [[_format_cell(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        for pos, cell in enumerate(row):
            widths[pos] = max(widths[pos], len(cell))
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header_line = " | ".join(
        h.ljust(widths[pos]) for pos, h in enumerate(headers)
    )
    out.write(header_line + "\n")
    out.write("-+-".join("-" * w for w in widths) + "\n")
    for row in str_rows:
        out.write(
            " | ".join(
                cell.ljust(widths[pos]) for pos, cell in enumerate(row)
            )
            + "\n"
        )
    return out.getvalue()


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Sequence[Sequence],
) -> Path:
    """Write rows to ``path`` as CSV; parent directories are created."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return path
