"""EXPERIMENTS.md generation from experiment results.

:func:`render_experiments_markdown` turns a list of
:class:`~repro.experiments.base.ExperimentResult` objects into the
paper-vs-measured report this repository ships as EXPERIMENTS.md, so
the report can always be regenerated from scratch:

    python -m repro report --preset paper --output EXPERIMENTS.md
"""

from __future__ import annotations

import platform
from datetime import date

from repro.analysis.comparison import render_comparisons_markdown

__all__ = ["render_experiments_markdown"]

_HEADER = """# EXPERIMENTS — paper vs. measured

Reproduction results for *3-Majority and 2-Choices with Many Opinions*
(Shimizu & Shiraga, PODC 2025).  Regenerate this file with:

    python -m repro report --preset {preset} --output EXPERIMENTS.md

Every experiment prints the series its paper artefact reports and a set
of machine-checked *shape verdicts* (who wins, by what factor, where
crossovers fall).  ``match`` means the measured shape agrees with the
paper's claim; ``partial`` means agreement with caveats at this scale
(typically fat polylog factors at laptop-size n); ``mismatch`` would
flag a reproduction failure.

Environment: Python {python}, preset ``{preset}``, generated {today}.

## Verdict summary

{summary}

"""


def render_experiments_markdown(
    results,
    preset: str,
    elapsed: dict[str, float] | None = None,
) -> str:
    """Render the full EXPERIMENTS.md body for a completed sweep."""
    elapsed = elapsed or {}
    summary_rows = []
    for result in results:
        verdicts = [c.verdict for c in result.comparisons]
        state = (
            "match"
            if verdicts and all(v == "match" for v in verdicts)
            else ("mismatch" if "mismatch" in verdicts else "partial")
        )
        summary_rows.append(
            f"| {result.experiment_id} | {result.title} | "
            f"{verdicts.count('match')}/{len(verdicts)} match | {state} |"
        )
    summary = "\n".join(
        [
            "| experiment | artefact | verdicts | overall |",
            "|---|---|---|---|",
            *summary_rows,
        ]
    )
    parts = [
        _HEADER.format(
            preset=preset,
            python=platform.python_version(),
            today=date.today().isoformat(),
            summary=summary,
        )
    ]
    for result in results:
        parts.append(f"## {result.experiment_id} — {result.title}\n")
        timing = elapsed.get(result.experiment_id)
        if timing is not None:
            parts.append(f"*Wall-clock: {timing:.1f}s.*\n")
        parts.append("```")
        parts.append(result.table().rstrip())
        parts.append("```\n")
        if result.notes:
            parts.append(f"{result.notes}\n")
        if result.comparisons:
            parts.append(
                render_comparisons_markdown(result.comparisons)
            )
        parts.append("")
    return "\n".join(parts)
