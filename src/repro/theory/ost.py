"""Optional-stopping hitting-time bounds (Lemmas 5.7, 5.13 and 5.11).

Three executable pieces of the paper's endgame:

* :func:`bias_hitting_time_bound` — Lemma 5.7: for two non-weak
  opinions, the squared bias has additive drift at least ``s_{5.7}`` per
  round, so the optional stopping theorem gives
  ``E[tau] <= E[delta_tau^2] / s_{5.7}``.  We expose both the drift
  floor ``s_{5.7}`` and the resulting bound for a cap
  ``|delta_tau| <= x_delta``.
* :func:`gamma_hitting_time_bound` — Lemma 5.13: the norm gamma_t has
  additive drift at least ``R_gamma`` while ``gamma_t <= x_gamma``, so
  ``E[tau^+_gamma] <= E[gamma_tau] / R_gamma``; with the Lemma 5.14
  overshoot control this is how Theorem 2.2's horizons arise.
* :func:`drift_doubling_rounds` — Lemma 5.11's conclusion shape: with
  an additive kick to ``x0`` at probability ``C1`` per window and
  multiplicative growth ``(1 + c)`` per window after that, reaching
  ``x*`` takes ``O(T (log(1/eps) + log(x*/x0)))`` windows; the function
  returns the window count for given constants.

All three are *upper-bound calculators*: the tests check them against
simulated chains (the measured hitting times must not exceed the
bounds, up to Monte-Carlo noise in estimating the right-hand sides).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError
from repro.theory.drift import var_delta_lower_bound

__all__ = [
    "bias_drift_floor",
    "bias_hitting_time_bound",
    "drift_doubling_rounds",
    "gamma_drift_floor",
    "gamma_hitting_time_bound",
]


def bias_drift_floor(
    alpha: np.ndarray,
    i: int,
    j: int,
    n: int,
    dynamics: str,
    c_weak: float = 0.1,
    c_down_alpha: float = 0.1,
) -> float:
    """The additive drift ``s_{5.7}`` of the squared bias (Lemma 5.7).

    3-Majority: ``C_{4.6}^3 (1 - c_down) max(alpha_i, alpha_j) / n``;
    2-Choices:  ``C_{4.6}^2 (1 - c_down)^2 max(alpha)^2 / n``
    with ``C_{4.6} = 1 - 1/sqrt(2 (1 - c_weak))``.

    Valid while both opinions stay non-weak and within their lower band;
    the caller is responsible for those conditions (as in the paper).
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    c46 = 1.0 - 1.0 / math.sqrt(2.0 * (1.0 - c_weak))
    top = float(max(alpha[i], alpha[j]))
    if dynamics == "3-majority":
        return c46**3 * (1.0 - c_down_alpha) * top / n
    if dynamics == "2-choices":
        return c46**2 * (1.0 - c_down_alpha) ** 2 * top**2 / n
    raise ConfigurationError(
        f"dynamics must be '3-majority' or '2-choices', got {dynamics!r}"
    )


def bias_hitting_time_bound(
    alpha: np.ndarray,
    i: int,
    j: int,
    n: int,
    dynamics: str,
    x_delta: float,
    overshoot_factor: float = 16.0,
    c_weak: float = 0.1,
) -> float:
    """Lemma 5.7 + 5.8: ``E[tau] <= overshoot * x_delta^2 / s_{5.7}``.

    ``tau`` is the first time the bias magnitude reaches ``x_delta`` (or
    one of the opinions leaves its band / goes weak).  Lemma 5.8 bounds
    the overshoot ``E[delta_tau^2] <= 16 x_delta^2 + s E[tau]/2``, which
    after rearranging gives ``E[tau] <= 32 x_delta^2 / s``; the default
    ``overshoot_factor = 16`` with the factor-2 rearrangement folded in
    reproduces that 32.
    """
    if x_delta <= 0:
        raise ConfigurationError(
            f"x_delta must be positive, got {x_delta}"
        )
    floor = bias_drift_floor(alpha, i, j, n, dynamics, c_weak=c_weak)
    if floor <= 0:
        return math.inf
    return 2.0 * overshoot_factor * x_delta**2 / floor


def gamma_drift_floor(n: int, dynamics: str, epsilon: float = 0.5) -> float:
    """Lemma 5.13's ``R_gamma``: per-round drift while gamma <= 1 - eps.

    3-Majority: ``epsilon / n``;  2-Choices: ``epsilon^2 / (3 n^2)``.
    """
    if not 0.0 < epsilon < 1.0:
        raise ConfigurationError(
            f"epsilon must be in (0, 1), got {epsilon}"
        )
    if dynamics == "3-majority":
        return epsilon / n
    if dynamics == "2-choices":
        return epsilon * epsilon / (3.0 * n * n)
    raise ConfigurationError(
        f"dynamics must be '3-majority' or '2-choices', got {dynamics!r}"
    )


def gamma_hitting_time_bound(
    n: int,
    dynamics: str,
    x_gamma: float,
    overshoot_factor: float = 16.0 * math.e**2,
    epsilon: float = 0.5,
) -> float:
    """Lemmas 5.13 + 5.14: expected rounds for gamma to reach x_gamma.

    ``E[tau^+_gamma] <= E[gamma_tau] / R_gamma`` with the Lemma 5.14
    overshoot ``E[gamma_tau] <= 16 e^2 (x_gamma + polylog/n)``; constants
    are folded into ``overshoot_factor`` (paper Lemma 5.12 then applies
    Markov).  This is the executable form of Theorem 2.2's horizons:
    ``O(x_gamma n)`` for 3-Majority and ``O(x_gamma n^2)`` for 2-Choices.
    """
    if not 0.0 < x_gamma <= 1.0 - epsilon:
        raise ConfigurationError(
            f"x_gamma must lie in (0, 1 - epsilon], got {x_gamma}"
        )
    floor = gamma_drift_floor(n, dynamics, epsilon)
    return overshoot_factor * x_gamma / floor


def drift_doubling_rounds(
    window: float,
    x_start: float,
    x_target: float,
    failure_probability: float,
    growth_factor: float = 1.05,
    constant: float = 4.0,
) -> float:
    """Lemma 5.11's horizon: windows to push phi from x_start to x_target.

    With an Omega(1)-probability additive kick to ``x_start`` and
    ``(1 + c)`` multiplicative growth per window, the target is reached
    within ``C * window * (log(1/eps) + log(x_target / x_start))``
    windows with probability ``1 - eps``.
    """
    if window <= 0 or x_start <= 0 or x_target <= x_start:
        raise ConfigurationError(
            "need window > 0 and 0 < x_start < x_target"
        )
    if not 0.0 < failure_probability < 1.0:
        raise ConfigurationError(
            "failure_probability must be in (0, 1)"
        )
    if growth_factor <= 1.0:
        raise ConfigurationError("growth_factor must exceed 1")
    doublings = math.log(x_target / x_start) / math.log(growth_factor)
    retries = math.log(1.0 / failure_probability)
    return constant * window * (retries + doublings)


def empirical_bias_drift(
    alpha: np.ndarray, i: int, j: int, n: int, dynamics: str
) -> float:
    """Reference implementation of the Lemma 4.6(ii) variance floor.

    Thin wrapper over :func:`repro.theory.drift.var_delta_lower_bound`
    kept here so the optional-stopping tests can cross-check the drift
    floor against the variance bound it derives from
    (``s_{5.7} <= Var[delta]`` for non-weak in-band opinions).
    """
    return var_delta_lower_bound(alpha, i, j, n, dynamics)
