"""The Bernstein condition (paper Definition 3.3 and Lemma 3.4).

A random variable ``X`` satisfies the *(D, s)-Bernstein condition* when
its moment generating function obeys

    E[exp(lambda X)] <= exp( (lambda^2 s / 2) / (1 - |lambda| D / 3) )

for all ``|lambda| D < 3`` (one-sided: ``lambda >= 0`` only).  It relaxes
the bounded-jump hypothesis of Freedman's inequality, which is the key
move that lets the paper handle *synchronous* dynamics where the one-step
change of ``alpha_t(i)`` can be as large as 1.

This module provides:

* :class:`BernsteinParams` — a ``(D, s)`` pair with the closure algebra
  of Lemma 3.4 (scaling, weakening, summation over independent or
  negatively associated families) as methods, so the paper's bookkeeping
  is executable;
* :func:`mgf_bound` — the right-hand side above;
* :func:`empirical_mgf_check` — a Monte-Carlo verifier used by the tests
  to certify the condition on actual dynamics increments (Lemma 4.2);
* the concrete parameter constructors for the paper's quantities
  (:func:`alpha_params`, :func:`delta_params`, :func:`gamma_params`)
  implementing Lemma 4.2 items (i)-(iii).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.theory.drift import var_alpha_upper_bound, var_delta_upper_bound
from repro.theory.quantities import gamma_of_alpha

__all__ = [
    "BernsteinParams",
    "alpha_params",
    "delta_params",
    "empirical_mgf_check",
    "gamma_params",
    "log_mgf_bound",
    "mgf_bound",
]


@dataclass(frozen=True)
class BernsteinParams:
    """A ``(D, s)`` pair for the (one-sided) Bernstein condition.

    ``D`` controls the tail heaviness (effective jump scale) and ``s``
    the variance proxy.  The methods implement the closure properties of
    Lemma 3.4; each returns a new instance.
    """

    D: float
    s: float
    one_sided: bool = False

    def __post_init__(self) -> None:
        if self.D < 0 or self.s < 0:
            raise ConfigurationError(
                f"Bernstein parameters must be non-negative, got "
                f"D={self.D}, s={self.s}"
            )

    def weaken(self, D: float, s: float) -> "BernsteinParams":
        """Lemma 3.4(ii): any ``D' >= D``, ``s' >= s`` also works."""
        if D < self.D or s < self.s:
            raise ConfigurationError(
                "weaken() only allows increasing D and s "
                f"(have D={self.D}, s={self.s}; asked D={D}, s={s})"
            )
        return BernsteinParams(D, s, self.one_sided)

    def scale(self, a: float) -> "BernsteinParams":
        """Lemma 3.4(iii): ``aX`` satisfies ``(|a| D, a^2 s)``.

        For one-sided parameters only non-negative ``a`` preserves the
        side, matching the paper's statement.
        """
        if self.one_sided and a < 0:
            raise ConfigurationError(
                "scaling a one-sided Bernstein condition by a negative "
                "factor flips the side; the paper's Lemma 3.4(iii) "
                "requires a >= 0"
            )
        return BernsteinParams(
            abs(a) * self.D, a * a * self.s, self.one_sided
        )

    def add_independent(self, other: "BernsteinParams") -> "BernsteinParams":
        """Lemma 3.4(v): independent sums share ``D`` and add ``s``.

        Both inputs must carry the same ``D`` (weaken first if needed);
        the result is one-sided if either input is.
        """
        if self.D != other.D:
            raise ConfigurationError(
                "summands must share D (use weaken() first): "
                f"{self.D} != {other.D}"
            )
        return BernsteinParams(
            self.D, self.s + other.s, self.one_sided or other.one_sided
        )

    @staticmethod
    def sum_family(
        params: list["BernsteinParams"], negatively_associated: bool = False
    ) -> "BernsteinParams":
        """Lemma 3.4(v)/(vi): sum an independent or NA family.

        Independent families may be two-sided; negatively associated
        families yield a one-sided condition (Lemma 3.4(vi)).
        """
        if not params:
            raise ConfigurationError("cannot sum an empty family")
        D = max(p.D for p in params)
        s = sum(p.weaken(D, p.s).s for p in params)
        one_sided = negatively_associated or any(
            p.one_sided for p in params
        )
        return BernsteinParams(D, s, one_sided)


def mgf_bound(lam: float, params: BernsteinParams) -> float:
    """Right-hand side ``exp(lam^2 s/2 / (1 - |lam| D / 3))``.

    Requires ``|lam| D < 3`` (``lam >= 0`` when one-sided); raises
    otherwise, matching the domain of Definition 3.3.
    """
    if params.one_sided and lam < 0:
        raise ConfigurationError(
            "one-sided condition is only defined for lambda >= 0"
        )
    if abs(lam) * params.D >= 3:
        raise ConfigurationError(
            f"lambda out of domain: |lambda| D = {abs(lam) * params.D} >= 3"
        )
    return float(np.exp(log_mgf_bound(lam, params)))


def log_mgf_bound(lam: float, params: BernsteinParams) -> float:
    """``log`` of :func:`mgf_bound` (overflow-safe near the domain edge)."""
    return float(
        lam * lam * params.s / 2.0 / (1.0 - abs(lam) * params.D / 3.0)
    )


def empirical_mgf_check(
    samples: np.ndarray,
    params: BernsteinParams,
    num_lambdas: int = 15,
    slack: float = 1.05,
) -> dict:
    """Monte-Carlo certificate of the (one-sided) Bernstein condition.

    Evaluates the empirical MGF of ``samples`` on a lambda grid spanning
    the admissible domain and compares with :func:`mgf_bound` inflated by
    ``slack`` (to absorb Monte-Carlo error).  Returns a dict with keys
    ``ok`` (bool), ``worst_ratio`` (max empirical/bound) and
    ``lambdas``; the tests use it to validate Lemma 4.2 on real dynamics
    increments.
    """
    from scipy.special import logsumexp

    samples = np.asarray(samples, dtype=np.float64)
    if params.D > 0:
        lam_max = 0.9 * 3.0 / params.D
    else:
        scale = max(float(np.std(samples)), 1e-12)
        lam_max = 1.0 / scale
    lo = 0.05 * lam_max if params.one_sided else -0.9 * lam_max
    lambdas = np.linspace(lo, 0.9 * lam_max, num_lambdas)
    lambdas = lambdas[lambdas != 0.0]
    worst = -np.inf
    for lam in lambdas:
        # Compare in log space: the bound blows up near the domain edge
        # and exp() would overflow while the comparison stays finite.
        log_empirical = float(
            logsumexp(lam * samples) - np.log(samples.size)
        )
        log_excess = log_empirical - log_mgf_bound(float(lam), params)
        worst = max(worst, log_excess)
    worst_ratio = float(np.exp(min(worst, 700.0)))
    return {
        "ok": worst_ratio <= slack,
        "worst_ratio": worst_ratio,
        "lambdas": lambdas,
    }


def alpha_params(
    alpha: np.ndarray, i: int, n: int, dynamics: str
) -> BernsteinParams:
    """Lemma 4.2(i): ``alpha_t(i) - E[alpha_t(i)]`` is ``(1/n, s)``.

    3-Majority: ``s = alpha_i / n``;
    2-Choices:  ``s = alpha_i (alpha_i + gamma) / n``.
    """
    s = var_alpha_upper_bound(alpha, i, n, dynamics)
    return BernsteinParams(1.0 / n, s)


def delta_params(
    alpha: np.ndarray, i: int, j: int, n: int, dynamics: str
) -> BernsteinParams:
    """Lemma 4.2(ii): ``delta_t - E[delta_t]`` is ``(2/n, s)``.

    3-Majority: ``s = 2 (alpha_i + alpha_j) / n``;
    2-Choices:  ``s = (alpha_i + alpha_j)(alpha_i + alpha_j + gamma)/n``.
    """
    s = var_delta_upper_bound(alpha, i, j, n, dynamics)
    return BernsteinParams(2.0 / n, s)


def gamma_params(alpha: np.ndarray, n: int, dynamics: str) -> BernsteinParams:
    """Lemma 4.2(iii): ``gamma_{t-1} - gamma_t`` is one-sided.

    Parameters ``(2 sqrt(gamma) / n, s)`` with ``s = 4 gamma^{1.5} / n``
    for 3-Majority and ``8 gamma^2 / n`` for 2-Choices.  Note the
    *decrease* of gamma is controlled — gamma is a submartingale, so only
    its downward excursions need taming (Lemma 4.7).
    """
    if dynamics not in ("3-majority", "2-choices"):
        raise ConfigurationError(
            f"dynamics must be '3-majority' or '2-choices', got {dynamics!r}"
        )
    gamma = gamma_of_alpha(np.asarray(alpha, dtype=np.float64))
    D = 2.0 * np.sqrt(gamma) / n
    if dynamics == "3-majority":
        s = 4.0 * gamma**1.5 / n
    else:
        s = 8.0 * gamma**2 / n
    return BernsteinParams(D, s, one_sided=True)
