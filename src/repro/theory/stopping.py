"""Stopping times and opinion classification (paper Definition 4.4).

The proofs track a zoo of stopping times on the trajectory of
``(alpha_t, delta_t, gamma_t)``:

* ``tau_up(i) / tau_down(i)`` — ``alpha_t(i)`` leaving a relative band
  around ``alpha_0(i)``;
* ``tau_weak(i)`` — opinion ``i`` becoming *weak*
  (``alpha_t(i) <= (1 - c_weak) gamma_t``);
* ``tau_active(i)`` — opinion ``i`` becoming *active*
  (``alpha_t(i) >= (1 - c_active) gamma_0``);
* ``tau_up/down/+(delta)``, ``tau_up/down/+(gamma)`` — bias and norm
  band exits and threshold hits;
* ``tau_vanish(i)`` — extinction (Definition 5.1).

:class:`StoppingTimeTracker` watches a run through the observer interface
and records the first round each of these fires, which is exactly what
the ``fig2`` (lemma pipeline) and ``table1`` experiments need.

:class:`DriftConstants` carries the universal constants with the paper's
example values (end of Definition 4.4):
``c_up_alpha = c_down_alpha = c_weak = 1/10``,
``c_up_delta = c_down_delta = c_active = 1/20``,
``c_up_gamma = c_down_gamma = 1/30``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.theory.quantities import gamma_of_alpha

__all__ = ["DriftConstants", "StoppingTimeTracker", "classify_opinions"]


@dataclass(frozen=True)
class DriftConstants:
    """Universal constants of Definition 4.4 (paper's example values)."""

    c_up_alpha: float = 1.0 / 10.0
    c_down_alpha: float = 1.0 / 10.0
    c_weak: float = 1.0 / 10.0
    c_up_delta: float = 1.0 / 20.0
    c_down_delta: float = 1.0 / 20.0
    c_active: float = 1.0 / 20.0
    c_up_gamma: float = 1.0 / 30.0
    c_down_gamma: float = 1.0 / 30.0
    c_up_eta: float = 1.0 / 1000.0  # Definition 5.3

    def __post_init__(self) -> None:
        if not 0.0 <= self.c_weak < 0.5:
            raise ConfigurationError(
                f"c_weak must lie in [0, 1/2), got {self.c_weak}"
            )
        if not self.c_down_gamma < self.c_active < self.c_weak:
            raise ConfigurationError(
                "Definition 4.4(v) requires "
                "c_down_gamma < c_active < c_weak; got "
                f"{self.c_down_gamma}, {self.c_active}, {self.c_weak}"
            )


def classify_opinions(
    alpha: np.ndarray, constants: DriftConstants | None = None
) -> np.ndarray:
    """Weak/strong classification at one round (Section 2.2).

    Returns a boolean array, True where the opinion is *weak*:
    ``alpha_i <= (1 - c_weak) gamma``.  The most popular opinion is never
    weak (``max_i alpha_i >= gamma``, Section 2.2), which the tests
    verify.
    """
    constants = constants or DriftConstants()
    alpha = np.asarray(alpha, dtype=np.float64)
    gamma = gamma_of_alpha(alpha)
    return alpha <= (1.0 - constants.c_weak) * gamma


@dataclass
class StoppingTimeTracker:
    """Record Definition 4.4 stopping times along one trajectory.

    Parameters
    ----------
    pair:
        The two opinions ``(i, j)`` whose bias is tracked.
    constants:
        Universal constants (paper defaults).
    x_delta:
        Threshold for ``tau_plus_delta`` (e.g. ``c* sqrt(log n / n)``).
    x_gamma:
        Threshold for ``tau_plus_gamma``.
    x_eta:
        Threshold for ``tau_plus_eta`` on the 2-Choices scaled bias
        ``eta = delta / sqrt(max(alpha_i, alpha_j))`` (Definition 5.3).

    Feed it rounds via :meth:`observe` (compatible with the engine
    observer protocol); the first round at which each stopping condition
    holds is stored in :attr:`times` under the keys
    ``up_i, down_i, up_j, down_j, weak_i, weak_j, active_i, active_j,
    up_delta, down_delta, plus_delta, up_gamma, down_gamma, plus_gamma,
    up_eta, plus_eta, vanish_i, vanish_j``; missing keys mean "not yet
    fired".
    """

    pair: tuple[int, int] = (0, 1)
    constants: DriftConstants = field(default_factory=DriftConstants)
    x_delta: float = float("inf")
    x_gamma: float = float("inf")
    x_eta: float = float("inf")
    times: dict[str, int] = field(default_factory=dict)
    _initial: dict[str, float] = field(default_factory=dict)

    def observe(self, round_index: int, counts: np.ndarray) -> None:
        alpha = np.asarray(counts, dtype=np.float64)
        alpha = alpha / alpha.sum()
        i, j = self.pair
        gamma = gamma_of_alpha(alpha)
        delta = float(alpha[i] - alpha[j])
        top = max(float(alpha[i]), float(alpha[j]))
        eta = delta / np.sqrt(top) if top > 0 else 0.0
        if not self._initial:
            self._initial = {
                "alpha_i": float(alpha[i]),
                "alpha_j": float(alpha[j]),
                "delta": delta,
                "gamma": gamma,
                "eta": eta,
            }
        init = self._initial
        c = self.constants

        def fire(key: str, condition: bool) -> None:
            if condition and key not in self.times:
                self.times[key] = round_index

        fire("up_i", alpha[i] >= (1 + c.c_up_alpha) * init["alpha_i"])
        fire("down_i", alpha[i] <= (1 - c.c_down_alpha) * init["alpha_i"])
        fire("up_j", alpha[j] >= (1 + c.c_up_alpha) * init["alpha_j"])
        fire("down_j", alpha[j] <= (1 - c.c_down_alpha) * init["alpha_j"])
        fire("weak_i", alpha[i] <= (1 - c.c_weak) * gamma)
        fire("weak_j", alpha[j] <= (1 - c.c_weak) * gamma)
        fire("active_i", alpha[i] >= (1 - c.c_active) * init["gamma"])
        fire("active_j", alpha[j] >= (1 - c.c_active) * init["gamma"])
        fire("up_delta", delta >= (1 + c.c_up_delta) * init["delta"])
        fire("down_delta", delta <= (1 - c.c_down_delta) * init["delta"])
        fire("plus_delta", abs(delta) >= self.x_delta)
        fire("up_gamma", gamma >= (1 + c.c_up_gamma) * init["gamma"])
        fire("down_gamma", gamma <= (1 - c.c_down_gamma) * init["gamma"])
        fire("plus_gamma", gamma >= self.x_gamma)
        fire("up_eta", eta >= (1 + c.c_up_eta) * init["eta"])
        fire("plus_eta", abs(eta) >= self.x_eta)
        fire("vanish_i", alpha[i] == 0.0)
        fire("vanish_j", alpha[j] == 0.0)

    def first(self, *keys: str) -> int | None:
        """Earliest firing round among ``keys`` (``None`` if none fired)."""
        fired = [self.times[k] for k in keys if k in self.times]
        return min(fired) if fired else None
