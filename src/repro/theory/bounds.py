"""Consensus-time bound predictions: this paper and Figure 1 prior work.

Figure 1 of the paper plots upper-bound *exponents* as a function of
``kappa = log_n k`` (ignoring polylog factors).  This module provides

* the polylog-explicit bound formulas from the theorem statements (used
  to overlay predicted curves on measured data), and
* the exponent curves themselves (used to regenerate Figure 1 as a
  table of ``kappa -> exponent`` values).

Bounds implemented:

=============================  ==========================================
This paper, 3-Majority          ``~Theta(min{k, sqrt n})``  (Thm 1.1)
This paper, 2-Choices           ``~Theta(k)``               (Thm 1.1)
Prior 3-Majority                ``O(k log n)`` for ``k <~ n^{1/3}``,
                                else ``O(n^{2/3} log^{3/2} n)``
                                ([GL18] + [BCEKMN17], Section 1.1)
Prior 2-Choices                 ``O(k log n)`` for ``k <~ sqrt(n)``,
                                none beyond ([GL18])
Lower bound (both)              ``Omega(min{k, n / log n})`` from the
                                balanced start ([BCEKMN17]; Thm 2.7)
=============================  ==========================================
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError

__all__ = [
    "exponent_curve_prior",
    "exponent_curve_this_work",
    "gamma_condition",
    "lower_bound",
    "plurality_margin",
    "prior_upper_bound",
    "upper_bound",
]

_KNOWN = ("3-majority", "2-choices")


def _check(dynamics: str, n: int, k: int | None = None) -> None:
    if dynamics not in _KNOWN:
        raise ConfigurationError(
            f"dynamics must be one of {_KNOWN}, got {dynamics!r}"
        )
    if n < 2:
        raise ConfigurationError(f"n must be at least 2, got {n}")
    if k is not None and not 2 <= k <= n:
        raise ConfigurationError(
            f"k must satisfy 2 <= k <= n, got k={k}, n={n}"
        )


def upper_bound(dynamics: str, n: int, k: int) -> float:
    """This paper's upper bound with explicit polylog factors.

    3-Majority (Theorems 2.1 + 2.2): ``min(k log n, sqrt(n) log^2 n)``.
    2-Choices  (Theorems 2.1 + 2.2): ``min(k log n, n log^3 n)``.

    Constants are set to 1; only the *shape* is meaningful, which is all
    the experiments compare against.
    """
    _check(dynamics, n, k)
    log_n = math.log(n)
    if dynamics == "3-majority":
        return min(k * log_n, math.sqrt(n) * log_n**2)
    return min(k * log_n, n * log_n**3)


def prior_upper_bound(dynamics: str, n: int, k: int) -> float | None:
    """The best pre-paper upper bound (Figure 1(a)); ``None`` = unknown.

    3-Majority: ``k log n`` for ``k <= n^{1/3} / sqrt(log n)`` [GL18],
    else ``n^{2/3} (log n)^{3/2}`` [BCEKMN17 + GL18].
    2-Choices: ``k log n`` for ``k <= sqrt(n / log n)`` [GL18]; no bound
    was known for larger k (the regime this paper closes).
    """
    _check(dynamics, n, k)
    log_n = math.log(n)
    if dynamics == "3-majority":
        if k <= n ** (1.0 / 3.0) / math.sqrt(log_n):
            return k * log_n
        return n ** (2.0 / 3.0) * log_n**1.5
    if k <= math.sqrt(n / log_n):
        return k * log_n
    return None


def lower_bound(dynamics: str, n: int, k: int) -> float:
    """Theorem 2.7 / [BCEKMN17]: ``Omega(min{k, n / log n})``.

    From the balanced initial configuration; the constant is set to 1.
    For 3-Majority the effective lower bound is
    ``min(k, sqrt(n / log n))`` (take the balanced configuration on
    ``min(k, c sqrt(n/log n))`` opinions, Theorem 1.1's proof).
    """
    _check(dynamics, n, k)
    log_n = math.log(n)
    if dynamics == "3-majority":
        return min(k, math.sqrt(n / log_n))
    return min(k, n / log_n)


def gamma_condition(dynamics: str, n: int, constant: float = 1.0) -> float:
    """Theorem 2.1's threshold on ``gamma_0``.

    3-Majority: ``C log n / sqrt(n)``;  2-Choices: ``C (log n)^2 / n``.
    """
    _check(dynamics, n)
    log_n = math.log(n)
    if dynamics == "3-majority":
        return constant * log_n / math.sqrt(n)
    return constant * log_n**2 / n


def plurality_margin(
    dynamics: str,
    n: int,
    alpha_leader: float | None = None,
    constant: float = 1.0,
) -> float:
    """Theorem 2.6's required initial margin ``alpha_0(1) - alpha_0(j)``.

    3-Majority: ``C sqrt(log n / n)``.
    2-Choices:  ``C sqrt(alpha_0(1) log n / n)`` — needs the leader's
    initial fraction.
    """
    _check(dynamics, n)
    log_n = math.log(n)
    if dynamics == "3-majority":
        return constant * math.sqrt(log_n / n)
    if alpha_leader is None:
        raise ConfigurationError(
            "2-Choices margin requires the leader fraction alpha_leader"
        )
    if not 0.0 < alpha_leader <= 1.0:
        raise ConfigurationError(
            f"alpha_leader must be in (0, 1], got {alpha_leader}"
        )
    return constant * math.sqrt(alpha_leader * log_n / n)


def exponent_curve_this_work(dynamics: str, kappa: float) -> float:
    """Figure 1(b): consensus-time exponent at ``k = n^kappa``.

    3-Majority: ``min(kappa, 1/2)``;  2-Choices: ``kappa``.
    Polylog factors are ignored, exactly as in the figure.
    """
    if dynamics not in _KNOWN:
        raise ConfigurationError(
            f"dynamics must be one of {_KNOWN}, got {dynamics!r}"
        )
    if not 0.0 <= kappa <= 1.0:
        raise ConfigurationError(f"kappa must be in [0, 1], got {kappa}")
    if dynamics == "3-majority":
        return min(kappa, 0.5)
    return kappa


def exponent_curve_prior(dynamics: str, kappa: float) -> float | None:
    """Figure 1(a): pre-paper exponent at ``k = n^kappa``.

    3-Majority: ``kappa`` for ``kappa <= 1/3``, else ``2/3``.
    2-Choices:  ``kappa`` for ``kappa <= 1/2``, else ``None`` (no bound).
    """
    if dynamics not in _KNOWN:
        raise ConfigurationError(
            f"dynamics must be one of {_KNOWN}, got {dynamics!r}"
        )
    if not 0.0 <= kappa <= 1.0:
        raise ConfigurationError(f"kappa must be in [0, 1], got {kappa}")
    if dynamics == "3-majority":
        return kappa if kappa <= 1.0 / 3.0 else 2.0 / 3.0
    return kappa if kappa <= 0.5 else None
