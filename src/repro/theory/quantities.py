"""Basic quantities of a configuration (paper Definition 3.2).

Given a configuration with fractional populations
``alpha = (alpha_1, ..., alpha_k)``:

* ``gamma = ||alpha||_2^2 = sum_i alpha_i^2`` — the squared l2-norm whose
  growth drives the whole analysis (``1/k <= gamma <= 1`` by
  Cauchy-Schwarz, Section 2);
* ``delta(i, j) = alpha_i - alpha_j`` — the bias between two opinions;
* ``eta(i, j) = delta / sqrt(max(alpha_i, alpha_j))`` — the *scaled* bias
  used for 2-Choices (Definition 5.3);
* p-norms ``||alpha||_p`` appearing in the variance calculations
  (Lemma 4.2 uses ``||alpha||_3^3`` and ``||alpha||_4^4``).
"""

from __future__ import annotations

import numpy as np

from repro.state import alpha_from_counts, gamma_from_counts

__all__ = [
    "alpha_from_counts",
    "eta",
    "gamma_from_counts",
    "gamma_lower_bound",
    "gamma_of_alpha",
    "delta",
    "p_norm",
]


def gamma_of_alpha(alpha: np.ndarray) -> float:
    """``gamma = sum_i alpha_i^2`` from fractional populations."""
    alpha = np.asarray(alpha, dtype=np.float64)
    return float(np.dot(alpha, alpha))


def gamma_lower_bound(k: int) -> float:
    """Cauchy-Schwarz floor ``gamma >= 1/k`` (Section 2)."""
    if k < 1:
        raise ValueError(f"k must be positive, got {k}")
    return 1.0 / k


def delta(alpha: np.ndarray, i: int, j: int) -> float:
    """Bias ``delta(i, j) = alpha_i - alpha_j`` (Definition 3.2(ii))."""
    alpha = np.asarray(alpha, dtype=np.float64)
    return float(alpha[i] - alpha[j])


def eta(alpha: np.ndarray, i: int, j: int) -> float:
    """Scaled bias for 2-Choices (Definition 5.3).

    ``eta(i, j) = delta(i, j) / sqrt(max(alpha_i, alpha_j))``; undefined
    (returned as 0) when both opinions are extinct.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    top = max(float(alpha[i]), float(alpha[j]))
    if top == 0.0:
        return 0.0
    return float((alpha[i] - alpha[j]) / np.sqrt(top))


def p_norm(alpha: np.ndarray, p: float) -> float:
    """``||alpha||_p`` (Section 3 notation); ``p = inf`` gives the max."""
    alpha = np.asarray(alpha, dtype=np.float64)
    if np.isinf(p):
        return float(np.max(np.abs(alpha)))
    return float(np.sum(np.abs(alpha) ** p) ** (1.0 / p))
