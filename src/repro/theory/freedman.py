"""Freedman-type inequalities and the additive drift lemma.

Executable versions of the probability bounds the paper's proofs run on:

* :func:`freedman_tail` — the tail of Corollary 3.8 (a Freedman/Bernstein
  inequality for supermartingales whose increments satisfy a one-sided
  Bernstein condition);
* :func:`additive_drift_upcrossing` / :func:`additive_drift_hitting` —
  the two items of Lemma 3.5, giving respectively the probability that a
  drift-``R`` process climbs by ``h`` too early (``R >= 0``) and the
  probability that a downward-drift process has *not* dropped by ``h``
  after ``T`` rounds (``R < 0``);
* :func:`freedman_classic_tail` — the original bounded-difference form
  (paper eq. (4)) for comparison.

These are used three ways: (a) the tests check them against simulated
martingales, (b) the ``fig2`` pipeline experiment evaluates the same
failure probabilities the proofs budget, and (c) they document exactly
which numbers the paper's "with high probability" statements hide.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.theory.bernstein import BernsteinParams

__all__ = [
    "additive_drift_hitting",
    "additive_drift_upcrossing",
    "freedman_classic_tail",
    "freedman_tail",
]


def freedman_tail(h: float, T: float, params: BernsteinParams) -> float:
    """Corollary 3.8: ``P[exists t <= T : X_t - X_0 >= h]`` bound.

    For a supermartingale whose increments satisfy the one-sided
    ``(D, s)``-Bernstein condition,

        P <= exp( - (h^2 / 2) / (T s + h D / 3) ).
    """
    if h <= 0 or T <= 0:
        raise ConfigurationError(
            f"h and T must be positive, got h={h}, T={T}"
        )
    denom = T * params.s + h * params.D / 3.0
    if denom == 0.0:
        return 0.0
    return float(np.exp(-(h * h / 2.0) / denom))


def freedman_classic_tail(
    h: float, T: float, s: float, D: float
) -> float:
    """Paper eq. (4): Freedman's inequality with bounded differences.

    ``P[exists t <= T : X_t <= E[X_t] - h] <= exp(-h^2/2 / (Ts + hD/3))``
    for a submartingale with ``|X_t - X_{t-1}| <= D`` and per-step
    conditional variance at most ``s``.  Numerically identical to
    :func:`freedman_tail`; kept separate because the hypotheses differ
    (bounded jumps vs. Bernstein condition) and the paper's narrative
    hinges on that difference.
    """
    return freedman_tail(h, T, BernsteinParams(D, s, one_sided=True))


def additive_drift_upcrossing(
    h: float, T: float, R: float, params: BernsteinParams
) -> float:
    """Lemma 3.5(i): early upcrossing probability under drift ``R >= 0``.

    If ``E[X_t] <= X_{t-1} + R`` and the centred increments satisfy the
    one-sided ``(D, s)``-Bernstein condition, then with
    ``z = h - R T > 0``:

        P[tau^+_X <= min(T, tau)] <= exp( -(z^2/2) / (sT + zD/3) ).

    Returns 1.0 (trivial bound) when ``z <= 0`` — the regime where the
    drift alone can cover the climb and the lemma is silent.
    """
    if R < 0:
        raise ConfigurationError("use additive_drift_hitting for R < 0")
    z = h - R * T
    if z <= 0:
        return 1.0
    denom = params.s * T + z * params.D / 3.0
    if denom == 0.0:
        return 0.0
    return float(np.exp(-(z * z / 2.0) / denom))


def additive_drift_hitting(
    h: float, T: float, R: float, params: BernsteinParams
) -> float:
    """Lemma 3.5(ii): failure-to-drop probability under drift ``R < 0``.

    If ``E[X_t] <= X_{t-1} + R`` with ``R < 0``, then with
    ``z = (-R) T - h > 0``:

        P[min(tau^-_X, tau) > T] <= exp( -(z^2/2) / (sT + zD/3) ).

    Returns 1.0 when ``z <= 0`` (horizon too short for the drift to
    cover the drop).
    """
    if R >= 0:
        raise ConfigurationError("additive_drift_hitting requires R < 0")
    z = (-R) * T - h
    if z <= 0:
        return 1.0
    denom = params.s * T + z * params.D / 3.0
    if denom == 0.0:
        return 0.0
    return float(np.exp(-(z * z / 2.0) / denom))
