"""One-step moment formulas and drift terms (paper Lemma 4.1, Table 1).

Everything here is a *closed form* conditioned on the round-(t-1)
configuration; the test suite and the ``table1`` / ``lem41`` experiments
compare these against Monte-Carlo estimates from the exact engines.

Conventions: ``alpha`` is the round-(t-1) fractional population vector;
``gamma = sum alpha_i^2``; functions take the dynamics by short name
(``"3-majority"`` / ``"2-choices"``) where the two differ.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.theory.quantities import gamma_of_alpha

__all__ = [
    "DriftTermRow",
    "TABLE1_ROWS",
    "expected_alpha_next",
    "expected_delta_next",
    "expected_gamma_increase_lower_bound",
    "exact_gamma_next_three_majority",
    "exact_var_alpha",
    "var_alpha_upper_bound",
    "var_delta_lower_bound",
    "var_delta_upper_bound",
]

_KNOWN = ("3-majority", "2-choices")


def _check_dynamics(dynamics: str) -> str:
    if dynamics not in _KNOWN:
        raise ConfigurationError(
            f"dynamics must be one of {_KNOWN}, got {dynamics!r}"
        )
    return dynamics


def expected_alpha_next(alpha: np.ndarray) -> np.ndarray:
    """Lemma 4.1(i): ``E[alpha_t(i)] = alpha_i (1 + alpha_i - gamma)``.

    Identical for 3-Majority and 2-Choices — the key identity (1) of the
    proof outline.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    gamma = gamma_of_alpha(alpha)
    return alpha * (1.0 + alpha - gamma)


def exact_var_alpha(alpha: np.ndarray, i: int, dynamics: str) -> float:
    """Exact one-step variance of ``alpha_t(i)`` (Appendix B.1).

    3-Majority (from eq. (22) with ``f_i = alpha_i(1 + alpha_i - gamma)``):
    ``Var = f_i (1 - f_i) / n``... the ``1/n`` factor is deliberately
    *omitted* here: this function returns ``n * Var`` so callers can scale
    by their own ``n``.  Use :func:`var_alpha_upper_bound` for the bound
    the paper states.

    2-Choices (paper eq. (25)):
    ``n Var = a (1 - g + a^2)(g - a^2) + (1 - a) a^2 (1 - a^2)``
    with ``a = alpha_i`` and ``g = gamma``.
    """
    _check_dynamics(dynamics)
    alpha = np.asarray(alpha, dtype=np.float64)
    gamma = gamma_of_alpha(alpha)
    a = float(alpha[i])
    if dynamics == "3-majority":
        f = a * (1.0 + a - gamma)
        return f * (1.0 - f)
    keep = 1.0 - gamma + a * a
    return a * keep * (gamma - a * a) + (1.0 - a) * a * a * (1.0 - a * a)


def var_alpha_upper_bound(
    alpha: np.ndarray, i: int, n: int, dynamics: str
) -> float:
    """Lemma 4.1(i) variance bounds.

    3-Majority: ``alpha_i / n``.
    2-Choices:  ``alpha_i (alpha_i + gamma) / n``.
    """
    _check_dynamics(dynamics)
    alpha = np.asarray(alpha, dtype=np.float64)
    a = float(alpha[i])
    if dynamics == "3-majority":
        return a / n
    gamma = gamma_of_alpha(alpha)
    return a * (a + gamma) / n


def expected_delta_next(alpha: np.ndarray, i: int, j: int) -> float:
    """Lemma 4.1(ii): ``E[delta_t] = delta (1 + alpha_i + alpha_j - gamma)``.

    Identity (3) of the proof outline — the engine of the multiplicative
    bias drift: for two *strong* opinions the factor exceeds
    ``1 + (1 - 2 c_weak) gamma``.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    gamma = gamma_of_alpha(alpha)
    d = float(alpha[i] - alpha[j])
    return d * (1.0 + float(alpha[i] + alpha[j]) - gamma)


def var_delta_upper_bound(
    alpha: np.ndarray, i: int, j: int, n: int, dynamics: str
) -> float:
    """Lemma 4.1(ii) variance bounds.

    3-Majority: ``2 (alpha_i + alpha_j) / n``.
    2-Choices:  ``(alpha_i + alpha_j)(alpha_i + alpha_j + gamma) / n``.
    """
    _check_dynamics(dynamics)
    alpha = np.asarray(alpha, dtype=np.float64)
    s = float(alpha[i] + alpha[j])
    if dynamics == "3-majority":
        return 2.0 * s / n
    gamma = gamma_of_alpha(alpha)
    return s * (s + gamma) / n


def var_delta_lower_bound(
    alpha: np.ndarray,
    i: int,
    j: int,
    n: int,
    dynamics: str,
    c_weak: float = 0.1,
) -> float:
    """Lemma 4.6(ii): variance *lower* bounds for two non-weak opinions.

    With ``C = 1 - 1 / sqrt(2 (1 - c_weak))``:

    3-Majority: ``C^3 (alpha_i + alpha_j) / n``.
    2-Choices:  ``C^2 (alpha_i^2 + alpha_j^2) / n``.

    Only valid while both opinions are non-weak (callers must check);
    this is the additive-drift fuel of Lemma 5.6.
    """
    _check_dynamics(dynamics)
    alpha = np.asarray(alpha, dtype=np.float64)
    c46 = 1.0 - 1.0 / np.sqrt(2.0 * (1.0 - c_weak))
    if dynamics == "3-majority":
        return c46**3 * float(alpha[i] + alpha[j]) / n
    return c46**2 * float(alpha[i] ** 2 + alpha[j] ** 2) / n


def expected_gamma_increase_lower_bound(
    alpha: np.ndarray, n: int, dynamics: str
) -> float:
    """Lemma 4.1(iii): lower bound on ``E[gamma_t] - gamma_{t-1}``.

    3-Majority: ``(1 - gamma) / n``.
    2-Choices:  ``(1 - sqrt(gamma)) (1 - gamma) gamma / n``.

    Both are non-negative: ``gamma_t`` is a submartingale (identity (2)),
    the heart of the norm-growth argument (Theorem 2.2).
    """
    _check_dynamics(dynamics)
    gamma = gamma_of_alpha(alpha)
    if dynamics == "3-majority":
        return (1.0 - gamma) / n
    return (1.0 - np.sqrt(gamma)) * (1.0 - gamma) * gamma / n


def exact_gamma_next_three_majority(alpha: np.ndarray, n: int) -> float:
    """Exact ``E[gamma_t]`` for 3-Majority (Appendix B.1).

    ``E[gamma_t] = (1 - 1/n) sum_i f_i^2 + 1/n`` with
    ``f_i = alpha_i (1 + alpha_i - gamma)``.
    """
    alpha = np.asarray(alpha, dtype=np.float64)
    f = expected_alpha_next(alpha)
    return float((1.0 - 1.0 / n) * np.dot(f, f) + 1.0 / n)


@dataclass(frozen=True)
class DriftTermRow:
    """One row of the paper's Table 1 (drift-term inventory).

    ``quantity`` names the tracked random variable, ``direction`` the
    inequality sign of the drift bound, ``magnitude`` a human-readable
    version of the bound, and ``condition`` the stopping-time condition
    under which it holds.
    """

    quantity: str
    direction: str
    magnitude: str
    condition: str


TABLE1_ROWS: tuple[DriftTermRow, ...] = (
    DriftTermRow(
        "E[alpha_t(i) - alpha_{t-1}(i)]",
        "<=",
        "C alpha_0(i)^2",
        "t-1 < tau_up(i)",
    ),
    DriftTermRow(
        "E[alpha_t(i) - alpha_{t-1}(i)]",
        ">=",
        "-C alpha_0(i)^2",
        "t-1 < min{tau_weak(i), tau_up(i)}",
    ),
    DriftTermRow(
        "E[alpha_t(i) - alpha_{t-1}(i)]",
        "<=",
        "0",
        "t-1 < min{tau_active(i), tau_down(gamma)}",
    ),
    DriftTermRow(
        "E[delta_t(i,j) - delta_{t-1}(i,j)]",
        ">=",
        "0",
        "t-1 < min{tau_weak(j), tau_down(delta)}",
    ),
    DriftTermRow(
        "E[delta_t(i,j) - delta_{t-1}(i,j)]",
        ">=",
        "C alpha_0(i) delta_0(i,j)",
        "t-1 < min{tau_weak(j), tau_down(delta), tau_down(i)}",
    ),
    DriftTermRow(
        "E[gamma_t - gamma_{t-1}]",
        ">=",
        "0",
        "always",
    ),
)
"""The six drift statements of paper Table 1, in paper order."""
