"""Executable theory toolbox: the paper's formulas and proof machinery.

* :mod:`~repro.theory.quantities` — Definition 3.2 (alpha, delta, gamma);
* :mod:`~repro.theory.drift` — Lemma 4.1 moments and Table 1 drift rows;
* :mod:`~repro.theory.bernstein` — Definition 3.3 / Lemmas 3.4, 4.2;
* :mod:`~repro.theory.freedman` — Corollary 3.8 / Lemma 3.5;
* :mod:`~repro.theory.stopping` — Definition 4.4 stopping times;
* :mod:`~repro.theory.bounds` — Theorem 1.1 etc. bound formulas plus the
  prior-work curves of Figure 1.
"""

from repro.theory.bernstein import (
    BernsteinParams,
    alpha_params,
    delta_params,
    empirical_mgf_check,
    gamma_params,
    mgf_bound,
)
from repro.theory.bounds import (
    exponent_curve_prior,
    exponent_curve_this_work,
    gamma_condition,
    lower_bound,
    plurality_margin,
    prior_upper_bound,
    upper_bound,
)
from repro.theory.drift import (
    TABLE1_ROWS,
    DriftTermRow,
    exact_gamma_next_three_majority,
    exact_var_alpha,
    expected_alpha_next,
    expected_delta_next,
    expected_gamma_increase_lower_bound,
    var_alpha_upper_bound,
    var_delta_lower_bound,
    var_delta_upper_bound,
)
from repro.theory.freedman import (
    additive_drift_hitting,
    additive_drift_upcrossing,
    freedman_classic_tail,
    freedman_tail,
)
from repro.theory.quantities import (
    delta,
    eta,
    gamma_lower_bound,
    gamma_of_alpha,
    p_norm,
)
from repro.theory.stopping import (
    DriftConstants,
    StoppingTimeTracker,
    classify_opinions,
)

__all__ = [
    "BernsteinParams",
    "DriftConstants",
    "DriftTermRow",
    "StoppingTimeTracker",
    "TABLE1_ROWS",
    "additive_drift_hitting",
    "additive_drift_upcrossing",
    "alpha_params",
    "classify_opinions",
    "delta",
    "delta_params",
    "empirical_mgf_check",
    "eta",
    "exact_gamma_next_three_majority",
    "exact_var_alpha",
    "expected_alpha_next",
    "expected_delta_next",
    "expected_gamma_increase_lower_bound",
    "exponent_curve_prior",
    "exponent_curve_this_work",
    "freedman_classic_tail",
    "freedman_tail",
    "gamma_condition",
    "gamma_lower_bound",
    "gamma_of_alpha",
    "gamma_params",
    "lower_bound",
    "mgf_bound",
    "p_norm",
    "plurality_margin",
    "prior_upper_bound",
    "upper_bound",
    "var_alpha_upper_bound",
    "var_delta_lower_bound",
    "var_delta_upper_bound",
]
