"""The near-consensus convention for adversarial runs.

An adversary with any budget ``F >= 1`` can trivially keep one stray
vertex alive forever, so strict consensus is the wrong observable for
tolerance measurements.  The convention used throughout the library
(the ``adv`` experiment, the CLI, sweep points, benchmarks): "agreement
despite the adversary" means the leader holds all but ``4 F`` vertices.

For budgets so large that ``n - 4F`` drops to (or below) half the
population, that threshold would be vacuous — e.g. a balanced two-way
tie would instantly satisfy it, reporting the strongest adversaries as
*instant successes* instead of stalls.  The threshold therefore never
falls below a strict majority: agreement always requires the leader to
hold more than ``n / 2`` vertices.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "LeaderThresholdTarget",
    "near_consensus_target",
    "near_consensus_threshold",
]


def near_consensus_threshold(n: int, budget: int) -> int:
    """Leader count that counts as agreement despite an F-adversary.

    ``n`` with a zero budget (strict consensus), otherwise
    ``max(n - 4 * budget, strict majority)``.
    """
    n = int(n)
    if budget <= 0:
        return n
    return max(n - 4 * int(budget), n // 2 + 1)


class LeaderThresholdTarget:
    """Stopping predicate "the leading opinion holds >= threshold".

    Callable on a single count vector (usable anywhere a ``target``
    predicate is accepted), and additionally exposes :meth:`batch` so
    the batch engine can evaluate all R replica rows in one numpy op
    instead of R Python calls per round.  Module-level class, so sweep
    point functions carrying one stay picklable.
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = int(threshold)

    def __call__(self, counts: np.ndarray) -> bool:
        return int(np.asarray(counts).max()) >= self.threshold

    def batch(self, rows: np.ndarray) -> np.ndarray:
        """Vectorised per-row evaluation on an ``(R, k)`` count matrix."""
        return np.asarray(rows).max(axis=1) >= self.threshold

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, LeaderThresholdTarget)
            and other.threshold == self.threshold
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.threshold))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LeaderThresholdTarget({self.threshold})"


def near_consensus_target(n: int, budget: int) -> LeaderThresholdTarget:
    """Stopping predicate for :func:`near_consensus_threshold`.

    Usable as a ``SimulationSpec.target`` / ``Simulation.stop_when``
    argument or with :func:`~repro.engine.runner.run_until_consensus`;
    batch engines evaluate it vectorised.
    """
    return LeaderThresholdTarget(near_consensus_threshold(n, budget))
