"""Adversary registry: build any strategy from a short string spec.

Specs, CLI flags and sweep grid points refer to adversaries by name
(``"random"``, ``"runner-up"``, ``"revive-weakest"``) plus a per-round
budget ``F``; :func:`make_adversary` resolves such a pair into an
:class:`~repro.adversary.base.Adversary` instance.  This mirrors
:mod:`repro.core.registry` for dynamics: declarative names keep
simulation specs JSON-serialisable (and therefore sweep-cacheable).
"""

from __future__ import annotations

from repro.adversary.base import Adversary
from repro.adversary.strategies import (
    RandomCorruption,
    ReviveWeakest,
    SupportRunnerUp,
)
from repro.errors import ConfigurationError

__all__ = ["available_adversaries", "make_adversary"]

_STRATEGIES = {
    "random": RandomCorruption,
    "runner-up": SupportRunnerUp,
    "support-runner-up": SupportRunnerUp,
    "revive-weakest": ReviveWeakest,
}


def make_adversary(
    spec: str | Adversary, budget: int | None = None
) -> Adversary:
    """Resolve ``spec`` into an :class:`~repro.adversary.base.Adversary`.

    ``spec`` is a strategy name (any key of
    :func:`available_adversaries`) with ``budget`` the per-round ``F``,
    or an existing instance (returned unchanged; ``budget``, when also
    given, must then match the instance's).
    """
    if isinstance(spec, Adversary):
        if budget is not None and int(budget) != spec.budget:
            raise ConfigurationError(
                f"adversary budget {budget} conflicts with the "
                f"instance's budget {spec.budget}"
            )
        return spec
    key = str(spec).strip().lower()
    factory = _STRATEGIES.get(key)
    if factory is None:
        raise ConfigurationError(
            f"unknown adversary spec {spec!r}; known: "
            + ", ".join(available_adversaries())
        )
    if budget is None:
        raise ConfigurationError(
            f"adversary {spec!r} requires a budget (the per-round F)"
        )
    return factory(int(budget))


def available_adversaries() -> list[str]:
    """Canonical names of all registered adversary strategies."""
    return sorted(_STRATEGIES)
