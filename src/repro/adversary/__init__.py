"""F-bounded adversarial corruption ([GL18] model, paper Section 2.5)."""

from repro.adversary.base import Adversary, AdversarialPopulationEngine
from repro.adversary.strategies import (
    RandomCorruption,
    ReviveWeakest,
    SupportRunnerUp,
)

__all__ = [
    "Adversary",
    "AdversarialPopulationEngine",
    "RandomCorruption",
    "ReviveWeakest",
    "SupportRunnerUp",
]
