"""F-bounded adversarial corruption ([GL18] model, paper Section 2.5)."""

from repro.adversary.base import (
    Adversary,
    AdversarialPopulationEngine,
    apply_corruption,
    enforce_corruption_contract,
    enforce_corruption_contract_batch,
)
from repro.adversary.registry import available_adversaries, make_adversary
from repro.adversary.strategies import (
    RandomCorruption,
    ReviveWeakest,
    SupportRunnerUp,
)
from repro.adversary.tolerance import (
    LeaderThresholdTarget,
    near_consensus_target,
    near_consensus_threshold,
)

__all__ = [
    "Adversary",
    "AdversarialPopulationEngine",
    "LeaderThresholdTarget",
    "RandomCorruption",
    "ReviveWeakest",
    "SupportRunnerUp",
    "apply_corruption",
    "available_adversaries",
    "enforce_corruption_contract",
    "enforce_corruption_contract_batch",
    "make_adversary",
    "near_consensus_target",
    "near_consensus_threshold",
]
