"""F-bounded adversaries (paper Section 2.5, [GL18] model).

The adversarial model lets an adversary corrupt the opinions of up to
``F`` vertices *after every round*.  [GL18] showed 3-Majority tolerates
``F = O(sqrt(n) / k^{1.5})`` for ``k = O(n^{1/3} / sqrt(log n))``; the
paper lists extending this as an open direction.  The ``adv`` experiment
measures the empirical tolerance threshold.

Adversaries act on count vectors (population level): a corruption is a
movement of at most ``F`` units of mass.  They receive the full
configuration each round — a strong (omniscient, adaptive) adversary in
the sense of the literature.

Adversaries are a first-class dimension of the unified simulation API:
every engine (population, agent, async, batch) accepts one and applies
it after each synchronous round, enforcing the corruption contract via
:func:`enforce_corruption_contract` — an *explicit* raise, never a bare
``assert``, so the checks survive ``python -O``.  The batch engine uses
:meth:`Adversary.corrupt_batch` to corrupt all R replica rows in one
vectorised call.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.base import Dynamics
from repro.seeding import RandomState, as_generator
from repro.state import validate_counts
from repro.errors import ConfigurationError, StateError

__all__ = [
    "Adversary",
    "AdversarialPopulationEngine",
    "apply_corruption",
    "apply_count_delta",
    "enforce_corruption_contract",
    "enforce_corruption_contract_batch",
]


class Adversary(abc.ABC):
    """Moves at most :attr:`budget` vertices' opinions per round."""

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise ConfigurationError(
                f"adversary budget must be non-negative, got {budget}"
            )
        self.budget = int(budget)

    @abc.abstractmethod
    def corrupt(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Return the corrupted configuration (same total mass).

        Implementations must change at most :attr:`budget` vertices, i.e.
        ``sum(|new - old|) / 2 <= budget``; every engine enforces this
        via :func:`enforce_corruption_contract` (an explicit raise, so
        the check survives ``python -O``).
        """

    def corrupt_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Corrupt R replica rows of an ``(R, k)`` count matrix at once.

        The contract is :meth:`corrupt` applied independently per row:
        each row conserves its mass and moves at most :attr:`budget`
        vertices.  This base implementation is the row-loop fallback
        (correct for any strategy, no speedup); the bundled strategies
        override it with fully vectorised versions, which is what makes
        adversarial sweeps on
        :class:`~repro.engine.batch.BatchPopulationEngine` fast.
        """
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape[0] == 0:
            return counts.copy()
        return np.stack(
            [self.corrupt(row.copy(), rng) for row in counts]
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(budget={self.budget})"


def enforce_corruption_contract(
    before: np.ndarray, after: np.ndarray, budget: int
) -> np.ndarray:
    """Validate one corruption: mass conserved, at most ``budget`` moves.

    Returns the canonicalised corrupted vector.  Raises
    :class:`~repro.errors.StateError` on mass/negativity violations and
    :class:`~repro.errors.ConfigurationError` on budget violations —
    explicit exceptions rather than ``assert``, so a buggy adversary
    fails fast even under ``python -O``.
    """
    before = np.asarray(before)
    after = validate_counts(after, n=int(before.sum()))
    moved = int(np.abs(after - before).sum()) // 2
    if moved > budget:
        raise ConfigurationError(
            f"adversary moved {moved} vertices, exceeding its "
            f"budget of {budget}"
        )
    return after


def enforce_corruption_contract_batch(
    before: np.ndarray, after: np.ndarray, budget: int
) -> np.ndarray:
    """Row-wise contract check for :meth:`Adversary.corrupt_batch`.

    Every replica row must conserve its mass, stay non-negative and move
    at most ``budget`` vertices.  Error messages name the first
    offending row so a buggy strategy is debuggable at R = 256.
    """
    before = np.asarray(before)
    after = np.asarray(after, dtype=np.int64)
    if after.shape != before.shape:
        raise StateError(
            f"batch corruption changed the matrix shape from "
            f"{before.shape} to {after.shape}"
        )
    if (after < 0).any():
        row = int(np.flatnonzero((after < 0).any(axis=1))[0])
        raise StateError(
            f"batch corruption produced negative counts in replica "
            f"row {row}"
        )
    mass_before = before.sum(axis=1)
    mass_after = after.sum(axis=1)
    bad = mass_after != mass_before
    if bad.any():
        row = int(np.flatnonzero(bad)[0])
        raise StateError(
            f"batch corruption changed replica row {row}'s total mass "
            f"from {int(mass_before[row])} to {int(mass_after[row])}"
        )
    moved = np.abs(after - before).sum(axis=1) // 2
    over = moved > budget
    if over.any():
        row = int(np.flatnonzero(over)[0])
        raise ConfigurationError(
            f"adversary moved {int(moved[row])} vertices in replica "
            f"row {row}, exceeding its budget of {budget}"
        )
    return after


def apply_count_delta(
    opinions: np.ndarray, delta: np.ndarray, rng: np.random.Generator
) -> None:
    """Reassign vertices of one replica to realise a count-level delta.

    The agent-level lift of a population-level corruption: ``delta`` is
    ``corrupted_counts - counts`` (summing to zero), and uniformly
    random holders of each losing opinion are moved to the gaining
    opinions, with the victim→gainer pairing shuffled so it carries no
    positional bias when several opinions lose and several gain at
    once.  Shared by the sequential :class:`~repro.engine.agent.
    AgentEngine` and the batched :class:`~repro.engine.agent_batch.
    BatchAgentEngine`, so the two engines can never drift apart on how
    a corruption lands on vertices.  Mutates ``opinions`` in place.
    """
    losers = np.flatnonzero(delta < 0)
    if losers.size == 0:
        return
    victims = np.concatenate(
        [
            rng.choice(
                np.flatnonzero(opinions == opinion),
                size=int(-delta[opinion]),
                replace=False,
            )
            for opinion in losers
        ]
    )
    gainers = np.flatnonzero(delta > 0)
    new_labels = np.repeat(gainers, delta[gainers])
    rng.shuffle(victims)
    opinions[victims] = new_labels.astype(opinions.dtype)


def apply_corruption(
    counts: np.ndarray,
    adversary: Adversary,
    rng: np.random.Generator,
) -> np.ndarray:
    """One checked corruption: corrupt ``counts`` and enforce the contract.

    The adversary receives its own copy of the configuration: a strategy
    that mutates its input in place could otherwise never fail the
    contract (before and after would be the same array), and the
    engine's own state stays isolated from the adversary.
    """
    before = np.asarray(counts)
    corrupted = adversary.corrupt(before.copy(), rng)
    return enforce_corruption_contract(before, corrupted, adversary.budget)


class AdversarialPopulationEngine:
    """Population engine interleaving dynamics rounds with corruptions.

    .. deprecated::
        Legacy shim.  Adversaries are now first-class in the unified
        simulation API — prefer
        ``Simulation.of(dyn).n(n).k(k).adversary("runner-up", F).run()``
        or ``PopulationEngine(dynamics, counts, seed, adversary=...)``;
        the batch engine vectorises R adversarial replicas at once.

    Each logical round is: one dynamics round, then one adversary
    corruption — matching the "corrupt F vertices each round" model.
    The corruption contract (mass conservation, at most ``F`` moves) is
    checked every round via :func:`enforce_corruption_contract` so a
    buggy adversary fails fast, including under ``python -O``.
    """

    def __init__(
        self,
        dynamics: Dynamics,
        counts: np.ndarray,
        adversary: Adversary,
        seed: RandomState = None,
    ) -> None:
        self.dynamics = dynamics
        self.adversary = adversary
        self.counts = validate_counts(counts).copy()
        self.num_vertices = int(self.counts.sum())
        self.num_opinions = int(self.counts.size)
        self.rng = as_generator(seed)
        self.round_index = 0

    def step(self) -> np.ndarray:
        after_dynamics = self.dynamics.population_step(
            self.counts, self.rng
        )
        self.counts = apply_corruption(
            after_dynamics, self.adversary, self.rng
        )
        self.round_index += 1
        return self.counts

    def is_consensus(self) -> bool:
        """True when one opinion holds everything *after* corruption."""
        return bool(self.counts.max() == self.num_vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdversarialPopulationEngine({self.dynamics.name}, "
            f"{self.adversary!r}, round={self.round_index})"
        )
