"""F-bounded adversaries (paper Section 2.5, [GL18] model).

The adversarial model lets an adversary corrupt the opinions of up to
``F`` vertices *after every round*.  [GL18] showed 3-Majority tolerates
``F = O(sqrt(n) / k^{1.5})`` for ``k = O(n^{1/3} / sqrt(log n))``; the
paper lists extending this as an open direction.  The ``adv`` experiment
measures the empirical tolerance threshold.

Adversaries act on count vectors (population level): a corruption is a
movement of at most ``F`` units of mass.  They receive the full
configuration each round — a strong (omniscient, adaptive) adversary in
the sense of the literature.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.base import Dynamics
from repro.seeding import RandomState, as_generator
from repro.state import validate_counts
from repro.errors import ConfigurationError

__all__ = ["Adversary", "AdversarialPopulationEngine"]


class Adversary(abc.ABC):
    """Moves at most :attr:`budget` vertices' opinions per round."""

    def __init__(self, budget: int) -> None:
        if budget < 0:
            raise ConfigurationError(
                f"adversary budget must be non-negative, got {budget}"
            )
        self.budget = int(budget)

    @abc.abstractmethod
    def corrupt(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Return the corrupted configuration (same total mass).

        Implementations must change at most :attr:`budget` vertices, i.e.
        ``sum(|new - old|) / 2 <= budget``; the engine asserts this.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(budget={self.budget})"


class AdversarialPopulationEngine:
    """Population engine interleaving dynamics rounds with corruptions.

    Each logical round is: one dynamics round, then one adversary
    corruption — matching the "corrupt F vertices each round" model.
    The corruption contract (mass conservation, at most ``F`` moves) is
    checked every round so a buggy adversary fails fast.
    """

    def __init__(
        self,
        dynamics: Dynamics,
        counts: np.ndarray,
        adversary: Adversary,
        seed: RandomState = None,
    ) -> None:
        self.dynamics = dynamics
        self.adversary = adversary
        self.counts = validate_counts(counts).copy()
        self.num_vertices = int(self.counts.sum())
        self.num_opinions = int(self.counts.size)
        self.rng = as_generator(seed)
        self.round_index = 0

    def step(self) -> np.ndarray:
        after_dynamics = self.dynamics.population_step(
            self.counts, self.rng
        )
        corrupted = self.adversary.corrupt(after_dynamics, self.rng)
        corrupted = validate_counts(corrupted, n=self.num_vertices)
        moved = int(np.abs(corrupted - after_dynamics).sum()) // 2
        if moved > self.adversary.budget:
            raise ConfigurationError(
                f"adversary moved {moved} vertices, exceeding its "
                f"budget of {self.adversary.budget}"
            )
        self.counts = corrupted
        self.round_index += 1
        return self.counts

    def is_consensus(self) -> bool:
        """True when one opinion holds everything *after* corruption."""
        return bool(self.counts.max() == self.num_vertices)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdversarialPopulationEngine({self.dynamics.name}, "
            f"{self.adversary!r}, round={self.round_index})"
        )
