"""Concrete adversary strategies.

* :class:`RandomCorruption` — a noise model: F random vertices get
  uniformly random opinions.  Benign on average (pushes towards the
  balanced configuration slowly).
* :class:`SupportRunnerUp` — the canonical stalling adversary: moves F
  vertices from the current leader to the strongest challenger, directly
  fighting the bias amplification the proofs rely on (Lemmas 5.4-5.10).
* :class:`ReviveWeakest` — keeps the weakest *surviving* opinion alive
  by feeding it from the leader, fighting weak-opinion vanishing
  (Lemma 5.2).

All strategies conserve mass and respect the ``F`` budget; when the
configuration is already at consensus, :class:`SupportRunnerUp` and
:class:`ReviveWeakest` stop corrupting (consensus reached despite the
adversary is a meaningful outcome, and a "revive the dead" adversary
would trivially prevent consensus forever — that regime is measured by
the tolerance sweep instead).
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary

__all__ = ["RandomCorruption", "ReviveWeakest", "SupportRunnerUp"]


class RandomCorruption(Adversary):
    """Reassign up to ``budget`` random vertices to random opinions."""

    def corrupt(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.budget == 0:
            return counts
        n = int(counts.sum())
        k = counts.size
        new_counts = counts.copy()
        # Victims ~ uniformly random vertices == multinomial over alpha;
        # cap per-opinion removals at current counts.
        victims = rng.multinomial(min(self.budget, n), counts / n)
        victims = np.minimum(victims, new_counts)
        moved = int(victims.sum())
        new_counts -= victims
        new_counts += rng.multinomial(moved, np.full(k, 1.0 / k))
        return new_counts


class SupportRunnerUp(Adversary):
    """Move up to ``budget`` vertices from the leader to the runner-up."""

    def corrupt(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        alive = np.flatnonzero(counts)
        if self.budget == 0 or alive.size < 2:
            return counts
        new_counts = counts.copy()
        order = alive[np.argsort(counts[alive])]
        leader = int(order[-1])
        runner_up = int(order[-2])
        # Never push the runner-up past the leader: the adversary's goal
        # is a stalemate, not crowning a new leader (which would only
        # speed consensus up).
        gap = int(counts[leader] - counts[runner_up])
        move = min(self.budget, max(gap // 2, 0), int(counts[leader]) - 1)
        new_counts[leader] -= move
        new_counts[runner_up] += move
        return new_counts


class ReviveWeakest(Adversary):
    """Feed the weakest surviving opinion from the leader's mass."""

    def corrupt(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        alive = np.flatnonzero(counts)
        if self.budget == 0 or alive.size < 2:
            return counts
        new_counts = counts.copy()
        order = alive[np.argsort(counts[alive])]
        weakest = int(order[0])
        leader = int(order[-1])
        move = min(self.budget, int(counts[leader]) - 1)
        new_counts[leader] -= move
        new_counts[weakest] += move
        return new_counts
