"""Concrete adversary strategies.

* :class:`RandomCorruption` — a noise model: F random vertices get
  uniformly random opinions.  Benign on average (pushes towards the
  balanced configuration slowly).
* :class:`SupportRunnerUp` — the canonical stalling adversary: moves F
  vertices from the current leader to the strongest challenger, directly
  fighting the bias amplification the proofs rely on (Lemmas 5.4-5.10).
* :class:`ReviveWeakest` — keeps the weakest *surviving* opinion alive
  by feeding it from the leader, fighting weak-opinion vanishing
  (Lemma 5.2).

All strategies conserve mass and respect the ``F`` budget; when the
configuration is already at consensus, :class:`SupportRunnerUp` and
:class:`ReviveWeakest` stop corrupting (consensus reached despite the
adversary is a meaningful outcome, and a "revive the dead" adversary
would trivially prevent consensus forever — that regime is measured by
the tolerance sweep instead).

Each strategy also overrides :meth:`~repro.adversary.base.Adversary.
corrupt_batch` with a fully vectorised implementation over the batch
engine's ``(R, k)`` count matrix — one numpy pass corrupts all R
replicas, applying the per-row law of :meth:`corrupt` exactly (same
distribution; tie-breaking among equal counts may pick a different but
symmetric index).
"""

from __future__ import annotations

import numpy as np

from repro.adversary.base import Adversary

__all__ = ["RandomCorruption", "ReviveWeakest", "SupportRunnerUp"]


class RandomCorruption(Adversary):
    """Reassign up to ``budget`` random vertices to random opinions."""

    def corrupt(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        if self.budget == 0:
            return counts
        n = int(counts.sum())
        k = counts.size
        new_counts = counts.copy()
        # Victims ~ uniformly random vertices == multinomial over alpha;
        # cap per-opinion removals at current counts.
        victims = rng.multinomial(min(self.budget, n), counts / n)
        victims = np.minimum(victims, new_counts)
        moved = int(victims.sum())
        new_counts -= victims
        new_counts += rng.multinomial(moved, np.full(k, 1.0 / k))
        return new_counts

    def corrupt_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        if self.budget == 0 or counts.shape[0] == 0:
            return counts.copy()
        num_rows, k = counts.shape
        totals = counts.sum(axis=1)
        # Per-row victim draws in one batched multinomial (numpy
        # broadcasts the (R,) trial counts against the (R, k) laws);
        # renormalise defensively against float round-off.
        alpha = counts / totals[:, None]
        alpha /= alpha.sum(axis=1, keepdims=True)
        victims = rng.multinomial(np.minimum(self.budget, totals), alpha)
        victims = np.minimum(victims, counts)
        moved = victims.sum(axis=1)
        new_counts = counts - victims
        new_counts += rng.multinomial(moved, np.full(k, 1.0 / k))
        return new_counts


class SupportRunnerUp(Adversary):
    """Move up to ``budget`` vertices from the leader to the runner-up."""

    def corrupt(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        alive = np.flatnonzero(counts)
        if self.budget == 0 or alive.size < 2:
            return counts
        new_counts = counts.copy()
        order = alive[np.argsort(counts[alive])]
        leader = int(order[-1])
        runner_up = int(order[-2])
        # Never push the runner-up past the leader: the adversary's goal
        # is a stalemate, not crowning a new leader (which would only
        # speed consensus up).
        gap = int(counts[leader] - counts[runner_up])
        move = min(self.budget, max(gap // 2, 0), int(counts[leader]) - 1)
        new_counts[leader] -= move
        new_counts[runner_up] += move
        return new_counts

    def corrupt_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        new_counts = counts.copy()
        if self.budget == 0 or counts.shape[0] == 0:
            return new_counts
        num_rows, k = counts.shape
        if k < 2:
            return new_counts
        # Zeros sort to the front, so the last two columns of the sorted
        # order are the leader and the strongest challenger; a zero
        # runner-up count means fewer than two alive opinions.
        order = np.argsort(counts, axis=1, kind="stable")
        rows = np.arange(num_rows)
        leader = order[:, -1]
        runner_up = order[:, -2]
        leader_counts = counts[rows, leader]
        runner_counts = counts[rows, runner_up]
        gap = leader_counts - runner_counts
        move = np.minimum(
            np.minimum(self.budget, np.maximum(gap // 2, 0)),
            leader_counts - 1,
        )
        move = np.where(runner_counts > 0, move, 0)
        new_counts[rows, leader] -= move
        new_counts[rows, runner_up] += move
        return new_counts


class ReviveWeakest(Adversary):
    """Feed the weakest surviving opinion from the leader's mass."""

    def corrupt(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        alive = np.flatnonzero(counts)
        if self.budget == 0 or alive.size < 2:
            return counts
        new_counts = counts.copy()
        order = alive[np.argsort(counts[alive])]
        weakest = int(order[0])
        leader = int(order[-1])
        move = min(self.budget, int(counts[leader]) - 1)
        new_counts[leader] -= move
        new_counts[weakest] += move
        return new_counts

    def corrupt_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        counts = np.asarray(counts, dtype=np.int64)
        new_counts = counts.copy()
        if self.budget == 0 or counts.shape[0] == 0:
            return new_counts
        num_rows, k = counts.shape
        if k < 2:
            return new_counts
        rows = np.arange(num_rows)
        alive = (counts > 0).sum(axis=1)
        # Weakest = first index attaining the alive minimum; leader =
        # *last* index attaining the maximum, so the two never collide
        # when at least two opinions are alive (e.g. an all-tied row).
        masked = np.where(counts > 0, counts, np.iinfo(np.int64).max)
        weakest = np.argmin(masked, axis=1)
        leader = (k - 1) - np.argmax(counts[:, ::-1], axis=1)
        move = np.minimum(self.budget, counts[rows, leader] - 1)
        move = np.where(alive >= 2, move, 0)
        new_counts[rows, leader] -= move
        new_counts[rows, weakest] += move
        return new_counts
