"""Concrete population protocols from the paper's related work.

* :class:`ApproximateMajority` — the 3-state protocol of Angluin,
  Aspnes and Eisenstat [AAE07] (cited in Section 2.5): two opinions
  plus a *blank* middle state.  A decided agent meeting the opposite
  opinion blanks the responder; a decided agent recruits blank
  responders.  Converges to the initial majority within O(n log n)
  interactions w.h.p. when the initial gap is ``omega(sqrt(n) log n)``.
* :class:`UndecidedPairwise` — the k-opinion undecided-state dynamics
  in the population-protocol model [AABBHKL23]: the *initiator* updates
  exactly as in the synchronous USD (see
  :class:`~repro.core.undecided.UndecidedStateDynamics`), the responder
  is read-only.
* :class:`VoterPairwise` — sequential voter model baseline: the
  initiator adopts the responder's opinion.

State conventions: :class:`ApproximateMajority` uses states
``0 = opinion A, 1 = opinion B, 2 = blank``;
:class:`UndecidedPairwise` and :class:`VoterPairwise` over ``k``
opinions use states ``0..k-1`` (+ state ``k`` = undecided for the
former), matching :mod:`repro.core.undecided`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.protocols.base import PairwiseProtocol

__all__ = ["ApproximateMajority", "UndecidedPairwise", "VoterPairwise"]


class ApproximateMajority(PairwiseProtocol):
    """[AAE07] 3-state approximate majority (A = 0, B = 1, blank = 2)."""

    name = "approximate-majority"
    num_states = 3

    A, B, BLANK = 0, 1, 2

    def interact(
        self, initiator: int, responder: int, rng: np.random.Generator
    ) -> tuple[int, int]:
        if initiator == self.A and responder == self.B:
            return self.A, self.BLANK
        if initiator == self.B and responder == self.A:
            return self.B, self.BLANK
        if initiator in (self.A, self.B) and responder == self.BLANK:
            return initiator, initiator
        return initiator, responder

    def output(self, state: int) -> int | None:
        return None if state == self.BLANK else state

    @staticmethod
    def initial_counts(num_a: int, num_b: int, blanks: int = 0):
        """Count vector helper in the protocol's state order."""
        return np.asarray([num_a, num_b, blanks], dtype=np.int64)


class UndecidedPairwise(PairwiseProtocol):
    """k-opinion undecided-state dynamics, protocol model [AABBHKL23].

    States ``0..k-1`` are decided opinions; state ``k`` is undecided.
    Only the initiator updates:

    * undecided initiator adopts the responder's state;
    * decided initiator meeting a different decided opinion becomes
      undecided; otherwise nothing changes.
    """

    name = "undecided-pairwise"

    def __init__(self, num_opinions: int) -> None:
        if num_opinions < 1:
            raise ConfigurationError(
                f"need at least one opinion, got {num_opinions}"
            )
        self.num_opinions = int(num_opinions)
        self.num_states = self.num_opinions + 1

    def interact(
        self, initiator: int, responder: int, rng: np.random.Generator
    ) -> tuple[int, int]:
        undecided = self.num_opinions
        if initiator == undecided:
            return responder, responder
        if responder != undecided and responder != initiator:
            return undecided, responder
        return initiator, responder

    def output(self, state: int) -> int | None:
        return None if state == self.num_opinions else state


class VoterPairwise(PairwiseProtocol):
    """Sequential voter baseline: initiator copies the responder."""

    name = "voter-pairwise"

    def __init__(self, num_opinions: int) -> None:
        if num_opinions < 1:
            raise ConfigurationError(
                f"need at least one opinion, got {num_opinions}"
            )
        self.num_opinions = int(num_opinions)
        self.num_states = self.num_opinions

    def interact(
        self, initiator: int, responder: int, rng: np.random.Generator
    ) -> tuple[int, int]:
        return responder, responder
