"""Population-protocol substrate ([AAE07; AABBHKL23] related work)."""

from repro.protocols.base import PairwiseEngine, PairwiseProtocol
from repro.protocols.rules import (
    ApproximateMajority,
    UndecidedPairwise,
    VoterPairwise,
)

__all__ = [
    "ApproximateMajority",
    "PairwiseEngine",
    "PairwiseProtocol",
    "UndecidedPairwise",
    "VoterPairwise",
]
