"""Population-protocol substrate: sequential pairwise interactions.

The paper's related-work thread on undecided-state dynamics
([AAE07; AABBHKL23], Sections 1.1 and 2.5) lives in the *population
protocol* model: at each tick a uniformly random ordered pair of
distinct agents interacts, updating both states by a fixed rule.  This
module provides that substrate so the library can compare the paper's
synchronous gossip dynamics against the protocol-model consensus
literature on equal footing.

As with the synchronous engines, agents on the complete interaction
graph are exchangeable, so the state-count vector is a sufficient
statistic: a tick samples the initiator's state from ``counts / n``,
the responder's from the remaining ``n - 1`` agents, applies the
protocol's transition, and moves two units of mass.  This is an exact
simulation of the sequential chain.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ConfigurationError
from repro.seeding import RandomState, as_generator
from repro.state import validate_counts

__all__ = ["PairwiseProtocol", "PairwiseEngine"]


def _sample_state(counts: np.ndarray, target: float) -> int:
    """Index of the agent at cumulative position ``target``.

    Linear scan over the state space — protocols here have <= k + 1
    states with k small, and the scan beats building a distribution
    for ``rng.choice`` by an order of magnitude on this hot path.
    """
    acc = 0.0
    last = counts.size - 1
    for state in range(last):
        acc += counts[state]
        if target < acc:
            return state
    return last


class PairwiseProtocol(abc.ABC):
    """A transition rule over ordered pairs of agent states.

    ``num_states`` fixes the state space ``{0, ..., num_states - 1}``;
    :meth:`interact` maps (initiator, responder) to their new states.
    Rules may be randomized (they receive the engine's generator).
    """

    name: str = "abstract"
    num_states: int = 0

    @abc.abstractmethod
    def interact(
        self, initiator: int, responder: int, rng: np.random.Generator
    ) -> tuple[int, int]:
        """New (initiator, responder) states after one interaction."""

    def output(self, state: int) -> int | None:
        """Map an agent state to an output opinion (None = undecided).

        Consensus is defined on outputs: the engine reports convergence
        when every agent maps to the same non-None opinion.
        """
        return state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


class PairwiseEngine:
    """Exact sequential pairwise-interaction chain on state counts.

    Parameters
    ----------
    protocol:
        The interaction rule.
    counts:
        Initial state counts (length ``protocol.num_states``); total is
        the number of agents ``n >= 2``.
    seed:
        Anything accepted by :func:`repro.seeding.as_generator`.
    """

    def __init__(
        self,
        protocol: PairwiseProtocol,
        counts: np.ndarray,
        seed: RandomState = None,
    ) -> None:
        self.protocol = protocol
        self.counts = validate_counts(counts).copy()
        if self.counts.size != protocol.num_states:
            raise ConfigurationError(
                f"protocol {protocol.name!r} has "
                f"{protocol.num_states} states, got a length-"
                f"{self.counts.size} count vector"
            )
        self.num_agents = int(self.counts.sum())
        if self.num_agents < 2:
            raise ConfigurationError(
                "pairwise interactions need at least 2 agents"
            )
        self.rng = as_generator(seed)
        self.interaction_index = 0
        # Output-opinion bookkeeping for consensus detection.
        self._outputs = [
            protocol.output(state)
            for state in range(protocol.num_states)
        ]

    def step(self) -> np.ndarray:
        """Execute one interaction (one ordered pair).

        Hot path: protocols run for Theta(n log n) ticks, so sampling
        uses two uniforms and a short accumulation loop over the (tiny)
        state space instead of building a choice distribution per tick.
        """
        counts = self.counts
        n = self.num_agents
        u_init, u_resp = self.rng.random(2)
        initiator = _sample_state(counts, u_init * n)
        counts[initiator] -= 1
        responder = _sample_state(counts, u_resp * (n - 1))
        counts[responder] -= 1
        new_i, new_r = self.protocol.interact(
            initiator, responder, self.rng
        )
        counts[new_i] += 1
        counts[new_r] += 1
        self.interaction_index += 1
        return counts

    def run_interactions(self, interactions: int) -> np.ndarray:
        for _ in range(interactions):
            self.step()
        return self.counts

    def output_counts(self) -> dict[int | None, int]:
        """Agent counts grouped by output opinion."""
        grouped: dict[int | None, int] = {}
        for state, count in enumerate(self.counts):
            if count:
                key = self._outputs[state]
                grouped[key] = grouped.get(key, 0) + int(count)
        return grouped

    def is_consensus(self) -> bool:
        """All agents in one state whose output is a decided opinion.

        Equivalent to "all agents output the same non-None opinion" for
        every protocol here, because distinct states never share an
        output opinion; cheap enough to check every tick.
        """
        top = int(np.argmax(self.counts))
        return (
            int(self.counts[top]) == self.num_agents
            and self._outputs[top] is not None
        )

    def winner(self) -> int | None:
        grouped = self.output_counts()
        if len(grouped) == 1:
            (only,) = grouped
            return only
        return None

    def run_until_consensus(self, max_interactions: int) -> int | None:
        """Run to output consensus; returns the interaction count."""
        if self.is_consensus():
            return self.interaction_index
        while self.interaction_index < max_interactions:
            self.step()
            if self.is_consensus():
                return self.interaction_index
        return None

    @property
    def parallel_time(self) -> float:
        """Interactions divided by n — the standard parallel-time clock."""
        return self.interaction_index / self.num_agents

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PairwiseEngine({self.protocol.name}, n={self.num_agents}, "
            f"interactions={self.interaction_index})"
        )
