"""Unified simulation API: declarative specs, fluent builder, aggregates.

* :class:`SimulationSpec` — frozen, validated description of a
  replicated simulation (dynamics, initial config, engine, stopping
  rule, replicas, seed);
* :class:`Simulation` — fluent builder over the spec;
* :func:`execute` — run a spec on the right engine;
* :class:`ResultSet` — per-replica results plus vectorised aggregate
  accessors (quantiles, censoring, winner histogram, CSV export).
"""

from repro.simulation.builder import Simulation
from repro.simulation.results import ResultSet
from repro.simulation.run import execute
from repro.simulation.spec import (
    ENGINE_KINDS,
    INITIAL_FAMILIES,
    SimulationSpec,
    default_round_budget,
)

__all__ = [
    "ENGINE_KINDS",
    "INITIAL_FAMILIES",
    "ResultSet",
    "Simulation",
    "SimulationSpec",
    "default_round_budget",
    "execute",
]
