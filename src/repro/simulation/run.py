"""Execute a :class:`~repro.simulation.spec.SimulationSpec`.

One dispatcher replaces the hand-wired plumbing that every entry point
used to repeat: it resolves the dynamics and initial configuration,
derives per-replica seed streams, picks the engine, applies the stopping
rule, and wraps everything into a
:class:`~repro.simulation.results.ResultSet`.

Engine semantics
----------------
``population`` / ``agent``
    R sequential runs over spawned child streams (replica ``i`` always
    gets child ``i``, so results are order-independent).  The agent
    engine shuffles vertex identities per replica, which matters on
    non-complete graphs.
``async``
    One-vertex-per-tick chain; the round budget is interpreted as
    ``max_rounds * n`` ticks and the reported ``rounds`` is the
    synchronous-equivalent ``ceil(ticks / n)``, with the raw tick count
    in ``metrics["ticks"]``.
``batch``
    All R replicas advance in lockstep inside one
    :class:`~repro.engine.batch.BatchPopulationEngine` — the same chain
    per replica (equal in distribution to ``population``, not bitwise),
    one vectorised hot loop overall.
"""

from __future__ import annotations

import math

import numpy as np

from repro.engine.agent import AgentEngine
from repro.engine.asynchronous import AsyncPopulationEngine
from repro.engine.batch import BatchPopulationEngine
from repro.engine.population import PopulationEngine
from repro.engine.runner import RunResult, replicate, run_until_consensus
from repro.errors import ConsensusNotReached
from repro.graphs.complete import CompleteGraph
from repro.simulation.results import ResultSet
from repro.simulation.spec import SimulationSpec
from repro.state import counts_to_agents

__all__ = ["execute"]


def execute(spec: SimulationSpec) -> ResultSet:
    """Run every replica of ``spec`` and aggregate the results."""
    dynamics = spec.resolved_dynamics()
    counts = spec.initial_counts()
    budget = spec.round_budget()

    if spec.engine == "batch":
        engine = BatchPopulationEngine(
            dynamics, counts, num_replicas=spec.replicas, seed=spec.seed
        )
        results = engine.run_until_consensus(budget)
        censored = [r for r in results if not r.converged]
        if censored and spec.on_budget == "raise":
            raise ConsensusNotReached(
                budget,
                f"{len(censored)} of {spec.replicas} replicas did not "
                f"reach consensus within {budget} rounds",
            )
        return ResultSet(results, spec)

    if spec.engine == "population":

        def factory(rng: np.random.Generator) -> RunResult:
            engine = PopulationEngine(dynamics, counts, seed=rng)
            observers = _fresh_observers(spec)
            result = run_until_consensus(
                engine,
                max_rounds=budget,
                observers=observers,
                target=spec.target,
                on_budget=spec.on_budget,
            )
            return _attach_observers(result, observers)

    elif spec.engine == "agent":
        graph = spec.graph or CompleteGraph(spec.n)

        def factory(rng: np.random.Generator) -> RunResult:
            opinions = counts_to_agents(counts, rng=rng, shuffle=True)
            engine = AgentEngine(
                dynamics, graph, opinions, num_opinions=spec.k, seed=rng
            )
            observers = _fresh_observers(spec)
            result = run_until_consensus(
                engine,
                max_rounds=budget,
                observers=observers,
                target=spec.target,
                on_budget=spec.on_budget,
            )
            return _attach_observers(result, observers)

    else:  # async

        def factory(rng: np.random.Generator) -> RunResult:
            engine = AsyncPopulationEngine(dynamics, counts, seed=rng)
            max_ticks = budget * spec.n
            tick = engine.run_until_consensus(max_ticks)
            converged = tick is not None
            if not converged and spec.on_budget == "raise":
                raise ConsensusNotReached(
                    budget,
                    f"no consensus within {max_ticks} ticks "
                    f"({budget} synchronous-equivalent rounds)",
                )
            ticks = tick if converged else engine.tick_index
            return RunResult(
                converged=converged,
                rounds=int(math.ceil(ticks / spec.n)),
                winner=engine.winner() if converged else None,
                final_counts=engine.counts.copy(),
                metrics={"ticks": int(ticks)},
            )

    return ResultSet(
        replicate(factory, num_runs=spec.replicas, seed=spec.seed), spec
    )


def _fresh_observers(spec: SimulationSpec):
    """Build a new observer set for one replica (observers are stateful)."""
    if spec.observer_factory is None:
        return ()
    observers = spec.observer_factory()
    return tuple(observers)


def _attach_observers(result: RunResult, observers) -> RunResult:
    """Expose each replica's observers on its result.

    The spec's ``observer_factory`` makes fresh observers per replica,
    so the only handle the caller has on a replica's recorded series is
    its result: ``result.metrics["observers"]``.
    """
    if observers:
        result.metrics["observers"] = observers
    return result
