"""Execute a :class:`~repro.simulation.spec.SimulationSpec`.

One dispatcher replaces the hand-wired plumbing that every entry point
used to repeat — and, since the engine-registry refactor, it contains no
per-engine branching at all: the spec's ``engine`` string selects an
:class:`~repro.engine.registry.EngineInfo` whose ``run`` callable
resolves the dynamics/initial configuration/adversary, derives seed
streams, applies the stopping rule and returns the per-replica results.
This dispatcher only wraps them into a
:class:`~repro.simulation.results.ResultSet` and applies the uniform
``on_budget`` policy.  Registering a new engine (see
:func:`repro.engine.registry.register_engine`) is the only step needed
to make it runnable from specs, the fluent builder and the CLI.

Engine semantics
----------------
``population`` / ``agent``
    R sequential runs over spawned child streams (replica ``i`` always
    gets child ``i``, so results are order-independent).  The agent
    engine shuffles vertex identities per replica, which matters on
    non-complete graphs.
``async``
    One-vertex-per-tick chain; the round budget is interpreted as
    ``max_rounds * n`` ticks and the reported ``rounds`` is the
    synchronous-equivalent ``ceil(ticks / n)``, with the raw tick count
    in ``metrics["ticks"]``.
``async-batch``
    All R asynchronous replicas advance tick-by-tick in lockstep inside
    one :class:`~repro.engine.async_batch.AsyncBatchPopulationEngine`
    (same budget and reporting conventions as ``async``; equal in
    distribution to R sequential ``async`` runs, not bitwise).
``batch``
    All R replicas advance in lockstep inside one
    :class:`~repro.engine.batch.BatchPopulationEngine` — the same chain
    per replica (equal in distribution to ``population``, not bitwise),
    one vectorised hot loop overall.
``agent-batch``
    The graph counterpart of ``batch``: all R replicas advance as one
    ``(R, n)`` opinion matrix on the shared substrate inside a
    :class:`~repro.engine.agent_batch.BatchAgentEngine`, with vertex
    identities shuffled independently per replica row (equal in
    distribution to ``agent``, not bitwise).

Every engine accepts a spec-level adversary (applied after each round,
contract-checked); ``population``/``agent``/``batch`` accept a custom
``target`` stopping predicate.
"""

from __future__ import annotations

from repro.backends import degraded_kernels, resolve_backend, use_backend
from repro.engine.registry import get_engine
from repro.errors import ConsensusNotReached
from repro.simulation.results import ResultSet
from repro.simulation.spec import SimulationSpec

__all__ = ["execute"]


def execute(spec: SimulationSpec) -> ResultSet:
    """Run every replica of ``spec`` and aggregate the results.

    The spec's compute backend is resolved here and installed as the
    ambient backend (:func:`repro.backends.use_backend`) around the
    engine run — the single choke point through which every engine,
    experiment driver and service job picks up the spec's ``backend``
    without any per-engine wiring.
    """
    degraded_before = degraded_kernels()
    with use_backend(resolve_backend(spec.backend)):
        results = list(get_engine(spec.engine).run(spec))
    # Kernels quarantined *during this run* (runtime failure, graceful
    # fall-back to the reference path) are recorded on the result, so a
    # degraded execution is visible in the output, not only in a
    # warning that scrolled past.
    degraded = {
        key: reason
        for key, reason in degraded_kernels().items()
        if key not in degraded_before
    }
    if spec.on_budget == "raise":
        # All four built-in adapters raise from inside (so direct
        # get_engine(...).run(spec) callers see the same contract);
        # this uniform check covers third-party engines, so any
        # registered engine honours the policy without custom code.
        censored = sum(1 for r in results if not r.converged)
        if censored:
            budget = spec.round_budget()
            raise ConsensusNotReached(
                budget,
                f"{censored} of {spec.replicas} replicas did not "
                f"reach consensus within {budget} rounds",
            )
    return ResultSet(results, spec, degraded_kernels=degraded)
