"""Declarative simulation specifications.

A :class:`SimulationSpec` is the single description of "one simulation
study": which dynamics, which initial configuration, which engine, how
many replicas, which seed, when to stop.  It is frozen and validated at
construction — every entry point that used to wire engines, configs,
seeds and stopping rules together by hand (``measure_consensus_times``,
the sweep point functions, the CLI's ``simulate``) now builds one of
these and hands it to :func:`~repro.simulation.run.execute`.

Specs are *declarative*: dynamics may be given as a registry string and
the initial configuration as a family name plus parameters, so a spec
can be constructed from a config file or CLI flags without touching any
library object.  Passing instances (a :class:`~repro.core.base.Dynamics`
or an explicit count vector) is equally supported for programmatic use.
"""

from __future__ import annotations

import math
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.adversary import Adversary, make_adversary
from repro.backends import AUTO_BACKEND, resolve_backend
from repro.configs import (
    balanced,
    biased,
    dirichlet_random,
    geometric_gamma,
    two_block,
    zipf,
)
from repro.core.base import Dynamics
from repro.core.registry import make_dynamics
from repro.engine.registry import available_engines, get_engine
from repro.errors import ConfigurationError
from repro.graphs.base import Graph
from repro.seeding import RandomState
from repro.state import validate_counts

__all__ = [
    "ENGINE_KINDS",
    "INITIAL_FAMILIES",
    "SimulationSpec",
    "default_round_budget",
]

#: Engine kinds registered at import time (kept for backwards
#: compatibility; validation consults the live registry, so engines
#: registered later are accepted too).
ENGINE_KINDS = tuple(available_engines())

#: Initial-configuration families, by name, as ``f(n, k, **params)``.
INITIAL_FAMILIES: dict[str, Callable] = {
    "balanced": balanced,
    "zipf": zipf,
    "biased": biased,
    "two_block": two_block,
    "dirichlet": dirichlet_random,
    "geometric_gamma": geometric_gamma,
}

#: Families that draw randomness; their ``seed`` is derived from the
#: spec seed when not given explicitly, keeping specs reproducible.
_RANDOM_FAMILIES = frozenset({"dirichlet"})

#: Entropy tag separating the initial-configuration stream from the
#: replica streams spawned off the same spec seed.
_INITIAL_SEED_TAG = 0x1A17


def default_round_budget(n: int, k: int) -> int:
    """Generous default budget: ``200 (k + sqrt(n))`` rounds.

    Both paper dynamics finish in ``O(min(k, sqrt n) log n)`` resp.
    ``O(k log n)`` rounds w.h.p. (Theorem 1.1), so this budget censors
    only pathological runs while keeping runaway configurations bounded.
    """
    return 200 * (k + int(math.sqrt(n)))


@dataclass(frozen=True)
class SimulationSpec:
    """Frozen, validated description of a replicated simulation.

    Parameters
    ----------
    dynamics:
        Registry spec string (``"3-majority"``, ``"5-majority"``, ...)
        or a :class:`~repro.core.base.Dynamics` instance.
    n, k:
        Number of vertices and opinions.  Derived from ``counts`` when
        an explicit configuration is given.
    initial:
        Initial-configuration family name (key of
        :data:`INITIAL_FAMILIES`) or ``"custom"`` with ``counts``.
    initial_params:
        Extra keyword arguments for the family (e.g. ``exponent`` for
        ``zipf``).
    counts:
        Explicit initial count vector; sets ``initial="custom"``.
    engine:
        Any engine registered in :mod:`repro.engine.registry`:
        ``"population"`` (exact count chain), ``"agent"`` (per-vertex on
        a graph), ``"async"`` (one vertex per tick), ``"batch"``
        (vectorised multi-replica count matrix), ``"agent-batch"``
        (vectorised multi-replica opinion matrix on a graph) or
        ``"async-batch"`` (R asynchronous chains advanced tick-by-tick
        in lockstep).
    graph:
        Substrate for the graph-capable engines (``agent`` /
        ``agent-batch``); defaults to the complete graph.
    adversary:
        Optional F-bounded adversary ([GL18] model, paper Section 2.5)
        applied after every round: a strategy name
        (:func:`repro.adversary.available_adversaries`) with
        ``adversary_budget``, or an
        :class:`~repro.adversary.base.Adversary` instance.
    adversary_budget:
        Per-round corruption budget ``F``.  Required with a string
        ``adversary``; with an instance it is derived (and must match
        when given).
    replicas:
        Number of independent runs.
    seed:
        Root seed.  Must be spawnable (int, int tuple, SeedSequence or
        None) so replicas get reproducible independent streams; live
        generators are rejected because a spec must stay declarative.
    max_rounds:
        Round budget per run (ticks/n for the async engine).  Default:
        :func:`default_round_budget`.
    target:
        Optional stopping predicate on the count vector (population and
        agent engines only); replaces the consensus check.
    observer_factory:
        Zero-argument callable building fresh observers for each run
        (population and agent engines only) — observers are stateful,
        so each replica needs its own.
    on_budget:
        ``"return"`` (censored runs flagged, default) or ``"raise"``.
    backend:
        Compute backend for the run's hot-path kernels: a name from
        :func:`repro.backends.available_backends` (``"numpy"``,
        ``"numba"``) or ``"auto"`` (default: the ``REPRO_BACKEND``
        environment variable, else fail-closed auto-detection).
        Validated eagerly — naming an unavailable backend raises
        :class:`~repro.errors.BackendUnavailableError` at construction,
        not mid-run.  Backends change which compiled kernels execute,
        never the sampled law: results agree across backends in
        distribution (KS-tested), not bitwise.
    """

    dynamics: str | Dynamics = "3-majority"
    n: int | None = None
    k: int | None = None
    initial: str = "balanced"
    initial_params: Mapping = field(default_factory=dict)
    counts: np.ndarray | None = None
    engine: str = "population"
    graph: Graph | None = None
    adversary: str | Adversary | None = None
    adversary_budget: int | None = None
    replicas: int = 1
    seed: RandomState = 0
    max_rounds: int | None = None
    target: Callable[[np.ndarray], bool] | None = None
    observer_factory: Callable[[], Sequence] | None = None
    on_budget: str = "return"
    backend: str = AUTO_BACKEND

    def __post_init__(self) -> None:
        set_ = object.__setattr__
        engine_info = get_engine(self.engine)
        if self.backend is None:
            set_(self, "backend", AUTO_BACKEND)
        if not isinstance(self.backend, str):
            raise ConfigurationError(
                "spec backend must be a backend name or 'auto' (specs "
                f"are declarative), got {type(self.backend).__name__}"
            )
        # Fail fast: unknown names raise ConfigurationError, known but
        # uninstalled ones BackendUnavailableError ('auto' cannot fail).
        resolve_backend(self.backend)
        if self.replicas < 1:
            raise ConfigurationError(
                f"replicas must be at least 1, got {self.replicas}"
            )
        if self.on_budget not in ("return", "raise"):
            raise ConfigurationError(
                "on_budget must be 'return' or 'raise', got "
                f"{self.on_budget!r}"
            )
        if isinstance(self.seed, np.random.Generator):
            raise ConfigurationError(
                "a SimulationSpec seed must be declarative (int, int "
                "tuple, SeedSequence or None), not a live Generator"
            )
        set_(self, "initial_params", dict(self.initial_params))
        if self.counts is not None:
            counts = validate_counts(self.counts).copy()
            counts.flags.writeable = False
            set_(self, "counts", counts)
            set_(self, "initial", "custom")
            n, k = int(counts.sum()), int(counts.size)
            if self.n is not None and self.n != n:
                raise ConfigurationError(
                    f"counts sum to {n} but n={self.n} was given"
                )
            if self.k is not None and self.k != k:
                raise ConfigurationError(
                    f"counts has {k} opinions but k={self.k} was given"
                )
            set_(self, "n", n)
            set_(self, "k", k)
        else:
            if self.initial == "custom":
                raise ConfigurationError(
                    "initial='custom' requires an explicit counts vector"
                )
            if self.initial not in INITIAL_FAMILIES:
                raise ConfigurationError(
                    f"unknown initial family {self.initial!r}; known: "
                    f"{sorted(INITIAL_FAMILIES)} or 'custom'"
                )
            if self.n is None or self.k is None:
                raise ConfigurationError(
                    "n and k are required unless counts is given"
                )
            set_(self, "n", int(self.n))
            set_(self, "k", int(self.k))
        if self.max_rounds is not None and self.max_rounds < 0:
            raise ConfigurationError(
                f"max_rounds must be non-negative, got {self.max_rounds}"
            )
        # Capability checks come from the engine registry, so a new
        # engine declares what it supports instead of being hard-coded
        # here.
        if self.graph is not None and not engine_info.supports_graph:
            graph_capable = [
                name
                for name in available_engines()
                if get_engine(name).supports_graph
            ]
            raise ConfigurationError(
                f"engine={self.engine!r} cannot run on a graph "
                "substrate; graph-capable engines: "
                f"{graph_capable}"
            )
        if self.target is not None and not engine_info.supports_target:
            raise ConfigurationError(
                f"engine={self.engine!r} does not support a custom "
                "target predicate"
            )
        if (
            self.observer_factory is not None
            and not engine_info.supports_observers
        ):
            raise ConfigurationError(
                f"engine={self.engine!r} does not support observers"
            )
        self._validate_adversary(engine_info, set_)
        if (
            self.graph is not None
            and self.graph.num_vertices != self.n
        ):
            raise ConfigurationError(
                f"graph has {self.graph.num_vertices} vertices but "
                f"n={self.n}"
            )
        # Fail fast on unresolvable dynamics and bad family parameters:
        # a spec that constructs must be runnable.
        make_dynamics(self.dynamics)
        self.initial_counts()

    def _validate_adversary(self, engine_info, set_) -> None:
        """Normalise and validate the adversary dimension.

        After this, ``adversary_budget`` always equals the resolved
        adversary's ``F`` (or ``None`` without an adversary), so the
        budget is visible in ``repr`` and usable as a sweep cache key
        whether the adversary was given by name or as an instance.
        """
        if self.adversary is None:
            if self.adversary_budget is not None:
                raise ConfigurationError(
                    "adversary_budget was given without an adversary"
                )
            return
        if not engine_info.supports_adversary:
            raise ConfigurationError(
                f"engine={self.engine!r} does not support an adversary"
            )
        if isinstance(self.adversary, Adversary):
            if (
                self.adversary_budget is not None
                and int(self.adversary_budget) != self.adversary.budget
            ):
                raise ConfigurationError(
                    f"adversary_budget={self.adversary_budget} conflicts "
                    f"with the instance's budget "
                    f"{self.adversary.budget}"
                )
            set_(self, "adversary_budget", self.adversary.budget)
            return
        if self.adversary_budget is None:
            raise ConfigurationError(
                f"adversary={self.adversary!r} requires "
                "adversary_budget (the per-round F)"
            )
        set_(self, "adversary_budget", int(self.adversary_budget))
        # Fail fast on unknown strategy names / bad budgets.
        make_adversary(self.adversary, self.adversary_budget)

    # ------------------------------------------------------------------
    # Resolution helpers
    # ------------------------------------------------------------------
    def resolved_dynamics(self) -> Dynamics:
        """The dynamics instance this spec runs."""
        return make_dynamics(self.dynamics)

    def resolved_adversary(self) -> Adversary | None:
        """The adversary instance this spec runs, or ``None``."""
        if self.adversary is None:
            return None
        return make_adversary(self.adversary, self.adversary_budget)

    def initial_counts(self) -> np.ndarray:
        """Build the initial count vector (fresh, writable copy).

        Deterministic given the spec: random families (``dirichlet``)
        draw from a stream derived from the spec seed unless the caller
        pinned one in ``initial_params``, so repeated calls — and
        repeated runs of the same frozen spec — see the same start.
        """
        if self.counts is not None:
            return self.counts.copy()
        family = INITIAL_FAMILIES[self.initial]
        params = dict(self.initial_params)
        if (
            self.initial in _RANDOM_FAMILIES
            and "seed" not in params
            and self.seed is not None
        ):
            params["seed"] = self._initial_seed()
        try:
            return family(self.n, self.k, **params)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad parameters {self.initial_params!r} for initial "
                f"family {self.initial!r}: {exc}"
            ) from None

    def _initial_seed(self) -> np.random.SeedSequence:
        """Initial-configuration stream derived from the spec seed.

        Built from the seed's raw entropy plus a fixed tag, so it never
        collides with (or perturbs) the replica streams spawned from
        the same seed in :func:`~repro.simulation.run.execute`.
        """
        if isinstance(self.seed, np.random.SeedSequence):
            entropy = self.seed.entropy
            if entropy is None:
                parts = [0]
            elif isinstance(entropy, (tuple, list)):
                parts = [int(part) for part in entropy]
            else:
                parts = [int(entropy)]
        elif isinstance(self.seed, (tuple, list)):
            parts = [int(part) for part in self.seed]
        else:
            parts = [int(self.seed)]
        return np.random.SeedSequence(parts + [_INITIAL_SEED_TAG])

    def round_budget(self) -> int:
        """The effective per-run round budget."""
        if self.max_rounds is not None:
            return int(self.max_rounds)
        return default_round_budget(self.n, self.k)

    def run(self):
        """Execute this spec; see :func:`repro.simulation.run.execute`."""
        from repro.simulation.run import execute

        return execute(self)

    def describe(self) -> str:
        """One-line human summary (used by the CLI)."""
        name = (
            self.dynamics
            if isinstance(self.dynamics, str)
            else self.dynamics.name
        )
        extras = "".join(
            f", {key}={value}"
            for key, value in sorted(self.initial_params.items())
        )
        adversarial = ""
        if self.adversary is not None:
            strategy = (
                self.adversary
                if isinstance(self.adversary, str)
                else type(self.adversary).__name__
            )
            adversarial = (
                f", adversary={strategy}(F={self.adversary_budget})"
            )
        backend = (
            "" if self.backend == AUTO_BACKEND
            else f", backend={self.backend}"
        )
        substrate = (
            ""
            if self.graph is None
            else f", graph={type(self.graph).__name__}"
        )
        budget = (
            ""
            if self.max_rounds is None
            else f", max_rounds={self.max_rounds}"
        )
        return (
            f"{name} on n={self.n:,}, k={self.k} "
            f"({self.initial}{extras} start), engine={self.engine}, "
            f"replicas={self.replicas}, seed={self.seed}"
            f"{backend}{substrate}{budget}{adversarial}"
        )
