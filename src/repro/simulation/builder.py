"""Fluent builder over :class:`~repro.simulation.spec.SimulationSpec`.

The spec is the declarative ground truth; :class:`Simulation` is the
ergonomic way to assemble one inline:

>>> from repro import Simulation
>>> results = (
...     Simulation.of("3-majority")
...     .n(10_000).k(100)
...     .zipf(exponent=1.0)
...     .replicas(64)
...     .batch()
...     .seed(7)
...     .run()
... )
>>> results.num_converged
64

Every method mutates the builder and returns it (standard fluent style);
:meth:`build` freezes the accumulated settings into a validated spec and
:meth:`run` executes it, returning a
:class:`~repro.simulation.results.ResultSet`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

import numpy as np

from repro.adversary.base import Adversary
from repro.core.base import Dynamics
from repro.graphs.base import Graph
from repro.seeding import RandomState
from repro.simulation.results import ResultSet
from repro.simulation.spec import SimulationSpec

__all__ = ["Simulation"]


class Simulation:
    """Accumulates simulation settings; see module docstring for usage."""

    def __init__(self, dynamics: str | Dynamics = "3-majority") -> None:
        self._settings: dict = {"dynamics": dynamics}

    @classmethod
    def of(cls, dynamics: str | Dynamics) -> "Simulation":
        """Start a builder for the given dynamics (spec string or instance)."""
        return cls(dynamics)

    @classmethod
    def from_spec(cls, spec: SimulationSpec) -> "Simulation":
        """Seed a builder with every setting of an existing spec."""
        builder = cls(spec.dynamics)
        builder._settings = {
            "dynamics": spec.dynamics,
            "n": spec.n,
            "k": spec.k,
            "initial": spec.initial,
            "initial_params": dict(spec.initial_params),
            "counts": spec.counts,
            "engine": spec.engine,
            "graph": spec.graph,
            "adversary": spec.adversary,
            "adversary_budget": spec.adversary_budget,
            "replicas": spec.replicas,
            "seed": spec.seed,
            "max_rounds": spec.max_rounds,
            "target": spec.target,
            "observer_factory": spec.observer_factory,
            "on_budget": spec.on_budget,
            "backend": spec.backend,
        }
        if spec.initial == "custom":
            # counts drive n/k; passing them too would be redundant.
            builder._settings.pop("n"), builder._settings.pop("k")
        return builder

    # ------------------------------------------------------------------
    # Size and initial configuration
    # ------------------------------------------------------------------
    def n(self, num_vertices: int) -> "Simulation":
        self._settings["n"] = int(num_vertices)
        return self

    def k(self, num_opinions: int) -> "Simulation":
        self._settings["k"] = int(num_opinions)
        return self

    def initial(self, family: str, **params) -> "Simulation":
        """Choose any registered initial family with its parameters."""
        self._settings["initial"] = family
        self._settings["initial_params"] = params
        return self

    def balanced(self) -> "Simulation":
        return self.initial("balanced")

    def zipf(self, exponent: float = 1.0) -> "Simulation":
        return self.initial("zipf", exponent=exponent)

    def biased(self, margin: float) -> "Simulation":
        return self.initial("biased", margin=margin)

    def two_block(self, leader_fraction: float) -> "Simulation":
        return self.initial("two_block", leader_fraction=leader_fraction)

    def counts(self, counts: np.ndarray) -> "Simulation":
        """Use an explicit initial count vector (n and k are derived)."""
        self._settings["counts"] = counts
        self._settings.pop("n", None)
        self._settings.pop("k", None)
        return self

    # ------------------------------------------------------------------
    # Engine selection
    # ------------------------------------------------------------------
    def engine(self, kind: str) -> "Simulation":
        self._settings["engine"] = kind
        return self

    def population(self) -> "Simulation":
        return self.engine("population")

    def batch(self) -> "Simulation":
        """Vectorised batch replication, substrate-aware.

        On a graph workload — a graph was set, or :meth:`on_graph`
        selected the agent engine — this resolves to the ``agent-batch``
        engine, so ``on_graph(...).batch()`` batches the graph chain
        instead of silently dropping the substrate; otherwise it is the
        population-level ``batch`` engine.
        """
        if (
            self._settings.get("graph") is not None
            or self._settings.get("engine") == "agent"
        ):
            return self.engine("agent-batch")
        return self.engine("batch")

    def asynchronous(self) -> "Simulation":
        return self.engine("async")

    def on_graph(self, graph: Graph | None = None) -> "Simulation":
        """Use a graph-capable engine, optionally on a specific graph.

        Selects the sequential ``agent`` engine — unless a batch engine
        was already chosen, in which case the batched graph engine is
        kept, so ``batch().on_graph(g)`` and ``on_graph(g).batch()``
        resolve identically to ``agent-batch``.
        """
        self._settings["graph"] = graph
        if self._settings.get("engine") in ("batch", "agent-batch"):
            return self.engine("agent-batch")
        return self.engine("agent")

    # ------------------------------------------------------------------
    # Adversarial model
    # ------------------------------------------------------------------
    def adversary(
        self,
        strategy: "str | Adversary | None",
        budget: int | None = None,
    ) -> "Simulation":
        """Attack the run with an F-bounded adversary ([GL18] model).

        ``strategy`` is a registered name (``"random"``,
        ``"runner-up"``, ``"revive-weakest"``) with ``budget`` the
        per-round ``F``, or an :class:`~repro.adversary.base.Adversary`
        instance (budget derived).  Pass ``None`` to clear.
        """
        self._settings["adversary"] = strategy
        self._settings["adversary_budget"] = budget
        return self

    # ------------------------------------------------------------------
    # Replication, seeding, stopping
    # ------------------------------------------------------------------
    def replicas(self, num_runs: int) -> "Simulation":
        self._settings["replicas"] = int(num_runs)
        return self

    def seed(self, seed: RandomState) -> "Simulation":
        self._settings["seed"] = seed
        return self

    def max_rounds(self, budget: int) -> "Simulation":
        self._settings["max_rounds"] = int(budget)
        return self

    def stop_when(
        self, target: Callable[[np.ndarray], bool]
    ) -> "Simulation":
        """Replace the consensus check with a custom predicate."""
        self._settings["target"] = target
        return self

    def observe_with(
        self, observer_factory: Callable[[], Sequence]
    ) -> "Simulation":
        """Attach per-replica observers (factory is called per run)."""
        self._settings["observer_factory"] = observer_factory
        return self

    def on_budget(self, policy: str) -> "Simulation":
        """``"return"`` (default) or ``"raise"`` on budget exhaustion."""
        self._settings["on_budget"] = policy
        return self

    def backend(self, name: str) -> "Simulation":
        """Pick the compute backend for the hot-path kernels.

        ``name`` is a registered backend (``"numpy"``, ``"numba"``) or
        ``"auto"`` (the default: ``REPRO_BACKEND`` env var, else
        fail-closed auto-detection).  Validated at :meth:`build`;
        backends never change the sampled law, only how fast it runs.
        """
        self._settings["backend"] = name
        return self

    # ------------------------------------------------------------------
    # Terminal operations
    # ------------------------------------------------------------------
    def build(self) -> SimulationSpec:
        """Freeze into a validated :class:`SimulationSpec`."""
        return SimulationSpec(**self._settings)

    def run(self) -> ResultSet:
        """Build and execute, returning the aggregated results."""
        return self.build().run()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(
            f"{key}={value!r}"
            for key, value in self._settings.items()
            if value is not None
        )
        return f"Simulation({inner})"
