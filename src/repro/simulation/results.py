"""Aggregate results of a replicated simulation.

:class:`ResultSet` wraps the per-replica
:class:`~repro.engine.runner.RunResult` list that every execution path
produces and adds the vectorised accessors the analysis layer keeps
re-deriving by hand: consensus-time quantiles with explicit censoring,
winner histograms, and CSV/dict export.  It is a
:class:`collections.abc.Sequence`, so existing helpers that expect a
plain list of results (e.g. ``repro.analysis.estimators``) keep working
unchanged.
"""

from __future__ import annotations

import csv
from collections.abc import Iterator, Sequence
from pathlib import Path

import numpy as np

from repro.engine.runner import RunResult

__all__ = ["ResultSet"]


class ResultSet(Sequence):
    """Per-replica run results plus vectorised aggregate views.

    Parameters
    ----------
    results:
        One :class:`~repro.engine.runner.RunResult` per replica.
    spec:
        The :class:`~repro.simulation.spec.SimulationSpec` that produced
        them, when available (kept for provenance; ``summary()`` and
        ``winner_histogram()`` use it).
    degraded_kernels:
        ``{"backend/kernel": reason}`` for accelerated kernels that
        failed at runtime during this execution and were quarantined —
        the run completed on the reference path, and this records that
        fact on the result itself (empty in the normal case).
    """

    def __init__(
        self,
        results: Sequence[RunResult],
        spec=None,
        *,
        degraded_kernels: dict | None = None,
    ) -> None:
        # Empty sets are allowed (an empty slice of a list is a list);
        # the aggregate accessors degrade to NaN / zero counts.
        self._results = tuple(results)
        self.spec = spec
        self.degraded_kernels = dict(degraded_kernels or {})

    # ------------------------------------------------------------------
    # Sequence protocol — drop-in for list[RunResult]
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self._results)

    def __getitem__(self, index):
        picked = self._results[index]
        if isinstance(index, slice):
            return ResultSet(
                picked,
                spec=self.spec,
                degraded_kernels=self.degraded_kernels,
            )
        return picked

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultSet({len(self)} runs, "
            f"{self.num_converged} converged)"
        )

    # ------------------------------------------------------------------
    # Vectorised accessors
    # ------------------------------------------------------------------
    @property
    def consensus_times(self) -> np.ndarray:
        """Per-replica consensus times; censored runs are NaN.

        NaN (rather than dropping) keeps the array aligned with the
        replica index and makes censoring visible in downstream
        statistics — use :func:`numpy.nanmedian` & co., or filter.
        """
        return np.asarray(
            [
                float(r.rounds) if r.converged else float("nan")
                for r in self._results
            ],
            dtype=np.float64,
        )

    @property
    def rounds(self) -> np.ndarray:
        """Rounds executed per replica (budget value when censored)."""
        return np.asarray(
            [r.rounds for r in self._results], dtype=np.int64
        )

    @property
    def num_converged(self) -> int:
        return sum(1 for r in self._results if r.converged)

    @property
    def num_censored(self) -> int:
        """Replicas that exhausted their budget without consensus."""
        return len(self) - self.num_converged

    @property
    def converged_fraction(self) -> float:
        if not self._results:
            return float("nan")
        return self.num_converged / len(self)

    @property
    def median(self) -> float:
        """Median consensus time over converged runs (NaN if none)."""
        return float(self.quantiles(0.5)[0])

    def quantiles(self, q) -> np.ndarray:
        """Consensus-time quantiles over *converged* runs.

        ``q`` is a scalar or sequence in ``[0, 1]``; censored runs are
        excluded (check :attr:`num_censored` before trusting tails).
        Returns NaN everywhere when no run converged.
        """
        qs = np.atleast_1d(np.asarray(q, dtype=np.float64))
        times = self.consensus_times
        finite = times[~np.isnan(times)]
        if finite.size == 0:
            return np.full(qs.shape, float("nan"))
        return np.quantile(finite, qs)

    def winner_histogram(self, num_opinions: int | None = None) -> np.ndarray:
        """How often each opinion won, as a length-``k`` int array.

        ``num_opinions`` defaults to the spec's ``k`` (or the maximum
        winner label + 1).  Runs without a winner — censored, or
        stopped by a ``target`` predicate before strict consensus — are
        simply absent from the histogram, so its sum can be smaller
        than :attr:`num_converged`.
        """
        winners = [
            r.winner for r in self._results if r.winner is not None
        ]
        if num_opinions is None:
            if self.spec is not None:
                num_opinions = self.spec.k
            else:
                num_opinions = (max(winners) + 1) if winners else 1
        return np.bincount(
            np.asarray(winners, dtype=np.int64),
            minlength=num_opinions,
        ).astype(np.int64)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def to_dicts(self) -> list[dict]:
        """One plain dict per replica (JSON-friendly)."""
        return [
            {
                "replica": index,
                "converged": bool(r.converged),
                "rounds": int(r.rounds),
                "winner": None if r.winner is None else int(r.winner),
            }
            for index, r in enumerate(self._results)
        ]

    def to_csv(self, path: str | Path) -> Path:
        """Write the per-replica table as CSV; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        rows = self.to_dicts()
        with path.open("w", newline="") as handle:
            writer = csv.DictWriter(
                handle, fieldnames=["replica", "converged", "rounds", "winner"]
            )
            writer.writeheader()
            writer.writerows(rows)
        return path

    def summary(self) -> str:
        """Multi-line human summary of the aggregate."""
        lines = []
        if self.spec is not None:
            lines.append(self.spec.describe())
        lines.append(
            f"{len(self)} runs, {self.num_converged} converged, "
            f"{self.num_censored} censored"
        )
        if self.num_converged:
            q10, q50, q90 = self.quantiles((0.1, 0.5, 0.9))
            lines.append(
                f"consensus time: median {q50:.0f}, "
                f"q10 {q10:.0f}, q90 {q90:.0f}"
            )
            histogram = self.winner_histogram()
            decided = int(histogram.sum())
            # Target-stopped runs may converge without a strict-
            # consensus winner; reporting over num_converged would then
            # misattribute them to opinion 0.
            if decided:
                top = int(histogram.argmax())
                lines.append(
                    f"winners: opinion {top} won "
                    f"{int(histogram[top])}/{decided}"
                )
        return "\n".join(lines)
