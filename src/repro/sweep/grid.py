"""Parameter-grid sweeps with on-disk caching and resume.

The experiment modules cover the paper's artefacts; this driver is for
*ad-hoc* exploration — "consensus time over this (n, k, dynamics) grid,
medians over m seeds, and don't redo points I already have".  It backs
the examples and gives downstream users a one-call sweep API:

>>> from repro.sweep import SweepSpec, run_sweep
>>> spec = SweepSpec(
...     grid={"n": [1024, 4096], "k": [4, 16, 64]},
...     num_runs=5,
... )
>>> table = run_sweep(spec, cache_dir="sweeps/my-study")   # doctest: +SKIP

Each grid point is measured by a *point function* (the default measures
the consensus time of a dynamics from a balanced start; any callable
``(params, rng) -> float`` works) and cached as one JSON file keyed by
the point's parameters, so interrupted sweeps resume for free.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import json
from collections.abc import Callable, Mapping
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.adversary import near_consensus_target
from repro.engine import AgentEngine, PopulationEngine, run_until_consensus
from repro.errors import ConfigurationError
from repro.graphs import make_graph
from repro.seeding import RandomState, spawn_generators
from repro.simulation import SimulationSpec
from repro.state import counts_to_agents

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "consensus_time_point",
    "run_sweep",
    "spec_from_params",
]

PointFunction = Callable[[Mapping, np.random.Generator], float]


@functools.lru_cache(maxsize=32)
def _cached_graph(name, n, degree, edge_probability, graph_seed):
    """Memoised substrate construction for sweep points.

    Every replica of a graph point (and every point sharing the
    substrate dimension) sees the *same* deterministic edge set, so
    rebuilding it per run would only burn generator time — at sweep
    sizes the networkx-backed samplers can rival the simulation itself.
    Keyed by the flat JSON-level parameters; each worker process keeps
    its own cache.
    """
    return make_graph(
        name,
        n,
        degree=degree,
        edge_probability=edge_probability,
        seed=graph_seed,
    )


def spec_from_params(params: Mapping) -> SimulationSpec:
    """Build a validated simulation spec from a flat grid-point dict.

    Recognised keys: ``dynamics`` (default ``"3-majority"``), ``n``,
    ``k``, ``initial`` (family name, default ``"balanced"``),
    ``initial_params`` (dict of family parameters), ``max_rounds``,
    ``adversary`` (strategy name), ``adversary_budget`` (per-round F —
    a natural grid axis for tolerance sweeps), and the graph substrate
    dimension: ``graph`` (a :data:`repro.graphs.GRAPH_FAMILIES` name),
    ``degree`` (random-regular — the grid axis of "consensus time vs.
    degree" studies), ``edge_probability`` (Erdős–Rényi) and
    ``graph_seed`` (edge-set seed, default 0, kept separate from the
    run seeds so every replica of a point sees the *same* substrate).
    All of them are JSON-serialisable, so a point's spec is derivable
    from its cache entry and — crucially for the point cache — points
    with different substrates, strategies or budgets hash to different
    keys, because the full parameter dict is the cache key.  Graph
    points run on the ``agent`` engine (the point function measures one
    replica at a time); non-graph points keep the exact population
    chain.  Validation happens here, eagerly, rather than deep inside a
    half-finished sweep.
    """
    graph = None
    engine = "population"
    if "graph" in params and params["graph"] != "complete":
        graph = _cached_graph(
            str(params["graph"]),
            int(params["n"]),
            int(params["degree"]) if "degree" in params else None,
            (
                float(params["edge_probability"])
                if "edge_probability" in params
                else None
            ),
            int(params.get("graph_seed", 0)),
        )
        engine = "agent"
    spec = SimulationSpec(
        dynamics=params.get("dynamics", "3-majority"),
        n=int(params["n"]),
        k=int(params["k"]),
        initial=params.get("initial", "balanced"),
        initial_params=params.get("initial_params", {}),
        engine=engine,
        graph=graph,
        max_rounds=(
            int(params["max_rounds"]) if "max_rounds" in params else None
        ),
        adversary=params.get("adversary"),
        adversary_budget=(
            int(params["adversary_budget"])
            if "adversary_budget" in params
            else None
        ),
    )
    return spec


def consensus_time_point(
    params: Mapping, rng: np.random.Generator
) -> float:
    """Default point function: consensus time of one run.

    Builds a :class:`~repro.simulation.spec.SimulationSpec` via
    :func:`spec_from_params` and measures a single run on the caller's
    stream — the exact population chain on the complete substrate, the
    agent-level chain (shuffled vertex identities) on graph points.
    Returns NaN when the round budget runs out, so censored points are
    visible rather than silently dropped.

    Adversarial points (``adversary`` + ``adversary_budget`` in
    ``params``) run the corrupted chain; since an F >= 1 adversary can
    trivially keep a stray vertex alive forever, such points measure the
    first round the leader reaches the
    :func:`~repro.adversary.tolerance.near_consensus_threshold`
    (all but 4F vertices, floored at a strict majority) instead of
    strict consensus.
    """
    spec = spec_from_params(params)
    adversary = spec.resolved_adversary()
    target = None
    if adversary is not None and adversary.budget > 0:
        target = near_consensus_target(spec.n, adversary.budget)
    if spec.graph is not None:
        opinions = counts_to_agents(
            spec.initial_counts(), rng=rng, shuffle=True
        )
        engine = AgentEngine(
            spec.resolved_dynamics(),
            spec.graph,
            opinions,
            num_opinions=spec.k,
            seed=rng,
            adversary=adversary,
        )
    else:
        engine = PopulationEngine(
            spec.resolved_dynamics(),
            spec.initial_counts(),
            seed=rng,
            adversary=adversary,
        )
    result = run_until_consensus(
        engine, max_rounds=spec.round_budget(), target=target
    )
    return float(result.rounds) if result.converged else float("nan")


@dataclass(frozen=True)
class SweepPoint:
    """One measured grid point: parameters plus per-seed values."""

    params: dict
    values: tuple[float, ...]

    @property
    def median(self) -> float:
        finite = [v for v in self.values if not np.isnan(v)]
        return float(np.median(finite)) if finite else float("nan")

    @property
    def censored(self) -> int:
        """Number of runs that exhausted their budget."""
        return sum(1 for v in self.values if np.isnan(v))


@dataclass
class SweepSpec:
    """A cartesian parameter grid and replication settings.

    ``grid`` maps parameter names to value lists; every combination is
    one point.  ``fixed`` parameters are merged into every point.
    """

    grid: dict[str, list]
    num_runs: int = 3
    seed: RandomState = 0
    fixed: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.grid:
            raise ConfigurationError("sweep grid must not be empty")
        if self.num_runs < 1:
            raise ConfigurationError("num_runs must be at least 1")
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise ConfigurationError(
                f"parameters {sorted(overlap)} appear in both grid "
                "and fixed"
            )

    def points(self) -> list[dict]:
        """All grid points in deterministic order."""
        names = sorted(self.grid)
        combos = itertools.product(*(self.grid[name] for name in names))
        return [
            {**self.fixed, **dict(zip(names, combo))} for combo in combos
        ]


def _point_key(params: Mapping) -> str:
    """Stable filename stem for a point's parameter dict."""
    canon = json.dumps(
        {str(k): params[k] for k in sorted(params)}, sort_keys=True
    )
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def _measure_point(
    point_function: PointFunction,
    params: Mapping,
    entropy: list[int],
    num_runs: int,
) -> tuple[float, ...]:
    """Evaluate one grid point across its replica streams.

    Module-level (not a closure) so that ``workers > 1`` can ship it to
    a worker process; ``point_function`` must therefore be picklable —
    the default and any other module-level function is.
    """
    point_seed = np.random.SeedSequence(entropy)
    return tuple(
        float(point_function(params, rng))
        for rng in spawn_generators(point_seed, num_runs)
    )


def run_sweep(
    spec: SweepSpec,
    point_function: PointFunction = consensus_time_point,
    cache_dir: str | Path | None = None,
    workers: int | None = None,
) -> list[SweepPoint]:
    """Measure every grid point, loading cached points where present.

    Seeds are derived per point from ``(spec.seed entropy, point key)``
    so a point's result is independent of the rest of the grid — adding
    grid values later never changes previously measured points.

    ``workers`` (when > 1) evaluates uncached points process-parallel
    with :class:`concurrent.futures.ProcessPoolExecutor`; results and
    cache files are identical to a sequential run because every point
    owns its seed stream.  ``point_function`` must be picklable
    (module-level) in that case.
    """
    if workers is not None and workers < 1:
        raise ConfigurationError(
            f"workers must be a positive count, got {workers}"
        )
    cache = Path(cache_dir) if cache_dir is not None else None
    if cache is not None:
        cache.mkdir(parents=True, exist_ok=True)
    base_entropy = _seed_entropy(spec.seed)

    results: list[SweepPoint | None] = []
    pending: list[tuple[int, dict, Path | None, list[int]]] = []
    for params in spec.points():
        key = _point_key(params)
        cache_file = cache / f"{key}.json" if cache is not None else None
        if cache_file is not None and cache_file.exists():
            payload = json.loads(cache_file.read_text())
            results.append(
                SweepPoint(
                    params=payload["params"],
                    values=tuple(payload["values"]),
                )
            )
            continue
        entropy = base_entropy + [int(key[:12], 16)]
        results.append(None)
        pending.append((len(results) - 1, dict(params), cache_file, entropy))

    def _finish(entry, values) -> None:
        # Cache files are written per point, as soon as its values are
        # in hand, so an interrupted sweep keeps every finished point.
        index, params, cache_file, _ = entry
        point = SweepPoint(params=params, values=values)
        if cache_file is not None:
            cache_file.write_text(
                json.dumps(
                    {"params": point.params, "values": list(values)}
                )
            )
        results[index] = point

    if workers is not None and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(
                    _measure_point,
                    point_function,
                    params,
                    entropy,
                    spec.num_runs,
                )
                for _, params, _, entropy in pending
            ]
            for entry, future in zip(pending, futures):
                _finish(entry, future.result())
    else:
        for entry in pending:
            _, params, _, entropy = entry
            _finish(
                entry,
                _measure_point(
                    point_function, params, entropy, spec.num_runs
                ),
            )
    return results  # type: ignore[return-value]


def _seed_entropy(seed: RandomState) -> list[int]:
    """Canonical integer entropy of a sweep seed.

    Tuple seeds contribute *every* component in order — summing them
    (as an earlier revision did) collapsed e.g. ``(1, 2)`` and ``(2, 1)``
    into the same per-point stream.  Int seeds keep their historical
    single-entry entropy, so existing caches with int seeds still match
    their recorded values.
    """
    if seed is None:
        return [0]
    if isinstance(seed, (int, np.integer)):
        return [int(seed)]
    if isinstance(seed, (tuple, list)) and all(
        isinstance(part, (int, np.integer)) for part in seed
    ):
        return [int(part) for part in seed]
    raise ConfigurationError(
        "sweep seeds must be ints or int tuples (cache keys must be "
        f"stable), got {type(seed).__name__}"
    )
