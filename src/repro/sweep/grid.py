"""Parameter-grid sweeps with on-disk caching and resume.

The experiment modules cover the paper's artefacts; this driver is for
*ad-hoc* exploration — "consensus time over this (n, k, dynamics) grid,
medians over m seeds, and don't redo points I already have".  It backs
the examples and gives downstream users a one-call sweep API:

>>> from repro.sweep import SweepSpec, run_sweep
>>> spec = SweepSpec(
...     grid={"n": [1024, 4096], "k": [4, 16, 64]},
...     num_runs=5,
... )
>>> table = run_sweep(spec, cache_dir="sweeps/my-study")   # doctest: +SKIP

Each grid point is measured by a *point function* (the default measures
the consensus time of a dynamics from a balanced start; any callable
``(params, rng) -> float`` works) and cached as one JSON file keyed by
the point's parameters, so interrupted sweeps resume for free.

Measurement is **batch-first**: by default a point's ``num_runs``
replicas are measured in one vectorised engine run
(``batch`` / ``agent-batch`` / ``async-batch``, via
:func:`consensus_times_point_batch`) instead of ``num_runs`` sequential
runs.  Pass ``measure="sequential"`` to :func:`run_sweep` for the
historical one-engine-per-replica path.  The two modes sample the same
chains (equal in distribution, regression-tested) but consume
randomness differently — batched replicas share one stream — so their
cache keys carry a versioned measurement-mode field and are never
interchangeable: a batched sweep never reads values from an old
sequential cache, and vice versa.
"""

from __future__ import annotations

import functools
import hashlib
import itertools
import json
import math
import os
import time
from collections.abc import Callable, Mapping
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.adversary import near_consensus_target
from repro.backends import AUTO_BACKEND, resolve_backend, use_backend
from repro.engine import (
    AgentEngine,
    AsyncPopulationEngine,
    PopulationEngine,
    get_engine,
    run_until_consensus,
)
from repro.errors import (
    CacheIntegrityError,
    ConfigurationError,
    SweepPointError,
)
from repro.faults import fault_point
from repro.graphs import make_graph
from repro.provenance import canon_hash, git_revision, record_artifact
from repro.seeding import RandomState, spawn_generators
from repro.simulation import SimulationSpec, execute

from repro.state import counts_to_agents

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "consensus_time_point",
    "consensus_times_point_batch",
    "run_sweep",
    "spec_from_params",
]

PointFunction = Callable[[Mapping, np.random.Generator], float]

#: Batched point functions measure a whole grid point at once:
#: ``(params, num_runs, seed) -> per-replica values`` where ``seed`` is
#: declarative (an int tuple), so the callable stays picklable for the
#: worker pool.
BatchPointFunction = Callable[[Mapping, int, tuple], tuple]

#: Sequential chain families a grid point may name via its ``engine``
#: parameter, mapped to the vectorised sibling that measures the same
#: chain when the sweep runs with ``measure="batch"``.
_BATCH_SIBLING = {
    "population": "batch",
    "agent": "agent-batch",
    "async": "async-batch",
}


@functools.lru_cache(maxsize=32)
def _cached_graph(name, n, degree, edge_probability, graph_seed):
    """Memoised substrate construction for sweep points.

    Every replica of a graph point (and every point sharing the
    substrate dimension) sees the *same* deterministic edge set, so
    rebuilding it per run would only burn generator time — at sweep
    sizes the networkx-backed samplers can rival the simulation itself.
    Keyed by the flat JSON-level parameters; each worker process keeps
    its own cache.
    """
    return make_graph(
        name,
        n,
        degree=degree,
        edge_probability=edge_probability,
        seed=graph_seed,
    )


def spec_from_params(
    params: Mapping,
    *,
    replicas: int = 1,
    seed: RandomState = 0,
    measure: str = "sequential",
) -> SimulationSpec:
    """Build a validated simulation spec from a flat grid-point dict.

    Recognised keys: ``dynamics`` (default ``"3-majority"``), ``n``,
    ``k``, ``initial`` (family name, default ``"balanced"``),
    ``initial_params`` (dict of family parameters), ``max_rounds``,
    ``engine`` (the sequential chain family to measure —
    ``"population"`` (default), ``"agent"`` or ``"async"``; the
    one-vertex-per-tick [CMRSS25] chain becomes a grid dimension this
    way), ``adversary`` (strategy name), ``adversary_budget``
    (per-round F — a natural grid axis for tolerance sweeps), and the
    graph substrate dimension: ``graph`` (a
    :data:`repro.graphs.GRAPH_FAMILIES` name), ``degree``
    (random-regular — the grid axis of "consensus time vs. degree"
    studies), ``edge_probability`` (Erdős–Rényi) and ``graph_seed``
    (edge-set seed, default 0, kept separate from the run seeds so
    every replica of a point sees the *same* substrate), and
    ``backend`` (a compute backend name or ``"auto"``, default
    ``"auto"`` — sweeping it benchmarks backends against each other;
    since backends differ in realisation, not law, the key-bearing
    params dict keeps backend points cached separately).  All of them
    are JSON-serialisable, so a point's spec is derivable from its
    cache entry and — crucially for the point cache — points with
    different substrates, chain families, strategies or budgets hash
    to different keys, because the full parameter dict is the cache
    key.  Graph points run the agent-level chain; non-graph points
    default to the exact population chain.  Validation happens here,
    eagerly, rather than deep inside a half-finished sweep.

    ``measure="batch"`` swaps each chain family for its vectorised
    sibling (``batch`` / ``agent-batch`` / ``async-batch``) with
    ``replicas`` rows and the declarative ``seed``; adversarial batch
    points additionally carry the near-consensus ``target`` on engines
    that support per-row targets, mirroring what the sequential point
    function passes to ``run_until_consensus``.  The *initial
    configuration* is always derived from the params alone (the batched
    spec receives the explicit count vector the sequential-equivalent
    spec would build), so random initial families like ``dirichlet``
    start both measurement modes — and every replica — from the same
    configuration; the measurement ``seed`` only drives the chains.
    """
    if measure not in ("sequential", "batch"):
        raise ConfigurationError(
            f"measure must be 'sequential' or 'batch', got {measure!r}"
        )
    engine = params.get("engine")
    if engine is not None and engine not in _BATCH_SIBLING:
        raise ConfigurationError(
            f"sweep points measure a sequential chain family; engine "
            f"must be one of {sorted(_BATCH_SIBLING)}, got {engine!r}"
        )
    graph = None
    if "graph" in params and params["graph"] != "complete":
        if engine not in (None, "agent"):
            raise ConfigurationError(
                f"graph points run the agent chain, got engine={engine!r}"
            )
        graph = _cached_graph(
            str(params["graph"]),
            int(params["n"]),
            int(params["degree"]) if "degree" in params else None,
            (
                float(params["edge_probability"])
                if "edge_probability" in params
                else None
            ),
            int(params.get("graph_seed", 0)),
        )
        engine = "agent"
    elif engine is None:
        engine = "population"
    counts = None
    if measure == "batch":
        engine = _BATCH_SIBLING[engine]
        # Pin the start to what sequential measurement uses: the
        # sequential point function builds its spec from the params
        # alone (default spec seed), so random initial families
        # (dirichlet) derive their configuration from that fixed
        # stream.  The batched spec carries a *measurement* seed, which
        # must not leak into the start — hand it the explicit counts
        # of the sequential-equivalent spec instead.
        counts = spec_from_params(params).initial_counts()
    target = None
    budget = (
        int(params["adversary_budget"])
        if "adversary_budget" in params
        else None
    )
    if (
        measure == "batch"
        and params.get("adversary") is not None
        and budget
        and get_engine(engine).supports_target
    ):
        # Same stopping rule the sequential point function applies by
        # hand: an F >= 1 adversary can stall strict consensus forever,
        # so adversarial points measure the near-consensus threshold.
        target = near_consensus_target(int(params["n"]), budget)
    spec = SimulationSpec(
        dynamics=params.get("dynamics", "3-majority"),
        n=int(params["n"]),
        k=int(params["k"]),
        initial=params.get("initial", "balanced"),
        initial_params=params.get("initial_params", {}),
        counts=counts,
        engine=engine,
        graph=graph,
        replicas=int(replicas),
        seed=seed,
        max_rounds=(
            int(params["max_rounds"]) if "max_rounds" in params else None
        ),
        target=target,
        adversary=params.get("adversary"),
        adversary_budget=budget,
        backend=str(params.get("backend", AUTO_BACKEND)),
    )
    return spec


def consensus_time_point(
    params: Mapping, rng: np.random.Generator
) -> float:
    """Default point function: consensus time of one run.

    Builds a :class:`~repro.simulation.spec.SimulationSpec` via
    :func:`spec_from_params` and measures a single run on the caller's
    stream — the exact population chain on the complete substrate, the
    agent-level chain (shuffled vertex identities) on graph points, the
    one-vertex-per-tick [CMRSS25] chain (reported in synchronous-
    equivalent rounds) on ``engine="async"`` points.  Returns NaN when
    the round budget runs out, so censored points are visible rather
    than silently dropped.

    Adversarial points (``adversary`` + ``adversary_budget`` in
    ``params``) run the corrupted chain; since an F >= 1 adversary can
    trivially keep a stray vertex alive forever, such points measure the
    first round the leader reaches the
    :func:`~repro.adversary.tolerance.near_consensus_threshold`
    (all but 4F vertices, floored at a strict majority) instead of
    strict consensus.
    """
    spec = spec_from_params(params)
    adversary = spec.resolved_adversary()
    # Sequential points drive engines directly (no execute() dispatch),
    # so the spec's backend is installed here; the engines' hot-path
    # kernels pick it up from the ambient context.
    with use_backend(resolve_backend(spec.backend)):
        if spec.engine == "async":
            # One-vertex-per-tick chain: the round budget buys n ticks
            # per round and the measurement is reported in synchronous-
            # equivalent rounds (ceil(ticks / n)), matching the async
            # registry adapter.  The async engine has no custom-target
            # support, so adversarial async points measure strict
            # consensus (a stalling adversary surfaces as a censored
            # NaN).
            engine = AsyncPopulationEngine(
                spec.resolved_dynamics(),
                spec.initial_counts(),
                seed=rng,
                adversary=adversary,
            )
            tick = engine.run_until_consensus(
                max_ticks=spec.round_budget() * spec.n
            )
            if tick is None:
                return float("nan")
            return float(math.ceil(tick / spec.n))
        target = None
        if adversary is not None and adversary.budget > 0:
            target = near_consensus_target(spec.n, adversary.budget)
        if spec.graph is not None:
            opinions = counts_to_agents(
                spec.initial_counts(), rng=rng, shuffle=True
            )
            engine = AgentEngine(
                spec.resolved_dynamics(),
                spec.graph,
                opinions,
                num_opinions=spec.k,
                seed=rng,
                adversary=adversary,
            )
        else:
            engine = PopulationEngine(
                spec.resolved_dynamics(),
                spec.initial_counts(),
                seed=rng,
                adversary=adversary,
            )
        result = run_until_consensus(
            engine, max_rounds=spec.round_budget(), target=target
        )
    return float(result.rounds) if result.converged else float("nan")


def consensus_times_point_batch(
    params: Mapping, num_runs: int, seed: tuple
) -> tuple[float, ...]:
    """Batched default point function: a whole grid point at once.

    Measures all ``num_runs`` replicas of one grid point through the
    vectorised sibling of the point's chain family (``batch`` for
    population points, ``agent-batch`` for graph points, ``async-batch``
    for asynchronous points) and returns the per-replica stopping
    rounds the engines recorded per row (``ResultSet.consensus_times``;
    for ``async-batch`` that is the sequential adapter's
    ``ceil(ticks / n)`` convention, not the engine's floored
    ``consensus_rounds`` view) — NaN for censored rows, and for
    adversarial points the per-row near-consensus-``target`` stopping
    time on engines that support per-row targets (``batch`` /
    ``agent-batch``), exactly like the sequential default.

    ``seed`` is declarative (an int tuple derived by
    :func:`run_sweep` from the sweep seed and the point key), so the
    function pickles cleanly into the worker pool.  All replicas share
    one stream: values are equal to sequential measurement in
    distribution, not in realisation — which is why batched points
    cache under distinct keys.
    """
    spec = spec_from_params(
        params, replicas=int(num_runs), seed=seed, measure="batch"
    )
    results = execute(spec)
    return tuple(float(value) for value in results.consensus_times)


@dataclass(frozen=True)
class SweepPoint:
    """One measured grid point: parameters plus per-seed values.

    ``error`` is non-None only when the point was measured under
    ``run_sweep(on_error="skip")`` and its measurement raised: the
    point then carries the failure message instead of values, so a
    partially failed sweep returns structured per-point errors rather
    than aborting (the service layer depends on this).
    """

    params: dict
    values: tuple[float, ...]
    error: str | None = None

    @property
    def failed(self) -> bool:
        """Whether this point's measurement raised instead of returning."""
        return self.error is not None

    @property
    def median(self) -> float:
        finite = [v for v in self.values if not np.isnan(v)]
        return float(np.median(finite)) if finite else float("nan")

    @property
    def censored(self) -> int:
        """Number of runs that exhausted their budget."""
        return sum(1 for v in self.values if np.isnan(v))


@dataclass
class SweepSpec:
    """A cartesian parameter grid and replication settings.

    ``grid`` maps parameter names to value lists; every combination is
    one point.  ``fixed`` parameters are merged into every point.
    """

    grid: dict[str, list]
    num_runs: int = 3
    seed: RandomState = 0
    fixed: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.grid:
            raise ConfigurationError("sweep grid must not be empty")
        if self.num_runs < 1:
            raise ConfigurationError("num_runs must be at least 1")
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise ConfigurationError(
                f"parameters {sorted(overlap)} appear in both grid "
                "and fixed"
            )

    def points(self) -> list[dict]:
        """All grid points in deterministic order."""
        names = sorted(self.grid)
        combos = itertools.product(*(self.grid[name] for name in names))
        return [
            {**self.fixed, **dict(zip(names, combo))} for combo in combos
        ]


def _point_key(params: Mapping, measure: str = "sequential") -> str:
    """Stable filename stem for a point's parameter dict.

    ``measure`` is a *versioned* component of the key: batched
    measurement shares one stream across a point's replicas, so its
    values are equal to sequential measurement in distribution but not
    in realisation — a batched sweep must therefore never read a cache
    file written by a sequential one (or vice versa).  Sequential keys
    keep the historical parameters-only canonicalisation, so caches
    from before the batch-first driver still resolve for
    ``measure="sequential"``.
    """
    canon_params = {str(k): params[k] for k in sorted(params)}
    if measure != "sequential":
        canon_params["__measure__"] = f"{measure}/v1"
    canon = json.dumps(canon_params, sort_keys=True)
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def _measure_point(
    point_function: PointFunction,
    params: Mapping,
    entropy: list[int],
    num_runs: int,
) -> tuple[float, ...]:
    """Evaluate one grid point across its replica streams.

    Module-level (not a closure) so that ``workers > 1`` can ship it to
    a worker process; ``point_function`` must therefore be picklable —
    the default and any other module-level function is.
    """
    point_seed = np.random.SeedSequence(entropy)
    return tuple(
        float(point_function(params, rng))
        for rng in spawn_generators(point_seed, num_runs)
    )


def _measure_point_batch(
    batch_point_function: BatchPointFunction,
    params: Mapping,
    entropy: list[int],
    num_runs: int,
) -> tuple[float, ...]:
    """Evaluate one grid point in a single batched engine run.

    The point's entropy doubles as the declarative spec seed (an int
    tuple), so batched points are exactly as reproducible and
    grid-independent as sequential ones — and the callable pickles into
    the worker pool like :func:`_measure_point`.
    """
    values = batch_point_function(
        params, num_runs, tuple(int(part) for part in entropy)
    )
    return tuple(float(value) for value in values)


def _point_engine(params: Mapping, measure: str) -> str:
    """The registered engine family a point's measurement runs.

    Mirrors :func:`spec_from_params`' resolution (graph points run the
    agent chain, the default is the population chain) plus the batch
    sibling swap, so a point's provenance manifest names the engine
    that actually produced its values.
    """
    engine = params.get("engine")
    if "graph" in params and params["graph"] != "complete":
        engine = "agent"
    elif engine is None:
        engine = "population"
    return _BATCH_SIBLING[engine] if measure == "batch" else engine


def _stamp_point_manifest(
    cache_file: Path,
    params: Mapping,
    measure: str,
    num_runs: int,
    entropy: list[int],
) -> None:
    """Append a provenance manifest for one freshly written point.

    The single choke point for sweep-cache provenance: every cache
    write — direct :func:`run_sweep` callers, the worker pool (cache
    files land in the parent process) and the service fleet (workers
    execute jobs through :func:`run_sweep`) — passes through
    :func:`_finish`, so stamping here covers them all.  The manifest
    ties the payload bytes to the spec (full canonical parameter dict,
    versioned measurement mode, replica count), the code revision, the
    backend, the engine family and the point's seed entropy; ``repro
    verify <cache_dir>`` replays the resulting chain.
    """
    canon_params = {str(key): params[key] for key in sorted(params)}
    record_artifact(
        cache_file,
        kind="sweep-point",
        context={
            "point_key": cache_file.stem,
            "spec_hash": canon_hash(
                {
                    "params": canon_params,
                    "measure": f"{measure}/v1",
                    "num_runs": int(num_runs),
                }
            ),
            "git_sha": git_revision(),
            "backend": resolve_backend(
                str(params.get("backend", AUTO_BACKEND))
            ).name,
            "engine": _point_engine(params, measure),
            "seed_entropy": [int(part) for part in entropy],
            "measure": measure,
        },
    )


#: Orphaned cache temp files older than this (seconds) are swept at
#: cache open.  Generous on purpose: a *live* writer publishes within
#: milliseconds of creating its temp file, so anything an hour old is
#: litter from a crashed process, not work in flight.
STALE_TMP_MAX_AGE = 3600.0


def _sweep_stale_tmp(cache: Path, *, max_age: float | None = None) -> int:
    """Delete orphaned ``.{name}.{pid}.tmp`` litter from ``cache``.

    A process crashing between temp-write and ``os.replace`` (the
    window the ``sweep.cache-write`` fault point exercises) leaves its
    temp file behind forever — harmless to correctness (the dot prefix
    keeps it out of cache reads and provenance payload scans) but
    accumulating across crashes.  Files younger than ``max_age`` are
    left alone: they may belong to a concurrent writer racing toward
    its rename.
    """
    max_age = STALE_TMP_MAX_AGE if max_age is None else max_age
    now = time.time()
    removed = 0
    for tmp in cache.glob(".*.tmp"):
        try:
            if now - tmp.stat().st_mtime < max_age:
                continue
            tmp.unlink()
            removed += 1
        except OSError:
            # Lost a race with a concurrent sweeper or the file's own
            # writer completing its rename; either way it is gone.
            continue
    return removed


def _write_point_atomic(cache_file: Path, payload: dict) -> None:
    """Write a point's cache entry via temp-file + ``os.replace``.

    Two workers (or two service processes) resuming the same cache dir
    may race on one point; a plain ``write_text`` could interleave a
    torn JSON write that poisons the cache for every later resume.
    ``os.replace`` is atomic on POSIX and Windows within a filesystem,
    so readers only ever observe a complete document — last writer
    wins, and both writers produce the same values anyway because the
    point owns its seed stream.
    """
    tmp = cache_file.with_name(
        f".{cache_file.name}.{os.getpid()}.tmp"
    )
    document = json.dumps(payload)
    tmp.write_text(document)
    # The crash/torn-write window the chaos suite drives: a "crash"
    # here leaves the temp file orphaned (stale-tmp hygiene cleans it
    # up), a "torn-write" publishes a truncated document to the final
    # path (the CacheIntegrityError / on_corrupt machinery heals it).
    fault_point(
        "sweep.cache-write", path=str(cache_file), payload=document
    )
    os.replace(tmp, cache_file)


def run_sweep(
    spec: SweepSpec,
    point_function: PointFunction = consensus_time_point,
    cache_dir: str | Path | None = None,
    workers: int | None = None,
    measure: str | None = None,
    batch_point_function: BatchPointFunction | None = None,
    on_error: str = "raise",
    on_corrupt: str = "raise",
    progress: Callable[[int, int, SweepPoint], None] | None = None,
) -> list[SweepPoint]:
    """Measure every grid point, loading cached points where present.

    Seeds are derived per point from ``(spec.seed entropy, point key)``
    so a point's result is independent of the rest of the grid — adding
    grid values later never changes previously measured points.

    ``on_error`` controls what a failing point does to the sweep:
    ``"raise"`` (default) finishes and caches every other point, then
    raises :class:`~repro.errors.SweepPointError` naming the offending
    point's parameter dict (the original exception is chained);
    ``"skip"`` records the failure on the returned
    :class:`SweepPoint` (``error`` set, no values, never cached) and
    keeps going — the long-running service layer measures jobs this
    way so one broken point cannot abort a whole submission.

    ``on_corrupt`` controls what an *undecodable cached file* does:
    ``"raise"`` (default) raises the typed
    :class:`~repro.errors.CacheIntegrityError` naming the file —
    right for interactive use, where silent data loss should be a
    human decision; ``"remeasure"`` deletes the corrupt file and
    re-measures the point as if it were never cached — right for the
    service fleet, where a torn write from a crashed process must not
    brick the job on every subsequent retry.

    ``progress`` (when given) is called as ``progress(done, total,
    point)`` after each point lands — including points served from the
    cache — so job-sized sweeps can report per-point progress and
    heartbeats to an external store.  Exceptions from the callback
    propagate; keep it cheap and non-raising.

    ``measure`` selects how a point's ``num_runs`` replicas are
    evaluated: ``"batch"`` (one vectorised engine run per point, via
    ``batch_point_function`` — default
    :func:`consensus_times_point_batch`) or ``"sequential"`` (one
    ``point_function`` call per replica stream).  The default (``None``)
    resolves to ``"batch"`` for the default point function and to
    ``"sequential"`` when a custom ``point_function`` is given — a
    custom sequential function cannot be batched implicitly, so asking
    for ``measure="batch"`` with one (and no ``batch_point_function``)
    raises.  The two modes measure the same chains but cache under
    distinct, versioned keys (see :func:`_point_key`) and are never
    silently mixed.

    ``workers`` (when > 1) evaluates uncached points process-parallel
    with :class:`concurrent.futures.ProcessPoolExecutor`; results and
    cache files are identical to a sequential run because every point
    owns its seed stream.  Completed points are consumed as they finish
    (``as_completed``), so one slow point never delays the cache writes
    of the points behind it and an interrupted or partially failed
    parallel sweep keeps every finished point; the returned list stays
    in deterministic grid order via the recorded indices.  The point
    function must be picklable (module-level) in that case.
    """
    if workers is not None and workers < 1:
        raise ConfigurationError(
            f"workers must be a positive count, got {workers}"
        )
    if on_error not in ("raise", "skip"):
        raise ConfigurationError(
            f"on_error must be 'raise' or 'skip', got {on_error!r}"
        )
    if on_corrupt not in ("raise", "remeasure"):
        raise ConfigurationError(
            f"on_corrupt must be 'raise' or 'remeasure', "
            f"got {on_corrupt!r}"
        )
    if measure is None:
        if batch_point_function is not None:
            measure = "batch"
        elif point_function is consensus_time_point:
            measure = "batch"
        else:
            measure = "sequential"
    if measure not in ("batch", "sequential"):
        raise ConfigurationError(
            f"measure must be 'batch' or 'sequential', got {measure!r}"
        )
    if measure == "batch" and batch_point_function is None:
        if point_function is not consensus_time_point:
            raise ConfigurationError(
                "measure='batch' cannot batch a custom sequential "
                "point_function; pass measure='sequential' or provide "
                "a batch_point_function(params, num_runs, seed)"
            )
        batch_point_function = consensus_times_point_batch
    cache = Path(cache_dir) if cache_dir is not None else None
    if cache is not None:
        cache.mkdir(parents=True, exist_ok=True)
        _sweep_stale_tmp(cache)
    base_entropy = _seed_entropy(spec.seed)

    all_points = spec.points()
    total = len(all_points)
    done = 0

    def _advance(point: SweepPoint) -> None:
        nonlocal done
        done += 1
        if progress is not None:
            progress(done, total, point)

    results: list[SweepPoint | None] = []
    pending: list[tuple[int, dict, Path | None, list[int]]] = []
    for params in all_points:
        key = _point_key(params, measure)
        cache_file = cache / f"{key}.json" if cache is not None else None
        if cache_file is not None and cache_file.exists():
            # A cached point must decode cleanly before its values are
            # trusted: a truncated or corrupted file (crashed writer on
            # a pre-atomic-write cache, disk fault, manual edit) raises
            # a typed error naming the file instead of surfacing a raw
            # JSON traceback deep inside a long sweep.
            try:
                payload = json.loads(cache_file.read_text())
                point = SweepPoint(
                    params=payload["params"],
                    values=tuple(payload["values"]),
                )
            except (ValueError, KeyError, TypeError) as exc:
                if on_corrupt == "remeasure":
                    # Torn write from a crashed process: discard the
                    # poisoned file and measure the point afresh — its
                    # seed stream guarantees identical values, and the
                    # rewrite re-stamps its provenance manifest.
                    try:
                        cache_file.unlink()
                    except OSError:
                        pass
                else:
                    raise CacheIntegrityError(cache_file, exc) from exc
            else:
                results.append(point)
                _advance(point)
                continue
        entropy = base_entropy + [int(key[:12], 16)]
        results.append(None)
        pending.append((len(results) - 1, dict(params), cache_file, entropy))

    # One dispatch for both execution branches: the worker pool ships
    # (measure_fn, fn) to subprocesses, the sequential loop calls them
    # directly, so the two paths can never disagree on the mode.
    if measure == "batch":
        measure_fn, fn = _measure_point_batch, batch_point_function
    else:
        measure_fn, fn = _measure_point, point_function

    def _finish(entry, values) -> None:
        # Cache files are written per point, as soon as its values are
        # in hand, so an interrupted sweep keeps every finished point.
        # Writes go through temp-then-replace: concurrent resumers of
        # one cache dir can never observe a torn JSON document.
        index, params, cache_file, entropy = entry
        point = SweepPoint(params=params, values=values)
        if cache_file is not None:
            _write_point_atomic(
                cache_file,
                {
                    "params": point.params,
                    "values": list(values),
                    "measure": measure,
                },
            )
            _stamp_point_manifest(
                cache_file, params, measure, spec.num_runs, entropy
            )
        results[index] = point
        _advance(point)

    def _finish_failed(entry, exc: Exception) -> None:
        # A skipped failure is recorded on the point, never cached —
        # a later resume retries it instead of replaying the error.
        index, params, _, _ = entry
        point = SweepPoint(
            params=params,
            values=(),
            error=f"{type(exc).__name__}: {exc}",
        )
        results[index] = point
        _advance(point)

    if workers is not None and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            future_entries = {}
            for entry in pending:
                _, params, _, entropy = entry
                future = pool.submit(
                    measure_fn, fn, params, entropy, spec.num_runs
                )
                future_entries[future] = entry
            # Consume in completion order so a slow point never blocks
            # the cache writes of finished ones; if a point fails, the
            # rest still land in the cache before the error surfaces.
            # Only Exception is collected — KeyboardInterrupt and
            # friends must abort the sweep immediately.
            first_error: SweepPointError | None = None
            for future in as_completed(future_entries):
                entry = future_entries[future]
                try:
                    values = future.result()
                except Exception as exc:
                    if on_error == "skip":
                        _finish_failed(entry, exc)
                    elif first_error is None:
                        first_error = SweepPointError(entry[1], exc)
                        first_error.__cause__ = exc
                    continue
                _finish(entry, values)
            if first_error is not None:
                raise first_error
    else:
        for entry in pending:
            _, params, _, entropy = entry
            try:
                values = measure_fn(fn, params, entropy, spec.num_runs)
            except Exception as exc:
                if on_error == "skip":
                    _finish_failed(entry, exc)
                    continue
                raise SweepPointError(params, exc) from exc
            _finish(entry, values)
    return results  # type: ignore[return-value]


def _seed_entropy(seed: RandomState) -> list[int]:
    """Canonical integer entropy of a sweep seed.

    Tuple seeds contribute *every* component in order — summing them
    (as an earlier revision did) collapsed e.g. ``(1, 2)`` and ``(2, 1)``
    into the same per-point stream.  Int seeds keep their historical
    single-entry entropy, so existing caches with int seeds still match
    their recorded values.
    """
    if seed is None:
        return [0]
    if isinstance(seed, (int, np.integer)):
        return [int(seed)]
    if isinstance(seed, (tuple, list)) and all(
        isinstance(part, (int, np.integer)) for part in seed
    ):
        return [int(part) for part in seed]
    raise ConfigurationError(
        "sweep seeds must be ints or int tuples (cache keys must be "
        f"stable), got {type(seed).__name__}"
    )
