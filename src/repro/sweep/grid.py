"""Parameter-grid sweeps with on-disk caching and resume.

The experiment modules cover the paper's artefacts; this driver is for
*ad-hoc* exploration — "consensus time over this (n, k, dynamics) grid,
medians over m seeds, and don't redo points I already have".  It backs
the examples and gives downstream users a one-call sweep API:

>>> from repro.sweep import SweepSpec, run_sweep
>>> spec = SweepSpec(
...     grid={"n": [1024, 4096], "k": [4, 16, 64]},
...     num_runs=5,
... )
>>> table = run_sweep(spec, cache_dir="sweeps/my-study")   # doctest: +SKIP

Each grid point is measured by a *point function* (the default measures
the consensus time of a dynamics from a balanced start; any callable
``(params, rng) -> float`` works) and cached as one JSON file keyed by
the point's parameters, so interrupted sweeps resume for free.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from collections.abc import Callable, Mapping
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.configs import balanced
from repro.core.registry import make_dynamics
from repro.engine import PopulationEngine, run_until_consensus
from repro.errors import ConfigurationError
from repro.seeding import RandomState, spawn_generators

__all__ = ["SweepPoint", "SweepSpec", "consensus_time_point", "run_sweep"]

PointFunction = Callable[[Mapping, np.random.Generator], float]


def consensus_time_point(
    params: Mapping, rng: np.random.Generator
) -> float:
    """Default point function: consensus time from a balanced start.

    Expects ``params`` with keys ``dynamics`` (spec string, default
    ``"3-majority"``), ``n``, ``k`` and optional ``max_rounds``.
    Returns NaN when the round budget runs out, so censored points are
    visible rather than silently dropped.
    """
    dynamics = make_dynamics(params.get("dynamics", "3-majority"))
    n, k = int(params["n"]), int(params["k"])
    budget = int(params.get("max_rounds", 200 * (k + int(np.sqrt(n)))))
    engine = PopulationEngine(dynamics, balanced(n, k), seed=rng)
    result = run_until_consensus(engine, max_rounds=budget)
    return float(result.rounds) if result.converged else float("nan")


@dataclass(frozen=True)
class SweepPoint:
    """One measured grid point: parameters plus per-seed values."""

    params: dict
    values: tuple[float, ...]

    @property
    def median(self) -> float:
        finite = [v for v in self.values if not np.isnan(v)]
        return float(np.median(finite)) if finite else float("nan")

    @property
    def censored(self) -> int:
        """Number of runs that exhausted their budget."""
        return sum(1 for v in self.values if np.isnan(v))


@dataclass
class SweepSpec:
    """A cartesian parameter grid and replication settings.

    ``grid`` maps parameter names to value lists; every combination is
    one point.  ``fixed`` parameters are merged into every point.
    """

    grid: dict[str, list]
    num_runs: int = 3
    seed: RandomState = 0
    fixed: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.grid:
            raise ConfigurationError("sweep grid must not be empty")
        if self.num_runs < 1:
            raise ConfigurationError("num_runs must be at least 1")
        overlap = set(self.grid) & set(self.fixed)
        if overlap:
            raise ConfigurationError(
                f"parameters {sorted(overlap)} appear in both grid "
                "and fixed"
            )

    def points(self) -> list[dict]:
        """All grid points in deterministic order."""
        names = sorted(self.grid)
        combos = itertools.product(*(self.grid[name] for name in names))
        return [
            {**self.fixed, **dict(zip(names, combo))} for combo in combos
        ]


def _point_key(params: Mapping) -> str:
    """Stable filename stem for a point's parameter dict."""
    canon = json.dumps(
        {str(k): params[k] for k in sorted(params)}, sort_keys=True
    )
    return hashlib.sha256(canon.encode()).hexdigest()[:16]


def run_sweep(
    spec: SweepSpec,
    point_function: PointFunction = consensus_time_point,
    cache_dir: str | Path | None = None,
) -> list[SweepPoint]:
    """Measure every grid point, loading cached points where present.

    Seeds are derived per point from ``(spec.seed, point key)`` so a
    point's result is independent of the rest of the grid — adding grid
    values later never changes previously measured points.
    """
    cache = Path(cache_dir) if cache_dir is not None else None
    if cache is not None:
        cache.mkdir(parents=True, exist_ok=True)
    results: list[SweepPoint] = []
    for params in spec.points():
        key = _point_key(params)
        cache_file = cache / f"{key}.json" if cache is not None else None
        if cache_file is not None and cache_file.exists():
            payload = json.loads(cache_file.read_text())
            results.append(
                SweepPoint(
                    params=payload["params"],
                    values=tuple(payload["values"]),
                )
            )
            continue
        point_seed = np.random.SeedSequence(
            [_int_seed(spec.seed), int(key[:12], 16)]
        )
        values = tuple(
            float(point_function(params, rng))
            for rng in spawn_generators(point_seed, spec.num_runs)
        )
        point = SweepPoint(params=dict(params), values=values)
        if cache_file is not None:
            cache_file.write_text(
                json.dumps(
                    {"params": point.params, "values": list(values)}
                )
            )
        results.append(point)
    return results


def _int_seed(seed: RandomState) -> int:
    if seed is None:
        return 0
    if isinstance(seed, (int, np.integer)):
        return int(seed)
    if isinstance(seed, (tuple, list)):
        return int(sum(int(part) for part in seed))
    raise ConfigurationError(
        "sweep seeds must be ints or int tuples (cache keys must be "
        f"stable), got {type(seed).__name__}"
    )
