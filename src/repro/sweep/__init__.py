"""Ad-hoc parameter sweeps with caching, resume and worker pools."""

from repro.sweep.grid import (
    SweepPoint,
    SweepSpec,
    consensus_time_point,
    consensus_times_point_batch,
    run_sweep,
    spec_from_params,
)

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "consensus_time_point",
    "consensus_times_point_batch",
    "run_sweep",
    "spec_from_params",
]
