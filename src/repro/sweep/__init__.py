"""Ad-hoc parameter sweeps with caching and resume."""

from repro.sweep.grid import (
    SweepPoint,
    SweepSpec,
    consensus_time_point,
    run_sweep,
)

__all__ = [
    "SweepPoint",
    "SweepSpec",
    "consensus_time_point",
    "run_sweep",
]
