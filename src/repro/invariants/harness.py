"""Cross-engine harness: run any registered engine under full recording.

:func:`run_traced` builds one engine by registry name, drives it for a
bounded number of rounds (ticks for the asynchronous families) and
returns the complete :class:`~repro.invariants.trace.RunTrace` —
per-observation count matrices and frozen masks, plus the adversary's
ledger.  The recording channel differs per family but the trace format
does not:

* batch engines (``batch`` / ``agent-batch`` / ``async-batch``) record
  through their opt-in ``record_hook`` — the engine calls back after
  every step/tick with its own state, so the trace sees exactly what
  the engine saw;
* sequential engines (``population`` / ``agent`` / ``async``) are
  stepped directly and snapshotted through their public
  ``counts``/``round_index`` surface — the same observation contract
  the sequential :class:`~repro.engine.callbacks.Observer` callbacks
  use, with the single run traced as replica row 0.

Adversaries are wrapped in
:class:`~repro.invariants.trace.LedgerAdversary` before the engine
ever sees them, so budget accounting is measured at the corruption
call sites, uniformly for all six engines.
"""

from __future__ import annotations

import numpy as np

from repro.adversary import make_adversary, near_consensus_target
from repro.configs import balanced
from repro.core.registry import make_dynamics
from repro.core.undecided import UndecidedStateDynamics, with_undecided_slot
from repro.engine import (
    AgentEngine,
    AsyncBatchPopulationEngine,
    AsyncPopulationEngine,
    BatchAgentEngine,
    BatchPopulationEngine,
    PopulationEngine,
)
from repro.engine.registry import available_engines, get_engine
from repro.errors import ConfigurationError
from repro.graphs.complete import CompleteGraph
from repro.invariants.trace import LedgerAdversary, RunTrace
from repro.seeding import RandomState, as_generator
from repro.state import counts_to_agents

__all__ = ["run_traced"]

_SEQUENTIAL = ("population", "agent", "async")
_BATCH = ("batch", "agent-batch", "async-batch")


def run_traced(
    engine_name: str,
    dynamics_spec: str,
    *,
    n: int,
    k: int,
    num_replicas: int = 1,
    seed: RandomState = 0,
    adversary: str | None = None,
    adversary_budget: int | None = None,
    max_rounds: int = 200,
) -> RunTrace:
    """Run one engine under full recording and return its trace.

    ``k`` counts *decided* opinions; Undecided-State runs get the extra
    undecided slot appended automatically (``num_labels = k + 1``),
    exactly as the engines' own label convention demands.  Sequential
    engines trace a single run (``num_replicas`` is a batch-family
    knob); adversarial runs on target-capable engines stop at the
    near-consensus threshold — the same stopping rule the sweep driver
    applies, since an F >= 1 adversary can stall strict consensus
    forever.  Asynchronous families interpret ``max_rounds`` as
    ``max_rounds * n`` ticks, matching their registry adapters.
    """
    if engine_name not in available_engines():
        raise ConfigurationError(
            f"unknown engine {engine_name!r}; known engines: "
            f"{available_engines()}"
        )
    if max_rounds < 0:
        raise ConfigurationError(
            f"max_rounds must be non-negative, got {max_rounds}"
        )
    dynamics = make_dynamics(dynamics_spec)
    base = balanced(n, k)
    undecided_label: int | None = None
    if isinstance(dynamics, UndecidedStateDynamics):
        counts = with_undecided_slot(base)
        undecided_label = counts.size - 1
    else:
        counts = base
    num_labels = int(counts.size)

    info = get_engine(engine_name)
    target = None
    if adversary is not None:
        if adversary_budget is None:
            raise ConfigurationError(
                f"adversary {adversary!r} requires adversary_budget "
                "(the per-round F)"
            )
        if adversary_budget > 0 and info.supports_target:
            target = near_consensus_target(n, adversary_budget)

    replicas = (
        1 if engine_name in _SEQUENTIAL else max(1, int(num_replicas))
    )
    trace = RunTrace(
        engine=engine_name,
        dynamics=str(dynamics_spec),
        n=int(n),
        num_labels=num_labels,
        num_replicas=replicas,
        adversary_budget=(
            int(adversary_budget) if adversary is not None else None
        ),
        undecided_label=undecided_label,
        custom_target=target is not None,
    )
    ledger = (
        LedgerAdversary(
            make_adversary(adversary, adversary_budget),
            trace.corruptions,
        )
        if adversary is not None
        else None
    )
    rng = as_generator(seed)

    if engine_name in _SEQUENTIAL:
        _drive_sequential(
            trace, engine_name, dynamics, counts, rng, ledger, target,
            max_rounds,
        )
    else:
        _drive_batch(
            trace, engine_name, dynamics, counts, rng, ledger, target,
            max_rounds, replicas,
        )
    return trace


def _drive_sequential(
    trace, engine_name, dynamics, counts, rng, ledger, target, max_rounds
) -> None:
    """Step one sequential engine, snapshotting its public state.

    The stopping rule mirrors :func:`~repro.engine.runner.
    run_until_consensus`: the caller ``target`` when given, else the
    dynamics' own consensus convention — and the frozen flag recorded
    per snapshot is that rule evaluated on the snapshot's counts, so
    the trace says exactly when the run would have stopped.
    """

    def stopped(row: np.ndarray) -> bool:
        if target is not None:
            return bool(target(row))
        return bool(dynamics.is_consensus_counts(row))

    if engine_name == "population":
        engine = PopulationEngine(
            dynamics, counts, seed=rng, adversary=ledger
        )
        budget = max_rounds
        index_of = lambda: engine.round_index  # noqa: E731
    elif engine_name == "agent":
        graph = CompleteGraph(trace.n)
        opinions = counts_to_agents(counts, rng=rng, shuffle=True)
        engine = AgentEngine(
            dynamics,
            graph,
            opinions,
            num_opinions=trace.num_labels,
            seed=rng,
            adversary=ledger,
        )
        budget = max_rounds
        index_of = lambda: engine.round_index  # noqa: E731
    else:
        engine = AsyncPopulationEngine(
            dynamics, counts, seed=rng, adversary=ledger
        )
        budget = max_rounds * trace.n
        index_of = lambda: engine.tick_index  # noqa: E731

    done = stopped(engine.counts)
    trace.snap(0, engine.counts, [done])
    while not done and index_of() < budget:
        engine.step()
        done = stopped(engine.counts)
        trace.snap(index_of(), engine.counts, [done])


def _drive_batch(
    trace,
    engine_name,
    dynamics,
    counts,
    rng,
    ledger,
    target,
    max_rounds,
    replicas,
) -> None:
    """Drive one batch engine with its recording hook attached.

    The engine reports its own ``(index, counts, frozen)`` after every
    step, so the trace is the engine's account of itself — the
    invariants then cross-examine it against the ledger and the
    conservation laws.
    """
    if engine_name == "batch":
        engine = BatchPopulationEngine(
            dynamics,
            counts,
            num_replicas=replicas,
            seed=rng,
            adversary=ledger,
            target=target,
            record_hook=trace.snap,
        )
        budget = max_rounds
        index_of = lambda: engine.round_index  # noqa: E731
    elif engine_name == "agent-batch":
        base = counts_to_agents(counts)
        opinions = rng.permuted(
            np.tile(base, (replicas, 1)), axis=1
        )
        engine = BatchAgentEngine(
            dynamics,
            CompleteGraph(trace.n),
            opinions,
            num_opinions=trace.num_labels,
            seed=rng,
            adversary=ledger,
            target=target,
            record_hook=trace.snap,
        )
        budget = max_rounds
        index_of = lambda: engine.round_index  # noqa: E731
    else:
        engine = AsyncBatchPopulationEngine(
            dynamics,
            counts,
            num_replicas=replicas,
            seed=rng,
            adversary=ledger,
            record_hook=trace.snap,
        )
        budget = max_rounds * trace.n
        index_of = lambda: engine.tick_index  # noqa: E731

    trace.snap(0, engine.counts, engine.frozen)
    while not engine.all_consensus() and index_of() < budget:
        engine.step()
