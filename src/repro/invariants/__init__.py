"""Registry-driven run invariants, enforced uniformly across engines.

The paper-level conservation laws — per-row mass conservation,
frozen-row immutability, monotone consensus, [GL18] adversary budget
accounting, Undecided-State censoring — are registered as named
checks (:mod:`repro.invariants.checks`) over a uniform
:class:`~repro.invariants.trace.RunTrace` observation format, and
:func:`~repro.invariants.harness.run_traced` records such a trace from
any of the six registered engines: the batch families through their
opt-in ``record_hook``, the sequential families through their public
stepping surface, adversaries through the
:class:`~repro.invariants.trace.LedgerAdversary` wrapper.

``tests/test_invariants.py`` runs the full engine × dynamics ×
adversary matrix through :func:`~repro.invariants.registry.check_trace`
— the "simulator runs but lies" net.
"""

from repro.invariants.harness import run_traced
from repro.invariants.registry import (
    Invariant,
    available_invariants,
    check_trace,
    get_invariant,
    register_invariant,
    unregister_invariant,
)
from repro.invariants.trace import (
    CorruptionRecord,
    LedgerAdversary,
    RunTrace,
    TraceSnapshot,
)

# Importing the checks module registers the built-in catalogue.
from repro.invariants import checks as _checks  # noqa: F401

__all__ = [
    "CorruptionRecord",
    "Invariant",
    "LedgerAdversary",
    "RunTrace",
    "TraceSnapshot",
    "available_invariants",
    "check_trace",
    "get_invariant",
    "register_invariant",
    "run_traced",
    "unregister_invariant",
]
