"""The registered run invariants: what a non-lying simulator preserves.

Each check examines a :class:`~repro.invariants.trace.RunTrace` and
raises :class:`~repro.errors.InvariantViolation` — an explicit typed
raise, never a bare ``assert``, so the net survives ``python -O``
(``repro lint``'s *optimize-safe-contracts* discipline).  The catalogue
covers the paper-level conservation laws every engine family must obey:

* **mass-conservation** — a dynamics round and an F-bounded corruption
  both move opinions between labels; they never create or destroy
  vertices, so every row of every snapshot sums to ``n``.
* **frozen-immutability** — a row that stopped (consensus or target)
  is excluded from sampling and corruption; its counts are final.
* **monotone-consensus** — stopping is absorbing: the frozen mask only
  grows, and observation indices advance strictly.
* **adversary-budget** — the [GL18] contract, accounted from the
  ledger: at most F vertices moved per row per corruption, and at most
  ``F * calls`` in total.
* **undecided-censoring** — the Undecided-State convention: the
  undecided slot is never a winner; an all-undecided row is censored,
  not frozen, and (absent a custom target) a frozen row is a *decided*
  consensus with an empty undecided slot.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvariantViolation
from repro.invariants.registry import register_invariant
from repro.invariants.trace import RunTrace

__all__ = [
    "AdversaryBudgetInvariant",
    "FrozenImmutabilityInvariant",
    "MassConservationInvariant",
    "MonotoneConsensusInvariant",
    "UndecidedCensoringInvariant",
]


class MassConservationInvariant:
    """Every snapshot row carries exactly ``n`` vertices."""

    name = "mass-conservation"
    description = (
        "per-row total mass equals n in every recorded snapshot"
    )

    def check(self, trace: RunTrace) -> None:
        for snapshot in trace.snapshots:
            sums = snapshot.counts.sum(axis=1)
            bad = np.flatnonzero(sums != trace.n)
            if bad.size:
                row = int(bad[0])
                raise InvariantViolation(
                    self.name,
                    f"snapshot at index {snapshot.index}, row {row}: "
                    f"total mass {int(sums[row])} != n={trace.n} "
                    f"({trace.engine}/{trace.dynamics})",
                )


class FrozenImmutabilityInvariant:
    """Counts of a frozen row never change in later snapshots."""

    name = "frozen-immutability"
    description = (
        "rows stay bit-identical from the snapshot that froze them on"
    )

    def check(self, trace: RunTrace) -> None:
        for previous, current in zip(
            trace.snapshots, trace.snapshots[1:]
        ):
            frozen = np.flatnonzero(previous.frozen)
            if frozen.size == 0:
                continue
            changed = np.flatnonzero(
                (
                    previous.counts[frozen] != current.counts[frozen]
                ).any(axis=1)
            )
            if changed.size:
                row = int(frozen[changed[0]])
                raise InvariantViolation(
                    self.name,
                    f"row {row} froze by index {previous.index} but "
                    f"its counts changed by index {current.index} "
                    f"({trace.engine}/{trace.dynamics})",
                )


class MonotoneConsensusInvariant:
    """Stopping is absorbing and observation time advances."""

    name = "monotone-consensus"
    description = (
        "frozen masks only grow and snapshot indices strictly increase"
    )

    def check(self, trace: RunTrace) -> None:
        for previous, current in zip(
            trace.snapshots, trace.snapshots[1:]
        ):
            if current.index <= previous.index:
                raise InvariantViolation(
                    self.name,
                    f"snapshot index went from {previous.index} to "
                    f"{current.index} ({trace.engine}/{trace.dynamics})",
                )
            unfrozen = np.flatnonzero(
                previous.frozen & ~current.frozen
            )
            if unfrozen.size:
                raise InvariantViolation(
                    self.name,
                    f"row {int(unfrozen[0])} was frozen at index "
                    f"{previous.index} but thawed by index "
                    f"{current.index} ({trace.engine}/{trace.dynamics})",
                )


class AdversaryBudgetInvariant:
    """The ledger respects the per-round and cumulative F budgets."""

    name = "adversary-budget"
    description = (
        "each corruption moves at most F vertices per row; the ledger "
        "total stays within F * calls"
    )

    def check(self, trace: RunTrace) -> None:
        budget = trace.adversary_budget
        if budget is None:
            if trace.corruptions:
                raise InvariantViolation(
                    self.name,
                    f"{len(trace.corruptions)} corruption(s) recorded "
                    f"on an adversary-free run "
                    f"({trace.engine}/{trace.dynamics})",
                )
            return
        total = 0
        for record in trace.corruptions:
            over = np.flatnonzero(record.moved > budget)
            if over.size:
                row = int(over[0])
                raise InvariantViolation(
                    self.name,
                    f"corruption call {record.call} moved "
                    f"{int(record.moved[row])} vertices in row {row}, "
                    f"exceeding the per-round budget F={budget} "
                    f"({trace.engine}/{trace.dynamics})",
                )
            total += int(record.moved.sum())
        # Cumulative accounting: with R rows each corruption call may
        # move up to F per row, so the ledger-wide ceiling is
        # F * rows-touched summed over calls.
        ceiling = budget * sum(
            int(record.moved.size) for record in trace.corruptions
        )
        if total > ceiling:
            raise InvariantViolation(
                self.name,
                f"ledger total of {total} moved vertices exceeds the "
                f"cumulative budget {ceiling} "
                f"({trace.engine}/{trace.dynamics})",
            )


class UndecidedCensoringInvariant:
    """The undecided slot censors rows; it never wins."""

    name = "undecided-censoring"
    description = (
        "no frozen row is all-undecided; absent a custom target, "
        "frozen rows are decided consensus with an empty undecided slot"
    )

    def check(self, trace: RunTrace) -> None:
        label = trace.undecided_label
        if label is None:
            return
        for snapshot in trace.snapshots:
            frozen = np.flatnonzero(snapshot.frozen)
            if frozen.size == 0:
                continue
            undecided = snapshot.counts[frozen, label]
            saturated = np.flatnonzero(undecided == trace.n)
            if saturated.size:
                raise InvariantViolation(
                    self.name,
                    f"row {int(frozen[saturated[0]])} froze "
                    f"all-undecided at index {snapshot.index} — the "
                    f"undecided slot must censor, never win "
                    f"({trace.engine}/{trace.dynamics})",
                )
            if trace.custom_target:
                continue
            leaders = snapshot.counts[frozen].max(axis=1)
            undecided_consensus = np.flatnonzero(
                (undecided != 0) | (leaders != trace.n)
            )
            if undecided_consensus.size:
                row = int(frozen[undecided_consensus[0]])
                raise InvariantViolation(
                    self.name,
                    f"row {row} froze at index {snapshot.index} "
                    f"without a decided consensus (undecided mass "
                    f"{int(undecided[undecided_consensus[0]])}) "
                    f"({trace.engine}/{trace.dynamics})",
                )


register_invariant(MassConservationInvariant())
register_invariant(FrozenImmutabilityInvariant())
register_invariant(MonotoneConsensusInvariant())
register_invariant(AdversaryBudgetInvariant())
register_invariant(UndecidedCensoringInvariant())
