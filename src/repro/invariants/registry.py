"""Invariant registry: named, enumerable run-trace checks.

Mirrors the engine, backend and lint-rule registries
(:mod:`repro.engine.registry`, :mod:`repro.backends.registry`,
:mod:`repro.lint.model`): an invariant is registered under a short
kebab-case name, looked up by name and enumerated for the harness and
the tests — and because the registry follows the shared shape,
``repro lint``'s *registry-completeness* rule statically checks that
every concrete invariant class in the package is actually registered.

An invariant is any object satisfying :class:`Invariant`:

``name`` / ``description``
    Identity and a one-line human summary.
``check(trace)``
    Examine a recorded :class:`~repro.invariants.trace.RunTrace` and
    raise :class:`~repro.errors.InvariantViolation` (nothing else) on
    the first violation; return normally when the trace is clean.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError

__all__ = [
    "Invariant",
    "available_invariants",
    "check_trace",
    "get_invariant",
    "register_invariant",
    "unregister_invariant",
]


@runtime_checkable
class Invariant(Protocol):
    """Structural interface every registered invariant must satisfy."""

    name: str
    description: str

    def check(self, trace) -> None:  # pragma: no cover - protocol
        ...


_REGISTRY: dict[str, Invariant] = {}


def register_invariant(
    invariant: Invariant, *, replace: bool = False
) -> Invariant:
    """Register ``invariant`` under ``invariant.name``; returns it.

    Duplicate names raise :class:`ConfigurationError` unless
    ``replace=True``, matching the engine and backend registries.
    """
    name = getattr(invariant, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"invariant name must be a non-empty string, got {name!r}"
        )
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"invariant {name!r} is already registered; pass "
            "replace=True to override it"
        )
    _REGISTRY[name] = invariant
    return invariant


def unregister_invariant(name: str) -> None:
    """Remove a registry entry (no-op when absent); for tests/plugins."""
    _REGISTRY.pop(name, None)


def get_invariant(name: str) -> Invariant:
    """Look up a registered invariant by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown invariant {name!r}; known invariants: "
            f"{available_invariants()}"
        ) from None


def available_invariants() -> list[str]:
    """Sorted names of every registered invariant."""
    return sorted(_REGISTRY)


def check_trace(trace, select: list[str] | None = None) -> None:
    """Run registered invariants over ``trace``.

    ``select`` names a subset (unknown names raise
    :class:`ConfigurationError`); the default runs every registered
    invariant in name order.  The first violation propagates as
    :class:`~repro.errors.InvariantViolation`.
    """
    names = available_invariants() if select is None else list(select)
    for name in names:
        get_invariant(name).check(trace)
