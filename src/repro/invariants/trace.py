"""Run traces: the uniform observation format invariants check.

Every engine family exposes its state differently (count vectors,
opinion matrices, ticks vs. rounds); invariants should not care.  A
:class:`RunTrace` normalises one run — sequential or batched — into a
sequence of :class:`TraceSnapshot` observations over an ``(R, k)``
count matrix plus a per-row frozen mask, with the adversary's actual
per-round movements captured by :class:`LedgerAdversary` as they
happen.  Sequential engines trace as ``R = 1``; the asynchronous
engines snapshot per tick with ``index`` counting ticks.

The ledger wrapper is what makes budget accounting engine-agnostic:
rather than teaching six engines to report what their adversary did,
the adversary itself is wrapped once and the recorded deltas are
ground truth for every engine that calls it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.adversary.base import Adversary

__all__ = [
    "CorruptionRecord",
    "LedgerAdversary",
    "RunTrace",
    "TraceSnapshot",
]


@dataclass(frozen=True)
class TraceSnapshot:
    """One observed state: ``index`` (round or tick), counts, frozen.

    ``counts`` is an ``(R, k)`` int64 copy, ``frozen`` an ``(R,)`` bool
    copy — snapshots own their arrays, so a later engine step can never
    retroactively edit the record.
    """

    index: int
    counts: np.ndarray
    frozen: np.ndarray


@dataclass(frozen=True)
class CorruptionRecord:
    """One adversary call: ordinal and per-row mass moved.

    ``moved[i]`` is the number of vertices the adversary reassigned in
    the ``i``-th row it was handed (active rows only, for the batch
    engines); each entry must respect the per-round budget F and their
    running total the cumulative ``F * calls`` budget.
    """

    call: int
    moved: np.ndarray


@dataclass
class RunTrace:
    """A complete observed run, ready for invariant checking.

    ``n`` is the per-row total mass, ``num_labels`` the full label
    count (``k + 1`` for Undecided-State — the undecided slot is a
    label like any other as far as mass conservation goes), and
    ``undecided_label`` the censored slot's index, or ``None`` for
    dynamics without one.  ``custom_target`` records that the run
    stopped on a caller predicate (e.g. the adversarial near-consensus
    threshold) rather than the dynamics' consensus convention — frozen
    rows then need not be at consensus, only non-censored.
    """

    engine: str
    dynamics: str
    n: int
    num_labels: int
    num_replicas: int
    adversary_budget: int | None = None
    undecided_label: int | None = None
    custom_target: bool = False
    snapshots: list[TraceSnapshot] = field(default_factory=list)
    corruptions: list[CorruptionRecord] = field(default_factory=list)

    def snap(
        self, index: int, counts: np.ndarray, frozen: np.ndarray
    ) -> None:
        """Record one observation (defensive copies, normalised shapes)."""
        matrix = np.array(counts, dtype=np.int64, copy=True)
        if matrix.ndim == 1:
            matrix = matrix.reshape(1, -1)
        mask = np.array(frozen, dtype=bool, copy=True).reshape(-1)
        self.snapshots.append(
            TraceSnapshot(index=int(index), counts=matrix, frozen=mask)
        )


class LedgerAdversary(Adversary):
    """Transparent adversary wrapper that records every corruption.

    Delegates ``corrupt``/``corrupt_batch`` to the wrapped strategy
    unchanged (same budget, same stream consumption, same law) while
    appending one :class:`CorruptionRecord` per call with the mass each
    row actually moved — measured here, on the wrapper's own
    before/after copies, so a strategy cannot under-report itself.
    """

    def __init__(
        self, inner: Adversary, ledger: list[CorruptionRecord]
    ) -> None:
        super().__init__(inner.budget)
        self.inner = inner
        self.ledger = ledger

    def _record(self, before: np.ndarray, after: np.ndarray) -> None:
        delta = np.abs(
            np.asarray(after, dtype=np.int64)
            - np.asarray(before, dtype=np.int64)
        )
        moved = delta.sum(axis=-1) // 2
        self.ledger.append(
            CorruptionRecord(
                call=len(self.ledger),
                moved=np.atleast_1d(moved).astype(np.int64),
            )
        )

    def corrupt(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        before = np.array(counts, dtype=np.int64, copy=True)
        after = self.inner.corrupt(counts, rng)
        self._record(before, after)
        return after

    def corrupt_batch(
        self, counts: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        before = np.array(counts, dtype=np.int64, copy=True)
        after = self.inner.corrupt_batch(counts, rng)
        self._record(before, after)
        return after

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"LedgerAdversary({self.inner!r})"
