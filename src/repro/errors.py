"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single type at the API boundary.  More specific
subclasses distinguish configuration mistakes (bad parameters) from runtime
conditions (e.g. a run that hit its round budget without reaching consensus
when the caller demanded consensus).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent combination of parameters.

    Raised eagerly at construction time so that long simulations never fail
    halfway through because of a typo in the inputs.
    """


class StateError(ReproError, ValueError):
    """An opinion configuration violates a structural invariant.

    Examples: negative counts, counts that do not sum to ``n``, an agent
    vector referencing an opinion outside ``[0, k)``.
    """


class ConsensusNotReached(ReproError, RuntimeError):
    """A run exhausted its round budget before reaching consensus.

    Only raised when the caller explicitly requested
    ``on_budget='raise'``; the default behaviour is to return a result
    flagged as not converged.
    """

    def __init__(self, rounds: int, message: str | None = None) -> None:
        self.rounds = rounds
        super().__init__(
            message or f"consensus not reached within {rounds} rounds"
        )


class GraphError(ReproError, ValueError):
    """A graph substrate is malformed (e.g. a vertex with no neighbours)."""
