"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single type at the API boundary.  More specific
subclasses distinguish configuration mistakes (bad parameters) from runtime
conditions (e.g. a run that hit its round budget without reaching consensus
when the caller demanded consensus).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter or inconsistent combination of parameters.

    Raised eagerly at construction time so that long simulations never fail
    halfway through because of a typo in the inputs.
    """


class BackendUnavailableError(ReproError, RuntimeError):
    """A compute backend was requested but cannot run on this host.

    Raised by :func:`repro.backends.get_backend` (and anything that
    resolves a backend name, e.g. ``SimulationSpec(backend=...)``) when
    the named backend is registered but its runtime dependency is
    missing or broken — for example ``backend="numba"`` in an
    environment without the ``numba`` package.  Auto-detection
    (``backend="auto"``) never raises this: it fails closed and falls
    back to the always-available ``numpy`` backend instead.
    """

    def __init__(self, backend: str, reason: str = "") -> None:
        self.backend = backend
        self.reason = reason
        detail = f": {reason}" if reason else ""
        super().__init__(
            f"compute backend {backend!r} is not available on this host"
            f"{detail}"
        )


class StateError(ReproError, ValueError):
    """An opinion configuration violates a structural invariant.

    Examples: negative counts, counts that do not sum to ``n``, an agent
    vector referencing an opinion outside ``[0, k)``.
    """


class InternalError(ReproError, RuntimeError):
    """An internal invariant the library believed unbreakable was broken.

    The optimize-safe replacement for a bare ``assert`` in enforcement
    paths (``repro lint``'s *optimize-safe-contracts* rule): unlike
    ``assert``, it still fires under ``python -O``.  Reaching one of
    these is a bug in :mod:`repro`, not a user error.
    """


class ConsensusNotReached(ReproError, RuntimeError):
    """A run exhausted its round budget before reaching consensus.

    Only raised when the caller explicitly requested
    ``on_budget='raise'``; the default behaviour is to return a result
    flagged as not converged.
    """

    def __init__(self, rounds: int, message: str | None = None) -> None:
        self.rounds = rounds
        super().__init__(
            message or f"consensus not reached within {rounds} rounds"
        )


class GraphError(ReproError, ValueError):
    """A graph substrate is malformed (e.g. a vertex with no neighbours)."""


class SweepPointError(ReproError, RuntimeError):
    """A grid point's measurement failed inside :func:`run_sweep`.

    Carries the offending point's parameter dict (``params``) so a
    failed sweep names the exact point that broke instead of surfacing
    a bare exception after the worker pool drains.  The original
    exception is chained as ``__cause__``.
    """

    def __init__(self, params: dict, cause: BaseException) -> None:
        self.params = dict(params)
        super().__init__(
            f"sweep point {self.params!r} failed: "
            f"{type(cause).__name__}: {cause}"
        )


class ProvenanceError(ReproError, ValueError):
    """A provenance artefact cannot be produced or extended.

    Raised by :mod:`repro.provenance` when a value cannot be canonically
    serialised (NaN/Infinity have no canonical JSON form, and a hash
    over a platform-dependent rendering would not be stable) or when a
    manifest chain cannot be appended to because its head entry is
    unreadable.  *Verification* failures are not exceptions: they are
    collected on the :class:`~repro.provenance.chain.ChainReport` so a
    single ``repro verify`` pass can name every broken link.
    """


class CacheIntegrityError(ReproError, RuntimeError):
    """A sweep cache file exists but cannot be decoded.

    Raised by :func:`repro.sweep.run_sweep` when a cached point file is
    corrupt or truncated (torn write from a crashed process, manual
    tampering, disk fault) instead of propagating a raw JSON decode
    error.  Carries the offending ``path``; deleting the named file
    makes the next sweep re-measure the point.
    """

    def __init__(self, path, cause: BaseException) -> None:
        self.path = path
        super().__init__(
            f"sweep cache file {str(path)!r} is corrupt "
            f"({type(cause).__name__}: {cause}); delete it to "
            "re-measure the point"
        )


class InvariantViolation(ReproError, RuntimeError):
    """A registered run invariant failed on a recorded trace.

    Raised by :mod:`repro.invariants` checks (mass conservation,
    frozen-row immutability, adversary budget accounting, ...) with the
    invariant's registered name and a message naming the first
    offending snapshot/row, so a lying simulator is debuggable from the
    exception alone.
    """

    def __init__(self, invariant: str, message: str) -> None:
        self.invariant = invariant
        super().__init__(f"invariant {invariant!r} violated: {message}")


class InjectedFaultError(ReproError, RuntimeError):
    """A deterministic fault scheduled by an armed :class:`FaultPlan` fired.

    Raised by :func:`repro.faults.fault_point` when the active plan
    schedules an ``error`` (or ``torn-write``) injection at a named
    fault point.  Carries the ``point`` name and the zero-based
    occurrence ``index`` at which the rule fired, so a failure seen in a
    chaos run can be replayed by constructing a plan that targets
    exactly that occurrence.  Never raised when no plan is armed.
    """

    def __init__(self, point: str, index: int, kind: str = "error") -> None:
        self.point = point
        self.index = index
        self.kind = kind
        super().__init__(
            f"injected {kind} fault at point {point!r} "
            f"(occurrence #{index})"
        )


class ServiceError(ReproError, RuntimeError):
    """Base class for simulation-service failures (store, fleet, API)."""


class StoreBusyError(ServiceError):
    """The job store's SQLite database is transiently locked.

    The typed, *retryable* translation of ``sqlite3.OperationalError:
    database is locked``: every :class:`JobStore` transaction maps the
    raw driver error to this type so callers (the worker fleet, the API
    layer, ``ServiceClient``) can back off and retry instead of
    pattern-matching on sqlite3 internals.  The API layer maps it to
    HTTP 503.
    """


class JobNotFound(ServiceError, LookupError):
    """No job with the requested id exists in the job store."""

    def __init__(self, job_id: str) -> None:
        self.job_id = job_id
        super().__init__(f"no job with id {job_id!r}")


class InvalidJobState(ServiceError):
    """An operation is not legal for the job's current state.

    Examples: cancelling a job that already ran, fetching the result of
    a job that is still queued.
    """

    def __init__(self, job_id: str, state: str, operation: str) -> None:
        self.job_id = job_id
        self.state = state
        super().__init__(
            f"cannot {operation} job {job_id!r} in state {state!r}"
        )


class QuotaExceededError(ServiceError):
    """A client's submission would exceed its per-client quota.

    Raised at admission time with a message naming the client, the
    exhausted limit and its configured value, so over-limit clients get
    a clear rejection instead of a silently dropped job.
    """


class JobTimeout(ServiceError):
    """A leased job exceeded its per-job execution timeout.

    Treated as a *transient* failure by the worker fleet: the job is
    retried with backoff until its retry budget runs out.
    """
