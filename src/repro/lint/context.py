"""Parsed-source context handed to every lint rule.

One :class:`LintContext` holds every file of a lint run, parsed once
(`ast` tree + raw lines), plus the suppression table extracted from
``# repro: noqa`` comments.  Rules address files *structurally* — by
basename, by containing directory, by relative-path suffix — so the
same rule set runs unchanged over the real package tree and over the
miniature fixture trees the test suite builds in a temp directory.

Suppression syntax (checked on the diagnostic's anchor line):

``# repro: noqa``
    Suppress every rule on this line.
``# repro: noqa[rule-a, rule-b]``
    Suppress only the named rules on this line.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

__all__ = ["LintContext", "SourceFile", "parse_source_file"]

#: Matches a suppression comment anywhere in a source line.
_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[^\]]*)\])?", re.IGNORECASE
)

#: Sentinel in the suppression table: "every rule" (bare ``noqa``).
SUPPRESS_ALL = "*"


@dataclass(frozen=True)
class SourceFile:
    """One parsed source file of a lint run."""

    path: Path
    relative: str  # posix-style, relative to the lint root
    source: str
    tree: ast.Module
    #: line number -> set of suppressed rule names (or ``{"*"}``).
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def name(self) -> str:
        return PurePosixPath(self.relative).name

    @property
    def directory_parts(self) -> tuple[str, ...]:
        """Directories on the relative path (no filename)."""
        return PurePosixPath(self.relative).parts[:-1]

    def in_directory(self, directory: str) -> bool:
        """Whether any relative-path directory equals ``directory``."""
        return directory in self.directory_parts

    def suppressed(self, line: int, rule: str) -> bool:
        rules = self.suppressions.get(line)
        if not rules:
            return False
        return SUPPRESS_ALL in rules or rule in rules


def _extract_suppressions(source: str) -> dict[int, set[str]]:
    table: dict[int, set[str]] = {}
    for number, line in enumerate(source.splitlines(), start=1):
        match = _NOQA.search(line)
        if match is None:
            continue
        names = match.group("rules")
        if names is None:
            table[number] = {SUPPRESS_ALL}
        else:
            table[number] = {
                part.strip() for part in names.split(",") if part.strip()
            }
    return table


def parse_source_file(path: Path, relative: str) -> SourceFile:
    """Read and parse one file (raises ``SyntaxError`` on bad source)."""
    source = path.read_text()
    return SourceFile(
        path=path,
        relative=relative,
        source=source,
        tree=ast.parse(source, filename=str(path)),
        suppressions=_extract_suppressions(source),
    )


class LintContext:
    """Every parsed file of one lint run, with structural lookups."""

    def __init__(self, root: Path, files: list[SourceFile]) -> None:
        self.root = Path(root)
        self.files = list(files)

    def find(self, suffix: str) -> SourceFile | None:
        """The unique file whose relative path ends with ``suffix``.

        ``suffix`` is matched on posix path boundaries (``"spec.py"``
        matches ``simulation/spec.py`` but never ``otherspec.py``), so
        rules can anchor on layout without hard-coding the lint root.
        """
        suffix_parts = PurePosixPath(suffix).parts
        for file in self.files:
            parts = PurePosixPath(file.relative).parts
            if parts[-len(suffix_parts):] == suffix_parts:
                return file
        return None

    def in_directory(self, directory: str) -> list[SourceFile]:
        """Every file with ``directory`` on its relative path."""
        return [f for f in self.files if f.in_directory(directory)]
