"""Drive the registered lint rules over a source tree.

:func:`run_lint` is the programmatic entry point (the ``repro lint``
CLI subcommand is a thin wrapper): collect ``*.py`` files, parse each
once, run every registered rule over the shared
:class:`~repro.lint.context.LintContext`, apply suppression comments
and return the surviving diagnostics sorted by location.

A file that fails to parse yields a single ``syntax-error`` diagnostic
instead of aborting the run — a broken file must fail the lint gate,
not crash it.
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import ConfigurationError
from repro.lint import rules as _rules  # noqa: F401  (registers rules)
from repro.lint.context import LintContext, SourceFile, parse_source_file
from repro.lint.model import Diagnostic, available_rules, get_rule

__all__ = ["collect_context", "default_lint_root", "run_lint"]

_SKIP_DIRECTORIES = {"__pycache__", ".git", ".venv"}


def default_lint_root() -> Path:
    """The installed :mod:`repro` package source — what ``repro lint``
    checks when invoked without paths, independent of the cwd."""
    import repro

    return Path(repro.__file__).parent


def _iter_python_files(root: Path):
    if root.is_file():
        yield root
        return
    for path in sorted(root.rglob("*.py")):
        if any(part in _SKIP_DIRECTORIES for part in path.parts):
            continue
        yield path


def collect_context(
    paths: list[Path],
) -> tuple[LintContext, list[Diagnostic]]:
    """Parse every Python file under ``paths`` into one context.

    Relative names are computed against each argument (for a directory
    argument, against the directory itself), so linting ``src/repro``
    yields relatives like ``core/base.py`` — the layout the structural
    rules anchor on.  Returns the context plus ``syntax-error``
    diagnostics for unparseable files.
    """
    files: list[SourceFile] = []
    broken: list[Diagnostic] = []
    roots = [Path(path) for path in paths]
    for root in roots:
        if not root.exists():
            raise ConfigurationError(f"lint path {str(root)!r} does not exist")
        base = root if root.is_dir() else root.parent
        for path in _iter_python_files(root):
            relative = path.relative_to(base).as_posix()
            try:
                files.append(parse_source_file(path, relative))
            except SyntaxError as exc:
                broken.append(
                    Diagnostic(
                        path=relative,
                        line=int(exc.lineno or 1),
                        rule="syntax-error",
                        message=f"file does not parse: {exc.msg}",
                    )
                )
    context_root = roots[0] if len(roots) == 1 else Path(".")
    return LintContext(context_root, files), broken


def run_lint(
    paths: list[Path] | None = None,
    *,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> list[Diagnostic]:
    """Run the registered rules and return surviving diagnostics.

    ``select`` restricts the run to the named rules; ``ignore`` drops
    rules from it.  Unknown names raise
    :class:`~repro.errors.ConfigurationError` (a typo in a CI config
    must not silently lint nothing).  Suppression comments on a
    diagnostic's anchor line remove it here, so every caller — CLI,
    tests, pre-commit hooks — sees identical results.
    """
    if paths is None:
        paths = [default_lint_root()]
    names = list(select) if select else available_rules()
    for name in list(names) + list(ignore or []):
        get_rule(name)  # raises on unknown names
    if ignore:
        names = [name for name in names if name not in set(ignore)]

    context, diagnostics = collect_context(paths)
    by_relative = {file.relative: file for file in context.files}
    for name in names:
        rule = get_rule(name)
        for diagnostic in rule.check(context):
            file = by_relative.get(diagnostic.path)
            if file is not None and file.suppressed(
                diagnostic.line, diagnostic.rule
            ):
                continue
            diagnostics.append(diagnostic)
    diagnostics.sort(key=lambda d: (d.path, d.line, d.rule, d.message))
    return diagnostics
