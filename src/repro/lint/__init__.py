"""Static contract checker for the repro codebase (``repro lint``).

An AST-based analysis pass over the package's own source, enforcing
the cross-cutting invariants the registries and conventions rely on:
RNG seeding discipline, vectorized batch contracts, registry
completeness, optimize-safe error raising, spec threading, and store
transaction discipline.  Structured exactly like the engine/backend
layers: rules are registered objects (:func:`register_rule` /
:func:`available_rules`), the runner (:func:`run_lint`) drives them
over a parsed :class:`LintContext`, and per-line suppressions use
``# repro: noqa[rule-name]`` comments.
"""

from repro.lint.context import LintContext, SourceFile, parse_source_file
from repro.lint.model import (
    Diagnostic,
    LintRule,
    available_rules,
    get_rule,
    register_rule,
    unregister_rule,
)
from repro.lint.runner import collect_context, default_lint_root, run_lint

__all__ = [
    "Diagnostic",
    "LintContext",
    "LintRule",
    "SourceFile",
    "available_rules",
    "collect_context",
    "default_lint_root",
    "get_rule",
    "parse_source_file",
    "register_rule",
    "run_lint",
    "unregister_rule",
]
