"""Lint-rule model: diagnostics, the rule protocol and the registry.

Mirrors the engine and backend registries
(:mod:`repro.engine.registry`, :mod:`repro.backends.registry`): rules
are registered under a short kebab-case name, looked up by name and
enumerated for the CLI.  A rule is any object satisfying
:class:`LintRule` —

``name`` / ``description`` / ``severity``
    Identity, a one-line human summary (shown by ``repro lint --list``)
    and ``"error"`` or ``"warning"``.  Only ``error`` diagnostics make
    ``repro lint`` exit non-zero.
``check(context)``
    Yield :class:`Diagnostic` objects over a parsed
    :class:`~repro.lint.context.LintContext`.  Rules see the *whole*
    file set at once, so cross-cutting contracts (registry
    completeness, spec threading) are as easy to express as per-file
    ones.

Registering a rule is the only step needed to expose it: the runner
executes every registered rule, ``repro lint --select`` filters by
name, and suppression comments (``# repro: noqa[rule-name]``) key off
the registered name.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError

__all__ = [
    "Diagnostic",
    "LintRule",
    "available_rules",
    "get_rule",
    "register_rule",
    "unregister_rule",
]

#: The severities a rule may declare.
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Diagnostic:
    """One reported violation, renderable as ``file:line: RULE-ID msg``."""

    path: str
    line: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: {self.rule} {self.message}"


@runtime_checkable
class LintRule(Protocol):
    """Structural interface every lint rule must satisfy."""

    name: str
    description: str
    severity: str

    def check(
        self, context
    ) -> Iterable[Diagnostic]:  # pragma: no cover - protocol
        ...


_REGISTRY: dict[str, LintRule] = {}


def register_rule(rule: LintRule, *, replace: bool = False) -> LintRule:
    """Register ``rule`` under ``rule.name``; returns the rule.

    Duplicate names raise :class:`ConfigurationError` unless
    ``replace=True``, matching the engine and backend registries.
    """
    name = getattr(rule, "name", None)
    if not name or not isinstance(name, str):
        raise ConfigurationError(
            f"lint rule name must be a non-empty string, got {name!r}"
        )
    if getattr(rule, "severity", None) not in SEVERITIES:
        raise ConfigurationError(
            f"lint rule {name!r} severity must be one of {SEVERITIES}, "
            f"got {getattr(rule, 'severity', None)!r}"
        )
    if name in _REGISTRY and not replace:
        raise ConfigurationError(
            f"lint rule {name!r} is already registered; pass "
            "replace=True to override it"
        )
    _REGISTRY[name] = rule
    return rule


def unregister_rule(name: str) -> None:
    """Remove a registry entry (no-op when absent); for tests/plugins."""
    _REGISTRY.pop(name, None)


def get_rule(name: str) -> LintRule:
    """Look up a registered rule by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown lint rule {name!r}; known rules: "
            f"{available_rules()}"
        ) from None


def available_rules() -> list[str]:
    """Sorted names of every registered rule."""
    return sorted(_REGISTRY)
