"""rng-discipline: randomness construction is ``seeding.py``'s job.

Every simulation path takes a ``numpy.random.Generator`` built by
:mod:`repro.seeding` (``as_generator`` / ``spawn_generators``) so that
replica streams are reproducible and independently spawnable.  A stray
``np.random.default_rng(...)``, a legacy global-state call
(``np.random.seed`` / ``np.random.randint`` / ...), or a
``from numpy.random import default_rng`` anywhere else silently forks
the seeding discipline.  Declarative entropy objects
(``SeedSequence`` and friends) stay allowed everywhere — they carry
seeds, they don't sample.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterator

from repro.lint.context import LintContext, SourceFile
from repro.lint.model import Diagnostic, register_rule

__all__ = ["RngDisciplineRule"]

#: The one module allowed to construct generators.
_FACTORY_MODULE = "seeding.py"

#: ``np.random.<attr>`` uses that stay legal everywhere: declarative
#: entropy/bit-generator objects, never sampling or global state.
_DECLARATIVE = frozenset(
    {
        "SeedSequence",
        "Generator",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)

_NP_RANDOM_CALL = re.compile(r"^(?:np|numpy)\.random\.(?P<attr>\w+)$")


class RngDisciplineRule:
    name = "rng-discipline"
    description = (
        "np.random generator construction and legacy global-state calls "
        "are allowed only in seeding.py; everywhere else randomness must "
        "flow through a passed-in Generator"
    )
    severity = "error"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        for file in context.files:
            if file.name == _FACTORY_MODULE:
                continue
            yield from self._check_file(file)

    def _check_file(self, file: SourceFile) -> Iterator[Diagnostic]:
        for node in ast.walk(file.tree):
            if isinstance(node, ast.Call):
                yield from self._check_call(file, node)
            elif isinstance(node, ast.ImportFrom):
                yield from self._check_import(file, node)

    def _check_call(
        self, file: SourceFile, node: ast.Call
    ) -> Iterator[Diagnostic]:
        if not isinstance(node.func, ast.Attribute):
            return
        try:
            target = ast.unparse(node.func)
        except Exception:  # pragma: no cover - defensive
            return
        match = _NP_RANDOM_CALL.match(target)
        if match is None or match.group("attr") in _DECLARATIVE:
            return
        yield Diagnostic(
            path=file.relative,
            line=node.lineno,
            rule=self.name,
            message=(
                f"call to {target} outside seeding.py; take a "
                "numpy.random.Generator parameter (repro.seeding."
                "as_generator / spawn_generators) instead"
            ),
        )

    def _check_import(
        self, file: SourceFile, node: ast.ImportFrom
    ) -> Iterator[Diagnostic]:
        if node.module != "numpy.random":
            return
        for alias in node.names:
            if alias.name in _DECLARATIVE or alias.name == "*":
                continue
            yield Diagnostic(
                path=file.relative,
                line=node.lineno,
                rule=self.name,
                message=(
                    f"import of numpy.random.{alias.name} outside "
                    "seeding.py; take a numpy.random.Generator parameter "
                    "instead"
                ),
            )


RULE = register_rule(RngDisciplineRule())
