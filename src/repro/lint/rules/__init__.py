"""Built-in lint rules.

Importing this package registers every built-in rule with the
registry in :mod:`repro.lint.model` — the same import-for-side-effect
idiom the engine and backend packages use.  Third-party or test rules
register through :func:`repro.lint.register_rule` directly.
"""

from __future__ import annotations

from repro.lint.rules.contracts import OptimizeSafeContractsRule
from repro.lint.rules.registries import RegistryCompletenessRule
from repro.lint.rules.rng import RngDisciplineRule
from repro.lint.rules.spec_threading import SpecThreadingRule
from repro.lint.rules.store import StoreTransactionRule
from repro.lint.rules.vectorization import NoRowLoopRule

__all__ = [
    "NoRowLoopRule",
    "OptimizeSafeContractsRule",
    "RegistryCompletenessRule",
    "RngDisciplineRule",
    "SpecThreadingRule",
    "StoreTransactionRule",
]
