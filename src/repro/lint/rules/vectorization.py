"""no-row-loop: batch methods on dynamics classes must be vectorized.

The ``*_batch`` contract (ROADMAP's batch-first fabric) says a batch
step advances all R replicas with array operations — a Python
``for``/``while`` over the replica axis quietly turns a 30x engine
into the sequential fallback.  This rule statically checks, for every
concrete ``Dynamics`` subclass in ``core/``:

* the vectorized overrides *exist* — ``population_step_batch`` and
  ``async_population_step_batch`` for every catalogue dynamics, plus
  ``agent_step_batch`` for the pull-based paper trio — because a
  deleted override silently falls back to the base class's row loop,
  which scanning the subclass alone can't see; and
* no ``*_batch`` override contains a Python loop, with an explicit
  allowlist for scratch-memory chunk iterators
  (``for start, stop in iter_row_chunks(...)``), which iterate over
  O(budget) chunks, not O(R) rows.

The abstract base class in ``base.py`` keeps its documented row-loop
fallbacks: it subclasses ``abc.ABC``, not ``Dynamics``, so it is
outside this rule's scope by construction.  This replaces the runtime
row-loop guards previously duplicated across three benchmark modules
(``bench_batch_dynamics.py`` keeps one as a belt-and-braces check).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import LintContext, SourceFile
from repro.lint.model import Diagnostic, register_rule

__all__ = ["NoRowLoopRule"]

#: Loop iterators that are allowed inside batch methods: they chunk the
#: replica axis to bound scratch memory, they don't serialise it.
_CHUNK_ITERATORS = frozenset({"iter_row_chunks"})

#: Overrides every concrete core dynamics must provide.
_REQUIRED_OVERRIDES = ("population_step_batch", "async_population_step_batch")

#: The pull-based paper dynamics additionally need the vectorized
#: agent-level (graph) step; the others run agent-level sequentially.
_AGENT_BATCH_REQUIRED = frozenset({"ThreeMajority", "TwoChoices", "Voter"})


def _is_dynamics_subclass(node: ast.ClassDef) -> bool:
    for base in node.bases:
        try:
            if ast.unparse(base).split(".")[-1] == "Dynamics":
                return True
        except Exception:  # pragma: no cover - defensive
            continue
    return False


def _is_chunk_iteration(iterator: ast.expr) -> bool:
    if not isinstance(iterator, ast.Call):
        return False
    func = iterator.func
    if isinstance(func, ast.Name):
        return func.id in _CHUNK_ITERATORS
    if isinstance(func, ast.Attribute):
        return func.attr in _CHUNK_ITERATORS
    return False


class NoRowLoopRule:
    name = "no-row-loop"
    description = (
        "concrete Dynamics subclasses in core/ must provide their "
        "*_step_batch overrides and keep them free of Python loops over "
        "the replica axis (chunk iterators like iter_row_chunks allowed)"
    )
    severity = "error"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        for file in context.in_directory("core"):
            for node in file.tree.body:
                if isinstance(node, ast.ClassDef) and _is_dynamics_subclass(
                    node
                ):
                    yield from self._check_class(file, node)

    def _check_class(
        self, file: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        methods = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        required = list(_REQUIRED_OVERRIDES)
        if cls.name in _AGENT_BATCH_REQUIRED:
            required.append("agent_step_batch")
        for name in required:
            if name not in methods:
                yield Diagnostic(
                    path=file.relative,
                    line=cls.lineno,
                    rule=self.name,
                    message=(
                        f"{cls.name} does not override {name}; without it "
                        "the base class row-loop fallback runs and the "
                        "batch engines lose their speedup"
                    ),
                )
        for name, method in methods.items():
            if name.endswith("_batch"):
                yield from self._check_method(file, cls, method)

    def _check_method(
        self,
        file: SourceFile,
        cls: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(method):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_chunk_iteration(node.iter):
                    continue
                kind = "for"
            elif isinstance(node, ast.While):
                kind = "while"
            else:
                continue
            yield Diagnostic(
                path=file.relative,
                line=node.lineno,
                rule=self.name,
                message=(
                    f"Python {kind} loop in {cls.name}.{method.name}; "
                    "batch methods must vectorize over the replica axis "
                    "(use iter_row_chunks for scratch-memory chunking)"
                ),
            )


RULE = register_rule(NoRowLoopRule())
