"""optimize-safe-contracts: no bare ``assert`` in library code.

``assert`` statements are compiled away under ``python -O``, so a
contract expressed as one silently stops being checked exactly when a
deployment flips optimization on.  Library enforcement paths must
raise typed :mod:`repro.errors` exceptions (``ConfigurationError``,
``StateError``, ``InternalError``, ...) instead — those survive any
interpreter mode and give callers something to catch.  Test files are
outside this rule's input set (``repro lint`` walks the package
source), where ``assert`` is pytest's native idiom.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import LintContext
from repro.lint.model import Diagnostic, register_rule

__all__ = ["OptimizeSafeContractsRule"]


class OptimizeSafeContractsRule:
    name = "optimize-safe-contracts"
    description = (
        "library code must not use bare assert (stripped under "
        "python -O); raise a typed repro.errors exception instead"
    )
    severity = "error"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        for file in context.files:
            for node in ast.walk(file.tree):
                if isinstance(node, ast.Assert):
                    yield Diagnostic(
                        path=file.relative,
                        line=node.lineno,
                        rule=self.name,
                        message=(
                            "bare assert is stripped under python -O; "
                            "raise a typed repro.errors exception instead"
                        ),
                    )


RULE = register_rule(OptimizeSafeContractsRule())
