"""registry-completeness: nothing ships half-registered.

The repo routes construction through string-keyed registries (the PR
2-4 pattern): dynamics via ``core/registry.py``, engines via
``register_engine``, backends via ``register_backend``, and compiled
kernels via ``backend.kernel(name)``.  A class that exists but is not
registered is dead weight the CLI/sweep/spec layers can't reach — and
a kernel exported by the numba backend that no dispatch site requests
is untested compiled code.  Four sub-checks:

* every concrete ``Dynamics`` subclass in ``core/`` is referenced by
  ``core/registry.py``;
* every ``*Engine`` class (outside the registry module's protocol) is
  passed to a ``register_engine`` call in its own module;
* every concrete ``*Backend`` class (Protocol definitions exempt) is
  passed to a ``register_backend`` call somewhere in the tree;
* every name in ``numba_kernels.py``'s ``KERNEL_NAMES`` is requested
  by some ``.kernel("<name>")`` or ``backend_kernel("<name>")``
  dispatch site;
* every concrete ``*Invariant`` class in ``invariants/`` (Protocol
  definitions exempt) is passed to a ``register_invariant`` call, so
  the cross-engine harness can never silently drop a check;
* every fault point declared in ``faults/points.py`` has at least one
  armed ``fault_point("<name>")`` call site in the tree, and every
  armed call names a declared point — so the chaos catalogue can
  neither rot (dead declarations) nor drift (undeclared injections).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import LintContext, SourceFile
from repro.lint.model import Diagnostic, register_rule

__all__ = ["RegistryCompletenessRule"]


def _names_in(node: ast.AST) -> set[str]:
    found: set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            found.add(child.id)
        elif isinstance(child, ast.Attribute):
            found.add(child.attr)
    return found


def _calls_to(tree: ast.AST, function: str) -> list[ast.Call]:
    calls = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        name = (
            func.id
            if isinstance(func, ast.Name)
            else func.attr
            if isinstance(func, ast.Attribute)
            else None
        )
        if name == function:
            calls.append(node)
    return calls


def _has_protocol_base(cls: ast.ClassDef) -> bool:
    for base in cls.bases:
        try:
            if "Protocol" in ast.unparse(base):
                return True
        except Exception:  # pragma: no cover - defensive
            continue
    return False


def _module_classes(file: SourceFile) -> list[ast.ClassDef]:
    return [n for n in file.tree.body if isinstance(n, ast.ClassDef)]


class RegistryCompletenessRule:
    name = "registry-completeness"
    description = (
        "every Dynamics subclass, engine class, backend class, "
        "invariant class and declared fault point must be registered/"
        "armed, and every exported numba kernel name must have a "
        "requesting dispatch site"
    )
    severity = "error"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        yield from self._check_dynamics(context)
        yield from self._check_engines(context)
        yield from self._check_backends(context)
        yield from self._check_kernels(context)
        yield from self._check_invariants(context)
        yield from self._check_fault_points(context)

    # -- dynamics ------------------------------------------------------
    def _check_dynamics(self, context: LintContext) -> Iterator[Diagnostic]:
        registry = context.find("core/registry.py")
        if registry is None:
            return
        referenced = _names_in(registry.tree)
        for file in context.in_directory("core"):
            if file is registry:
                continue
            for cls in _module_classes(file):
                if not self._is_dynamics_subclass(cls):
                    continue
                if cls.name not in referenced:
                    yield Diagnostic(
                        path=file.relative,
                        line=cls.lineno,
                        rule=self.name,
                        message=(
                            f"Dynamics subclass {cls.name} is not "
                            "referenced by core/registry.py; register it "
                            "so make_dynamics can build it"
                        ),
                    )

    @staticmethod
    def _is_dynamics_subclass(cls: ast.ClassDef) -> bool:
        for base in cls.bases:
            try:
                if ast.unparse(base).split(".")[-1] == "Dynamics":
                    return True
            except Exception:  # pragma: no cover - defensive
                continue
        return False

    # -- engines -------------------------------------------------------
    def _check_engines(self, context: LintContext) -> Iterator[Diagnostic]:
        for file in context.in_directory("engine"):
            if file.name == "registry.py":
                continue
            # Engines register a module-level runner (the spec -> results
            # entry point), not the class object, so the check is at
            # module granularity: defining an engine class obliges the
            # module to register itself.
            registers = bool(_calls_to(file.tree, "register_engine"))
            for cls in _module_classes(file):
                if not cls.name.endswith("Engine") or cls.name == "Engine":
                    continue
                if _has_protocol_base(cls):
                    continue
                if not registers:
                    yield Diagnostic(
                        path=file.relative,
                        line=cls.lineno,
                        rule=self.name,
                        message=(
                            f"module defines engine class {cls.name} but "
                            "never calls register_engine; the engine is "
                            "unreachable by name"
                        ),
                    )

    # -- backends ------------------------------------------------------
    def _check_backends(self, context: LintContext) -> Iterator[Diagnostic]:
        registered: set[str] = set()
        for file in context.files:
            for call in _calls_to(file.tree, "register_backend"):
                registered |= _names_in(call)
        for file in context.in_directory("backends"):
            if file.name == "registry.py":
                continue
            for cls in _module_classes(file):
                if not cls.name.endswith("Backend"):
                    continue
                if _has_protocol_base(cls):
                    continue
                if cls.name not in registered:
                    yield Diagnostic(
                        path=file.relative,
                        line=cls.lineno,
                        rule=self.name,
                        message=(
                            f"backend class {cls.name} is not passed to "
                            "a register_backend call anywhere in the tree"
                        ),
                    )

    # -- invariants ----------------------------------------------------
    def _check_invariants(
        self, context: LintContext
    ) -> Iterator[Diagnostic]:
        registered: set[str] = set()
        for file in context.files:
            for call in _calls_to(file.tree, "register_invariant"):
                registered |= _names_in(call)
        for file in context.in_directory("invariants"):
            if file.name == "registry.py":
                continue
            for cls in _module_classes(file):
                if (
                    not cls.name.endswith("Invariant")
                    or cls.name == "Invariant"
                ):
                    continue
                if _has_protocol_base(cls):
                    continue
                if cls.name not in registered:
                    yield Diagnostic(
                        path=file.relative,
                        line=cls.lineno,
                        rule=self.name,
                        message=(
                            f"invariant class {cls.name} is not passed "
                            "to a register_invariant call anywhere in "
                            "the tree; check_trace can never run it"
                        ),
                    )

    # -- kernels -------------------------------------------------------
    def _check_kernels(self, context: LintContext) -> Iterator[Diagnostic]:
        kernels_file = context.find("numba_kernels.py")
        if kernels_file is None:
            return
        assignment = None
        for node in kernels_file.tree.body:
            if isinstance(node, ast.Assign):
                targets = [
                    t.id for t in node.targets if isinstance(t, ast.Name)
                ]
                if "KERNEL_NAMES" in targets:
                    assignment = node
                    break
        if assignment is None:
            return
        exported = {
            n.value
            for n in ast.walk(assignment.value)
            if isinstance(n, ast.Constant) and isinstance(n.value, str)
        }
        requested: set[str] = set()
        for file in context.files:
            # Direct dispatch: backend.kernel("<name>").
            for call in _calls_to(file.tree, "kernel"):
                if (
                    isinstance(call.func, ast.Attribute)
                    and call.args
                    and isinstance(call.args[0], ast.Constant)
                    and isinstance(call.args[0].value, str)
                ):
                    requested.add(call.args[0].value)
            # Quarantine-aware dispatch: backend_kernel("<name>")
            # resolves the active backend and the fault wrapper itself.
            for call in _calls_to(file.tree, "backend_kernel"):
                if (
                    isinstance(call.func, ast.Name)
                    and call.args
                    and isinstance(call.args[0], ast.Constant)
                    and isinstance(call.args[0].value, str)
                ):
                    requested.add(call.args[0].value)
        for name in sorted(exported - requested):
            yield Diagnostic(
                path=kernels_file.relative,
                line=assignment.lineno,
                rule=self.name,
                message=(
                    f"kernel {name!r} is exported by KERNEL_NAMES but no "
                    f'dispatch site requests it via .kernel("{name}")'
                ),
            )


    # -- fault points --------------------------------------------------
    def _check_fault_points(
        self, context: LintContext
    ) -> Iterator[Diagnostic]:
        catalogue = context.find("faults/points.py")
        if catalogue is None:
            return
        declared: dict[str, int] = {}
        for call in _calls_to(catalogue.tree, "FaultPoint"):
            if (
                call.args
                and isinstance(call.args[0], ast.Constant)
                and isinstance(call.args[0].value, str)
            ):
                declared[call.args[0].value] = call.lineno
        armed: dict[str, tuple[str, int]] = {}
        for file in context.files:
            if file is catalogue:
                continue
            for call in _calls_to(file.tree, "fault_point"):
                if (
                    call.args
                    and isinstance(call.args[0], ast.Constant)
                    and isinstance(call.args[0].value, str)
                ):
                    armed.setdefault(
                        call.args[0].value, (file.relative, call.lineno)
                    )
        for name in sorted(set(declared) - set(armed)):
            yield Diagnostic(
                path=catalogue.relative,
                line=declared[name],
                rule=self.name,
                message=(
                    f"fault point {name!r} is declared but no armed "
                    f'fault_point("{name}") call site exists; chaos '
                    "plans naming it can never fire"
                ),
            )
        for name in sorted(set(armed) - set(declared)):
            path, line = armed[name]
            yield Diagnostic(
                path=path,
                line=line,
                rule=self.name,
                message=(
                    f"fault_point call names undeclared point "
                    f"{name!r}; declare it in faults/points.py so "
                    "plans validate against the catalogue"
                ),
            )


RULE = register_rule(RegistryCompletenessRule())
