"""spec-threading: a new ``SimulationSpec`` axis must land everywhere.

The PR 2-4 convention (ROADMAP): every spec dimension is threaded
through three surfaces so no axis ships half-wired —

* ``SimulationSpec.describe()`` (human-readable run summaries and log
  lines must show the axis),
* the sweep canonicalisation in ``sweep/grid.py`` (cache keys must
  incorporate it or cached results silently alias across values),
* a CLI flag (``--axis-name``), so the axis is reachable from the
  command line.

A field that is inherently programmatic carries a documented exemption
below instead of a suppression comment, so the exemption list is
itself reviewable in one place.  Surfaces whose file is absent from
the lint input set are skipped (fixture trees exercise one surface at
a time).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import LintContext, SourceFile
from repro.lint.model import Diagnostic, register_rule

__all__ = ["SpecThreadingRule"]

#: Fields that are constructed programmatically and have no flat
#: string/flag form on any surface.  Key -> reviewable rationale.
_PROGRAMMATIC_ONLY = {
    "counts": "explicit numpy start vector; built in code, not parsed",
    "target": "arbitrary stopping predicate (callable)",
    "observer_factory": "stateful observer constructor (callable)",
    "on_budget": "error-handling policy, not a swept axis",
}

#: Per-surface exemptions for fields that exist on the other surfaces.
_SURFACE_EXEMPT = {
    "describe": frozenset(),
    "grid": frozenset(),
    "cli": frozenset(
        {
            # Per-family parameter dict; exposed as --config KEY=VALUE
            # pairs rather than one flat flag per key.
            "initial_params",
        }
    ),
}


def _find_spec_class(
    context: LintContext,
) -> tuple[SourceFile, ast.ClassDef] | None:
    for file in context.files:
        for node in file.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == "SimulationSpec":
                return file, node
    return None


def _spec_fields(cls: ast.ClassDef) -> dict[str, int]:
    """Dataclass field name -> definition line."""
    fields: dict[str, int] = {}
    for node in cls.body:
        if not isinstance(node, ast.AnnAssign):
            continue
        if not isinstance(node.target, ast.Name):
            continue
        name = node.target.id
        if name.startswith("_"):
            continue
        try:
            annotation = ast.unparse(node.annotation)
        except Exception:  # pragma: no cover - defensive
            annotation = ""
        if annotation.startswith("ClassVar"):
            continue
        fields[name] = node.lineno
    return fields


def _self_attributes(function: ast.AST) -> set[str]:
    found: set[str] = set()
    for node in ast.walk(function):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            found.add(node.attr)
    return found


def _strings_and_keywords(tree: ast.AST) -> set[str]:
    found: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            found.add(node.value)
        elif isinstance(node, ast.keyword) and node.arg:
            found.add(node.arg)
    return found


class SpecThreadingRule:
    name = "spec-threading"
    description = (
        "every SimulationSpec field must appear in describe(), the sweep "
        "cache-key canonicalisation (grid.py), and a CLI flag"
    )
    severity = "error"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        found = _find_spec_class(context)
        if found is None:
            return
        spec_file, spec_class = found
        fields = {
            name: line
            for name, line in _spec_fields(spec_class).items()
            if name not in _PROGRAMMATIC_ONLY
        }
        if not fields:
            return
        yield from self._check_describe(spec_file, spec_class, fields)
        yield from self._check_grid(context, spec_file, fields)
        yield from self._check_cli(context, spec_file, fields)

    def _check_describe(
        self,
        spec_file: SourceFile,
        spec_class: ast.ClassDef,
        fields: dict[str, int],
    ) -> Iterator[Diagnostic]:
        describe = None
        for node in spec_class.body:
            if isinstance(node, ast.FunctionDef) and node.name == "describe":
                describe = node
                break
        if describe is None:
            yield Diagnostic(
                path=spec_file.relative,
                line=spec_class.lineno,
                rule=self.name,
                message="SimulationSpec has no describe() method",
            )
            return
        shown = _self_attributes(describe)
        for name, line in sorted(fields.items()):
            if name in _SURFACE_EXEMPT["describe"] or name in shown:
                continue
            yield Diagnostic(
                path=spec_file.relative,
                line=line,
                rule=self.name,
                message=(
                    f"spec field {name!r} does not appear in describe(); "
                    "run summaries would hide this axis"
                ),
            )

    def _check_grid(
        self,
        context: LintContext,
        spec_file: SourceFile,
        fields: dict[str, int],
    ) -> Iterator[Diagnostic]:
        grid = context.find("grid.py")
        if grid is None:
            return
        referenced = _strings_and_keywords(grid.tree)
        for name, line in sorted(fields.items()):
            if name in _SURFACE_EXEMPT["grid"] or name in referenced:
                continue
            yield Diagnostic(
                path=spec_file.relative,
                line=line,
                rule=self.name,
                message=(
                    f"spec field {name!r} is not threaded through the "
                    "sweep canonicalisation in grid.py; cache keys would "
                    "alias across its values"
                ),
            )

    def _check_cli(
        self,
        context: LintContext,
        spec_file: SourceFile,
        fields: dict[str, int],
    ) -> Iterator[Diagnostic]:
        cli = context.find("cli.py")
        if cli is None:
            return
        strings = {
            node.value
            for node in ast.walk(cli.tree)
            if isinstance(node, ast.Constant) and isinstance(node.value, str)
        }
        for name, line in sorted(fields.items()):
            if name in _SURFACE_EXEMPT["cli"]:
                continue
            flag = "--" + name.replace("_", "-")
            if flag in strings:
                continue
            yield Diagnostic(
                path=spec_file.relative,
                line=line,
                rule=self.name,
                message=(
                    f"spec field {name!r} has no CLI flag {flag}; the "
                    "axis is unreachable from the command line"
                ),
            )


RULE = register_rule(SpecThreadingRule())
