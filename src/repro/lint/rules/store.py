"""store-transaction-discipline: DML goes through ``BEGIN IMMEDIATE``.

The service job store (``service/store.py``) serialises writers with
an explicit ``BEGIN IMMEDIATE`` transaction helper so concurrent
workers never interleave half-applied state transitions.  A mutating
statement executed outside ``with self._transaction():`` runs in
sqlite3's autocommit limbo: it takes locks late, can deadlock with
``BEGIN IMMEDIATE`` writers, and commits independently of the state
machine around it.

The rule applies to any class that defines a ``_transaction`` helper
(so fixture stores and future stores are covered, not just
``JobStore``): every ``INSERT``/``UPDATE``/``DELETE``/``REPLACE``
executed by a method of such a class must be lexically inside a
``with ...._transaction():`` block.  Reads (``SELECT``/``PRAGMA``) and
schema DDL (``CREATE``) stay free — they don't mutate rows.  Static
SQL is resolved from string constants and the constant prefix of
f-strings; dynamically assembled SQL is invisible to this rule, which
is another reason to keep statements literal.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import LintContext, SourceFile
from repro.lint.model import Diagnostic, register_rule

__all__ = ["StoreTransactionRule"]

_EXECUTE_METHODS = frozenset({"execute", "executemany", "executescript"})
_DML_VERBS = frozenset({"insert", "update", "delete", "replace"})
_HELPER = "_transaction"


def _static_sql_prefix(node: ast.expr) -> str | None:
    """The leading literal text of a SQL argument, if any."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr) and node.values:
        first = node.values[0]
        if isinstance(first, ast.Constant) and isinstance(first.value, str):
            return first.value
    return None


def _dml_verb(call: ast.Call) -> str | None:
    """The mutating SQL verb this call executes, if it is one."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr not in _EXECUTE_METHODS:
        return None
    if not call.args:
        return None
    sql = _static_sql_prefix(call.args[0])
    if sql is None:
        return None
    words = sql.lstrip().split(None, 1)
    if not words:
        return None
    verb = words[0].lower()
    return verb if verb in _DML_VERBS else None


def _enters_transaction(item: ast.withitem) -> bool:
    expr = item.context_expr
    if not isinstance(expr, ast.Call):
        return False
    func = expr.func
    if isinstance(func, ast.Attribute):
        return func.attr == _HELPER
    if isinstance(func, ast.Name):
        return func.id == _HELPER
    return False


class StoreTransactionRule:
    name = "store-transaction-discipline"
    description = (
        "mutating SQL in classes with a _transaction helper must run "
        "inside 'with self._transaction():' (BEGIN IMMEDIATE)"
    )
    severity = "error"

    def check(self, context: LintContext) -> Iterator[Diagnostic]:
        for file in context.files:
            for node in file.tree.body:
                if isinstance(node, ast.ClassDef):
                    yield from self._check_class(file, node)

    def _check_class(
        self, file: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        methods = [
            item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        if not any(m.name == _HELPER for m in methods):
            return
        for method in methods:
            if method.name == _HELPER:
                continue
            yield from self._visit(file, cls, method, method, in_txn=False)

    def _visit(
        self,
        file: SourceFile,
        cls: ast.ClassDef,
        method: ast.AST,
        node: ast.AST,
        *,
        in_txn: bool,
    ) -> Iterator[Diagnostic]:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            entered = in_txn or any(
                _enters_transaction(item) for item in node.items
            )
            for item in node.items:
                yield from self._visit(
                    file, cls, method, item, in_txn=in_txn
                )
            for child in node.body:
                yield from self._visit(
                    file, cls, method, child, in_txn=entered
                )
            return
        if isinstance(node, ast.Call):
            verb = _dml_verb(node)
            if verb is not None and not in_txn:
                yield Diagnostic(
                    path=file.relative,
                    line=node.lineno,
                    rule=self.name,
                    message=(
                        f"{cls.name}.{method.name} executes {verb.upper()} "
                        "outside the BEGIN IMMEDIATE helper; wrap it in "
                        "'with self._transaction():'"
                    ),
                )
        for child in ast.iter_child_nodes(node):
            yield from self._visit(file, cls, method, child, in_txn=in_txn)


RULE = register_rule(StoreTransactionRule())
