"""The catalogue of declared fault points.

One declaration per armed call site in the production code.  The
*registry-completeness* lint rule keeps this file honest in both
directions: every name declared here must have at least one armed
``fault_point("<name>")`` call under ``src/``, and every armed call must
reference a name declared here.
"""

from __future__ import annotations

from repro.faults.registry import FaultPoint, declare_fault_point

__all__ = ["DECLARED_FAULT_POINTS"]

DECLARED_FAULT_POINTS = tuple(
    declare_fault_point(point)
    for point in (
        FaultPoint(
            "store.transaction",
            "Start of every JobStore SQLite transaction — simulates "
            "'database is locked' busy storms and slow commits.",
            kinds=("error", "delay"),
            context_keys=("operation",),
        ),
        FaultPoint(
            "worker.job-execute",
            "WorkerFleet just before running a leased job — simulates "
            "runner exceptions, hangs and hard worker crashes.",
            kinds=("error", "delay", "crash"),
            context_keys=("job_id", "attempt"),
        ),
        FaultPoint(
            "worker.heartbeat",
            "WorkerFleet heartbeat recording — simulates dropped "
            "heartbeats so orphan detection and requeue can be driven.",
            kinds=("error", "delay"),
            context_keys=("job_id",),
        ),
        FaultPoint(
            "server.request",
            "HTTP server before routing a request — simulates a "
            "connection dropped before the handler ran.",
            kinds=("error", "delay"),
            context_keys=("path",),
        ),
        FaultPoint(
            "server.response",
            "HTTP server after handling, before sending the response — "
            "simulates a response lost on the wire (the client must "
            "retry; idempotency keys keep the retry safe).",
            kinds=("error", "delay"),
            context_keys=("path",),
        ),
        FaultPoint(
            "client.request",
            "ServiceClient before each HTTP attempt — simulates flaky "
            "client-side transport (resets, timeouts).",
            kinds=("error", "delay"),
            context_keys=("method", "path"),
        ),
        FaultPoint(
            "sweep.cache-write",
            "Sweep cache between temp-file write and atomic rename — "
            "simulates crashes and torn writes at the publication "
            "boundary the provenance chain certifies.",
            kinds=("error", "delay", "crash", "torn-write"),
            context_keys=("path", "payload"),
        ),
        FaultPoint(
            "backend.kernel",
            "Accelerated-kernel dispatch just before invoking a "
            "backend kernel — simulates a JIT kernel dying mid-batch "
            "so graceful degradation to the reference path is provable.",
            kinds=("error", "delay"),
            context_keys=("kernel", "backend"),
        ),
    )
)
