"""Seeded, deterministic fault injection for the infrastructure layers.

The [GL18] adversary model applied to the machinery instead of the
protocol: named :class:`FaultPoint`\\ s are woven into the production
choke points (store transactions, worker execution and heartbeats, HTTP
request/response handling, the client transport, the sweep cache's
atomic publication, backend kernel dispatch), and a seeded
:class:`FaultPlan` schedules crashes, exceptions, delays and torn
writes by point name and occurrence index through counter-based
splitmix64 streams — the same construction the numba kernels use — so a
plan replays bit-identically.

Disarmed (the default), every :func:`fault_point` call is a
context-variable read and a ``None`` check.  Armed via
:func:`use_fault_plan` or the ``REPRO_FAULT_PLAN`` environment variable
(how subprocess workers inherit a plan), the plan decides each
occurrence deterministically.  :mod:`repro.faults.chaos` builds the
end-to-end harness (``repro chaos``) on top.
"""

from repro.faults.registry import (
    FAULT_KINDS,
    FaultPoint,
    available_fault_points,
    declare_fault_point,
    get_fault_point,
    unregister_fault_point,
)
from repro.faults.plan import (
    ERROR_FACTORIES,
    FAULT_PLAN_ENV_VAR,
    FaultPlan,
    FaultRule,
    active_fault_plan,
    fault_point,
    faults_armed,
    use_fault_plan,
)
from repro.faults import points as _points  # noqa: F401  (declares the catalogue)
from repro.faults.plans import available_plans, builtin_plan

__all__ = [
    "ERROR_FACTORIES",
    "FAULT_KINDS",
    "FAULT_PLAN_ENV_VAR",
    "FaultPlan",
    "FaultPoint",
    "FaultRule",
    "active_fault_plan",
    "available_fault_points",
    "available_plans",
    "builtin_plan",
    "declare_fault_point",
    "fault_point",
    "faults_armed",
    "get_fault_point",
    "run_chaos",
    "unregister_fault_point",
    "use_fault_plan",
]


def run_chaos(*args, **kwargs):
    """Lazy proxy for :func:`repro.faults.chaos.run_chaos`.

    Imported lazily because the chaos harness pulls in the full service
    stack, which production code arming a plan has no need for.
    """
    from repro.faults.chaos import run_chaos as _run_chaos

    return _run_chaos(*args, **kwargs)
