"""String-keyed registry of named fault points.

Mirrors the engine/backend/invariant registries: a :class:`FaultPoint`
is declared once under a dotted name (``"store.transaction"``,
``"sweep.cache-write"``, ...) and armed call sites reference it by that
name via :func:`repro.faults.fault_point`.  The registry is the single
source of truth for

* which injection sites exist (``repro chaos --list-points`` and the
  README table render from it),
* which fault *kinds* each site supports (a plan scheduling an
  unsupported kind is rejected at plan-construction time, not when the
  occurrence finally fires mid-run), and
* lint enforcement: ``repro lint``'s *registry-completeness* rule
  cross-checks that every declared point has at least one armed
  ``fault_point("<name>")`` call site in ``src/`` and vice versa.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = [
    "FAULT_KINDS",
    "FaultPoint",
    "available_fault_points",
    "declare_fault_point",
    "get_fault_point",
    "unregister_fault_point",
]

#: Every fault kind any point may support.
#:
#: ``error``
#:     Raise an exception (which one is chosen by the rule's ``error``
#:     factory name — see :data:`repro.faults.plan.ERROR_FACTORIES`).
#: ``delay``
#:     Sleep for the rule's ``delay`` seconds, then continue normally.
#: ``crash``
#:     Terminate the process immediately via ``os._exit`` — the
#:     simulated kill -9.  Only sensible in subprocess-based tests.
#: ``torn-write``
#:     Write a truncated prefix of the payload to the *final* path,
#:     then raise: the simulated power cut between write and rename.
#:     Only supported by points whose call site passes ``path`` and
#:     ``payload`` context.
FAULT_KINDS = ("error", "delay", "crash", "torn-write")


@dataclass(frozen=True)
class FaultPoint:
    """A named injection site woven into a production code path.

    ``name``
        Dotted identifier, ``<layer>.<site>`` by convention.
    ``description``
        One-line human description of where the point sits and what a
        fault there simulates.
    ``kinds``
        The subset of :data:`FAULT_KINDS` this site supports.  Plans
        referencing the point with an unsupported kind are rejected.
    ``context_keys``
        Names of the keyword context the armed call site supplies
        (e.g. ``("path", "payload")`` for torn writes) — documentation
        plus validation that ``torn-write`` is only declared where the
        required context exists.
    """

    name: str
    description: str
    kinds: tuple[str, ...] = ("error", "delay")
    context_keys: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise ConfigurationError(
                f"fault point name must be a non-empty string, "
                f"got {self.name!r}"
            )
        unknown = [k for k in self.kinds if k not in FAULT_KINDS]
        if unknown:
            raise ConfigurationError(
                f"fault point {self.name!r} declares unknown kinds "
                f"{unknown!r}; known kinds: {', '.join(FAULT_KINDS)}"
            )
        if not self.kinds:
            raise ConfigurationError(
                f"fault point {self.name!r} must support at least one kind"
            )
        if "torn-write" in self.kinds:
            missing = {"path", "payload"} - set(self.context_keys)
            if missing:
                raise ConfigurationError(
                    f"fault point {self.name!r} supports 'torn-write' but "
                    f"its call site does not supply {sorted(missing)!r} "
                    "context"
                )


_POINTS: dict[str, FaultPoint] = {}


def declare_fault_point(
    point: FaultPoint, *, replace: bool = False
) -> FaultPoint:
    """Register ``point`` under its name.

    Duplicate names raise :class:`ConfigurationError` unless
    ``replace=True``, matching every other registry in the package.
    """
    if point.name in _POINTS and not replace:
        raise ConfigurationError(
            f"fault point {point.name!r} is already declared; pass "
            "replace=True to overwrite it"
        )
    _POINTS[point.name] = point
    return point


def get_fault_point(name: str) -> FaultPoint:
    """Return the declared point or raise :class:`ConfigurationError`."""
    try:
        return _POINTS[name]
    except KeyError:
        known = ", ".join(available_fault_points()) or "none declared"
        raise ConfigurationError(
            f"unknown fault point {name!r}; declared points: {known}"
        ) from None


def available_fault_points() -> list[str]:
    """Sorted names of every declared fault point."""
    return sorted(_POINTS)


def unregister_fault_point(name: str) -> None:
    """Remove ``name`` from the registry (primarily for tests)."""
    if name not in _POINTS:
        raise ConfigurationError(f"unknown fault point {name!r}")
    del _POINTS[name]
