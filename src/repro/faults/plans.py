"""Named builtin fault plans for the chaos harness and CI.

Each builder takes a seed and returns a fresh :class:`FaultPlan`; the
names are what ``repro chaos --plan <name>`` and the CI ``chaos`` job
use, so a CI failure reproduces locally from the plan name + seed alone.
Probabilistic rules carry ``max_injections`` budgets sized so that
bounded retry policies always converge — except where a plan's *point*
is to exhaust retries (``worker-crash-storm``).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, FaultRule

__all__ = ["available_plans", "builtin_plan"]


def _worker_crash(seed: int) -> FaultPlan:
    """Job executions fail ~half the time: jobs finish done or dead."""
    return FaultPlan(
        [FaultRule("worker.job-execute", kind="error", probability=0.5)],
        seed=seed,
    )


def _worker_crash_storm(seed: int) -> FaultPlan:
    """Every job execution fails: all jobs must land in ``dead``."""
    return FaultPlan(
        [FaultRule("worker.job-execute", kind="error", probability=1.0)],
        seed=seed,
    )


def _torn_cache_write(seed: int) -> FaultPlan:
    """Torn writes at the cache publication boundary (bounded)."""
    return FaultPlan(
        [
            FaultRule(
                "sweep.cache-write",
                kind="torn-write",
                probability=0.3,
                max_injections=6,
            ),
            FaultRule(
                "sweep.cache-write",
                kind="error",
                probability=0.1,
                max_injections=3,
            ),
        ],
        seed=seed,
    )


def _flaky_transport(seed: int) -> FaultPlan:
    """Connection resets on both sides of the HTTP transport (bounded)."""
    return FaultPlan(
        [
            FaultRule(
                "client.request",
                kind="error",
                error="connection-reset",
                probability=0.25,
                max_injections=20,
            ),
            FaultRule(
                "server.request",
                kind="error",
                error="connection-reset",
                probability=0.1,
                max_injections=10,
            ),
            FaultRule(
                "server.response",
                kind="error",
                error="connection-reset",
                probability=0.15,
                max_injections=10,
            ),
        ],
        seed=seed,
    )


def _sqlite_busy(seed: int) -> FaultPlan:
    """'database is locked' storms on the job store (bounded)."""
    return FaultPlan(
        [
            FaultRule(
                "store.transaction",
                kind="error",
                error="sqlite-busy",
                probability=0.2,
                max_injections=30,
            )
        ],
        seed=seed,
    )


def _heartbeat_drop(seed: int) -> FaultPlan:
    """Every heartbeat is dropped: drives orphan detection/requeue."""
    return FaultPlan(
        [FaultRule("worker.heartbeat", kind="error", probability=1.0)],
        seed=seed,
    )


def _mixed(seed: int) -> FaultPlan:
    """A bit of everything, all budgets bounded so jobs converge."""
    return FaultPlan(
        [
            FaultRule(
                "worker.job-execute",
                kind="error",
                probability=0.25,
                max_injections=6,
            ),
            FaultRule(
                "sweep.cache-write",
                kind="torn-write",
                probability=0.15,
                max_injections=4,
            ),
            FaultRule(
                "client.request",
                kind="error",
                error="connection-reset",
                probability=0.15,
                max_injections=12,
            ),
            FaultRule(
                "store.transaction",
                kind="error",
                error="sqlite-busy",
                probability=0.1,
                max_injections=12,
            ),
            FaultRule("worker.heartbeat", kind="delay", delay=0.02,
                      probability=0.2, max_injections=10),
        ],
        seed=seed,
    )


_BUILTIN: dict[str, Callable[[int], FaultPlan]] = {
    "worker-crash": _worker_crash,
    "worker-crash-storm": _worker_crash_storm,
    "torn-cache-write": _torn_cache_write,
    "flaky-transport": _flaky_transport,
    "sqlite-busy": _sqlite_busy,
    "heartbeat-drop": _heartbeat_drop,
    "mixed": _mixed,
}


def available_plans() -> list[str]:
    """Sorted names of the builtin chaos plans."""
    return sorted(_BUILTIN)


def builtin_plan(name: str, *, seed: int = 0) -> FaultPlan:
    """Build the named plan with ``seed``; unknown names raise."""
    try:
        builder = _BUILTIN[name]
    except KeyError:
        known = ", ".join(available_plans())
        raise ConfigurationError(
            f"unknown chaos plan {name!r}; builtin plans: {known}"
        ) from None
    return builder(seed)
