"""Deterministic fault plans and the ambient activation machinery.

A :class:`FaultPlan` is a seed plus an ordered tuple of
:class:`FaultRule`\\ s.  Each rule targets one declared fault point and
decides, *purely from the plan seed, the rule's position and the
occurrence index*, whether a given execution of that point is faulted.
The decision stream is counter-based splitmix64 — the same construction
the numba kernels use for per-row RNG streams — so a plan replays
bit-identically: same seed, same rules, same occurrence order at a
point ⇒ same fault schedule, regardless of wall-clock timing, thread
count or platform.  (What is *not* deterministic under concurrency is
which thread draws which occurrence index; the chaos assertions are
therefore written against ledger invariants, not against "job 3 fails
on attempt 2".)

Activation is ambient, mirroring ``use_backend``/``active_backend`` but
with two extra layers because fault plans must reach places a
context-variable cannot: worker threads the fleet started *after* the
plan was armed, and subprocess pool workers.  Resolution order:

1. the contextvar set by ``use_fault_plan(plan, scope="context")``,
2. the process-global set by ``use_fault_plan(plan)`` (default scope),
3. the ``REPRO_FAULT_PLAN`` environment variable holding the plan's
   JSON (parsed once per distinct value) — how subprocesses inherit.

When none is set, :func:`fault_point` is a dictionary miss and a
``None`` check — zero overhead on production paths.
"""

from __future__ import annotations

import hashlib
import json
import os
import socket
import sqlite3
import threading
import time
from collections.abc import Iterator, Mapping
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field

from repro.errors import ConfigurationError, InjectedFaultError
from repro.faults.registry import FAULT_KINDS, get_fault_point

__all__ = [
    "ERROR_FACTORIES",
    "FAULT_PLAN_ENV_VAR",
    "FaultPlan",
    "FaultRule",
    "active_fault_plan",
    "fault_point",
    "faults_armed",
    "use_fault_plan",
]

#: Environment variable carrying an armed plan's JSON to subprocesses.
FAULT_PLAN_ENV_VAR = "REPRO_FAULT_PLAN"

_MASK64 = (1 << 64) - 1
_SPLITMIX_GAMMA = 0x9E3779B97F4A7C15
_ROW_GAMMA = 0xBF58476D1CE4E5B9


def _splitmix64(state: int) -> int:
    """One splitmix64 output for ``state`` (same mix as the numba kernels)."""
    state = (state + _SPLITMIX_GAMMA) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _point_entropy(name: str) -> int:
    """Stable 64-bit digest of a point name (platform-independent)."""
    return int.from_bytes(
        hashlib.sha256(name.encode("utf-8")).digest()[:8], "big"
    )


def _raise_connection_reset() -> None:
    raise ConnectionResetError(104, "Connection reset by peer (injected)")


def _raise_sqlite_busy() -> None:
    raise sqlite3.OperationalError("database is locked")


def _raise_socket_timeout() -> None:
    raise socket.timeout("timed out (injected)")


#: Named exception factories an ``error`` rule may select.  ``injected``
#: raises the typed :class:`InjectedFaultError`; the others raise the
#: *raw* exception the real failure mode would produce, so the hardening
#: under test is the production translation layer, not the injector.
ERROR_FACTORIES = {
    "injected": None,  # special-cased: carries point/index context
    "connection-reset": _raise_connection_reset,
    "sqlite-busy": _raise_sqlite_busy,
    "socket-timeout": _raise_socket_timeout,
}


@dataclass(frozen=True)
class FaultRule:
    """One scheduling rule: *at this point, fault these occurrences*.

    ``point``
        Declared fault-point name the rule targets.
    ``kind``
        One of :data:`repro.faults.registry.FAULT_KINDS`; must be
        supported by the point.
    ``at``
        Explicit zero-based occurrence indices to fault (tuple), or
        ``None`` to decide probabilistically per occurrence.
    ``probability``
        Per-occurrence fault probability when ``at`` is ``None``.
    ``error``
        Exception-factory name from :data:`ERROR_FACTORIES` (``error``
        and ``torn-write`` kinds only).
    ``delay``
        Sleep duration in seconds (``delay`` kind only).
    ``max_injections``
        Stop injecting after this many firings, so probabilistic storms
        are guaranteed to let retries eventually succeed.
    """

    point: str
    kind: str = "error"
    at: tuple[int, ...] | None = None
    probability: float = 1.0
    error: str = "injected"
    delay: float = 0.01
    max_injections: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; known kinds: "
                f"{', '.join(FAULT_KINDS)}"
            )
        if self.at is not None:
            at = tuple(int(i) for i in self.at)
            if any(i < 0 for i in at):
                raise ConfigurationError(
                    f"rule for {self.point!r}: occurrence indices must be "
                    f">= 0, got {self.at!r}"
                )
            object.__setattr__(self, "at", at)
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"rule for {self.point!r}: probability must be in [0, 1], "
                f"got {self.probability!r}"
            )
        if self.error not in ERROR_FACTORIES:
            raise ConfigurationError(
                f"rule for {self.point!r}: unknown error factory "
                f"{self.error!r}; known: {', '.join(sorted(ERROR_FACTORIES))}"
            )
        if self.delay < 0:
            raise ConfigurationError(
                f"rule for {self.point!r}: delay must be >= 0, "
                f"got {self.delay!r}"
            )
        if self.max_injections is not None and self.max_injections < 0:
            raise ConfigurationError(
                f"rule for {self.point!r}: max_injections must be >= 0, "
                f"got {self.max_injections!r}"
            )

    def to_dict(self) -> dict:
        payload: dict = {"point": self.point, "kind": self.kind}
        if self.at is not None:
            payload["at"] = list(self.at)
        else:
            payload["probability"] = self.probability
        if self.kind in ("error", "torn-write"):
            payload["error"] = self.error
        if self.kind == "delay":
            payload["delay"] = self.delay
        if self.max_injections is not None:
            payload["max_injections"] = self.max_injections
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> FaultRule:
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"fault rule must be a mapping, got {type(payload).__name__}"
            )
        known = {
            "point", "kind", "at", "probability", "error", "delay",
            "max_injections",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(
                f"fault rule has unknown keys {sorted(unknown)!r}"
            )
        if "point" not in payload:
            raise ConfigurationError("fault rule is missing 'point'")
        kwargs = dict(payload)
        if "at" in kwargs and kwargs["at"] is not None:
            kwargs["at"] = tuple(kwargs["at"])
        return cls(**kwargs)


class FaultPlan:
    """A seeded, replayable schedule of faults across declared points.

    Decision purity: :meth:`decision` maps ``(rule, occurrence index)``
    to fire/skip using only the plan seed — no mutable state — so
    :meth:`decisions` can preview or replay a schedule offline.  The
    only mutable state is the per-point occurrence counters and the
    per-rule injection counts consumed by :meth:`fire`, both guarded by
    a lock because points fire from many threads at once.
    """

    def __init__(self, rules, *, seed: int = 0) -> None:
        rules = tuple(
            r if isinstance(r, FaultRule) else FaultRule.from_dict(r)
            for r in rules
        )
        for rule in rules:
            point = get_fault_point(rule.point)  # unknown name raises
            if rule.kind not in point.kinds:
                raise ConfigurationError(
                    f"fault point {rule.point!r} does not support kind "
                    f"{rule.kind!r} (supported: {', '.join(point.kinds)})"
                )
        self.rules = rules
        self.seed = int(seed)
        self._by_point: dict[str, list[tuple[int, FaultRule]]] = {}
        for index, rule in enumerate(rules):
            self._by_point.setdefault(rule.point, []).append((index, rule))
        self._lock = threading.Lock()
        self._occurrences: dict[str, int] = {}
        self._injected: dict[int, int] = {}

    # -- pure decision layer ------------------------------------------------

    def _draw(self, rule_index: int, point: str, occurrence: int) -> float:
        """Uniform in [0, 1) for one (rule, occurrence) cell."""
        base = _splitmix64((self.seed & _MASK64) ^ _point_entropy(point))
        base = _splitmix64(base + rule_index)
        return _splitmix64((base + occurrence * _ROW_GAMMA) & _MASK64) / 2**64

    def decision(self, name: str, occurrence: int) -> FaultRule | None:
        """The rule (if any) scheduled to fire at this occurrence.

        Pure function of the plan seed — ignores ``max_injections``
        budgets, which by construction depend on execution history.
        The first matching rule in plan order wins.
        """
        for rule_index, rule in self._by_point.get(name, ()):
            if rule.at is not None:
                if occurrence in rule.at:
                    return rule
            elif self._draw(rule_index, name, occurrence) < rule.probability:
                return rule
        return None

    def decisions(self, name: str, count: int) -> list[str | None]:
        """Preview the first ``count`` scheduled kinds at point ``name``.

        The offline replay view: two plans with the same seed and rules
        return identical lists on every platform.
        """
        return [
            None if rule is None else rule.kind
            for rule in (self.decision(name, i) for i in range(count))
        ]

    # -- execution layer ----------------------------------------------------

    def fire(self, name: str, context: Mapping) -> None:
        """Consume one occurrence of point ``name`` and act on it."""
        get_fault_point(name)
        with self._lock:
            occurrence = self._occurrences.get(name, 0)
            self._occurrences[name] = occurrence + 1
            rule = self.decision(name, occurrence)
            if rule is not None and rule.max_injections is not None:
                rule_key = id(rule)
                if self._injected.get(rule_key, 0) >= rule.max_injections:
                    rule = None
                else:
                    self._injected[rule_key] = (
                        self._injected.get(rule_key, 0) + 1
                    )
            elif rule is not None:
                self._injected[id(rule)] = self._injected.get(id(rule), 0) + 1
        if rule is None:
            return
        self._execute(rule, name, occurrence, context)

    def _execute(
        self, rule: FaultRule, name: str, occurrence: int, context: Mapping
    ) -> None:
        if rule.kind == "delay":
            time.sleep(rule.delay)
            return
        if rule.kind == "crash":
            # The simulated kill -9: no cleanup, no atexit, no flush.
            os._exit(70)
        if rule.kind == "torn-write":
            path = context.get("path")
            payload = context.get("payload")
            if path is not None and payload is not None:
                data = payload if isinstance(payload, bytes) else str(
                    payload
                ).encode("utf-8")
                with open(path, "wb") as handle:
                    handle.write(data[: max(1, len(data) // 2)])
            raise InjectedFaultError(name, occurrence, "torn-write")
        factory = ERROR_FACTORIES[rule.error]
        if factory is None:
            raise InjectedFaultError(name, occurrence)
        factory()

    # -- bookkeeping --------------------------------------------------------

    def occurrences(self) -> dict[str, int]:
        """Occurrence counts consumed so far, per point name."""
        with self._lock:
            return dict(self._occurrences)

    def reset(self) -> None:
        """Forget consumed occurrences so the plan replays from zero."""
        with self._lock:
            self._occurrences.clear()
            self._injected.clear()

    def summary(self) -> dict:
        """Compact description for health payloads and reports."""
        return {
            "seed": self.seed,
            "rules": len(self.rules),
            "points": sorted(self._by_point),
        }

    # -- serialisation ------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "rules": [rule.to_dict() for rule in self.rules],
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> FaultPlan:
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"fault plan is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, Mapping) or "rules" not in payload:
            raise ConfigurationError(
                "fault plan JSON must be an object with a 'rules' array"
            )
        return cls(payload["rules"], seed=int(payload.get("seed", 0)))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(seed={self.seed}, rules={len(self.rules)}, "
            f"points={sorted(self._by_point)})"
        )


# -- ambient activation -----------------------------------------------------

_ACTIVE: ContextVar[FaultPlan | None] = ContextVar(
    "repro_fault_plan", default=None
)
_PROCESS_PLAN: FaultPlan | None = None

# Parsed-plan cache keyed by the env var's raw value, so hot paths in
# subprocess workers parse the JSON once, not per fault_point() call.
_ENV_CACHE: dict[str, FaultPlan] = {}


def _plan_from_env() -> FaultPlan | None:
    raw = os.environ.get(FAULT_PLAN_ENV_VAR, "").strip()
    if not raw:
        return None
    plan = _ENV_CACHE.get(raw)
    if plan is None:
        # A pinned env var must work or fail loudly, mirroring
        # REPRO_BACKEND: silently ignoring a typo'd plan would run the
        # chaos suite fault-free and green.
        plan = FaultPlan.from_json(raw)
        _ENV_CACHE[raw] = plan
    return plan


def active_fault_plan() -> FaultPlan | None:
    """The armed plan, or ``None`` (contextvar > process > env)."""
    plan = _ACTIVE.get()
    if plan is not None:
        return plan
    if _PROCESS_PLAN is not None:
        return _PROCESS_PLAN
    return _plan_from_env()


def faults_armed() -> bool:
    """``True`` iff any plan is currently armed in this process."""
    return active_fault_plan() is not None


def fault_point(name: str, **context) -> None:
    """Consume one occurrence of fault point ``name``.

    The single call-site API: when no plan is armed this is a
    context-variable read and two ``None`` checks; when armed, the plan
    decides deterministically whether this occurrence faults.
    """
    plan = active_fault_plan()
    if plan is None:
        return
    plan.fire(name, context)


@contextmanager
def use_fault_plan(
    plan: FaultPlan | str | None,
    *,
    scope: str = "process",
    export_env: bool = False,
) -> Iterator[FaultPlan | None]:
    """Arm ``plan`` for the enclosed block.

    ``scope="process"`` (default) arms it process-globally so worker
    threads started at any time see it — what the chaos harness needs.
    ``scope="context"`` confines it to the current context (and tasks
    forked from it), the right scope for targeted unit tests running
    alongside other threads.  ``export_env=True`` additionally writes
    the plan JSON to :data:`FAULT_PLAN_ENV_VAR` so subprocesses
    (sweep pool workers, ``repro serve`` children) inherit it.
    ``plan=None`` disarms within the block (masking any outer plan).
    """
    global _PROCESS_PLAN
    if isinstance(plan, str):
        plan = FaultPlan.from_json(plan)
    if scope not in ("process", "context"):
        raise ConfigurationError(
            f"fault plan scope must be 'process' or 'context', got {scope!r}"
        )
    token = None
    previous = _PROCESS_PLAN
    if scope == "context":
        token = _ACTIVE.set(plan)
    else:
        _PROCESS_PLAN = plan
        if plan is None:
            # Masking an outer plan process-wide also needs the
            # contextvar cleared in this context, or resolution order
            # would resurrect a scope="context" plan; env masking is
            # handled below.
            token = _ACTIVE.set(None)
    saved_env = os.environ.get(FAULT_PLAN_ENV_VAR)
    if export_env or (plan is None and scope == "process"):
        if plan is None:
            os.environ.pop(FAULT_PLAN_ENV_VAR, None)
        else:
            os.environ[FAULT_PLAN_ENV_VAR] = plan.to_json()
    try:
        yield plan
    finally:
        if token is not None:
            _ACTIVE.reset(token)
        if scope == "process":
            _PROCESS_PLAN = previous
        if export_env or (plan is None and scope == "process"):
            if saved_env is None:
                os.environ.pop(FAULT_PLAN_ENV_VAR, None)
            else:
                os.environ[FAULT_PLAN_ENV_VAR] = saved_env
