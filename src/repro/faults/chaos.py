"""Chaos harness: drive the whole service stack under a fault plan.

:func:`run_chaos` stands up a real :class:`~repro.service.server.
SimulationService` (SQLite store, worker fleet, HTTP API), submits a
deterministic batch of sweep jobs through :class:`~repro.service.client.
ServiceClient` instances, arms the given :class:`~repro.faults.plan.
FaultPlan` for the duration, and then — with faults disarmed — audits
the wreckage against the invariants the stack promises to keep under
turbulence:

* every submitted job **settles** (``done`` or ``dead``; ``failed``
  would mean a valid spec was misclassified as hopeless);
* every ``dead`` job carries an explanatory error;
* no job is lost or duplicated (the store holds exactly one job per
  submission — idempotency keys absorb retried submits);
* every ``done`` job's values are **byte-identical** to a fault-free
  baseline measurement of the same grid (faults may delay work, never
  change results);
* the sweep cache's provenance chain replays clean
  (:func:`repro.provenance.verify_chain`), i.e. torn writes were healed,
  not published.

Everything is deterministic given ``(plan, seed)``: job grids are fixed,
sweep seeds are fixed, and the plan's per-point decision streams are
counter-based — a red chaos run in CI reproduces locally from the plan
name and seed alone.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.faults.plan import FaultPlan, use_fault_plan
from repro.faults.plans import builtin_plan

__all__ = ["ChaosReport", "run_chaos"]

#: States a chaos job is allowed to settle in.  ``failed`` is excluded
#: on purpose: chaos submits only valid specs, so a permanent failure
#: under injected (transient) faults is a misclassification bug.
_ACCEPTABLE_STATES = ("done", "dead")

#: The deterministic job grids chaos submissions cycle through.  They
#: overlap on purpose (n=24/k=2 and n=16/k=2 appear in several grids):
#: racing workers then share cache points, exercising the atomic-write
#: and resume paths.  All jobs share sweep seed 0, so whichever worker
#: measures a point produces the same values.
_GRIDS = (
    {"n": [16, 24], "k": [2]},
    {"n": [24, 32], "k": [2]},
    {"n": [16, 32], "k": [2, 3]},
)
_FIXED = {"max_rounds": 4000}
_NUM_RUNS = 2
_SWEEP_SEED = 0


def _job_specs(count: int) -> list[dict]:
    """The deterministic spec payloads for ``count`` chaos jobs."""
    return [
        {
            "grid": _GRIDS[index % len(_GRIDS)],
            "num_runs": _NUM_RUNS,
            "seed": _SWEEP_SEED,
            "fixed": dict(_FIXED),
            "measure": "batch",
        }
        for index in range(count)
    ]


def _params_key(params: dict) -> str:
    """Canonical identity of one grid point's parameter dict."""
    return json.dumps(
        {str(key): params[key] for key in sorted(params)}, sort_keys=True
    )


@dataclass
class ChaosReport:
    """What one chaos run did and which invariants (if any) it broke."""

    plan_name: str
    seed: int
    plan_summary: dict
    submitted: list[str] = field(default_factory=list)
    jobs: dict[str, dict] = field(default_factory=dict)
    fired: dict[str, int] = field(default_factory=dict)
    baseline_points: int = 0
    compared_points: int = 0
    verify_report: str | None = None
    violations: list[str] = field(default_factory=list)
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations

    def state_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for payload in self.jobs.values():
            counts[payload["state"]] = counts.get(payload["state"], 0) + 1
        return counts

    def render(self) -> str:
        states = ", ".join(
            f"{count} {state}"
            for state, count in sorted(self.state_counts().items())
        )
        fired = (
            ", ".join(
                f"{point}={count}"
                for point, count in sorted(self.fired.items())
            )
            or "none"
        )
        lines = [
            f"chaos plan={self.plan_name} seed={self.seed}: "
            f"{len(self.submitted)} job(s) -> {states or 'none'} "
            f"({self.elapsed:.1f}s)",
            f"  faults fired: {fired}",
            f"  result points checked against baseline: "
            f"{self.compared_points} "
            f"({self.baseline_points} unique baseline point(s))",
        ]
        if self.verify_report is not None:
            lines.append(f"  provenance: {self.verify_report}")
        if self.ok:
            lines.append("  OK: all chaos invariants held")
        else:
            lines.append(f"  {len(self.violations)} violation(s):")
            lines.extend(f"    - {v}" for v in self.violations)
        return "\n".join(lines)


def run_chaos(
    plan: FaultPlan | str,
    *,
    seed: int = 0,
    jobs: int = 6,
    clients: int = 2,
    workers: int = 3,
    max_retries: int = 3,
    base_dir: str | Path | None = None,
    keep: bool = False,
    baseline: bool = True,
    timeout: float = 120.0,
) -> ChaosReport:
    """Run the service stack under ``plan`` and audit the invariants.

    ``plan`` is a :class:`FaultPlan` or a builtin plan name (see
    :func:`repro.faults.plans.available_plans`); a name is built with
    ``seed``, so ``(name, seed)`` fully determines the fault schedule.
    ``jobs`` submissions are spread round-robin over ``clients``
    distinct :class:`ServiceClient` identities against a fleet of
    ``workers`` threads.  With ``baseline`` (default), every distinct
    grid is first measured fault-free into a separate cache and done
    jobs' values are required to match it exactly.  All artefacts land
    under ``base_dir`` (a fresh temp dir when ``None``), removed
    afterwards unless ``keep``.
    """
    # Imported here, not at module top: the faults package is imported
    # by the service modules, and a top-level import back into the
    # service layer would be circular.
    from repro.provenance import verify_chain
    from repro.service.client import ServiceClient
    from repro.service.server import SimulationService
    from repro.sweep import SweepSpec, run_sweep

    if isinstance(plan, str):
        plan_name, plan = plan, builtin_plan(plan, seed=seed)
    else:
        plan_name = "custom"
    plan.reset()
    report = ChaosReport(
        plan_name=plan_name, seed=seed, plan_summary=plan.summary()
    )
    base = Path(base_dir) if base_dir is not None else None
    if base is None:
        base = Path(tempfile.mkdtemp(prefix="repro-chaos-"))
    base.mkdir(parents=True, exist_ok=True)
    started = time.monotonic()
    try:
        specs = _job_specs(jobs)
        expected: dict[str, list] = {}
        if baseline:
            # Fault-free reference values, measured before the plan is
            # armed into a cache the service never touches.  Every
            # chaos grid shares sweep seed 0, so "same point, same
            # values" is a hard guarantee, not a statistical one.
            seen: set[str] = set()
            for spec in specs:
                grid_key = _params_key(spec["grid"])
                if grid_key in seen:
                    continue
                seen.add(grid_key)
                points = run_sweep(
                    SweepSpec(
                        grid=spec["grid"],
                        num_runs=spec["num_runs"],
                        seed=spec["seed"],
                        fixed=spec["fixed"],
                    ),
                    cache_dir=base / "baseline",
                    measure="batch",
                )
                for point in points:
                    expected[_params_key(point.params)] = [
                        float(v) for v in point.values
                    ]
            report.baseline_points = len(expected)

        service = SimulationService(
            base / "jobs.db",
            cache_dir=base / "cache",
            port=0,
            num_workers=workers,
            max_retries=max_retries,
            backoff_base=0.02,
        )
        service.start()
        try:
            # Armed process-wide only *after* startup: the service's own
            # bring-up (schema migration, orphan requeue) is not part of
            # the chaos surface, and worker threads started by start()
            # see a process-scope plan where a contextvar would be
            # invisible to them.
            with use_fault_plan(plan, scope="process"):
                fleet = [
                    ServiceClient(
                        service.url,
                        client_id=f"chaos-{index}",
                        max_retries=6,
                        retry_base=0.02,
                    )
                    for index in range(max(1, clients))
                ]
                for index, spec in enumerate(specs):
                    job_id = fleet[index % len(fleet)].submit(spec)
                    report.submitted.append(job_id)
                deadline = time.monotonic() + timeout
                while time.monotonic() < deadline:
                    states = {
                        job_id: service.store.get(job_id).state
                        for job_id in report.submitted
                    }
                    if all(
                        state in ("done", "failed", "cancelled", "dead")
                        for state in states.values()
                    ):
                        break
                    time.sleep(0.05)
            # Disarmed from here on: the audit itself must not be
            # perturbed by the plan it is auditing.
            report.fired = plan.occurrences()
            for job_id in report.submitted:
                job = service.store.get(job_id)
                report.jobs[job_id] = job.status_payload()
                if job.state not in _ACCEPTABLE_STATES:
                    report.violations.append(
                        f"job {job_id} settled in state "
                        f"{job.state!r} (expected done or dead): "
                        f"{job.error}"
                    )
                    continue
                if job.state == "dead" and not job.error:
                    report.violations.append(
                        f"job {job_id} is dead without an "
                        "explanatory error"
                    )
                if job.state == "done":
                    report.violations.extend(
                        _audit_result(job_id, job.result, expected, report)
                    )
            stored = service.store.jobs()
            if len(stored) != len(set(report.submitted)):
                report.violations.append(
                    f"store holds {len(stored)} job(s) for "
                    f"{len(set(report.submitted))} unique submission(s) "
                    "— a retried submit duplicated or lost a job"
                )
        finally:
            service.shutdown()
        if (base / "cache").is_dir():
            chain = verify_chain(base / "cache")
            report.verify_report = chain.render()
            if not chain.ok:
                report.violations.append(
                    f"sweep-cache provenance chain is broken: "
                    f"{chain.first_broken}"
                )
        else:
            # A plan that kills every execution attempt (the storm
            # plans) leaves no cache at all — nothing to verify.
            report.verify_report = "no cache written (nothing to verify)"
    finally:
        report.elapsed = time.monotonic() - started
        if not keep:
            shutil.rmtree(base, ignore_errors=True)
    return report


def _audit_result(
    job_id: str,
    points: list | None,
    expected: dict[str, list],
    report: ChaosReport,
) -> list[str]:
    """Check one done job's result document against the baseline."""
    violations = []
    if not points:
        return [f"done job {job_id} has an empty result document"]
    for point in points:
        if point.get("error") is not None:
            violations.append(
                f"done job {job_id} carries a failed point "
                f"{point['params']}: {point['error']}"
            )
            continue
        key = _params_key(point["params"])
        if key not in expected:
            continue  # baseline disabled or an unknown grid
        report.compared_points += 1
        if list(point["values"]) != expected[key]:
            violations.append(
                f"done job {job_id} point {point['params']} values "
                f"{point['values']} differ from the fault-free "
                f"baseline {expected[key]} — faults changed results"
            )
    return violations
