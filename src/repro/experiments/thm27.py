"""Experiment ``thm27`` — Theorem 2.7: the Omega(k) lower bound.

Theorem 2.7: from the balanced configuration the consensus time is
``Omega(k)`` w.h.p. (3-Majority needs ``k <= c sqrt(n / log n)``;
2-Choices needs ``k <= c n / log n``).  The proof is one line given the
drift machinery: no ``alpha_t(i)`` can grow by a constant factor in
fewer than ``~1/alpha_0(i) = k`` rounds (Lemma 4.5(i)).

The reproduction measures consensus times from the balanced start over a
k sweep and checks ``T_cons >= c * k`` for a fixed small ``c`` across
the sweep — i.e. the measured times never undercut a linear-in-k floor.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.estimators import consensus_times
from repro.configs.initial import balanced
from repro.core.registry import make_dynamics
from repro.seeding import as_seed_sequence
from repro.experiments.base import (
    ExperimentResult,
    measure_consensus_times,
    require_preset,
)

EXPERIMENT_ID = "thm27"
TITLE = "Theorem 2.7: Omega(k) lower bound from the balanced start"

PRESETS = {
    "micro": {"n": 512, "ks": (2, 4, 8), "num_runs": 3, "budget_factor": 60.0},
    "quick": {
        "n": 4096,
        "ks": (4, 8, 16, 32, 64),
        "num_runs": 5,
        "budget_factor": 60.0,
    },
    "paper": {
        "n": 65536,
        "ks": (4, 16, 64, 256, 512),
        "num_runs": 10,
        "budget_factor": 60.0,
    },
}


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n = params["n"]
    log_n = math.log(n)
    root = as_seed_sequence(seed)
    rows: list[list] = []
    comparisons: list[ComparisonRecord] = []
    for dyn_name in ("3-majority", "2-choices"):
        dynamics = make_dynamics(dyn_name)
        ratios: list[float] = []
        for k in params["ks"]:
            budget = int(params["budget_factor"] * k * log_n) + 100
            (child,) = root.spawn(1)
            results = measure_consensus_times(
                dynamics,
                balanced(n, k),
                num_runs=params["num_runs"],
                max_rounds=budget,
                seed=child,
            )
            times = consensus_times(results)
            min_time = float(times.min()) if times.size else float("nan")
            median_time = (
                float(np.median(times)) if times.size else float("nan")
            )
            if times.size:
                ratios.append(min_time / k)
            rows.append(
                [
                    dyn_name,
                    k,
                    min_time,
                    median_time,
                    round(min_time / k, 3) if times.size else "nan",
                ]
            )
        if ratios:
            # The lower-bound constant: min over the sweep of min(T)/k.
            floor = min(ratios)
            ok = floor >= 0.2
            comparisons.append(
                ComparisonRecord(
                    EXPERIMENT_ID,
                    f"{dyn_name}: T_cons >= Omega(k) from the balanced "
                    "configuration (Theorem 2.7)",
                    f"min over sweep of min(T_cons)/k = {floor:.2f}",
                    "match" if ok else "mismatch",
                )
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=["dynamics", "k", "min T_cons", "median T_cons", "min/k"],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "The lower bound concerns the *minimum* plausible time, so "
            "the check uses the smallest observed consensus time per k."
        ),
    )
