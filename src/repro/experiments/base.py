"""Experiment framework: results, presets, shared measurement helpers.

Each experiment module (one per paper table/figure/theorem; see
DESIGN.md's experiment index) exposes

* ``PRESETS`` — a dict of named parameter sets.  ``"quick"`` runs in
  seconds (used by the benchmarks and CI); ``"paper"`` uses sizes large
  enough for the asymptotic shapes to be unambiguous (used to fill
  EXPERIMENTS.md);
* ``run(preset="quick", seed=0) -> ExperimentResult``.

Results carry the printed table rows *and* machine-checkable
:class:`~repro.analysis.comparison.ComparisonRecord` verdicts, so both
the benchmarks' assertions and EXPERIMENTS.md are generated from the same
objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.tables import format_table, write_csv
from repro.core.base import Dynamics
from repro.engine.population import PopulationEngine
from repro.engine.runner import RunResult, run_until_consensus
from repro.seeding import RandomState
from repro.simulation import ResultSet, SimulationSpec, execute
from repro.errors import ConfigurationError

__all__ = [
    "ExperimentResult",
    "measure_consensus_times",
    "run_population",
    "require_preset",
]


@dataclass
class ExperimentResult:
    """Everything an experiment produces.

    ``rows`` are the series the paper's artefact reports (one list per
    printed line); ``comparisons`` hold the paper-vs-measured verdicts.
    """

    experiment_id: str
    title: str
    preset: str
    headers: list[str]
    rows: list[list]
    comparisons: list[ComparisonRecord] = field(default_factory=list)
    notes: str = ""

    def table(self) -> str:
        """Render the result as the paper-style ASCII table."""
        return format_table(
            self.headers,
            self.rows,
            title=f"[{self.experiment_id}] {self.title} "
            f"(preset={self.preset})",
        )

    def save_csv(self, directory: str | Path) -> Path:
        """Dump the rows as ``<directory>/<experiment_id>.csv``."""
        return write_csv(
            Path(directory) / f"{self.experiment_id}.csv",
            self.headers,
            self.rows,
        )

    @property
    def all_match(self) -> bool:
        """True when every comparison verdict is ``"match"``."""
        return all(c.verdict == "match" for c in self.comparisons)


def require_preset(presets: dict, name: str) -> dict:
    """Fetch a preset by name with a helpful error."""
    try:
        return dict(presets[name])
    except KeyError:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {sorted(presets)}"
        ) from None


def run_population(
    dynamics: Dynamics,
    counts: np.ndarray,
    rng: np.random.Generator,
    max_rounds: int,
    observers=(),
) -> RunResult:
    """One population run to consensus (or budget) with a given stream.

    Legacy shim: kept for callers that thread a live generator through a
    single run.  Replicated measurements should build a
    :class:`~repro.simulation.spec.SimulationSpec` (or use
    :func:`measure_consensus_times`) instead.
    """
    engine = PopulationEngine(dynamics, counts, seed=rng)
    return run_until_consensus(
        engine, max_rounds=max_rounds, observers=observers
    )


def measure_consensus_times(
    dynamics: Dynamics,
    counts: np.ndarray,
    num_runs: int,
    max_rounds: int,
    seed: RandomState = None,
    engine: str = "population",
) -> ResultSet:
    """Replicate a population run; shared by most experiments.

    Thin shim over the unified simulation API: builds a
    :class:`~repro.simulation.spec.SimulationSpec` and executes it.  The
    default ``engine="population"`` reproduces the historical per-replica
    seed streams bit-for-bit; pass ``engine="batch"`` to advance all
    replicas in one vectorised loop (equal in distribution, not bitwise).
    The returned :class:`~repro.simulation.results.ResultSet` behaves as
    the ``list[RunResult]`` this helper used to return.
    """
    spec = SimulationSpec(
        dynamics=dynamics,
        counts=np.asarray(counts, dtype=np.int64),
        engine=engine,
        replicas=num_runs,
        max_rounds=max_rounds,
        seed=seed,
    )
    return execute(spec)
