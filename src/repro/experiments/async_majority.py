"""Experiment ``async`` — asynchronous 3-Majority ([CMRSS25], Section 1.1).

In the asynchronous model one uniformly random vertex updates per tick;
[CMRSS25] proved a consensus time of ``~O(min(kn, n^{3/2}))`` ticks for
3-Majority with any ``k``.  Since ``n`` ticks equal one synchronous
round, this *suggests* (but does not imply — the paper explains why the
proof does not transfer) a synchronous bound of ``~O(min(k, sqrt n))``,
which is what Theorem 1.1 proves.

The reproduction measures asynchronous consensus ticks over a k sweep
and reports ticks/n next to the measured synchronous consensus times of
the same instances.  Shape checks: ticks scale linearly in k on the
rising branch, and ticks/n tracks the synchronous round count within a
constant factor.

Both sides of the comparison replicate *batched*: the asynchronous
chains advance tick-by-tick in lockstep inside one
:class:`~repro.engine.async_batch.AsyncBatchPopulationEngine` (all
``num_runs`` replicas of a k-point per Python tick-loop iteration
instead of ``num_runs`` sequential tick loops), and the synchronous
side goes through ``engine="batch"``.  Per replica both engines sample
the same chains as the sequential ones — equal in distribution, not in
realisation, since a batch shares one stream.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.estimators import consensus_times
from repro.analysis.scaling import fit_power_law
from repro.configs.initial import balanced
from repro.core.three_majority import ThreeMajority
from repro.engine.async_batch import AsyncBatchPopulationEngine
from repro.experiments.base import (
    ExperimentResult,
    measure_consensus_times,
    require_preset,
)

EXPERIMENT_ID = "async"
TITLE = "Asynchronous 3-Majority: ticks ~ min(kn, n^1.5) vs synchronous"

PRESETS = {
    "micro": {"n": 128, "ks": (2, 4), "num_runs": 2},
    "quick": {"n": 512, "ks": (2, 4, 8, 16), "num_runs": 3},
    "paper": {"n": 4096, "ks": (2, 4, 8, 16, 32, 64), "num_runs": 10},
}


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n = params["n"]
    log_n = math.log(n)
    dynamics = ThreeMajority()
    rows: list[list] = []
    ks_seen: list[float] = []
    tick_medians: list[float] = []
    ratio_band: list[float] = []
    for k_idx, k in enumerate(params["ks"]):
        tick_budget = int(40.0 * min(k * n, n**1.5) * log_n)
        # All num_runs asynchronous replicas of this k-point advance in
        # lockstep as one (R, k) matrix — one vectorised tick loop.
        engine = AsyncBatchPopulationEngine(
            dynamics,
            balanced(n, k),
            num_replicas=params["num_runs"],
            seed=(seed, k_idx),
        )
        ticks = [
            float(result.metrics["ticks"])
            for result in engine.run_until_consensus(tick_budget)
            if result.converged
        ]
        sync_results = measure_consensus_times(
            dynamics,
            balanced(n, k),
            num_runs=params["num_runs"],
            max_rounds=int(40.0 * min(k, math.sqrt(n)) * log_n) + 50,
            seed=(seed, 100 + k_idx),
            engine="batch",
        )
        sync_times = consensus_times(sync_results)
        tick_median = float(np.median(ticks)) if ticks else float("nan")
        sync_median = (
            float(np.median(sync_times)) if sync_times.size else float("nan")
        )
        if ticks:
            ks_seen.append(float(k))
            tick_medians.append(max(tick_median, 1.0))
            if sync_times.size:
                ratio_band.append(tick_median / n / max(sync_median, 1.0))
        rows.append(
            [
                k,
                tick_median,
                round(tick_median / n, 2) if ticks else "nan",
                sync_median,
                round(tick_median / n / max(sync_median, 1.0), 2)
                if ticks and sync_times.size
                else "nan",
            ]
        )
    comparisons: list[ComparisonRecord] = []
    if len(ks_seen) >= 3:
        # An additive ~n log n two-opinion endgame dominates small k
        # and flattens a raw log-log slope, so the robust shape check
        # is monotone growth in k while staying below the [CMRSS25]
        # ceiling ~min(kn, n^1.5) log n.
        fit = fit_power_law(ks_seen, tick_medians)
        ordered = sorted(zip(ks_seen, tick_medians))
        growth = ordered[-1][1] / ordered[0][1]
        ceiling_ok = all(
            t <= 40.0 * min(k * n, n**1.5) * log_n for k, t in ordered
        )
        ok = growth >= 2.0 and ceiling_ok
        comparisons.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "Async 3-Majority ticks grow with k below the "
                "[CMRSS25] ~O(min(kn, n^1.5)) ceiling",
                f"ticks(k_max)/ticks(k_min) = x{growth:.1f}; context "
                f"exponent {fit.exponent:.2f}; ceiling respected: "
                f"{'yes' if ceiling_ok else 'no'}",
                "match" if ok else "partial",
            )
        )
    if ratio_band:
        spread = max(ratio_band) / max(min(ratio_band), 1e-9)
        ok = spread <= 10.0
        comparisons.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "ticks/n tracks the synchronous consensus time within a "
                "constant factor (one round ~ n ticks, Section 1.1)",
                f"ticks/n over sync-rounds ratio spans "
                f"[{min(ratio_band):.2f}, {max(ratio_band):.2f}]",
                "match" if ok else "partial",
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=[
            "k",
            "median async ticks",
            "ticks / n",
            "median sync rounds",
            "(ticks/n) / sync",
        ],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Balanced starts; async engine is tick-exact; both sides "
            "replicate batched (async-batch / batch engines)."
        ),
    )
