"""Experiment harness: one module per paper table/figure/theorem.

See DESIGN.md for the experiment index; run any experiment with

    python -m repro run <id> [--preset quick|paper] [--seed N]

or programmatically via
:func:`repro.experiments.registry.run_experiment`.
"""

from repro.experiments import (  # noqa: F401 (re-exported submodules)
    adversary,
    async_majority,
    fig1,
    fig2_pipeline,
    lem41,
    rem25,
    table1,
    thm11,
    thm21,
    thm22,
    thm26,
    thm27,
    extensions,
)
from repro.experiments.base import ExperimentResult

__all__ = ["ExperimentResult"]
