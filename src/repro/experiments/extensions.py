"""Experiment ``ext`` — Section 2.5 extensions and baselines.

Three open-direction probes from the paper's Section 2.5, plus the
baselines of Section 1.1, measured at one (n, k):

* **h-Majority** — consensus time vs. ``h`` (more samples, faster
  consensus; ``h = 3`` must agree with the closed-form 3-Majority);
* **undecided dynamics** — consensus time vs. ``k`` (the open question:
  the measured shape is close to linear in k at these sizes);
* **graphs beyond complete** — 3-Majority on a random-regular expander
  vs. the complete graph (open question: expanders should behave like
  the complete graph up to constants);
* **baselines** — Voter and Median rule vs. 3-Majority/2-Choices at the
  same (n, k), showing why majority-style aggregation matters.

All population-level sweeps run through ``engine="batch"`` — every
catalogued dynamics now has a vectorised ``population_step_batch``, so
the replicated h-Majority / undecided / baseline measurements advance
all replicas as one count matrix instead of a Python replica loop (the
USD runs rely on the batch engine's k+1-label consensus convention:
only a *decided* winner stops a row).  The expander comparison stays on
the per-vertex agent engine, which is the point of that probe.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.estimators import consensus_times
from repro.configs.initial import balanced
from repro.core.h_majority import HMajority
from repro.core.median import MedianRule
from repro.core.registry import make_dynamics
from repro.core.three_majority import ThreeMajority
from repro.core.undecided import UndecidedStateDynamics, with_undecided_slot
from repro.core.voter import Voter
from repro.engine.agent import AgentEngine
from repro.engine.population import PopulationEngine
from repro.engine.runner import run_until_consensus
from repro.seeding import spawn_generators
from repro.state import counts_to_agents
from repro.experiments.base import (
    ExperimentResult,
    measure_consensus_times,
    require_preset,
)
from repro.graphs.complete import CompleteGraph
from repro.graphs.generators import random_regular

EXPERIMENT_ID = "ext"
TITLE = "Section 2.5 extensions: h-Majority, undecided, expanders, baselines"

PRESETS = {
    "micro": {
        "n": 256,
        "k": 4,
        "hs": (3, 5),
        "undecided_ks": (2, 4),
        "expander_degree": 8,
        "num_runs": 2,
        "budget": 8000,
    },
    "quick": {
        "n": 1024,
        "k": 8,
        "hs": (3, 5, 7),
        "undecided_ks": (2, 4, 8),
        "expander_degree": 16,
        "num_runs": 3,
        "budget": 20000,
    },
    "paper": {
        "n": 16384,
        "k": 32,
        "hs": (3, 5, 7, 9),
        "undecided_ks": (2, 4, 8, 16, 32, 64),
        "expander_degree": 32,
        "num_runs": 5,
        "budget": 200000,
    },
}


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n, k = params["n"], params["k"]
    budget = params["budget"]
    rows: list[list] = []
    comparisons: list[ComparisonRecord] = []

    # ---------------- h-Majority sweep ------------------------------
    h_medians: dict[int, float] = {}
    for h_idx, h in enumerate(params["hs"]):
        dynamics = HMajority(h)
        results = measure_consensus_times(
            dynamics,
            balanced(n, k),
            num_runs=params["num_runs"],
            max_rounds=budget,
            seed=(seed, h_idx),
            engine="batch",
        )
        times = consensus_times(results)
        median = float(np.median(times)) if times.size else float("nan")
        h_medians[h] = median
        rows.append(["h-majority", f"h={h}", k, median])
    closed_form = measure_consensus_times(
        ThreeMajority(),
        balanced(n, k),
        num_runs=params["num_runs"],
        max_rounds=budget,
        seed=(seed, 50),
        engine="batch",
    )
    t3 = float(np.median(consensus_times(closed_form)))
    rows.append(["h-majority", "h=3 (closed form)", k, t3])
    if 3 in h_medians and math.isfinite(h_medians[3]):
        agree = 0.4 <= h_medians[3] / max(t3, 1.0) <= 2.5
        comparisons.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "Sampled majority-of-3 matches the closed-form "
                "3-Majority chain",
                f"median {h_medians[3]:.0f} vs {t3:.0f} rounds",
                "match" if agree else "mismatch",
            )
        )
    finite_h = [
        (h, t) for h, t in sorted(h_medians.items()) if math.isfinite(t)
    ]
    if len(finite_h) >= 2:
        monotone = all(
            finite_h[idx + 1][1] <= finite_h[idx][1] * 1.5
            for idx in range(len(finite_h) - 1)
        )
        comparisons.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "h-Majority: larger h does not slow consensus "
                "(stronger aggregation, Section 2.5)",
                " -> ".join(f"h={h}: {t:.0f}" for h, t in finite_h),
                "match" if monotone else "partial",
            )
        )

    # ---------------- undecided dynamics sweep ----------------------
    undecided_pairs: list[tuple[float, float]] = []
    for k_idx, uk in enumerate(params["undecided_ks"]):
        dynamics = UndecidedStateDynamics()
        counts = with_undecided_slot(balanced(n, uk))
        results = measure_consensus_times(
            dynamics,
            counts,
            num_runs=params["num_runs"],
            max_rounds=budget,
            seed=(seed, 100 + k_idx),
            engine="batch",
        )
        times = consensus_times(results)
        median = float(np.median(times)) if times.size else float("nan")
        if math.isfinite(median):
            undecided_pairs.append((float(uk), median))
        rows.append(["undecided", f"k={uk}", uk, median])
    if len(undecided_pairs) >= 2:
        increasing = undecided_pairs[-1][1] >= undecided_pairs[0][1]
        comparisons.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "Undecided dynamics: consensus time grows with k "
                "(open question, Section 2.5 — empirical shape only)",
                " -> ".join(
                    f"k={int(uk)}: {t:.0f}" for uk, t in undecided_pairs
                ),
                "match" if increasing else "partial",
            )
        )

    # ---------------- expander vs complete graph --------------------
    expander_times: list[float] = []
    complete_times: list[float] = []
    for run_idx, rng in enumerate(
        spawn_generators((seed, 200), params["num_runs"])
    ):
        graph = random_regular(
            n, params["expander_degree"], seed=rng, self_loops=True
        )
        opinions = counts_to_agents(balanced(n, k), rng=rng, shuffle=True)
        engine = AgentEngine(
            ThreeMajority(), graph, opinions, num_opinions=k, seed=rng
        )
        result = run_until_consensus(engine, max_rounds=budget)
        if result.converged:
            expander_times.append(float(result.rounds))
        complete_engine = AgentEngine(
            ThreeMajority(),
            CompleteGraph(n),
            counts_to_agents(balanced(n, k)),
            num_opinions=k,
            seed=(seed, 300 + run_idx),
        )
        result = run_until_consensus(complete_engine, max_rounds=budget)
        if result.converged:
            complete_times.append(float(result.rounds))
    med_exp = (
        float(np.median(expander_times))
        if expander_times
        else float("nan")
    )
    med_com = (
        float(np.median(complete_times))
        if complete_times
        else float("nan")
    )
    rows.append(["graphs", "random-regular expander", k, med_exp])
    rows.append(["graphs", "complete graph", k, med_com])
    if expander_times and complete_times:
        ratio = med_exp / max(med_com, 1.0)
        ok = ratio <= 4.0
        comparisons.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "3-Majority on a random-regular expander behaves like "
                "the complete graph up to constants (open question)",
                f"median {med_exp:.0f} vs {med_com:.0f} rounds "
                f"(ratio {ratio:.2f})",
                "match" if ok else "partial",
            )
        )

    # ---------------- baselines -------------------------------------
    for name, dynamics, baseline_seed in (
        ("voter", Voter(), 400),
        ("median", MedianRule(), 401),
    ):
        results = measure_consensus_times(
            dynamics,
            balanced(n, k),
            num_runs=params["num_runs"],
            max_rounds=budget,
            seed=(seed, baseline_seed),
            engine="batch",
        )
        times = consensus_times(results)
        median = float(np.median(times)) if times.size else float("inf")
        rows.append(["baseline", name, k, median])
        if name == "voter" and math.isfinite(t3):
            slower = median >= 3.0 * t3
            comparisons.append(
                ComparisonRecord(
                    EXPERIMENT_ID,
                    "Voter baseline is far slower than 3-Majority "
                    "(Theta(n) vs ~Theta(min{k, sqrt n}))",
                    f"voter median {median:.0f} vs 3-majority "
                    f"{t3:.0f} rounds",
                    "match" if slower else "partial",
                )
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=["family", "variant", "k", "median T_cons"],
        rows=rows,
        comparisons=comparisons,
        notes="All runs start balanced at the stated k.",
    )
