"""Experiment ``rem25`` — Remark 2.5 / [BCEKMN17]: surviving opinions.

[BCEKMN17] proved that after ``T`` rounds of 3-Majority the number of
surviving opinions is at most ``O(n log n / T)`` w.h.p. — the result
Remark 2.5 combines with Theorem 2.1 for the large-k regime, and which
the paper stresses "does not hold for 2-Choices" (2-Choices retains its
initial opinion unless it sees an agreeing pair, so rare opinions die
much more slowly — this asymmetry is exactly why the paper's
norm-growth argument, which works for both, is needed).

The reproduction starts both dynamics from the balanced ``k = n``
configuration and records the surviving-opinion count at geometrically
spaced checkpoints.  Shape checks: (i) 3-Majority's survivors decay at
least like ``c n log n / T`` (fitted decay exponent close to -1 in T);
(ii) 2-Choices retains strictly more opinions than 3-Majority at every
checkpoint, by a growing factor.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.scaling import fit_power_law
from repro.configs.initial import balanced
from repro.core.registry import make_dynamics
from repro.engine.population import PopulationEngine
from repro.seeding import spawn_generators
from repro.experiments.base import ExperimentResult, require_preset

EXPERIMENT_ID = "rem25"
TITLE = "Remark 2.5: surviving opinions after T rounds (k = n start)"

PRESETS = {
    "micro": {"n": 512, "checkpoints": (4, 8, 16, 32), "num_runs": 2},
    "quick": {"n": 4096, "checkpoints": (8, 16, 32, 64, 128), "num_runs": 3},
    "paper": {
        "n": 65536,
        "checkpoints": (16, 64, 256, 1024, 4096),
        "num_runs": 3,
    },
}


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n = params["n"]
    checkpoints = tuple(params["checkpoints"])
    horizon = max(checkpoints)
    survivors: dict[str, np.ndarray] = {}
    for dyn_idx, dyn_name in enumerate(("3-majority", "2-choices")):
        dynamics = make_dynamics(dyn_name)
        per_run = np.zeros(
            (params["num_runs"], len(checkpoints)), dtype=np.float64
        )
        for run_idx, rng in enumerate(
            spawn_generators((seed, dyn_idx), params["num_runs"])
        ):
            engine = PopulationEngine(dynamics, balanced(n, n), seed=rng)
            checkpoint_pos = 0
            for round_index in range(1, horizon + 1):
                engine.step()
                if round_index == checkpoints[checkpoint_pos]:
                    per_run[run_idx, checkpoint_pos] = engine.alive
                    checkpoint_pos += 1
                    if checkpoint_pos == len(checkpoints):
                        break
        survivors[dyn_name] = np.median(per_run, axis=0)

    rows: list[list] = []
    log_n = math.log(n)
    for pos, T in enumerate(checkpoints):
        bound = n * log_n / T
        rows.append(
            [
                T,
                survivors["3-majority"][pos],
                survivors["2-choices"][pos],
                round(bound, 0),
                round(
                    survivors["2-choices"][pos]
                    / max(survivors["3-majority"][pos], 1.0),
                    2,
                ),
            ]
        )

    comparisons = []
    maj = np.maximum(survivors["3-majority"], 1.0)
    cho = np.maximum(survivors["2-choices"], 1.0)
    fit = fit_power_law(np.asarray(checkpoints, float), maj)
    decay_ok = fit.exponent <= -0.6
    comparisons.append(
        ComparisonRecord(
            EXPERIMENT_ID,
            "3-Majority survivors decay like n log n / T "
            "([BCEKMN17], exponent ~ -1 in T)",
            f"fitted decay exponent {fit.exponent:.2f}",
            "match" if decay_ok else "partial",
        )
    )
    within_bound = bool(
        np.all(maj <= np.asarray([n * log_n / T for T in checkpoints]))
    )
    comparisons.append(
        ComparisonRecord(
            EXPERIMENT_ID,
            "3-Majority survivors stay below the n log n / T bound",
            "below at every checkpoint"
            if within_bound
            else "bound exceeded",
            "match" if within_bound else "mismatch",
        )
    )
    gap_grows = bool(cho[-1] / maj[-1] > cho[0] / maj[0]) and bool(
        cho[-1] > 2 * maj[-1]
    )
    comparisons.append(
        ComparisonRecord(
            EXPERIMENT_ID,
            "2-Choices keeps strictly more opinions alive (the "
            "[BCEKMN17] argument fails for it, Remark 2.5)",
            f"survivor ratio grows from {cho[0] / maj[0]:.1f}x to "
            f"{cho[-1] / maj[-1]:.1f}x",
            "match" if gap_grows else "partial",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=[
            "T",
            "3-majority alive",
            "2-choices alive",
            "n log n / T",
            "2c/3m ratio",
        ],
        rows=rows,
        comparisons=comparisons,
        notes="Medians over runs; start = balanced k = n.",
    )
