"""Experiment ``thm26`` — Theorem 2.6: plurality consensus.

Theorem 2.6: if ``gamma_0`` meets the Theorem 2.1 condition and the most
popular opinion leads every other by

* ``C sqrt(log n / n)``              (3-Majority), resp.
* ``C sqrt(alpha_0(1) log n / n)``   (2-Choices),

then consensus lands *on the most popular opinion* w.h.p. within
``O(log n / gamma_0)`` rounds.

The reproduction runs a margin sweep: multiples of the theorem's margin
from well below to well above the threshold, recording the probability
that opinion 0 wins.  Expected shape: near the coin-flip baseline at
margin ~ 0 and -> 1 for margins comfortably above the threshold.  (The
theorem is one-sided — below the threshold it promises nothing — so the
check only asserts the above-threshold behaviour plus monotonicity in
the broad sense.)
"""

from __future__ import annotations

import math

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.estimators import success_probability
from repro.configs.initial import biased
from repro.core.registry import make_dynamics
from repro.seeding import as_seed_sequence
from repro.state import gamma_from_counts
from repro.experiments.base import (
    ExperimentResult,
    measure_consensus_times,
    require_preset,
)
from repro.theory.bounds import plurality_margin

EXPERIMENT_ID = "thm26"
TITLE = "Theorem 2.6: plurality consensus under the margin condition"

PRESETS = {
    "micro": {
        "n": 512,
        "k": 8,
        "margin_multipliers": (0.0, 4.0),
        "num_runs": 6,
        "budget_factor": 60.0,
    },
    "quick": {
        "n": 4096,
        "k": 32,
        "margin_multipliers": (0.0, 1.0, 4.0, 10.0),
        "num_runs": 20,
        "budget_factor": 60.0,
    },
    "paper": {
        "n": 65536,
        "k": 64,
        "margin_multipliers": (0.0, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0),
        "num_runs": 40,
        "budget_factor": 80.0,
    },
}


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n, k = params["n"], params["k"]
    log_n = math.log(n)
    root = as_seed_sequence(seed)
    rows: list[list] = []
    comparisons: list[ComparisonRecord] = []
    for dyn_name in ("3-majority", "2-choices"):
        dynamics = make_dynamics(dyn_name)
        base_margin = plurality_margin(
            dyn_name, n, alpha_leader=1.0 / k
        )
        win_probabilities: list[tuple[float, float]] = []
        for mult in params["margin_multipliers"]:
            margin = mult * base_margin
            counts = biased(n, k, margin)
            gamma0 = gamma_from_counts(counts)
            budget = int(params["budget_factor"] * log_n / gamma0) + 100
            (child,) = root.spawn(1)
            results = measure_consensus_times(
                dynamics,
                counts,
                num_runs=params["num_runs"],
                max_rounds=budget,
                seed=child,
            )
            stats = success_probability(
                results, lambda r: r.converged and r.winner == 0
            )
            win_probabilities.append((mult, stats["probability"]))
            rows.append(
                [
                    dyn_name,
                    round(mult, 2),
                    round(margin, 5),
                    stats["probability"],
                    round(stats["low"], 3),
                    round(stats["high"], 3),
                    stats["trials"],
                ]
            )
        comparisons.extend(
            _shape_checks(dyn_name, win_probabilities, k)
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=[
            "dynamics",
            "margin mult",
            "margin",
            "P[opinion 0 wins]",
            "wilson low",
            "wilson high",
            "runs",
        ],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "margin mult = 0 is the balanced control (win probability "
            "~1/k by symmetry); the theorem's regime is mult >> 1."
        ),
    )


def _shape_checks(
    dyn_name: str,
    win_probabilities: list[tuple[float, float]],
    k: int,
) -> list[ComparisonRecord]:
    records: list[ComparisonRecord] = []
    if not win_probabilities:
        return records
    top_mult, top_prob = max(win_probabilities)
    above = [p for mult, p in win_probabilities if mult >= 4.0]
    if above:
        ok = min(above) >= 0.8
        records.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                f"{dyn_name}: margins well above the Theorem 2.6 "
                "threshold give plurality consensus w.h.p.",
                f"min win probability at mult >= 4: {min(above):.2f}",
                "match" if ok else "partial",
            )
        )
    control = [p for mult, p in win_probabilities if mult == 0.0]
    if control and top_mult >= 4.0:
        ok = control[0] <= min(3.0 / k + 0.25, 0.9) < top_prob
        records.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                f"{dyn_name}: balanced control wins only at the "
                "~1/k symmetry baseline",
                f"control win probability {control[0]:.2f} "
                f"(baseline 1/k = {1.0 / k:.3f}) vs "
                f"{top_prob:.2f} at the largest margin",
                "match" if ok else "partial",
            )
        )
    return records
