"""Registry mapping experiment ids to their modules.

The ids match DESIGN.md's experiment index and the benchmark targets.
"""

from __future__ import annotations

from types import ModuleType

from repro.errors import ConfigurationError
from repro.experiments import (
    adversary,
    async_majority,
    fig1,
    fig2_pipeline,
    lem41,
    rem25,
    table1,
    thm11,
    thm21,
    thm22,
    thm26,
    thm27,
    extensions,
)
from repro.experiments.base import ExperimentResult

__all__ = ["EXPERIMENTS", "get_experiment", "run_experiment"]

EXPERIMENTS: dict[str, ModuleType] = {
    "fig1": fig1,
    "table1": table1,
    "fig2": fig2_pipeline,
    "thm11": thm11,
    "thm21": thm21,
    "thm22": thm22,
    "thm26": thm26,
    "thm27": thm27,
    "lem41": lem41,
    "rem25": rem25,
    "async": async_majority,
    "adv": adversary,
    "ext": extensions,
}


def get_experiment(experiment_id: str) -> ModuleType:
    """Look up an experiment module by id."""
    try:
        return EXPERIMENTS[experiment_id]
    except KeyError:
        raise ConfigurationError(
            f"unknown experiment {experiment_id!r}; available: "
            + ", ".join(sorted(EXPERIMENTS))
        ) from None


def run_experiment(
    experiment_id: str, preset: str = "quick", seed: int = 0
) -> ExperimentResult:
    """Run one experiment end to end."""
    return get_experiment(experiment_id).run(preset=preset, seed=seed)
