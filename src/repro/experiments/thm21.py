"""Experiment ``thm21`` — Theorem 2.1: consensus in O(log n / gamma_0).

Theorem 2.1: starting from *any* configuration with
``gamma_0 >= C log n / sqrt(n)`` (3-Majority) or
``C (log n)^2 / n`` (2-Choices), the consensus time is
``O(log n / gamma_0)`` w.h.p.

The reproduction builds two-block configurations whose ``gamma_0`` spans
a geometric range above the threshold, measures the consensus time, and
checks that ``T * gamma_0 / log n`` stays within a constant band — i.e.
that the measured time is linear in ``1 / gamma_0``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.estimators import consensus_times
from repro.analysis.scaling import fit_power_law
from repro.configs.initial import geometric_gamma
from repro.core.registry import make_dynamics
from repro.seeding import as_seed_sequence
from repro.state import gamma_from_counts
from repro.experiments.base import (
    ExperimentResult,
    measure_consensus_times,
    require_preset,
)
from repro.theory.bounds import gamma_condition

EXPERIMENT_ID = "thm21"
TITLE = "Theorem 2.1: consensus time O(log n / gamma_0) from large gamma_0"

PRESETS = {
    "micro": {
        "n": 256,
        "k": 16,
        "gamma_multipliers": (1.0, 4.0, 16.0),
        "num_runs": 2,
        "budget_factor": 60.0,
    },
    "quick": {
        "n": 4096,
        "k": 256,
        "gamma_multipliers": (1.0, 2.0, 4.0, 8.0, 16.0),
        "num_runs": 3,
        "budget_factor": 60.0,
    },
    "paper": {
        "n": 65536,
        "k": 1024,
        "gamma_multipliers": (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
        "num_runs": 5,
        "budget_factor": 80.0,
    },
}


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n, k = params["n"], params["k"]
    log_n = math.log(n)
    root = as_seed_sequence(seed)
    rows: list[list] = []
    series: dict[str, tuple[list, list]] = {
        "3-majority": ([], []),
        "2-choices": ([], []),
    }
    for dyn_name in ("3-majority", "2-choices"):
        dynamics = make_dynamics(dyn_name)
        base_gamma = max(gamma_condition(dyn_name, n), 1.0 / k)
        for mult in params["gamma_multipliers"]:
            target = min(mult * base_gamma, 0.9)
            counts = geometric_gamma(n, k, target)
            gamma0 = gamma_from_counts(counts)
            budget = int(params["budget_factor"] * log_n / gamma0) + 100
            (child,) = root.spawn(1)
            # Batched replication: all num_runs replicas of this grid
            # point advance in one vectorised (R, k) engine.
            results = measure_consensus_times(
                dynamics,
                counts,
                num_runs=params["num_runs"],
                max_rounds=budget,
                seed=child,
                engine="batch",
            )
            times = consensus_times(results)
            median_time = (
                float(np.median(times)) if times.size else float("nan")
            )
            normalised = median_time * gamma0 / log_n
            if times.size:
                series[dyn_name][0].append(1.0 / gamma0)
                series[dyn_name][1].append(max(median_time, 1.0))
            rows.append(
                [
                    dyn_name,
                    round(gamma0, 6),
                    median_time,
                    round(log_n / gamma0, 1),
                    round(normalised, 3),
                ]
            )
    comparisons = _shape_checks(series, n)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=[
            "dynamics",
            "gamma_0",
            "median T_cons",
            "log n / gamma_0",
            "T * gamma_0 / log n",
        ],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "The last column is the hidden constant of Theorem 2.1; "
            "the claim is that it is O(1) across the gamma_0 range."
        ),
    )


def _shape_checks(series: dict, n: int) -> list[ComparisonRecord]:
    """Theorem 2.1 is an *upper* bound ``T = O(log n / gamma_0)``.

    The honest formalization: (a) the hidden constant
    ``T * gamma_0 / log n`` stays below a fixed ceiling across the whole
    gamma_0 range, and (b) T is non-increasing in gamma_0 (up to
    Monte-Carlo noise).  A fitted exponent is reported for context but
    not gated on — runs from very large gamma_0 legitimately finish
    faster than the bound requires, flattening the exponent.
    """
    records: list[ComparisonRecord] = []
    ceiling = 30.0
    log_n = math.log(n)
    for dyn_name, (inv_gamma, times) in series.items():
        if len(inv_gamma) < 3:
            continue
        inv = np.asarray(inv_gamma)
        t = np.asarray(times)
        constants = t / inv / log_n  # = T * gamma_0 / log n
        bounded = bool(constants.max() <= ceiling)
        order = np.argsort(inv)  # ascending 1/gamma_0 = descending gamma
        sorted_t = t[order]
        monotone = bool(
            np.all(np.diff(sorted_t) >= -0.25 * sorted_t[:-1])
        )
        fit = fit_power_law(inv_gamma, times)
        records.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                f"{dyn_name}: T_cons = O(log n / gamma_0) uniformly "
                "over the gamma_0 sweep (Theorem 2.1)",
                f"max T*gamma_0/log n = {constants.max():.2f} "
                f"(ceiling {ceiling:g}); T non-increasing in gamma_0: "
                f"{'yes' if monotone else 'no'}; context exponent "
                f"{fit.exponent:.2f}",
                "match" if bounded and monotone else "partial",
            )
        )
    return records
