"""Experiment ``fig2`` — Figure 2: the lemma pipeline behind Theorem 2.1.

Figure 2 charts how the proof of Theorem 2.1 decomposes into lemmas; the
reproduction checks each box empirically on the 3-Majority and 2-Choices
chains (all within the window ``T* = C log n / gamma_0``):

* **Lemma 4.7** (gamma bounded decrease): gamma_t never drops below
  ``(1 - c_down_gamma) gamma_0`` during the window;
* **Lemma 5.2** (weak vanishes): an initially weak opinion hits zero
  within the window;
* **Lemma 5.5** (initial bias -> weak): with two strong leaders split by
  ``C sqrt(log n / n)``, the trailing one becomes weak within the window;
* **Lemma 5.10** (bias amplification): from two *equal* strong leaders,
  the bias reaches ``c* sqrt(log n / n)`` (or a leader goes weak) within
  the window.

Each row reports the fraction of runs in which the lemma's event
happened inside its window — the paper claims 1 - O(n^-10), so the shape
check requires every run to comply at these sizes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.core.registry import make_dynamics
from repro.engine.callbacks import TrajectoryRecorder
from repro.engine.population import PopulationEngine
from repro.engine.runner import run_until_consensus
from repro.seeding import spawn_generators
from repro.state import gamma_from_counts
from repro.experiments.base import ExperimentResult, require_preset
from repro.theory.stopping import DriftConstants, StoppingTimeTracker

EXPERIMENT_ID = "fig2"
TITLE = "Figure 2: lemma pipeline for Theorem 2.1, checked empirically"

PRESETS = {
    "micro": {"n": 512, "k": 8, "num_runs": 2, "window_constant": 12.0},
    "quick": {"n": 4096, "k": 16, "num_runs": 5, "window_constant": 12.0},
    "paper": {"n": 65536, "k": 64, "num_runs": 20, "window_constant": 12.0},
}


def _two_leader_config(
    n: int, k: int, leader_fraction: float, bias_fraction: float
) -> np.ndarray:
    """Opinions 0, 1 hold ``leader_fraction +- bias/2``; rest balanced."""
    lead0 = int(round((leader_fraction + bias_fraction / 2.0) * n))
    lead1 = int(round((leader_fraction - bias_fraction / 2.0) * n))
    rest_total = n - lead0 - lead1
    base, extra = divmod(rest_total, k - 2)
    rest = np.full(k - 2, base, dtype=np.int64)
    rest[:extra] += 1
    return np.concatenate([[lead0, lead1], rest]).astype(np.int64)


def _weak_opinion_config(n: int, k: int, leader_fraction: float):
    """One strong leader; opinion 1 deliberately weak; rest balanced.

    Returns ``(counts, weak_index)`` where the weak opinion holds about
    half the weak threshold ``(1 - c_weak) gamma_0``.
    """
    lead = int(round(leader_fraction * n))
    remaining = n - lead
    base, extra = divmod(remaining, k - 1)
    rest = np.full(k - 1, base, dtype=np.int64)
    rest[:extra] += 1
    counts = np.concatenate([[lead], rest]).astype(np.int64)
    gamma0 = gamma_from_counts(counts)
    weak_target = max(1, int(0.4 * gamma0 * n))
    counts[1] = weak_target
    counts[0] += remaining - int(counts[1:].sum())
    return counts, 1


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n, k = params["n"], params["k"]
    log_n = math.log(n)
    constants = DriftConstants()
    x_delta = 0.5 * math.sqrt(log_n / n)
    rows: list[list] = []
    comparisons: list[ComparisonRecord] = []
    for dyn_name in ("3-majority", "2-choices"):
        dynamics = make_dynamics(dyn_name)
        stages = {
            "gamma bounded decrease (Lem 4.7)": 0,
            "weak vanishes (Lem 5.2)": 0,
            "bias -> weak (Lem 5.5)": 0,
            "bias amplification (Lem 5.10)": 0,
        }
        runs_per_stage = params["num_runs"]

        # --- Lemma 5.2 + 4.7: weak opinion vanishes, gamma stays up ----
        counts, weak_idx = _weak_opinion_config(n, k, 0.3)
        gamma0 = gamma_from_counts(counts)
        window = int(params["window_constant"] * log_n / gamma0)
        for rng in spawn_generators(seed, runs_per_stage):
            tracker = StoppingTimeTracker(pair=(weak_idx, 0))
            recorder = TrajectoryRecorder(record_gamma=True)
            engine = PopulationEngine(dynamics, counts, seed=rng)
            run_until_consensus(
                engine,
                max_rounds=window,
                observers=(tracker, recorder),
                target=lambda c: c[weak_idx] == 0,
            )
            if "vanish_i" in tracker.times:
                stages["weak vanishes (Lem 5.2)"] += 1
            floor = (1 - constants.c_down_gamma) * gamma0
            if np.min(recorder.gamma) >= floor * 0.98:
                stages["gamma bounded decrease (Lem 4.7)"] += 1

        # --- Lemma 5.5: initial bias pushes the trailing leader weak ---
        bias0 = 4.0 * math.sqrt(log_n / n)
        counts = _two_leader_config(n, k, 0.25, bias0)
        gamma0 = gamma_from_counts(counts)
        window = int(params["window_constant"] * log_n / gamma0)
        for rng in spawn_generators((seed, 1), runs_per_stage):
            tracker = StoppingTimeTracker(pair=(0, 1))
            engine = PopulationEngine(dynamics, counts, seed=rng)
            run_until_consensus(
                engine,
                max_rounds=window,
                observers=(tracker,),
                target=lambda c: _is_weak(c, 1, constants),
            )
            if "weak_j" in tracker.times:
                stages["bias -> weak (Lem 5.5)"] += 1

        # --- Lemma 5.10: zero bias amplifies to ~sqrt(log n / n) -------
        counts = _two_leader_config(n, k, 0.25, 0.0)
        gamma0 = gamma_from_counts(counts)
        window = int(params["window_constant"] * log_n / gamma0)
        for rng in spawn_generators((seed, 2), runs_per_stage):
            tracker = StoppingTimeTracker(pair=(0, 1), x_delta=x_delta)
            engine = PopulationEngine(dynamics, counts, seed=rng)
            run_until_consensus(
                engine,
                max_rounds=window,
                observers=(tracker,),
                target=lambda c: _amplified(c, x_delta, constants),
            )
            if tracker.first("plus_delta", "weak_i", "weak_j") is not None:
                stages["bias amplification (Lem 5.10)"] += 1

        for stage, successes in stages.items():
            fraction = successes / runs_per_stage
            rows.append([dyn_name, stage, successes, runs_per_stage])
            comparisons.append(
                ComparisonRecord(
                    EXPERIMENT_ID,
                    f"{dyn_name}: {stage} within C log n / gamma_0 "
                    "rounds w.h.p.",
                    f"{successes}/{runs_per_stage} runs",
                    "match" if fraction == 1.0 else (
                        "partial" if fraction >= 0.8 else "mismatch"
                    ),
                )
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=["dynamics", "pipeline stage", "successes", "runs"],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Windows use C = "
            f"{PRESETS[preset]['window_constant']}; the paper's C is a "
            "sufficiently large constant, so only window *scaling* "
            "is meaningful."
        ),
    )


def _is_weak(counts: np.ndarray, idx: int, constants: DriftConstants) -> bool:
    alpha = counts / counts.sum()
    gamma = float(np.dot(alpha, alpha))
    return bool(alpha[idx] <= (1 - constants.c_weak) * gamma)


def _amplified(
    counts: np.ndarray, x_delta: float, constants: DriftConstants
) -> bool:
    alpha = counts / counts.sum()
    if abs(float(alpha[0] - alpha[1])) >= x_delta:
        return True
    return _is_weak(counts, 0, constants) or _is_weak(counts, 1, constants)
