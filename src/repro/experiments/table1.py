"""Experiment ``table1`` — Table 1: the drift-term inventory.

Table 1 of the paper summarises six conditional drift statements used by
Lemma 4.5 (constants from Definition 4.4, ``C`` as derived in the Lemma
4.5 proofs).  Because the conditional one-step means have closed forms
(Lemma 4.1), each statement is a deterministic inequality in the
round-(t-1) configuration, valid whenever the stopping-time condition
holds.  Taking ``t - 1 = 0`` makes the band conditions
(``tau_up/down``) vacuous, so the rows reduce to:

1. ``E[d alpha_i] <= (1 + c_up)^2 alpha_i^2``                (always)
2. ``E[d alpha_i] >= -c_weak (1+c_up)^2/(1-c_weak) alpha_i^2``
                                                  (i non-weak)
3. ``E[d alpha_i] <= 0``    (alpha_i <= (1 - c_active) gamma)
4. ``E[d delta]   >= 0``                  (j non-weak, delta >= 0)
5. ``E[d delta]   >= C alpha_i delta``    (i, j non-weak, delta >= 0)
6. ``E[d gamma]   >= 0``                                    (always)

The reproduction sweeps thousands of random configurations (Dirichlet
across concentrations, plus structured profiles), evaluates every
applicable row, and reports the number tested / violated and the worst
margin.  A Monte-Carlo spot check on one configuration per row confirms
the closed forms match simulation (complementing experiment ``lem41``).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.configs.initial import balanced, dirichlet_random, two_block, zipf
from repro.seeding import spawn_generators
from repro.experiments.base import ExperimentResult, require_preset
from repro.theory.drift import (
    expected_alpha_next,
    expected_delta_next,
    expected_gamma_increase_lower_bound,
)
from repro.theory.quantities import gamma_of_alpha
from repro.theory.stopping import DriftConstants

EXPERIMENT_ID = "table1"
TITLE = "Table 1: conditional drift inequalities for alpha, delta, gamma"

PRESETS = {
    "micro": {"n": 512, "num_random": 30},
    "quick": {"n": 4096, "num_random": 300},
    "paper": {"n": 65536, "num_random": 5000},
}

_ROWS = (
    "E[d alpha] <= C alpha^2 (t < tau_up)",
    "E[d alpha] >= -C alpha^2 (non-weak)",
    "E[d alpha] <= 0 (non-active, gamma steady)",
    "E[d delta] >= 0 (j non-weak)",
    "E[d delta] >= C alpha_i delta (i,j non-weak)",
    "E[d gamma] >= 0 (always)",
)


def _random_configurations(n: int, count: int, seed) -> list[np.ndarray]:
    configs = [
        balanced(n, 8),
        balanced(n, 256),
        two_block(n, 16, 0.4),
        zipf(n, 64, 1.2),
    ]
    rngs = spawn_generators(seed, count)
    for idx, rng in enumerate(rngs):
        k = int(2 + (idx * 7) % 127)
        concentration = 10.0 ** ((idx % 5) - 2)
        configs.append(
            dirichlet_random(n, k, concentration=concentration, seed=rng)
        )
    return configs


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n = params["n"]
    constants = DriftConstants()
    c_up = constants.c_up_alpha
    c_weak = constants.c_weak
    c_active = constants.c_active
    # Lemma 4.5(v) drift constant with c_down_alpha = c_down_delta at t=0.
    c_row5 = (
        (1 - 2 * c_weak)
        / (1 - c_weak)
    )
    tested = np.zeros(len(_ROWS), dtype=np.int64)
    violated = np.zeros(len(_ROWS), dtype=np.int64)
    worst = np.full(len(_ROWS), np.inf)

    def record(row: int, margin: float) -> None:
        tested[row] += 1
        worst[row] = min(worst[row], margin)
        if margin < -1e-12:
            violated[row] += 1

    for counts in _random_configurations(n, params["num_random"], seed):
        alpha = counts / counts.sum()
        gamma = gamma_of_alpha(alpha)
        expected = expected_alpha_next(alpha)
        drift = expected - alpha
        alive = np.flatnonzero(alpha > 0)
        weak = alpha <= (1 - c_weak) * gamma
        # Row 1: for every alive opinion (band condition vacuous at t=0).
        bound1 = (1 + c_up) ** 2 * alpha[alive] ** 2
        record(0, float(np.min(bound1 - drift[alive])))
        # Row 2: non-weak opinions only.
        strong = alive[~weak[alive]]
        if strong.size:
            bound2 = (
                c_weak * (1 + c_up) ** 2 / (1 - c_weak)
            ) * alpha[strong] ** 2
            record(1, float(np.min(drift[strong] + bound2)))
        # Row 3: non-active opinions (alpha <= (1 - c_active) gamma).
        inactive = alive[alpha[alive] <= (1 - c_active) * gamma]
        if inactive.size:
            record(2, float(np.min(-drift[inactive])))
        # Rows 4-5: top-two non-weak pair with positive bias.
        order = alive[np.argsort(alpha[alive])][::-1]
        if order.size >= 2:
            i, j = int(order[0]), int(order[1])
            delta0 = float(alpha[i] - alpha[j])
            if not weak[j] and delta0 >= 0:
                drift_delta = expected_delta_next(alpha, i, j) - delta0
                record(3, drift_delta)
                if not weak[i]:
                    record(
                        4,
                        drift_delta
                        - c_row5 * float(alpha[i]) * delta0,
                    )
        # Row 6: gamma submartingale, via the Lemma 4.1(iii) floor.
        floor3 = expected_gamma_increase_lower_bound(alpha, n, "3-majority")
        floor2 = expected_gamma_increase_lower_bound(alpha, n, "2-choices")
        record(5, float(min(floor3, floor2)))

    rows = [
        [
            _ROWS[idx],
            int(tested[idx]),
            int(violated[idx]),
            float(worst[idx]) if np.isfinite(worst[idx]) else "n/a",
        ]
        for idx in range(len(_ROWS))
    ]
    total_violations = int(violated.sum())
    comparisons = [
        ComparisonRecord(
            EXPERIMENT_ID,
            "All six Table 1 drift inequalities hold on every tested "
            "configuration",
            f"{int(tested.sum())} row-evaluations, "
            f"{total_violations} violations",
            "match" if total_violations == 0 else "mismatch",
        )
    ]
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=["drift statement", "tested", "violated", "worst margin"],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Margins are (bound - drift) oriented so that >= 0 means the "
            "inequality holds; evaluated at t-1 = 0 where the band "
            "stopping-time conditions are vacuous."
        ),
    )
