"""Experiment ``thm22`` — Theorem 2.2: growth of the norm gamma_t.

Theorem 2.2: from *any* configuration (we use the hardest, the balanced
``k = n`` start where ``gamma_0 = 1/n``), w.h.p.

* 3-Majority reaches ``gamma_T >= c log n / sqrt(n)`` within
  ``T = O(sqrt(n) (log n)^2)``;
* 2-Choices reaches ``gamma_T >= c (log n)^2 / n`` within
  ``T = O(n (log n)^3)``.

The reproduction records gamma_t trajectories, extracts the hitting time
of the theorem's threshold, and compares with the predicted horizon.  A
secondary check verifies the submartingale property en route: the
terminal gamma never sits below gamma_0 (Lemma 4.7's "bounded decrease",
up to the run's natural fluctuations).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.estimators import summarize
from repro.analysis.trajectories import first_hitting_time
from repro.configs.initial import balanced
from repro.core.registry import make_dynamics
from repro.engine.callbacks import TrajectoryRecorder
from repro.engine.population import PopulationEngine
from repro.engine.runner import run_until_consensus
from repro.seeding import spawn_generators
from repro.experiments.base import ExperimentResult, require_preset

EXPERIMENT_ID = "thm22"
TITLE = "Theorem 2.2: hitting time of the gamma_t growth threshold"

PRESETS = {
    "micro": {
        "n": 256,
        "num_runs": 2,
        "threshold_constant": 1.0,
        "budget_factor": 30.0,
    },
    "quick": {
        "n": 2048,
        "num_runs": 3,
        "threshold_constant": 1.0,
        "budget_factor": 30.0,
    },
    "paper": {
        "n": 16384,
        "num_runs": 3,
        "threshold_constant": 1.0,
        "budget_factor": 30.0,
    },
}


def _threshold(dyn_name: str, n: int, constant: float) -> float:
    log_n = math.log(n)
    if dyn_name == "3-majority":
        return constant * log_n / math.sqrt(n)
    return constant * log_n**2 / n


def _horizon(dyn_name: str, n: int, factor: float) -> int:
    log_n = math.log(n)
    if dyn_name == "3-majority":
        return int(factor * math.sqrt(n) * log_n**2)
    return int(factor * n * log_n)  # log^3 is astronomically safe; see note


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n = params["n"]
    rows: list[list] = []
    comparisons: list[ComparisonRecord] = []
    for dyn_name in ("3-majority", "2-choices"):
        dynamics = make_dynamics(dyn_name)
        threshold = _threshold(
            dyn_name, n, params["threshold_constant"]
        )
        horizon = _horizon(dyn_name, n, params["budget_factor"])
        hitting: list[float] = []
        never_below = True
        for rng in spawn_generators(seed, params["num_runs"]):
            recorder = TrajectoryRecorder(record_gamma=True)
            engine = PopulationEngine(dynamics, balanced(n, n), seed=rng)
            run_until_consensus(
                engine,
                max_rounds=horizon,
                observers=(recorder,),
                target=lambda counts: _gamma(counts) >= threshold,
            )
            gamma_series = np.asarray(recorder.gamma)
            hit = first_hitting_time(gamma_series, threshold, "up")
            if hit is not None:
                hitting.append(float(hit))
            # Lemma 4.7 shape: gamma never collapses far below gamma_0.
            if gamma_series.min() < 0.5 * gamma_series[0]:
                never_below = False
        predicted = (
            math.sqrt(n) * math.log(n) ** 2
            if dyn_name == "3-majority"
            else n * math.log(n)
        )
        if hitting:
            stats = summarize(hitting)
            rows.append(
                [
                    dyn_name,
                    round(threshold, 6),
                    stats.median,
                    round(predicted, 0),
                    round(stats.median / predicted, 4),
                    len(hitting),
                ]
            )
            comparisons.append(
                ComparisonRecord(
                    EXPERIMENT_ID,
                    f"{dyn_name}: gamma reaches the Theorem 2.2 "
                    "threshold within the predicted horizon",
                    f"median hitting time {stats.median:.0f} vs horizon "
                    f"budget {horizon} (predicted scale "
                    f"{predicted:.0f})",
                    "match" if stats.median <= horizon else "mismatch",
                )
            )
        else:
            rows.append(
                [dyn_name, round(threshold, 6), "never", predicted, "-", 0]
            )
            comparisons.append(
                ComparisonRecord(
                    EXPERIMENT_ID,
                    f"{dyn_name}: gamma growth threshold reached",
                    "threshold never reached within budget",
                    "mismatch",
                )
            )
        comparisons.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                f"{dyn_name}: gamma_t behaves as a submartingale "
                "(no collapse below gamma_0 / 2; Lemmas 4.1(iii), 4.7)",
                "no trajectory dropped below gamma_0 / 2"
                if never_below
                else "a trajectory dropped below gamma_0 / 2",
                "match" if never_below else "mismatch",
            )
        )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=[
            "dynamics",
            "gamma threshold",
            "median hit time",
            "predicted scale",
            "ratio",
            "runs hit",
        ],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Start: balanced k = n (gamma_0 = 1/n, the worst case). "
            "2-Choices budget uses n log n rather than the theorem's "
            "n log^3 n — the measured hitting times sit far below even "
            "this tighter horizon, strengthening the claim."
        ),
    )


def _gamma(counts: np.ndarray) -> float:
    alpha = counts / counts.sum()
    return float(np.dot(alpha, alpha))
