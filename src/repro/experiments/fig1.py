"""Experiment ``fig1`` — Figure 1: consensus-time exponents vs. k.

Figure 1 of the paper contrasts the *prior* upper-bound exponent curves
(panel a) with *this work's* (panel b), as functions of
``kappa = log_n k``, ignoring polylogs:

* 3-Majority, prior: exponent ``kappa`` up to ``1/3``, then ``2/3``;
  this work: ``min(kappa, 1/2)``.
* 2-Choices, prior: exponent ``kappa`` up to ``1/2``, then *no bound*;
  this work: ``kappa`` everywhere.

The reproduction measures the consensus time from the balanced
configuration on a ``kappa`` grid at fixed ``n`` and reports, per grid
point, the measured median time, the measured local exponent
(``log T / log n``) and the three predicted curves.  The shape checks
are: (i) the measured exponent tracks this work's curve within a polylog
allowance and (ii) for 3-Majority the curve flattens past
``kappa = 1/2`` while for 2-Choices it keeps rising.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.estimators import consensus_times
from repro.configs.initial import balanced
from repro.core.registry import make_dynamics
from repro.seeding import as_seed_sequence
from repro.experiments.base import (
    ExperimentResult,
    measure_consensus_times,
    require_preset,
)
from repro.theory.bounds import (
    exponent_curve_prior,
    exponent_curve_this_work,
)

EXPERIMENT_ID = "fig1"
TITLE = "Figure 1: consensus-time exponent vs kappa = log_n k"

PRESETS = {
    "micro": {
        "n": 256,
        "kappas": (0.3, 0.6),
        "num_runs": 2,
        "budget_factor": 40.0,
    },
    "quick": {
        "n": 2048,
        "kappas": (0.2, 0.35, 0.5, 0.65, 0.8),
        "num_runs": 3,
        "budget_factor": 40.0,
    },
    "paper": {
        "n": 16384,
        "kappas": (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9),
        "num_runs": 3,
        "budget_factor": 60.0,
    },
}


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n = params["n"]
    log_n = math.log(n)
    root = as_seed_sequence(seed)
    rows: list[list] = []
    measured_exponents: dict[str, list[tuple[float, float]]] = {
        "3-majority": [],
        "2-choices": [],
    }
    for dyn_name in ("3-majority", "2-choices"):
        dynamics = make_dynamics(dyn_name)
        for kappa in params["kappas"]:
            k = max(2, int(round(n**kappa)))
            budget = int(
                params["budget_factor"]
                * (min(k, math.sqrt(n)) if dyn_name == "3-majority" else k)
                * log_n
            )
            (child,) = root.spawn(1)
            # Batched replication: all num_runs replicas of this grid
            # point advance in one vectorised (R, k) engine.
            results = measure_consensus_times(
                dynamics,
                balanced(n, k),
                num_runs=params["num_runs"],
                max_rounds=budget,
                seed=child,
                engine="batch",
            )
            times = consensus_times(results)
            if times.size == 0:
                median_time = float("nan")
                exponent = float("nan")
            else:
                median_time = float(np.median(times))
                exponent = math.log(max(median_time, 1.0)) / log_n
                measured_exponents[dyn_name].append((kappa, exponent))
            prior = exponent_curve_prior(dyn_name, kappa)
            rows.append(
                [
                    dyn_name,
                    k,
                    round(kappa, 3),
                    median_time,
                    round(exponent, 3),
                    exponent_curve_this_work(dyn_name, kappa),
                    prior if prior is not None else "none",
                ]
            )

    comparisons = _shape_checks(measured_exponents, log_n)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=[
            "dynamics",
            "k",
            "kappa",
            "median T_cons",
            "measured exp",
            "this-work exp",
            "prior exp",
        ],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Measured exponent = log(median T) / log(n); polylog factors "
            "inflate it above the clean curve at small n, so shape checks "
            "compare *differences across kappa*, not absolute levels."
        ),
    )


def _shape_checks(
    measured: dict[str, list[tuple[float, float]]], log_n: float
) -> list[ComparisonRecord]:
    """Verdicts: 3-Majority flattens past 1/2; 2-Choices keeps rising."""
    records: list[ComparisonRecord] = []
    # Allowance for the polylog factor: log log-scale wiggle.
    slack = 2.0 * math.log(log_n) / log_n

    maj = sorted(measured["3-majority"])
    if len(maj) >= 3:
        below = [e for kappa, e in maj if kappa <= 0.5]
        above = [e for kappa, e in maj if kappa > 0.5]
        if below and above:
            flattening = max(above) <= max(below) + slack
            records.append(
                ComparisonRecord(
                    EXPERIMENT_ID,
                    "3-Majority exponent flattens at kappa = 1/2 "
                    "(T = ~Theta(min{k, sqrt n}))",
                    f"max exponent above 1/2: {max(above):.3f} vs "
                    f"below: {max(below):.3f} (slack {slack:.3f})",
                    "match" if flattening else "mismatch",
                )
            )
    cho = sorted(measured["2-choices"])
    if len(cho) >= 3:
        first_half = [e for kappa, e in cho if kappa <= 0.5]
        second_half = [e for kappa, e in cho if kappa > 0.5]
        if first_half and second_half:
            rising = min(second_half) >= max(first_half) - slack
            records.append(
                ComparisonRecord(
                    EXPERIMENT_ID,
                    "2-Choices exponent keeps rising past kappa = 1/2 "
                    "(T = ~Theta(k), no plateau)",
                    f"min exponent above 1/2: {min(second_half):.3f} vs "
                    f"max below: {max(first_half):.3f}",
                    "match" if rising else "mismatch",
                )
            )
    return records
