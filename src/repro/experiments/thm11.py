"""Experiment ``thm11`` — Theorem 1.1 (main): k-sweep at fixed n.

Theorem 1.1: from any configuration (we use the hardest, balanced, one)
3-Majority reaches consensus in ``~Theta(min{k, sqrt n})`` rounds and
2-Choices in ``~Theta(k)`` rounds, w.h.p., for all ``2 <= k <= n``.

The reproduction sweeps ``k`` geometrically at fixed ``n`` and checks

* 3-Majority: substantial growth of the median consensus time up to
  ``k ~ sqrt(n)``, near-flatness beyond it, and a fitted saturating-
  power-law crossover within a constant factor of ``sqrt(n)`` (a raw
  log-log slope under-reads the rising branch because an additive
  ``~log n`` endgame dominates small k);
* 2-Choices: a plain power law with no plateau (the upper-half
  exponent stays close to the lower-half one).
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.analysis.estimators import consensus_times
from repro.analysis.scaling import (
    fit_power_law,
    fit_saturating_power_law,
    split_exponents,
)
from repro.configs.initial import balanced
from repro.core.registry import make_dynamics
from repro.seeding import as_seed_sequence
from repro.experiments.base import (
    ExperimentResult,
    measure_consensus_times,
    require_preset,
)

EXPERIMENT_ID = "thm11"
TITLE = "Theorem 1.1: consensus time ~Theta(min{k, sqrt n}) / ~Theta(k)"

PRESETS = {
    "micro": {
        "n": 256,
        "ks": (2, 4, 8, 16),
        "num_runs": 2,
        "budget_factor": 50.0,
    },
    "quick": {
        "n": 4096,
        "ks": (4, 8, 16, 32, 64, 128, 256, 512),
        "num_runs": 3,
        "budget_factor": 50.0,
    },
    "paper": {
        "n": 65536,
        "ks": (4, 16, 64, 128, 256, 512, 1024, 2048),
        "num_runs": 3,
        "budget_factor": 60.0,
    },
}


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n = params["n"]
    log_n = math.log(n)
    sqrt_n = math.sqrt(n)
    root = as_seed_sequence(seed)
    rows: list[list] = []
    series: dict[str, tuple[list, list]] = {
        "3-majority": ([], []),
        "2-choices": ([], []),
    }
    for dyn_name in ("3-majority", "2-choices"):
        dynamics = make_dynamics(dyn_name)
        for k in params["ks"]:
            predicted = (
                min(k, sqrt_n) if dyn_name == "3-majority" else float(k)
            )
            budget = int(params["budget_factor"] * predicted * log_n) + 100
            (child,) = root.spawn(1)
            # Batched replication: all num_runs replicas of this grid
            # point advance in one vectorised (R, k) engine.
            results = measure_consensus_times(
                dynamics,
                balanced(n, k),
                num_runs=params["num_runs"],
                max_rounds=budget,
                seed=child,
                engine="batch",
            )
            times = consensus_times(results)
            median_time = (
                float(np.median(times)) if times.size else float("nan")
            )
            if times.size:
                series[dyn_name][0].append(float(k))
                series[dyn_name][1].append(max(median_time, 1.0))
            rows.append(
                [
                    dyn_name,
                    k,
                    median_time,
                    predicted,
                    round(median_time / max(predicted, 1.0), 2)
                    if times.size
                    else "nan",
                ]
            )
    comparisons = _shape_checks(series, n)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=[
            "dynamics",
            "k",
            "median T_cons",
            "paper bound (no polylog)",
            "ratio",
        ],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Ratios absorb the polylog factor; within one dynamics they "
            "should stay within a small multiplicative band across k on "
            "the rising branch."
        ),
    )


def _shape_checks(series: dict, n: int) -> list[ComparisonRecord]:
    records: list[ComparisonRecord] = []
    sqrt_n = math.sqrt(n)

    ks, times = series["3-majority"]
    if len(ks) >= 4:
        # An additive ~log n endgame inflates small-k times, so a raw
        # log-log slope under-reads the rising branch; the robust
        # formalization of ~Theta(min{k, sqrt n}) is: (a) substantial
        # growth up to k ~ sqrt(n), (b) near-flatness beyond it, and
        # (c) the fitted crossover lands within a constant factor of
        # sqrt(n) when the sweep reaches past it.
        fit = fit_saturating_power_law(ks, times)
        ordered = sorted(zip(ks, times))
        at_sqrt = min(
            (t for k, t in ordered if k >= sqrt_n),
            default=ordered[-1][1],
        )
        growth = at_sqrt / ordered[0][1]
        beyond = [t for k, t in ordered if k >= 2 * sqrt_n]
        plateau_ok = (not beyond) or max(beyond) <= 2.0 * at_sqrt
        growth_ok = growth >= 3.0
        crossover_ok = (
            fit.crossover == float("inf")
            and max(ks) <= 2 * sqrt_n
            or sqrt_n / 8 <= fit.crossover <= 8 * sqrt_n
        )
        ok = plateau_ok and growth_ok and crossover_ok
        records.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "3-Majority: T grows with k then plateaus at "
                "k ~ sqrt(n) (T = ~Theta(min{k, sqrt n}))",
                f"T(k_min) -> T(~sqrt n): x{growth:.1f}; plateau "
                f"excess beyond 2 sqrt(n): "
                f"x{(max(beyond) / at_sqrt) if beyond else 1.0:.2f}; "
                f"fitted crossover {fit.crossover:.0f} "
                f"(sqrt n = {sqrt_n:.0f})",
                "match" if ok else "partial",
            )
        )
    ks, times = series["2-choices"]
    if len(ks) >= 4:
        fit = fit_power_law(ks, times)
        low, high = split_exponents(ks, times)
        linear_ok = 0.6 <= fit.exponent <= 1.4
        no_plateau = high >= 0.4
        records.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "2-Choices: T ~ k throughout (no plateau)",
                f"global exponent {fit.exponent:.2f}, upper-half exponent "
                f"{high:.2f}",
                "match" if linear_ok and no_plateau else "partial",
            )
        )
    return records
