"""Experiment ``lem41`` — Lemma 4.1 / eqs. (5), (6): one-step moments.

Lemma 4.1 gives, conditioned on the previous round:

* ``E[alpha_t(i)] = alpha_i (1 + alpha_i - gamma)`` — both dynamics;
* variance bounds ``Var[alpha_t(i)] <= alpha_i / n`` (3-Majority) and
  ``alpha_i (alpha_i + gamma) / n`` (2-Choices);
* the bias mean identity and its variance bounds;
* ``E[gamma_t] >= gamma_{t-1} + (1 - gamma)/n`` (3-Majority) resp.
  ``+ (1 - sqrt(gamma))(1 - gamma) gamma / n`` (2-Choices).

The reproduction draws many i.i.d. one-round transitions from assorted
configurations and reports z-scores of the Monte-Carlo means against the
closed forms, plus the ratio of empirical variances to their bounds
(must be <= 1 up to Monte-Carlo noise).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.comparison import ComparisonRecord
from repro.configs.initial import balanced, two_block, zipf
from repro.core.registry import make_dynamics
from repro.seeding import spawn_generators
from repro.experiments.base import ExperimentResult, require_preset
from repro.theory.drift import (
    expected_alpha_next,
    expected_delta_next,
    expected_gamma_increase_lower_bound,
    var_alpha_upper_bound,
    var_delta_upper_bound,
)
from repro.theory.quantities import gamma_of_alpha

EXPERIMENT_ID = "lem41"
TITLE = "Lemma 4.1: Monte-Carlo one-step moments vs closed forms"

PRESETS = {
    "micro": {"n": 256, "num_samples": 400},
    "quick": {"n": 1024, "num_samples": 3000},
    "paper": {"n": 8192, "num_samples": 20000},
}


def _configurations(n: int) -> list[tuple[str, np.ndarray]]:
    return [
        ("balanced k=8", balanced(n, 8)),
        ("balanced k=64", balanced(n, 64)),
        ("two-block 30%", two_block(n, 16, 0.3)),
        ("zipf k=32", zipf(n, 32, 1.0)),
    ]


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n = params["n"]
    m = params["num_samples"]
    rows: list[list] = []
    comparisons: list[ComparisonRecord] = []
    worst_alpha_z = 0.0
    worst_var_ratio = 0.0
    gamma_drift_ok = True
    generators = iter(spawn_generators(seed, 2 * len(_configurations(n))))
    for dyn_name in ("3-majority", "2-choices"):
        dynamics = make_dynamics(dyn_name)
        for label, counts in _configurations(n):
            rng = next(generators)
            alpha = counts / n
            gamma0 = gamma_of_alpha(alpha)
            samples = np.empty((m, counts.size), dtype=np.float64)
            for row in range(m):
                samples[row] = dynamics.population_step(counts, rng) / n
            mean = samples.mean(axis=0)
            var = samples.var(axis=0, ddof=1)
            predicted_mean = expected_alpha_next(alpha)
            # z-score of the worst opinion's mean deviation.
            sem = np.sqrt(np.maximum(var, 1e-18) / m)
            z = float(np.max(np.abs(mean - predicted_mean) / sem))
            worst_alpha_z = max(worst_alpha_z, z)
            var_bounds = np.asarray(
                [
                    var_alpha_upper_bound(alpha, i, n, dyn_name)
                    for i in range(counts.size)
                ]
            )
            ratio = float(np.max(var / np.maximum(var_bounds, 1e-18)))
            worst_var_ratio = max(worst_var_ratio, ratio)
            # Bias moments for the top-two pair.
            order = np.argsort(counts)[::-1]
            i, j = int(order[0]), int(order[1])
            delta_samples = samples[:, i] - samples[:, j]
            delta_mean = float(delta_samples.mean())
            delta_pred = expected_delta_next(alpha, i, j)
            delta_sem = float(delta_samples.std(ddof=1) / np.sqrt(m))
            delta_z = (
                abs(delta_mean - delta_pred) / delta_sem
                if delta_sem > 0
                else 0.0
            )
            delta_var_bound = var_delta_upper_bound(alpha, i, j, n, dyn_name)
            delta_var_ratio = float(
                delta_samples.var(ddof=1) / max(delta_var_bound, 1e-18)
            )
            worst_var_ratio = max(worst_var_ratio, delta_var_ratio)
            # Gamma submartingale drift.
            gamma_samples = np.sum(samples * samples, axis=1)
            gamma_gain = float(gamma_samples.mean()) - gamma0
            gamma_floor = expected_gamma_increase_lower_bound(
                alpha, n, dyn_name
            )
            gamma_sem = float(
                gamma_samples.std(ddof=1) / np.sqrt(m)
            )
            if gamma_gain < gamma_floor - 4.0 * gamma_sem:
                gamma_drift_ok = False
            rows.append(
                [
                    dyn_name,
                    label,
                    round(z, 2),
                    round(ratio, 3),
                    round(delta_z, 2),
                    round(gamma_gain, 7),
                    round(gamma_floor, 7),
                ]
            )
    comparisons.append(
        ComparisonRecord(
            EXPERIMENT_ID,
            "E[alpha_t(i)] = alpha_i (1 + alpha_i - gamma) "
            "(Lemma 4.1(i), both dynamics)",
            f"worst per-opinion z-score {worst_alpha_z:.2f} "
            "(Bonferroni-adjusted threshold ~5)",
            "match" if worst_alpha_z < 5.5 else "mismatch",
        )
    )
    comparisons.append(
        ComparisonRecord(
            EXPERIMENT_ID,
            "Variance bounds of Lemma 4.1(i)-(ii) hold",
            f"worst empirical/bound ratio {worst_var_ratio:.3f} "
            "(must be <= 1 + noise)",
            "match" if worst_var_ratio <= 1.1 else "mismatch",
        )
    )
    comparisons.append(
        ComparisonRecord(
            EXPERIMENT_ID,
            "E[gamma_t] - gamma >= Lemma 4.1(iii) floor "
            "(gamma is a submartingale)",
            "floor respected on every configuration"
            if gamma_drift_ok
            else "floor violated",
            "match" if gamma_drift_ok else "mismatch",
        )
    )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=[
            "dynamics",
            "configuration",
            "worst z(alpha mean)",
            "var/bound",
            "z(delta mean)",
            "E[dgamma] (MC)",
            "floor",
        ],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "z-scores use the Monte-Carlo standard error; with "
            "~4 configs x k opinions the worst-of z under the null sits "
            "around 3-4, hence the threshold of 5.5."
        ),
    )
