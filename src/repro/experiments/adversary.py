"""Experiment ``adv`` — consensus under F-bounded adversaries (Sec. 2.5).

[GL18] proved 3-Majority still reaches consensus under an adversary that
corrupts ``F = O(sqrt(n) / k^{1.5})`` vertices per round (for
``k = O(n^{1/3}/sqrt(log n))``); the paper lists the general regime as
an open direction.

The reproduction sweeps the adversary budget ``F`` as multiples of
``sqrt(n) / k^{1.5}`` using the strongest stalling strategy
(:class:`~repro.adversary.strategies.SupportRunnerUp`) and records the
probability of consensus within a generous window plus the median
consensus time.  Shape checks: small budgets barely slow the dynamics;
budgets far above the [GL18] scale stall it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.adversary.base import AdversarialPopulationEngine
from repro.adversary.strategies import SupportRunnerUp
from repro.analysis.comparison import ComparisonRecord
from repro.configs.initial import balanced
from repro.core.registry import make_dynamics
from repro.seeding import spawn_generators
from repro.experiments.base import ExperimentResult, require_preset

EXPERIMENT_ID = "adv"
TITLE = "Adversarial 3-Majority: tolerance of F corruptions per round"

PRESETS = {
    "micro": {
        "n": 512,
        "k": 4,
        "budget_multipliers": (0.0, 64.0),
        "num_runs": 3,
        "window_factor": 60.0,
    },
    "quick": {
        "n": 4096,
        "k": 8,
        "budget_multipliers": (0.0, 1.0, 4.0, 64.0),
        "num_runs": 5,
        "window_factor": 60.0,
    },
    "paper": {
        "n": 65536,
        "k": 16,
        "budget_multipliers": (0.0, 0.5, 1.0, 2.0, 4.0, 16.0, 64.0, 256.0),
        "num_runs": 20,
        "window_factor": 80.0,
    },
}


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n, k = params["n"], params["k"]
    log_n = math.log(n)
    dynamics = make_dynamics("3-majority")
    base_budget = math.sqrt(n) / k**1.5
    window = int(params["window_factor"] * k * log_n) + 100
    rows: list[list] = []
    success_by_mult: list[tuple[float, float, float]] = []
    for mult_idx, mult in enumerate(params["budget_multipliers"]):
        budget = int(round(mult * base_budget))
        # An F >= 1 adversary can trivially keep one stray vertex alive
        # forever, so "consensus despite the adversary" means the leader
        # holds all but O(F) vertices (strict consensus when F = 0).
        threshold = n if budget == 0 else n - 4 * budget
        times: list[float] = []
        successes = 0
        for rng in spawn_generators((seed, mult_idx), params["num_runs"]):
            engine = AdversarialPopulationEngine(
                dynamics,
                balanced(n, k),
                SupportRunnerUp(budget),
                seed=rng,
            )
            converged = False
            for _ in range(window):
                engine.step()
                if int(engine.counts.max()) >= threshold:
                    converged = True
                    break
            if converged:
                successes += 1
                times.append(float(engine.round_index))
        fraction = successes / params["num_runs"]
        median_time = float(np.median(times)) if times else float("nan")
        success_by_mult.append((mult, fraction, median_time))
        rows.append(
            [
                mult,
                budget,
                fraction,
                median_time,
                params["num_runs"],
            ]
        )
    comparisons = _shape_checks(success_by_mult)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=[
            "F / (sqrt(n)/k^1.5)",
            "F",
            "P[consensus]",
            "median T_cons",
            "runs",
        ],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Adversary = SupportRunnerUp (moves mass from the leader to "
            "the strongest challenger after every round); window = "
            "O(k log n)."
        ),
    )


def _shape_checks(success_by_mult) -> list[ComparisonRecord]:
    records: list[ComparisonRecord] = []
    small = [f for m, f, _ in success_by_mult if m <= 1.0]
    large = [f for m, f, _ in success_by_mult if m >= 64.0]
    if small:
        ok = min(small) >= 0.8
        records.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "F = O(sqrt(n)/k^1.5) does not prevent consensus "
                "([GL18] tolerance regime)",
                f"min success fraction at mult <= 1: {min(small):.2f}",
                "match" if ok else "partial",
            )
        )
    if large:
        ok = max(large) <= 0.5
        records.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "A much larger budget stalls the dynamics (tolerance is "
                "a real threshold, not an artefact)",
                f"max success fraction at mult >= 64: {max(large):.2f}",
                "match" if ok else "partial",
            )
        )
    return records
