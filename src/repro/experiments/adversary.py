"""Experiment ``adv`` — consensus under F-bounded adversaries (Sec. 2.5).

[GL18] proved 3-Majority still reaches consensus under an adversary that
corrupts ``F = O(sqrt(n) / k^{1.5})`` vertices per round (for
``k = O(n^{1/3}/sqrt(log n))``); the paper lists the general regime as
an open direction.

The reproduction sweeps the adversary budget ``F`` as multiples of
``sqrt(n) / k^{1.5}`` using the strongest stalling strategy
(:class:`~repro.adversary.strategies.SupportRunnerUp`) and records the
probability of consensus within a generous window plus the median
consensus time.  Shape checks: small budgets barely slow the dynamics;
budgets far above the [GL18] scale stall it.

Each tolerance point is one declarative
:class:`~repro.simulation.spec.SimulationSpec` executed on the batch
engine: all ``num_runs`` replicas advance as one ``(R, k)`` count
matrix with the adversary's vectorised ``corrupt_batch`` applied every
round, so the sweep gets the batched-replica speedup instead of
``num_runs`` sequential adversarial chains
(``benchmarks/bench_adversary.py`` tracks the factor).
"""

from __future__ import annotations

import math

import numpy as np

from repro.adversary.strategies import SupportRunnerUp
from repro.adversary.tolerance import near_consensus_target
from repro.analysis.comparison import ComparisonRecord
from repro.experiments.base import ExperimentResult, require_preset
from repro.simulation import SimulationSpec

EXPERIMENT_ID = "adv"
TITLE = "Adversarial 3-Majority: tolerance of F corruptions per round"

PRESETS = {
    "micro": {
        "n": 512,
        "k": 4,
        "budget_multipliers": (0.0, 64.0),
        "num_runs": 3,
        "window_factor": 60.0,
    },
    "quick": {
        "n": 4096,
        "k": 8,
        "budget_multipliers": (0.0, 1.0, 4.0, 64.0),
        "num_runs": 5,
        "window_factor": 60.0,
    },
    "paper": {
        "n": 65536,
        "k": 16,
        "budget_multipliers": (0.0, 0.5, 1.0, 2.0, 4.0, 16.0, 64.0, 256.0),
        "num_runs": 20,
        "window_factor": 80.0,
    },
}


def tolerance_spec(
    n: int,
    k: int,
    budget: int,
    num_runs: int,
    window: int,
    seed,
) -> SimulationSpec:
    """One tolerance-sweep point as a batched adversarial spec.

    An F >= 1 adversary can trivially keep one stray vertex alive
    forever, so "consensus despite the adversary" means the leader
    reaches :func:`~repro.adversary.tolerance.near_consensus_threshold`
    (all but 4F vertices, floored at a strict majority; strict
    consensus when F = 0); the threshold is the spec's per-row
    ``target``.
    """
    return SimulationSpec(
        dynamics="3-majority",
        n=n,
        k=k,
        engine="batch",
        replicas=num_runs,
        seed=seed,
        max_rounds=window,
        adversary=SupportRunnerUp(budget) if budget else None,
        # F = 0 is exactly strict consensus — leave target unset so the
        # batch engine keeps its vectorised row-max stopping check.
        target=near_consensus_target(n, budget) if budget else None,
    )


def run(preset: str = "quick", seed: int = 0) -> ExperimentResult:
    params = require_preset(PRESETS, preset)
    n, k = params["n"], params["k"]
    log_n = math.log(n)
    base_budget = math.sqrt(n) / k**1.5
    window = int(params["window_factor"] * k * log_n) + 100
    rows: list[list] = []
    success_by_mult: list[tuple[float, float, float]] = []
    for mult_idx, mult in enumerate(params["budget_multipliers"]):
        budget = int(round(mult * base_budget))
        spec = tolerance_spec(
            n,
            k,
            budget,
            params["num_runs"],
            window,
            seed=(seed, mult_idx),
        )
        results = spec.run()
        fraction = results.converged_fraction
        times = results.consensus_times
        median_time = (
            float(np.nanmedian(times))
            if results.num_converged
            else float("nan")
        )
        success_by_mult.append((mult, fraction, median_time))
        rows.append(
            [
                mult,
                budget,
                fraction,
                median_time,
                params["num_runs"],
            ]
        )
    comparisons = _shape_checks(success_by_mult)
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        preset=preset,
        headers=[
            "F / (sqrt(n)/k^1.5)",
            "F",
            "P[consensus]",
            "median T_cons",
            "runs",
        ],
        rows=rows,
        comparisons=comparisons,
        notes=(
            "Adversary = SupportRunnerUp (moves mass from the leader to "
            "the strongest challenger after every round); window = "
            "O(k log n); all runs per point batched on "
            "BatchPopulationEngine."
        ),
    )


def _shape_checks(success_by_mult) -> list[ComparisonRecord]:
    records: list[ComparisonRecord] = []
    small = [f for m, f, _ in success_by_mult if m <= 1.0]
    large = [f for m, f, _ in success_by_mult if m >= 64.0]
    if small:
        ok = min(small) >= 0.8
        records.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "F = O(sqrt(n)/k^1.5) does not prevent consensus "
                "([GL18] tolerance regime)",
                f"min success fraction at mult <= 1: {min(small):.2f}",
                "match" if ok else "partial",
            )
        )
    if large:
        ok = max(large) <= 0.5
        records.append(
            ComparisonRecord(
                EXPERIMENT_ID,
                "A much larger budget stalls the dynamics (tolerance is "
                "a real threshold, not an artefact)",
                f"max success fraction at mult >= 64: {max(large):.2f}",
                "match" if ok else "partial",
            )
        )
    return records
