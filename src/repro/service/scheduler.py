"""Admission control and job scheduling policy.

The store executes the *mechanics* of leasing (atomic claim inside one
transaction); this module owns the *policy*:

* :class:`QuotaPolicy` — per-client limits on concurrently queued work,
  in two currencies: jobs and grid points (a 2-point job and a
  2000-point job are not the same load).  Over-limit submissions are
  rejected at admission time with a clear
  :class:`~repro.errors.QuotaExceededError` naming the client, the
  exhausted limit and the configured ceiling.
* :class:`Scheduler` — the admit/lease facade the HTTP API and worker
  fleet talk to.  Priority ordering and fair-share tie-breaking live in
  the store's ``lease_next`` query (claim-and-order must be one
  transaction); the scheduler documents and fronts them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError, QuotaExceededError
from repro.service.jobs import Job, JobSpec
from repro.service.store import JobStore

__all__ = ["QuotaPolicy", "Scheduler"]


@dataclass(frozen=True)
class QuotaPolicy:
    """Per-client ceilings on *active* (queued + running) work.

    ``max_jobs`` bounds how many jobs a client may have in flight;
    ``max_points`` bounds the total grid points those jobs add up to.
    ``max_points_per_job`` bounds a single submission, so one giant
    grid cannot monopolise a worker for hours regardless of how empty
    the client's queue is.  ``None`` disables a limit.
    """

    max_jobs: int | None = 16
    max_points: int | None = 512
    max_points_per_job: int | None = 256

    def __post_init__(self) -> None:
        for name in ("max_jobs", "max_points", "max_points_per_job"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ConfigurationError(
                    f"{name} must be None or >= 1, got {value}"
                )

    def check(
        self, spec: JobSpec, *, client: str, store: JobStore
    ) -> None:
        """Raise :class:`QuotaExceededError` if admission would break a limit."""
        points = spec.num_points
        if (
            self.max_points_per_job is not None
            and points > self.max_points_per_job
        ):
            raise QuotaExceededError(
                f"client {client!r}: job has {points} grid points, "
                f"exceeding the per-job limit of "
                f"{self.max_points_per_job}"
            )
        active_jobs, active_points = store.active_load(client)
        if self.max_jobs is not None and active_jobs >= self.max_jobs:
            raise QuotaExceededError(
                f"client {client!r}: already has {active_jobs} active "
                f"jobs, the per-client limit of {self.max_jobs}"
            )
        if (
            self.max_points is not None
            and active_points + points > self.max_points
        ):
            raise QuotaExceededError(
                f"client {client!r}: {active_points} active grid "
                f"points + {points} submitted would exceed the "
                f"per-client limit of {self.max_points}"
            )


class Scheduler:
    """Admission + leasing facade over the job store.

    ``admit`` holds the store lock across the quota check and the
    insert, so two racing submissions from one client cannot both slip
    under the limit.  ``lease`` hands workers the store's
    priority-then-fair-share-then-FIFO choice.
    """

    def __init__(
        self, store: JobStore, quota: QuotaPolicy | None = None
    ) -> None:
        self.store = store
        self.quota = quota if quota is not None else QuotaPolicy()

    def admit(
        self, spec: JobSpec, *, client: str, priority: int = 0
    ) -> Job:
        return self.admit_idempotent(
            spec, client=client, priority=priority
        )[0]

    def admit_idempotent(
        self,
        spec: JobSpec,
        *,
        client: str,
        priority: int = 0,
        idempotency_key: str | None = None,
    ) -> tuple[Job, bool]:
        """Admit a job, replay-safe: returns ``(job, created)``.

        With an ``idempotency_key``, a repeat submission (a client
        retrying after a lost response) returns the original job with
        ``created=False`` — and skips the quota check, since no new
        load is being admitted.  The in-process lookup runs under the
        store lock; the store's unique index covers the cross-process
        race (that path reports ``created=True``, the only observable
        difference being an HTTP 201 where a 200 would be stricter).
        """
        if not client:
            raise ConfigurationError(
                "submissions must carry a non-empty client id"
            )
        with self.store._lock:
            if idempotency_key:
                existing = self.store.find_by_idempotency_key(
                    idempotency_key
                )
                if existing is not None:
                    return existing, False
            self.quota.check(spec, client=client, store=self.store)
            job = self.store.submit(
                spec,
                client=client,
                priority=priority,
                idempotency_key=idempotency_key,
            )
            return job, True

    def lease(self, worker: str) -> Job | None:
        return self.store.lease_next(worker)
