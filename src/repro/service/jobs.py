"""Job model for the simulation service.

A *job* is one sweep submission: a :class:`JobSpec` (the work — a
parameter grid, replication settings and measurement mode, i.e. exactly
what :func:`repro.sweep.run_sweep` consumes) plus submission metadata
(client id, priority) and lifecycle state.  Specs are canonical JSON —
sorted keys, JSON-native types only — so a job survives a round-trip
through the SQLite store and the HTTP API byte-identically, and two
submissions of the same work hash to the same spec digest (useful for
cache accounting even though every submission gets its own job id).

Lifecycle::

    queued ──lease──> running ──complete──> done
       │                 │├──fail(permanent)──> failed
       │                 │├──fail(transient, retries left)──> queued  (backoff)
       │                 │└──fail(transient, retries exhausted)──> dead
       │                                                            │
       └──cancel──> cancelled              queued <──requeue(reset)──┘

``running`` jobs found in the store at service startup are orphans from
a crashed or killed server; they are re-queued, never silently lost.
``failed`` means the job itself is hopeless (bad spec — resubmitting
the same work would fail again); ``dead`` means the *infrastructure*
gave up (transient faults outlasted the retry budget) and the job is
eligible for ``requeue`` once the turbulence passes — attempts reset,
the sweep cache still remembers any finished points.
"""

from __future__ import annotations

import hashlib
import json
import uuid
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.sweep import SweepSpec, spec_from_params

__all__ = [
    "Job",
    "JobSpec",
    "JOB_STATES",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "SETTLED_STATES",
]

#: Every legal job state.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled", "dead")

#: States that count against a client's queued-work quota.
ACTIVE_STATES = ("queued", "running")

#: States a job can never leave on its own.  ``dead`` is *settled* but
#: not terminal: an explicit ``requeue`` returns it to the queue.
TERMINAL_STATES = ("done", "failed", "cancelled")

#: States in which a job is no longer making progress (terminal ∪ dead).
SETTLED_STATES = TERMINAL_STATES + ("dead",)


@dataclass(frozen=True)
class JobSpec:
    """The work of one job: a sweep grid plus measurement settings.

    Mirrors :class:`repro.sweep.SweepSpec` (grid / fixed / num_runs /
    seed) plus the sweep driver's ``measure`` mode.  Validation is
    eager and complete at construction: the spec is materialised into a
    ``SweepSpec`` and every grid point through
    :func:`repro.sweep.spec_from_params`, so a job that would fail deep
    inside a worker hours later is instead rejected at submit time with
    the usual :class:`~repro.errors.ConfigurationError`.
    """

    grid: dict
    num_runs: int = 3
    seed: int | tuple = 0
    fixed: dict = field(default_factory=dict)
    measure: str = "batch"

    def __post_init__(self) -> None:
        if self.measure not in ("batch", "sequential"):
            raise ConfigurationError(
                f"measure must be 'batch' or 'sequential', "
                f"got {self.measure!r}"
            )
        # Canonical JSON admits only JSON-native structures; reject
        # anything that would not round-trip through the store/API.
        try:
            json.dumps(self.grid)
            json.dumps(self.fixed)
        except TypeError as exc:
            raise ConfigurationError(
                f"job specs must be JSON-serialisable: {exc}"
            ) from exc
        spec = self.to_sweep_spec()  # validates grid/num_runs/seed
        # Validate every point eagerly — a service job must never be
        # admitted with a grid that raises after the queue drains.
        for params in spec.points():
            try:
                spec_from_params(params)
            except KeyError as exc:
                raise ConfigurationError(
                    f"grid point {params!r} is missing required "
                    f"parameter {exc}"
                ) from exc

    def to_sweep_spec(self) -> SweepSpec:
        """The equivalent :class:`~repro.sweep.SweepSpec`."""
        seed = self.seed
        if isinstance(seed, list):
            seed = tuple(seed)
        return SweepSpec(
            grid={str(k): list(v) for k, v in self.grid.items()},
            num_runs=int(self.num_runs),
            seed=seed,
            fixed=dict(self.fixed),
        )

    @property
    def num_points(self) -> int:
        """Grid points this job will measure (quota currency)."""
        count = 1
        for values in self.grid.values():
            count *= len(values)
        return count

    def canonical_json(self) -> str:
        """Stable JSON form: sorted keys, tuples as lists."""
        seed = self.seed
        if isinstance(seed, tuple):
            seed = list(seed)
        return json.dumps(
            {
                "grid": {k: list(v) for k, v in sorted(self.grid.items())},
                "num_runs": int(self.num_runs),
                "seed": seed,
                "fixed": {k: self.fixed[k] for k in sorted(self.fixed)},
                "measure": self.measure,
            },
            sort_keys=True,
        )

    def digest(self) -> str:
        """Content hash of the work (not the submission)."""
        return hashlib.sha256(
            self.canonical_json().encode()
        ).hexdigest()[:16]

    @classmethod
    def from_mapping(cls, payload: dict) -> "JobSpec":
        """Build a validated spec from an untrusted JSON-level dict."""
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"job spec must be an object, got {type(payload).__name__}"
            )
        unknown = set(payload) - {
            "grid", "num_runs", "seed", "fixed", "measure",
        }
        if unknown:
            raise ConfigurationError(
                f"unknown job-spec fields: {sorted(unknown)}"
            )
        if "grid" not in payload:
            raise ConfigurationError("job spec requires a 'grid'")
        seed = payload.get("seed", 0)
        if isinstance(seed, list):
            seed = tuple(seed)
        return cls(
            grid=payload["grid"],
            num_runs=payload.get("num_runs", 3),
            seed=seed,
            fixed=payload.get("fixed", {}),
            measure=payload.get("measure", "batch"),
        )

    @classmethod
    def from_json(cls, text: str) -> "JobSpec":
        return cls.from_mapping(json.loads(text))


def new_job_id() -> str:
    """Opaque job id — unique per submission, not content-derived."""
    return uuid.uuid4().hex[:16]


@dataclass
class Job:
    """One stored job: spec + submission metadata + lifecycle state."""

    id: str
    client: str
    priority: int
    state: str
    spec: JobSpec
    created: float
    updated: float
    attempts: int = 0
    not_before: float = 0.0
    worker: str | None = None
    heartbeat: float | None = None
    done_points: int = 0
    error: str | None = None
    result: list | None = None

    @property
    def total_points(self) -> int:
        return self.spec.num_points

    def status_payload(self) -> dict:
        """The JSON document ``GET /jobs/<id>`` serves."""
        return {
            "id": self.id,
            "client": self.client,
            "priority": self.priority,
            "state": self.state,
            "attempts": self.attempts,
            "progress": {
                "done_points": self.done_points,
                "total_points": self.total_points,
            },
            "created": self.created,
            "updated": self.updated,
            "worker": self.worker,
            "error": self.error,
            "spec_digest": self.spec.digest(),
        }
